"""Shared helpers for the benchmark harness.

Each benchmark regenerates one paper artifact (table or figure), asserts
its shape against the paper, and prints the regenerated rows/series (run
with ``-s`` to see them).  ``pytest-benchmark`` provides the timing; the
heavy Monte-Carlo benches use ``benchmark.pedantic`` with a single round
so the statistical workload is not repeated dozens of times.
"""

from __future__ import annotations

import sys


def emit(text: str) -> None:
    """Print a regenerated artifact (visible with ``pytest -s``)."""
    sys.stdout.write("\n" + text + "\n")
