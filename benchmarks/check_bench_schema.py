"""Validate the BENCH_*.json artifacts: present, parseable, schema-valid.

The last step of ``make ci``: after the ``--quick`` benchmark smoke runs,
assert each artifact exists, parses as JSON, and carries every required
field with a value of the required type.  The schemas are the stable
cross-PR contract of the benchmark trajectory — a field rename here must
be deliberate, not an accident a smoke run silently tolerates.

Usage:

    PYTHONPATH=src python benchmarks/check_bench_schema.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

NUMBER = (int, float)

# artifact -> {dotted.path: required type}.  `[]` marks "every element of
# this list", so `a.[].b` checks field `b` on each row of list `a`.
SCHEMAS = {
    "BENCH_perf_kernels.json": {
        "quick": bool,
        "worst_case_failure_probability": list,
        "worst_case_failure_probability.[].n": int,
        "worst_case_failure_probability.[].epsilon": NUMBER,
        "worst_case_failure_probability.[].scalar_seconds": NUMBER,
        "worst_case_failure_probability.[].batch_seconds": NUMBER,
        "worst_case_failure_probability.[].speedup": NUMBER,
        "worst_case_failure_probability.[].abs_difference": NUMBER,
        "tight_sample_size": list,
        "tight_sample_size.[].epsilon": NUMBER,
        "tight_sample_size.[].delta": NUMBER,
        "tight_sample_size.[].scalar_seconds": NUMBER,
        "tight_sample_size.[].batch_cold_seconds": NUMBER,
        "tight_sample_size.[].speedup_cold": NUMBER,
        "tight_sample_size.[].results_equal": bool,
        "sample_size_estimator_plan.cold_seconds": NUMBER,
        "sample_size_estimator_plan.warm_seconds": NUMBER,
        "sample_size_estimator_plan.plans_identical": bool,
        "sample_size_estimator_plan.samples": int,
        "tight_epsilon_sweep.testset_sizes": list,
        "tight_epsilon_sweep.delta": NUMBER,
        "tight_epsilon_sweep.tol": NUMBER,
        "tight_epsilon_sweep.workers": int,
        "tight_epsilon_sweep.available_cpus": int,
        "tight_epsilon_sweep.serial_seconds": NUMBER,
        "tight_epsilon_sweep.sharded_seconds": NUMBER,
        "tight_epsilon_sweep.sharded_speedup": NUMBER,
        "tight_epsilon_sweep.results_identical": bool,
        "tight_epsilon_sweep.bracket_contract_upper_ok": bool,
        "tight_epsilon_sweep.bracket_contract_lower_ok": bool,
        "tight_epsilon_sweep.speedup_gate_enforced": bool,
        "pairs_bandwidth.elements": int,
        "pairs_bandwidth.n_range": list,
        "pairs_bandwidth.window_cells": int,
        "pairs_bandwidth.tiers": list,
        "pairs_bandwidth.tiers.[].tier": str,
        "pairs_bandwidth.tiers.[].seconds": NUMBER,
        "pairs_bandwidth.tiers.[].bytes_per_cell": int,
        "pairs_bandwidth.tiers.[].window_bytes": int,
        "pairs_bandwidth.tiers.[].effective_gbps": NUMBER,
        "pairs_bandwidth.tiers.[].speedup_vs_reference": NUMBER,
        "pairs_bandwidth.fused_identical_to_reference": bool,
        "pairs_bandwidth.float32_within_certified_bound": bool,
        "pairs_bandwidth.float32_max_abs_error": NUMBER,
        "pairs_bandwidth.float32_speedup": NUMBER,
        "pairs_bandwidth.jit_available": bool,
        "pairs_bandwidth.speedup_gate_enforced": bool,
        "cache_info_after": dict,
    },
    "BENCH_commit_throughput.json": {
        "quick": bool,
        "commit_throughput.batch_size": int,
        "commit_throughput.pool_size": int,
        "commit_throughput.sequential_commits_per_sec": NUMBER,
        "commit_throughput.batched_commits_per_sec": NUMBER,
        "commit_throughput.speedup": NUMBER,
        "commit_throughput.results_identical": bool,
        "multi_generation_throughput.batch_size": int,
        "multi_generation_throughput.generation_budget": int,
        "multi_generation_throughput.rotations": int,
        "multi_generation_throughput.speedup": NUMBER,
        "multi_generation_throughput.results_identical": bool,
        "tight_epsilon_many.testset_sizes": list,
        "tight_epsilon_many.delta": NUMBER,
        "tight_epsilon_many.many_seconds": NUMBER,
        "tight_epsilon_many.speedup_vs_cold_per_call": NUMBER,
        "tight_epsilon_many.bracket_contract_upper_ok": bool,
        "tight_epsilon_many.bracket_contract_lower_ok": bool,
        "tight_epsilon_many.sharded_workers": int,
        "tight_epsilon_many.sharded_seconds": NUMBER,
        "tight_epsilon_many.sharded_identical": bool,
    },
    "BENCH_fault_recovery.json": {
        "quick": bool,
        "snapshot_fallback.commits": int,
        "snapshot_fallback.clean_restore_seconds": NUMBER,
        "snapshot_fallback.fallback_restore_seconds": NUMBER,
        "snapshot_fallback.replay_commits_clean": int,
        "snapshot_fallback.replay_commits_fallback": int,
        "snapshot_fallback.quarantined_files": int,
        "snapshot_fallback.results_identical": bool,
        "worker_kill.shards": int,
        "worker_kill.serial_seconds": NUMBER,
        "worker_kill.supervised_kill_seconds": NUMBER,
        "worker_kill.respawns": int,
        "worker_kill.degraded": bool,
        "worker_kill.results_identical": bool,
    },
    "BENCH_storage.json": {
        "quick": bool,
        "compaction.commits": int,
        "compaction.rotations": int,
        "compaction.snapshot_every": int,
        "compaction.keep_snapshots": int,
        "compaction.compaction_passes": int,
        "compaction.passes": list,
        "compaction.passes.[].bytes_before": int,
        "compaction.passes.[].bytes_after": int,
        "compaction.journal_bytes_peak": int,
        "compaction.journal_bytes_final": int,
        "compaction.journal_bytes_uncompacted": int,
        "compaction.state_dir_bytes_final": int,
        "compaction.state_dir_bytes_uncompacted": int,
        "compaction.compacted_through": int,
        "compaction.snapshots_on_disk": int,
        "compaction.bytes_bounded": bool,
        "compaction.results_identical": bool,
        "compaction.offline_compaction_pause_seconds": NUMBER,
        "compaction.offline_pass_dropped_records": int,
        "compaction.offline_pass_pruned_snapshots": int,
        "compaction.governor_check_seconds": NUMBER,
        "compaction.governor_level": str,
    },
    "BENCH_fleet.json": {
        "quick": bool,
        "parity.tenants": int,
        "parity.modes": int,
        "parity.commits_per_tenant": int,
        "parity.max_resident": int,
        "parity.hydrations": int,
        "parity.evictions": int,
        "parity.fleet_seconds": NUMBER,
        "parity.isolated_seconds": NUMBER,
        "parity.results_identical": bool,
        "overload.attempted": int,
        "overload.accepted": int,
        "overload.rejected": int,
        "overload.processed": int,
        "overload.burst_seconds": NUMBER,
        "overload.none_dropped": bool,
    },
}


def resolve(payload, dotted: str):
    """Yield every value at ``dotted`` (fanning out at `[]` segments)."""
    values = [payload]
    for segment in dotted.split("."):
        next_values = []
        for value in values:
            if segment == "[]":
                if not isinstance(value, list):
                    raise KeyError(f"expected a list before '[]' in {dotted!r}")
                next_values.extend(value)
            else:
                if not isinstance(value, dict) or segment not in value:
                    raise KeyError(f"missing field {dotted!r}")
                next_values.append(value[segment])
        values = next_values
    return values


def check_artifact(path: Path, schema: dict) -> list[str]:
    if not path.exists():
        return [f"{path.name}: artifact not produced"]
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        return [f"{path.name}: not valid JSON ({exc})"]
    problems = []
    for dotted, required in schema.items():
        try:
            values = resolve(payload, dotted)
        except KeyError as exc:
            problems.append(f"{path.name}: {exc.args[0]}")
            continue
        if not values and "[]" in dotted:
            problems.append(f"{path.name}: {dotted!r} matched no rows (empty list)")
        for value in values:
            # bool is an int subclass; an int-typed field must not be a bool.
            if isinstance(value, bool) and required is not bool:
                problems.append(
                    f"{path.name}: {dotted!r} is a bool, expected {required}"
                )
            elif not isinstance(value, required):
                problems.append(
                    f"{path.name}: {dotted!r} has type "
                    f"{type(value).__name__}, expected {required}"
                )
    return problems


def main() -> int:
    problems = []
    for name, schema in SCHEMAS.items():
        problems.extend(check_artifact(REPO_ROOT / name, schema))
    if problems:
        for problem in problems:
            print(f"SCHEMA ERROR: {problem}", file=sys.stderr)
        return 1
    for name in SCHEMAS:
        print(f"{name}: schema OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
