"""Perf benchmark: scalar vs. batch planning kernels, cold vs. warm plans.

Times the layers the vectorized-kernel and parallel-planning PRs
optimize —

1. ``worst_case_failure_probability`` (one full worst-case-``p`` scan),
2. ``tight_sample_size`` (the §4.3 search, the planning hot path),
3. ``SampleSizeEstimator.plan`` cold (cache cleared) vs. warm (served from
   the process-wide plan cache),
4. the **epsilon sweep**: cold ``tight_epsilon_many`` over a 32-size
   sweep, serial versus sharded across worker processes through
   ``repro.stats.parallel.PlanningExecutor`` (pool spawned outside the
   timed region — a planning service keeps its pool resident — with
   worker caches cold each round),
5. the **bandwidth-bound section**: one large-``n`` heterogeneous pairs
   dispatch (~1k probes at ``n ~ 2e5``, the shape of a planning sweep's
   advisory scan) per accumulation tier — the pre-fusion ``reference``
   float64 loop, the cache-blocked fused float64 kernel, the fused
   float32 tier, and (where numba is importable) the jit scan — with
   bytes-touched accounting: gathered window cells x per-cell bytes,
   and the effective gather bandwidth each tier sustains,

— and writes the numbers to ``BENCH_perf_kernels.json`` in the repo root
so future PRs have a trajectory.  Asserts the acceptance criteria:
batch ``tight_sample_size`` at ``epsilon=0.02, delta=1e-3`` is >= 20x
faster than the scalar baseline with the identical result, a warm plan
call is served in under a millisecond, and the sharded sweep at 4
workers is >= 2.5x the serial many-kernel with per-size brackets
element-wise identical and the probe certificates re-checked.  The
sweep's *speedup* gate is hardware-gated: it is enforced only when the
host actually offers at least as many CPUs as workers (a 4-way shard of
CPU-bound work cannot beat serial on a single-core container, exactly as
the noisy-runner rationale skips timing gates in ``--quick``); the
correctness gates — element-wise identity, certificates — hold
everywhere, and the measured ratio plus ``speedup_gate_enforced`` are
recorded in the JSON either way.  The bandwidth section follows the same
discipline: the float32 tier must be >= 2x the reference kernel at the
full large-``n`` workload (skipped in ``--quick``, whose shrunken probes
don't exercise the bandwidth wall), while the identity gate (fused
float64 bit-identical to reference) and the certificate gate (float32
within its returned absolute error bound) are enforced everywhere.

Run via ``make bench-perf`` (``make bench-perf WORKERS=8`` overrides the
shard width) or directly:

    PYTHONPATH=src python benchmarks/bench_perf_kernels.py [--workers N]

``--quick`` (what ``make ci`` runs) is the smoke mode: the cheapest case
per section, correctness assertions kept, the timing gates skipped —
hosted CI runners are too noisy to enforce speedups, but the JSON
artifact must still be produced and schema-valid
(``benchmarks/check_bench_schema.py``).
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import time
from pathlib import Path

import numpy as np

from repro.core.estimators.api import SampleSizeEstimator
from repro.stats.batch import (
    _WINDOW_SIGMAS,
    _WINDOW_SLACK,
    exact_coverage_failure_probability_pairs,
)
from repro.stats.cache import all_cache_info, clear_all_caches
from repro.stats.jit import NUMBA_AVAILABLE
from repro.stats.parallel import PlanningExecutor
from repro.stats.tight_bounds import (
    exceeds_delta_many,
    tight_epsilon_many,
    tight_sample_size,
    worst_case_failure_probability,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_perf_kernels.json"

# Paper-scale parameters: the acceptance point plus a spread.
TIGHT_CASES = [
    {"epsilon": 0.05, "delta": 1e-3},
    {"epsilon": 0.02, "delta": 1e-3},  # acceptance criterion case
    {"epsilon": 0.03, "delta": 1e-4},
]
WORST_CASES = [
    {"n": 1090, "epsilon": 0.05},
    {"n": 6800, "epsilon": 0.02},
]
PLAN_CONDITION = "n - o > 0.02 +/- 0.01 /\\ n > 0.8 +/- 0.05"
PLAN_KWARGS = {"reliability": 0.9999, "adaptivity": "full", "steps": 32}

# The 32-size sweep of the sharded-planning acceptance criterion (the
# same grid bench_commit_throughput sweeps).
EPSILON_SIZES = np.unique(np.linspace(1000, 10000, 32).astype(int))
EPSILON_DELTA = 1e-3
EPSILON_TOL = 1e-6
DEFAULT_WORKERS = 4

# The bandwidth-bound workload: a planning-sweep-shaped batch of probes
# at n ~ 2e5 with p near 1/2 (the widest tail windows the ladder hands
# out), where the pairs kernel's cost is dominated by streaming the
# gathered log-comb windows through memory rather than by arithmetic.
PAIRS_SEED = 20260807
PAIRS_ELEMENTS = 1024
PAIRS_BASE_N = 200_000


def _timed(fn, *, repeats: int = 3, cold: bool = True) -> tuple[float, object]:
    """Median wall time over ``repeats`` runs (caches cleared when cold)."""
    times, result = [], None
    for _ in range(repeats):
        if cold:
            clear_all_caches()
        t0 = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times), result


def bench_worst_case(cases=WORST_CASES) -> list[dict]:
    rows = []
    for case in cases:
        n, eps = case["n"], case["epsilon"]
        t_scalar, f_scalar = _timed(
            lambda: worst_case_failure_probability(n, eps, backend="scalar"), repeats=1
        )
        t_batch, f_batch = _timed(
            lambda: worst_case_failure_probability(n, eps, backend="batch")
        )
        rows.append(
            {
                **case,
                "scalar_seconds": t_scalar,
                "batch_seconds": t_batch,
                "speedup": t_scalar / t_batch,
                "scalar_value": f_scalar,
                "batch_value": f_batch,
                "abs_difference": abs(f_scalar - f_batch),
            }
        )
    return rows


def bench_tight_sample_size(cases=TIGHT_CASES) -> list[dict]:
    rows = []
    for case in cases:
        eps, delta = case["epsilon"], case["delta"]
        t_scalar, n_scalar = _timed(
            lambda: tight_sample_size(eps, delta, backend="scalar"), repeats=1
        )
        t_batch, n_batch = _timed(lambda: tight_sample_size(eps, delta, backend="batch"))
        t_warm, n_warm = _timed(
            lambda: tight_sample_size(eps, delta, backend="batch"), cold=False
        )
        rows.append(
            {
                **case,
                "scalar_seconds": t_scalar,
                "batch_cold_seconds": t_batch,
                "batch_warm_seconds": t_warm,
                "speedup_cold": t_scalar / t_batch,
                "scalar_n": n_scalar,
                "batch_n": n_batch,
                "results_equal": n_scalar == n_batch == n_warm,
            }
        )
    return rows


def bench_plan_cache() -> dict:
    estimator = SampleSizeEstimator(use_exact_binomial=True)

    def plan():
        return estimator.plan(PLAN_CONDITION, **PLAN_KWARGS)

    t_cold, plan_cold = _timed(plan)
    t_warm, plan_warm = _timed(plan, repeats=5, cold=False)
    return {
        "condition": PLAN_CONDITION,
        "spec": PLAN_KWARGS,
        "cold_seconds": t_cold,
        "warm_seconds": t_warm,
        "warm_is_sub_millisecond": t_warm < 1e-3,
        "plans_identical": plan_cold == plan_warm,
        "samples": plan_warm.samples,
    }


def bench_epsilon_sweep(quick: bool = False, workers: int = DEFAULT_WORKERS) -> dict:
    """Serial vs. sharded cold ``tight_epsilon_many`` over the 32-size sweep.

    The serial leg is the many-kernel with cold caches per round; the
    sharded leg runs the same sweep through a fresh
    :class:`PlanningExecutor` per round — parent and worker caches cold,
    the pool spawn excluded from the clock (a planning service keeps its
    pool resident), the manifest merge included.  Besides the timings,
    this section is what exercises the epsilon-side caches, so the
    recorded ``cache_info_after`` reflects a real sweep (the layout,
    anchor and many-sweep caches show genuine hits/misses).
    """
    sizes = (
        np.unique(np.linspace(1000, 2500, 4).astype(int)) if quick else EPSILON_SIZES
    )
    workers = 2 if quick else workers
    rounds = 1 if quick else 3

    serial_times, serial_eps = [], None
    for _ in range(rounds):
        clear_all_caches()
        t0 = time.perf_counter()
        serial_eps = tight_epsilon_many(sizes, EPSILON_DELTA, tol=EPSILON_TOL)
        serial_times.append(time.perf_counter() - t0)
    t_serial = statistics.median(serial_times)

    # Warm repeat: the sweep memo serves the whole vector.
    t0 = time.perf_counter()
    warm_eps = tight_epsilon_many(sizes, EPSILON_DELTA, tol=EPSILON_TOL)
    t_warm = time.perf_counter() - t0

    sharded_times, sharded_eps = [], None
    for _ in range(rounds):
        clear_all_caches()
        with PlanningExecutor(workers).start() as executor:  # spawn off-clock
            t0 = time.perf_counter()
            sharded_eps = executor.tight_epsilon_many(
                sizes, EPSILON_DELTA, tol=EPSILON_TOL
            )
            sharded_times.append(time.perf_counter() - t0)
    t_sharded = statistics.median(sharded_times)

    # Certificates re-checked on the sharded result with full-fidelity
    # trajectory probes: not exceeding at eps, exceeding at eps - tol.
    clear_all_caches()
    upper_ok = ~exceeds_delta_many(sizes, sharded_eps, EPSILON_DELTA)
    lower_ok = exceeds_delta_many(sizes, sharded_eps - EPSILON_TOL, EPSILON_DELTA)

    # Leave the epsilon-side caches genuinely exercised for the recorded
    # cache_info_after: one in-process sweep (anchors planted, sweep
    # memoized) plus one memo hit.
    final_eps = tight_epsilon_many(sizes, EPSILON_DELTA, tol=EPSILON_TOL)
    tight_epsilon_many(sizes, EPSILON_DELTA, tol=EPSILON_TOL)

    cpus = os.cpu_count() or 1
    return {
        "testset_sizes": sizes.tolist(),
        "delta": EPSILON_DELTA,
        "tol": EPSILON_TOL,
        "workers": workers,
        "available_cpus": cpus,
        "serial_seconds": t_serial,
        "serial_warm_repeat_seconds": t_warm,
        "sharded_seconds": t_sharded,
        "sharded_speedup": t_serial / t_sharded,
        "results_identical": bool(
            np.array_equal(serial_eps, sharded_eps)
            and np.array_equal(serial_eps, warm_eps)
            and np.array_equal(serial_eps, final_eps)
        ),
        "bracket_contract_upper_ok": bool(upper_ok.all()),
        "bracket_contract_lower_ok": bool(lower_ok.all()),
        "speedup_gate_enforced": bool(not quick and cpus >= workers),
    }


def _window_cells(ns, ps, eps) -> int:
    """Total gathered window cells of one pairs dispatch (both tails).

    Bench-side replica of the kernel's absolute-ladder width assignment
    (same sigma depth, same ``2 * slack`` anchor) so the bytes-touched
    accounting reflects what the kernel actually streams, without the
    bench reaching into the dispatch internals.
    """
    nf = ns.astype(np.float64)
    sigma = np.sqrt(nf * ps * (1.0 - ps))
    depth = np.ceil(_WINDOW_SIGMAS * sigma).astype(np.int64) + _WINDOW_SLACK
    natural = np.minimum(
        ns + 1,
        np.maximum(_WINDOW_SLACK, depth - np.floor(eps * nf).astype(np.int64) + 2),
    )
    ladder = [2 * _WINDOW_SLACK]
    while ladder[-1] < int(natural.max()):
        ladder.append(2 * ladder[-1])
    ladder_arr = np.asarray(ladder, dtype=np.int64)
    widths = ladder_arr[np.searchsorted(ladder_arr, natural)]
    return int(2 * widths.sum())


def bench_pairs_bandwidth(quick: bool = False) -> dict:
    """Per-tier large-``n`` pairs dispatches with bytes-touched accounting.

    Times ``exact_coverage_failure_probability_pairs`` on one
    planning-sweep-shaped batch — per-element ``(n, p, eps)`` triples at
    ``n ~ 2e5``, ``p`` near 1/2 — for each accumulation tier: the
    pre-fusion ``reference`` float64 loop (the yardstick and oracle), the
    cache-blocked fused float64 kernel (must be bit-identical), the fused
    float32 tier (must land within its returned absolute error bound and,
    at the full workload, beat reference by >= 2x — the memory-bandwidth
    headline), and the numba jit scan where importable.  The shared
    layout is built off-clock (a planning service keeps it resident) and
    each tier's time is the fastest of ``repeats`` runs — the standard
    noise-robust estimator for bandwidth-bound loops.
    """
    elements = 128 if quick else PAIRS_ELEMENTS
    base_n = 20_000 if quick else PAIRS_BASE_N
    repeats = 3 if quick else 7
    rng = np.random.default_rng(PAIRS_SEED)
    ns = base_n + rng.integers(0, 50, size=elements)
    ps = rng.uniform(0.35, 0.65, size=elements)
    eps = rng.uniform(5e-4, 3e-3, size=elements)
    cells = _window_cells(ns, ps, eps)
    pairs = exact_coverage_failure_probability_pairs

    # One warm-up dispatch per tier off-clock (builds the shared layout),
    # then the tiers are timed *interleaved*, round-robin, taking each
    # tier's fastest round: machine-load drift during the section hits
    # every tier alike instead of whichever happened to run last.
    timed_tiers = {
        "reference": lambda: pairs(ns, ps, eps, impl="reference"),
        "fused": lambda: pairs(ns, ps, eps),
        "float32": lambda: pairs(ns, ps, eps, precision="float32"),
    }
    results_by_tier = {name: fn() for name, fn in timed_tiers.items()}
    best = {name: float("inf") for name in timed_tiers}
    for _ in range(repeats):
        for name, fn in timed_tiers.items():
            t0 = time.perf_counter()
            results_by_tier[name] = fn()
            best[name] = min(best[name], time.perf_counter() - t0)
    t_ref, ref = best["reference"], results_by_tier["reference"]
    t_fused, fused = best["fused"], results_by_tier["fused"]
    t_f32 = best["float32"]
    values32, bound32 = pairs(
        ns, ps, eps, precision="float32", return_error_bound=True
    )
    err32 = np.abs(values32 - ref)

    def tier(name: str, seconds: float, bytes_per_cell: int) -> dict:
        window_bytes = cells * bytes_per_cell
        return {
            "tier": name,
            "seconds": seconds,
            "bytes_per_cell": bytes_per_cell,
            "window_bytes": window_bytes,
            "effective_gbps": window_bytes / seconds / 1e9,
            "speedup_vs_reference": t_ref / seconds,
        }

    tiers = [
        tier("reference_float64", t_ref, 8),
        tier("fused_float64", t_fused, 8),
        tier("fused_float32", t_f32, 4),
    ]
    result = {
        "elements": elements,
        "n_range": [int(ns.min()), int(ns.max())],
        "window_cells": cells,
        "tiers": tiers,
        "fused_identical_to_reference": bool(np.array_equal(fused, ref)),
        "float32_within_certified_bound": bool(np.all(err32 <= bound32)),
        "float32_max_abs_error": float(err32.max()),
        "float32_max_bound": float(bound32.max()),
        "float32_speedup": t_ref / t_f32,
        "jit_available": NUMBA_AVAILABLE,
        # Quick mode shrinks the probes below the bandwidth wall and runs
        # on noisy shared runners; the correctness gates above are
        # asserted regardless, the >= 2x gate only on the real workload.
        "speedup_gate_enforced": bool(not quick),
    }
    if NUMBA_AVAILABLE:  # pragma: no cover - exercised only with numba
        jit_values = pairs(ns, ps, eps, impl="jit")  # off-clock compile
        t_jit = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            jit_values = pairs(ns, ps, eps, impl="jit")
            t_jit = min(t_jit, time.perf_counter() - t0)
        tiers.append(tier("jit_float64", t_jit, 8))
        # Left-to-right accumulation: near- but not bit-identical.
        result["jit_matches_reference"] = bool(
            np.allclose(jit_values, ref, rtol=1e-9, atol=1e-300)
        )
    return result


def main(quick: bool = False, workers: int = DEFAULT_WORKERS) -> dict:
    # Quick mode (CI smoke): the cheapest case per section, correctness
    # still asserted, timing gates skipped — the runner is shared and
    # noisy, but the artifact must be produced and schema-valid.
    worst_cases = WORST_CASES[:1] if quick else WORST_CASES
    tight_cases = TIGHT_CASES[:1] if quick else TIGHT_CASES
    results = {
        "quick": quick,
        "worst_case_failure_probability": bench_worst_case(worst_cases),
        "tight_sample_size": bench_tight_sample_size(tight_cases),
        "sample_size_estimator_plan": bench_plan_cache(),
        "tight_epsilon_sweep": bench_epsilon_sweep(quick, workers),
        "pairs_bandwidth": bench_pairs_bandwidth(quick),
        "cache_info_after": {
            name: {"hits": info.hits, "misses": info.misses, "currsize": info.currsize}
            for name, info in all_cache_info().items()
        },
    }

    # Acceptance criteria of the vectorized-kernel PR.
    headline = next(
        row
        for row in results["tight_sample_size"]
        if quick or (row["epsilon"] == 0.02 and row["delta"] == 1e-3)
    )
    assert headline["results_equal"], "batch and scalar tight_sample_size diverged"
    plan_row = results["sample_size_estimator_plan"]
    assert plan_row["plans_identical"], "cached plan differs from cold plan"
    sweep = results["tight_epsilon_sweep"]
    assert sweep["results_identical"], (
        "sharded tight_epsilon_many diverged from the serial sweep"
    )
    assert sweep["bracket_contract_upper_ok"] and sweep["bracket_contract_lower_ok"], (
        "sharded tight_epsilon_many broke the bracket probe certificates"
    )
    if not quick:
        assert headline["speedup_cold"] >= 20.0, (
            f"tight_sample_size speedup {headline['speedup_cold']:.1f}x is below "
            "the required 20x"
        )
        assert plan_row["warm_is_sub_millisecond"], (
            f"warm plan took {plan_row['warm_seconds'] * 1e3:.3f} ms (>= 1 ms)"
        )
    if sweep["speedup_gate_enforced"]:
        # Hardware-gated (see module docstring): a CPU-bound 4-way shard
        # cannot beat serial on hosts with fewer cores than workers.
        assert sweep["sharded_speedup"] >= 2.5, (
            f"sharded tight_epsilon_many speedup {sweep['sharded_speedup']:.2f}x "
            f"at {sweep['workers']} workers is below the required 2.5x"
        )

    # Bandwidth-section gates: identity and certificate always, >= 2x on
    # the full large-n workload only (quick probes sit below the wall).
    bandwidth = results["pairs_bandwidth"]
    assert bandwidth["fused_identical_to_reference"], (
        "fused float64 pairs kernel diverged bit-wise from the reference loop"
    )
    assert bandwidth["float32_within_certified_bound"], (
        "float32 pairs tier escaped its certified absolute error bound "
        f"(max error {bandwidth['float32_max_abs_error']:.3e})"
    )
    if bandwidth["speedup_gate_enforced"]:
        assert bandwidth["float32_speedup"] >= 2.0, (
            f"float32 pairs tier speedup {bandwidth['float32_speedup']:.2f}x "
            "over the reference kernel is below the required 2x"
        )

    OUTPUT.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {OUTPUT}")
    print(
        f"tight_sample_size({headline['epsilon']}, {headline['delta']}): "
        f"scalar {headline['scalar_seconds']:.3f}s, "
        f"batch {headline['batch_cold_seconds'] * 1e3:.1f}ms "
        f"({headline['speedup_cold']:.0f}x), "
        f"warm {headline['batch_warm_seconds'] * 1e6:.0f}us"
    )
    print(
        f"plan cold {plan_row['cold_seconds'] * 1e3:.2f}ms, "
        f"warm {plan_row['warm_seconds'] * 1e6:.0f}us"
    )
    gate_note = (
        "" if sweep["speedup_gate_enforced"]
        else f" [gate not enforced: {sweep['available_cpus']} CPU(s) available]"
    )
    print(
        f"epsilon sweep over {len(sweep['testset_sizes'])} sizes: serial "
        f"{sweep['serial_seconds'] * 1e3:.0f}ms, sharded at "
        f"{sweep['workers']} workers {sweep['sharded_seconds'] * 1e3:.0f}ms "
        f"({sweep['sharded_speedup']:.2f}x){gate_note}"
    )
    tier_notes = ", ".join(
        f"{row['tier']} {row['seconds'] * 1e3:.1f}ms "
        f"({row['speedup_vs_reference']:.2f}x, {row['effective_gbps']:.1f} GB/s)"
        for row in bandwidth["tiers"]
    )
    print(
        f"pairs bandwidth over {bandwidth['elements']} probes "
        f"({bandwidth['window_cells']} window cells): {tier_notes}"
    )
    return results


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: cheapest cases, timing gates skipped",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=DEFAULT_WORKERS,
        help="shard width of the epsilon-sweep section (default: 4; "
        "see `make bench-perf WORKERS=...`)",
    )
    args = parser.parse_args()
    main(quick=args.quick, workers=args.workers)
