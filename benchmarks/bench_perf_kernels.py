"""Perf benchmark: scalar vs. batch planning kernels, cold vs. warm plans.

Times the three layers the vectorized-kernel PR optimizes —

1. ``worst_case_failure_probability`` (one full worst-case-``p`` scan),
2. ``tight_sample_size`` (the §4.3 search, the planning hot path),
3. ``SampleSizeEstimator.plan`` cold (cache cleared) vs. warm (served from
   the process-wide plan cache),

— and writes the numbers to ``BENCH_perf_kernels.json`` in the repo root
so future PRs have a trajectory.  Asserts the PR's acceptance criteria:
batch ``tight_sample_size`` at ``epsilon=0.02, delta=1e-3`` is >= 20x
faster than the scalar baseline with the identical result, and a warm
plan call is served in under a millisecond.

Run via ``make bench-perf`` or directly:

    PYTHONPATH=src python benchmarks/bench_perf_kernels.py

``--quick`` (what ``make ci`` runs) is the smoke mode: the cheapest case
per section, correctness assertions kept, the timing gates skipped —
hosted CI runners are too noisy to enforce speedups, but the JSON
artifact must still be produced and schema-valid
(``benchmarks/check_bench_schema.py``).
"""

from __future__ import annotations

import argparse
import json
import statistics
import time
from pathlib import Path

from repro.core.estimators.api import SampleSizeEstimator
from repro.stats.cache import all_cache_info, clear_all_caches
from repro.stats.tight_bounds import tight_sample_size, worst_case_failure_probability

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_perf_kernels.json"

# Paper-scale parameters: the acceptance point plus a spread.
TIGHT_CASES = [
    {"epsilon": 0.05, "delta": 1e-3},
    {"epsilon": 0.02, "delta": 1e-3},  # acceptance criterion case
    {"epsilon": 0.03, "delta": 1e-4},
]
WORST_CASES = [
    {"n": 1090, "epsilon": 0.05},
    {"n": 6800, "epsilon": 0.02},
]
PLAN_CONDITION = "n - o > 0.02 +/- 0.01 /\\ n > 0.8 +/- 0.05"
PLAN_KWARGS = {"reliability": 0.9999, "adaptivity": "full", "steps": 32}


def _timed(fn, *, repeats: int = 3, cold: bool = True) -> tuple[float, object]:
    """Median wall time over ``repeats`` runs (caches cleared when cold)."""
    times, result = [], None
    for _ in range(repeats):
        if cold:
            clear_all_caches()
        t0 = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times), result


def bench_worst_case(cases=WORST_CASES) -> list[dict]:
    rows = []
    for case in cases:
        n, eps = case["n"], case["epsilon"]
        t_scalar, f_scalar = _timed(
            lambda: worst_case_failure_probability(n, eps, backend="scalar"), repeats=1
        )
        t_batch, f_batch = _timed(
            lambda: worst_case_failure_probability(n, eps, backend="batch")
        )
        rows.append(
            {
                **case,
                "scalar_seconds": t_scalar,
                "batch_seconds": t_batch,
                "speedup": t_scalar / t_batch,
                "scalar_value": f_scalar,
                "batch_value": f_batch,
                "abs_difference": abs(f_scalar - f_batch),
            }
        )
    return rows


def bench_tight_sample_size(cases=TIGHT_CASES) -> list[dict]:
    rows = []
    for case in cases:
        eps, delta = case["epsilon"], case["delta"]
        t_scalar, n_scalar = _timed(
            lambda: tight_sample_size(eps, delta, backend="scalar"), repeats=1
        )
        t_batch, n_batch = _timed(lambda: tight_sample_size(eps, delta, backend="batch"))
        t_warm, n_warm = _timed(
            lambda: tight_sample_size(eps, delta, backend="batch"), cold=False
        )
        rows.append(
            {
                **case,
                "scalar_seconds": t_scalar,
                "batch_cold_seconds": t_batch,
                "batch_warm_seconds": t_warm,
                "speedup_cold": t_scalar / t_batch,
                "scalar_n": n_scalar,
                "batch_n": n_batch,
                "results_equal": n_scalar == n_batch == n_warm,
            }
        )
    return rows


def bench_plan_cache() -> dict:
    estimator = SampleSizeEstimator(use_exact_binomial=True)

    def plan():
        return estimator.plan(PLAN_CONDITION, **PLAN_KWARGS)

    t_cold, plan_cold = _timed(plan)
    t_warm, plan_warm = _timed(plan, repeats=5, cold=False)
    return {
        "condition": PLAN_CONDITION,
        "spec": PLAN_KWARGS,
        "cold_seconds": t_cold,
        "warm_seconds": t_warm,
        "warm_is_sub_millisecond": t_warm < 1e-3,
        "plans_identical": plan_cold == plan_warm,
        "samples": plan_warm.samples,
    }


def main(quick: bool = False) -> dict:
    # Quick mode (CI smoke): the cheapest case per section, correctness
    # still asserted, timing gates skipped — the runner is shared and
    # noisy, but the artifact must be produced and schema-valid.
    worst_cases = WORST_CASES[:1] if quick else WORST_CASES
    tight_cases = TIGHT_CASES[:1] if quick else TIGHT_CASES
    results = {
        "quick": quick,
        "worst_case_failure_probability": bench_worst_case(worst_cases),
        "tight_sample_size": bench_tight_sample_size(tight_cases),
        "sample_size_estimator_plan": bench_plan_cache(),
        "cache_info_after": {
            name: {"hits": info.hits, "misses": info.misses, "currsize": info.currsize}
            for name, info in all_cache_info().items()
        },
    }

    # Acceptance criteria of the vectorized-kernel PR.
    headline = next(
        row
        for row in results["tight_sample_size"]
        if quick or (row["epsilon"] == 0.02 and row["delta"] == 1e-3)
    )
    assert headline["results_equal"], "batch and scalar tight_sample_size diverged"
    plan_row = results["sample_size_estimator_plan"]
    assert plan_row["plans_identical"], "cached plan differs from cold plan"
    if not quick:
        assert headline["speedup_cold"] >= 20.0, (
            f"tight_sample_size speedup {headline['speedup_cold']:.1f}x is below "
            "the required 20x"
        )
        assert plan_row["warm_is_sub_millisecond"], (
            f"warm plan took {plan_row['warm_seconds'] * 1e3:.3f} ms (>= 1 ms)"
        )

    OUTPUT.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {OUTPUT}")
    print(
        f"tight_sample_size({headline['epsilon']}, {headline['delta']}): "
        f"scalar {headline['scalar_seconds']:.3f}s, "
        f"batch {headline['batch_cold_seconds'] * 1e3:.1f}ms "
        f"({headline['speedup_cold']:.0f}x), "
        f"warm {headline['batch_warm_seconds'] * 1e6:.0f}us"
    )
    print(
        f"plan cold {plan_row['cold_seconds'] * 1e3:.2f}ms, "
        f"warm {plan_row['warm_seconds'] * 1e6:.0f}us"
    )
    return results


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: cheapest cases, timing gates skipped",
    )
    main(quick=parser.parse_args().quick)
