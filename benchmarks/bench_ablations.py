"""E8 — ablations over the design choices (DESIGN.md §3, experiment E8).

(i)   reusable delta/2^H testset vs. H disposable testsets;
(ii)  optimal vs. even tolerance allocation;
(iii) exact binomial (§4.3) vs. Hoeffding sizing;
(iv)  the honest adaptive attacker vs. both testset sizings.
"""

from conftest import emit

from repro.experiments.ablations import (
    run_adaptive_attack,
    run_allocation_ablation,
    run_filter_false_reject,
    run_reusable_vs_disposable,
    run_tight_bound_ablation,
)
from repro.utils.formatting import Table


def test_reusable_vs_disposable(benchmark):
    rows = benchmark(run_reusable_vs_disposable)
    table = Table(
        ["H", "reusable (delta/2^H)", "disposable (H x delta/H)", "ratio"],
        align=[">"] * 4,
        title="ablation (i): fully-adaptive testset strategies",
    )
    for r in rows:
        table.add_row(
            [
                r.steps,
                f"{r.reusable_total:,}",
                f"{r.disposable_total:,}",
                f"{r.disposable_total / r.reusable_total:.1f}x",
            ]
        )
    emit(table.render())
    for r in rows:
        assert r.reusable_wins
    # The advantage grows with H (disposable is Theta(H log H) vs Theta(H)).
    ratios = [r.disposable_total / r.reusable_total for r in rows]
    assert ratios == sorted(ratios)


def test_allocation_ablation(benchmark):
    rows = benchmark(run_allocation_ablation)
    table = Table(
        ["|coef| ratio", "optimal n", "even-split n", "savings"],
        align=[">"] * 4,
        title="ablation (ii): tolerance allocation",
    )
    for r in rows:
        table.add_row(
            [
                r.coefficient_ratio,
                f"{r.optimal_samples:,.0f}",
                f"{r.even_split_samples:,.0f}",
                f"{r.savings:.2f}x",
            ]
        )
    emit(table.render())
    for r in rows:
        assert r.optimal_samples <= r.even_split_samples + 1e-6
    # Symmetric clauses gain nothing; asymmetric ones gain plenty.
    assert abs(rows[0].savings - 1.0) < 1e-9
    assert rows[-1].savings > 2.0


def test_tight_bound_ablation(benchmark):
    rows = benchmark.pedantic(run_tight_bound_ablation, rounds=1, iterations=1)
    table = Table(
        ["eps", "hoeffding n", "exact binomial n", "savings"],
        align=[">"] * 4,
        title="ablation (iii): §4.3 tight numerical bounds",
    )
    for r in rows:
        table.add_row(
            [
                r.epsilon,
                f"{r.hoeffding_samples:,}",
                f"{r.tight_samples:,}",
                f"{r.savings_fraction:.0%}",
            ]
        )
    emit(table.render())
    for r in rows:
        assert r.tight_samples <= r.hoeffding_samples
        assert 0.10 <= r.savings_fraction <= 0.45


def test_adaptive_attack(benchmark):
    outcomes = benchmark.pedantic(run_adaptive_attack, rounds=1, iterations=1)
    table = Table(
        ["sizing", "n", "mean gap", "max gap", "guarantee held"],
        align=["<", ">", ">", ">", "^"],
        title="ablation (iv): honest adaptive attacker, 64 queries",
    )
    for o in outcomes:
        table.add_row(
            [
                o.sizing,
                f"{o.testset_size:,}",
                f"{o.mean_final_gap:.4f}",
                f"{o.max_final_gap:.4f}",
                "yes" if o.guarantee_held else "NO",
            ]
        )
    emit(table.render())
    naive, adaptive = outcomes
    assert not naive.guarantee_held  # feedback reuse breaks naive sizing
    assert adaptive.guarantee_held  # the 2^H budget absorbs it


def test_filter_false_reject(benchmark):
    outcome = benchmark.pedantic(run_filter_false_reject, rounds=1, iterations=1)
    emit(
        f"ablation (v): filter false-reject rate "
        f"{outcome.observed_false_reject_rate:.5f} vs budget "
        f"{outcome.delta_budget:.5f} (true d={outcome.true_difference}, "
        f"threshold={outcome.threshold})"
    )
    # The bound must hold with Monte-Carlo slack.
    assert outcome.observed_false_reject_rate <= outcome.delta_budget + 0.01
