"""Fleet benchmark: the multi-tenant parity gate plus overload accounting.

Two legs, both gated on correctness in addition to being timed:

1. **Parity under churn** — 100+ simulated tenants (``--quick``: 12)
   split across all three adaptivity modes, their traffic interleaved
   through one :class:`~repro.fleet.CIFleet` whose LRU is far smaller
   than the tenant count, so every round of submissions evicts and
   rehydrates engines.  The gate: every tenant's build fingerprint is
   element-wise identical to an isolated ``CIService`` run of the same
   world.  The artifact records the hydration/eviction churn and the
   gateway's overhead against the N-isolated-services baseline.

2. **Overload shedding** — a hot-tenant burst exceeding both admission
   bounds.  The gate: every submission is either durably accepted (and
   eventually processed) or rejected with a typed admission error —
   accepted + rejected == attempted, none silently dropped.

Run directly or via ``make bench-fleet`` / ``make bench-smoke``:

    PYTHONPATH=src python benchmarks/bench_fleet.py --quick
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.ci.repository import ModelRepository
from repro.ci.service import CIService
from repro.core.estimators.api import SampleSizeEstimator
from repro.core.script.config import CIScript
from repro.core.testset import Testset, TestsetPool
from repro.exceptions import AdmissionError
from repro.fleet import AdmissionPolicy, CIFleet
from repro.ml.models.base import FixedPredictionModel
from repro.ml.models.simulated import (
    ModelPairSpec,
    evolve_predictions,
    simulate_model_pair,
)
from repro.stats.cache import clear_all_caches

REPO_ROOT = Path(__file__).resolve().parent.parent

CONDITION = "d < 0.25 +/- 0.1 /\\ n - o > 0.05 +/- 0.1"
ADAPTIVITY_MODES = ["full", "none -> third-party@example.com", "firstChange"]


def make_script(adaptivity):
    return CIScript.from_dict(
        {
            "script": "./test_model.py",
            "condition": CONDITION,
            "reliability": 0.999,
            "mode": "fp-free",
            "adaptivity": adaptivity,
            "steps": 4,
        }
    )


def make_world(script, commits, seed):
    plan = SampleSizeEstimator().plan(
        script.condition,
        delta=script.delta,
        adaptivity=script.adaptivity,
        steps=script.steps,
        known_variance_bound=script.variance_bound,
    )
    pair = simulate_model_pair(
        ModelPairSpec(old_accuracy=0.80, new_accuracy=0.80, difference=0.0),
        n_examples=plan.pool_size,
        seed=seed,
    )
    labels = pair.labels
    models, current = [], pair.old_model.predictions
    for index in range(commits):
        target = 0.88 if index % 3 == 1 else 0.81
        predictions = evolve_predictions(
            current,
            labels,
            target_accuracy=target,
            difference=0.12,
            seed=1000 * seed + index,
        )
        models.append(FixedPredictionModel(predictions, name=f"m{index}"))
        if index % 3 == 1:
            current = predictions
    rng = np.random.default_rng(seed + 1)
    pool = [
        Testset(labels=rng.integers(0, 2, size=plan.pool_size), name=f"gen-{g}")
        for g in range(1, 3)
    ]
    return Testset(labels=labels, name="gen-0"), pool, pair.old_model, models


def fingerprint(service):
    return [
        (
            build.build_number,
            build.commit.commit_id,
            build.commit.status.value,
            build.generation,
            build.result.promoted if build.result else None,
            build.result.testset_uses if build.result else None,
        )
        for build in service.builds
    ]


def bench_parity(quick: bool) -> dict:
    tenants = 12 if quick else 102
    commits = 2 if quick else 3
    max_resident = 3 if quick else 8
    scripts = {mode: make_script(mode) for mode in ADAPTIVITY_MODES}
    worlds = {}
    for index in range(tenants):
        mode = ADAPTIVITY_MODES[index % len(ADAPTIVITY_MODES)]
        worlds[f"t-{index:03d}"] = (
            mode,
            make_world(scripts[mode], commits, seed=index),
        )

    clear_all_caches()
    with tempfile.TemporaryDirectory() as tmp:
        fleet = CIFleet(
            Path(tmp) / "fleet", max_resident=max_resident, sync=False
        )
        start = time.perf_counter()
        for tenant_id, (mode, world) in worlds.items():
            testset, pool, baseline, _ = world
            fleet.register(
                tenant_id,
                scripts[mode],
                testset,
                baseline,
                repository=ModelRepository(nonce=f"bench-{tenant_id}"),
                pool=TestsetPool(pool),
            )
        # Mixed traffic: round-robin interleaving, so every consecutive
        # pair of submissions hits a different tenant and the LRU churns.
        for index in range(commits):
            for tenant_id, (_, world) in worlds.items():
                fleet.submit(tenant_id, world[3][index], message=f"c{index}")
        fleet_seconds = time.perf_counter() - start
        hydrations, evictions = fleet.hydrations, fleet.evictions
        assert evictions > 0, "LRU never churned; max_resident too generous"

        fleet_prints = {
            tenant_id: fingerprint(fleet.service(tenant_id))
            for tenant_id in worlds
        }

    clear_all_caches()
    start = time.perf_counter()
    identical = True
    for tenant_id, (mode, world) in worlds.items():
        testset, pool, baseline, models = world
        service = CIService(
            scripts[mode],
            testset,
            baseline,
            repository=ModelRepository(nonce=f"bench-{tenant_id}"),
        )
        service.install_testset_pool(TestsetPool(pool))
        for index, model in enumerate(models):
            service.repository.commit(model, message=f"c{index}")
        identical = identical and fingerprint(service) == fleet_prints[tenant_id]
    isolated_seconds = time.perf_counter() - start
    assert identical, "fleet diverged from isolated per-tenant services"

    return {
        "tenants": tenants,
        "modes": len(ADAPTIVITY_MODES),
        "commits_per_tenant": commits,
        "max_resident": max_resident,
        "hydrations": hydrations,
        "evictions": evictions,
        "fleet_seconds": fleet_seconds,
        "isolated_seconds": isolated_seconds,
        "results_identical": identical,
    }


def bench_overload(quick: bool) -> dict:
    burst = 24 if quick else 96
    script = make_script("full")
    testset, pool, baseline, models = make_world(script, 2, seed=7)

    clear_all_caches()
    with tempfile.TemporaryDirectory() as tmp:
        fleet = CIFleet(
            Path(tmp) / "fleet",
            sync=False,
            admission=AdmissionPolicy(
                max_pending_per_tenant=8, max_pending_total=16
            ),
        )
        fleet.register(
            "hot",
            script,
            testset,
            baseline,
            repository=ModelRepository(nonce="bench-hot"),
            pool=TestsetPool(pool),
        )
        accepted = rejected = 0
        start = time.perf_counter()
        for index in range(burst):
            try:
                fleet.enqueue("hot", models[index % 2], message=f"b{index}")
                accepted += 1
            except AdmissionError:
                rejected += 1
        burst_seconds = time.perf_counter() - start
        processed = len(fleet.drain("hot").builds["hot"])

    none_dropped = accepted + rejected == burst and processed == accepted
    assert rejected > 0, "the burst never exceeded the admission bounds"
    assert none_dropped, "a submission was silently dropped"

    return {
        "attempted": burst,
        "accepted": accepted,
        "rejected": rejected,
        "processed": processed,
        "burst_seconds": burst_seconds,
        "none_dropped": none_dropped,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="smoke mode: smaller fleet"
    )
    args = parser.parse_args()

    payload = {
        "quick": args.quick,
        "parity": bench_parity(args.quick),
        "overload": bench_overload(args.quick),
    }
    artifact = REPO_ROOT / "BENCH_fleet.json"
    artifact.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    parity = payload["parity"]
    overload = payload["overload"]
    print(
        f"parity: {parity['tenants']} tenants x {parity['commits_per_tenant']} "
        f"commits across {parity['modes']} modes, LRU cap {parity['max_resident']} "
        f"({parity['hydrations']} hydration(s), {parity['evictions']} eviction(s)): "
        f"fleet {parity['fleet_seconds']:.3f}s vs isolated "
        f"{parity['isolated_seconds']:.3f}s, identical={parity['results_identical']}"
    )
    print(
        f"overload: {overload['attempted']} attempted -> {overload['accepted']} "
        f"accepted, {overload['rejected']} rejected, {overload['processed']} "
        f"processed in {overload['burst_seconds']:.3f}s, "
        f"none_dropped={overload['none_dropped']}"
    )
    print(f"wrote {artifact.name}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
