"""E3 — Figure 4: predicted tolerance vs. empirical error, 98% model.

Shape assertions (the paper's message):

* both estimators *dominate* the empirical error everywhere (validity);
* the Bennett tolerance is far closer to the empirical error than
  Hoeffding's (tightness) — Hoeffding wastes a factor of ~3 at p=0.05;
* tightness improves as the assumed variance bound approaches the true
  Bernoulli variance (0.0196 at 98% accuracy).
"""

from conftest import emit

from repro.experiments.figure4 import run_figure4
from repro.utils.formatting import Table


def test_figure4_bounds_dominate_empirical(benchmark):
    points = benchmark.pedantic(run_figure4, rounds=1, iterations=1)

    table = Table(
        ["p", "n", "hoeffding eps", "bennett eps", "empirical error"],
        align=[">"] * 5,
        title="Figure 4: estimated vs empirical error (true accuracy 0.98)",
    )
    for pt in points:
        table.add_row(
            [
                pt.variance_bound,
                f"{pt.n_samples:,}",
                f"{pt.hoeffding_epsilon:.4f}",
                f"{pt.bennett_epsilon:.4f}",
                f"{pt.empirical_error:.4f}",
            ]
        )
    emit(table.render())

    for pt in points:
        # Validity: both bounds dominate the empirical 1-delta error.
        assert pt.hoeffding_valid, f"Hoeffding under-covered at n={pt.n_samples}"
        assert pt.bennett_valid, f"Bennett under-covered at n={pt.n_samples}"
        # The optimized bound is strictly tighter than the baseline.
        assert pt.bennett_epsilon < pt.hoeffding_epsilon

    # Tightness: at p=0.05, Bennett is within ~2.5x of the empirical error
    # while Hoeffding is ~3x looser than Bennett at practical n.
    big = [pt for pt in points if pt.n_samples >= 5000]
    for pt in big:
        if pt.variance_bound == 0.05:
            assert pt.hoeffding_epsilon / pt.bennett_epsilon > 2.0
            assert pt.bennett_epsilon / pt.empirical_error < 3.0
