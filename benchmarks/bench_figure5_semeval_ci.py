"""E4 — Figure 5: the three SemEval CI configurations, replayed.

Assertions: the planned sample sizes equal the paper's (4,713 / 4,713 /
5,204, all within the 5,509 labels available, vs. 44,268 for Hoeffding);
all three traces leave iteration 7 active; fn-free passes a superset of
fp-free's commits.
"""

from conftest import emit

from repro.core.estimators.api import SampleSizeEstimator
from repro.experiments.figure5 import run_figure5
from repro.ml.datasets.emotion import make_semeval_history
from repro.utils.formatting import Table


def test_figure5_semeval_traces(benchmark):
    history = make_semeval_history()
    traces = benchmark.pedantic(
        run_figure5, args=(history,), rounds=1, iterations=1
    )

    table = Table(
        ["iteration", *(t.config.name for t in traces)],
        align=[">"] + ["^"] * len(traces),
        title="Figure 5: continuous integration steps",
    )
    for i in range(len(traces[0].signals)):
        table.add_row([i + 2, *("PASS" if t.signals[i] else "fail" for t in traces)])
    emit(table.render())
    for trace in traces:
        emit(
            f"{trace.config.name}: N={trace.planned_samples:,} "
            f"(paper {trace.config.paper_samples:,}), active iteration "
            f"{trace.active_iteration}"
        )

    for trace in traces:
        assert trace.planned_samples == trace.config.paper_samples
        assert trace.planned_samples <= history.testset_size
        assert trace.active_iteration == 7  # the second-to-last model

    fp_free, fn_free, adaptive = traces
    # fn-free accepts everything fp-free accepts (Unknown -> True).
    assert all(
        not fp or fn for fp, fn in zip(fp_free.signals, fn_free.signals)
    )
    # The adaptive query releases signals to the developer; I/II do not.
    assert adaptive.developer_saw_signals
    assert not fp_free.developer_saw_signals

    # The Hoeffding baseline cannot be served by the 5,509 labels.
    # (The paper states the bound as "n > 44,268", i.e. the floor of the
    # real-valued requirement; our integer requirement is its ceiling.)
    baseline = SampleSizeEstimator(optimizations="none").plan(
        "n - o > 0.02 +/- 0.02", delta=0.002, adaptivity="none", steps=7
    )
    assert int(baseline.samples_real) == 44_268
    assert baseline.samples > history.testset_size
