"""E1 — Figure 2: the baseline sample-size table, regenerated exactly.

Every one of the 64 cells must equal the paper's printed value (this is
an analytic computation; no tolerance is needed).
"""

from conftest import emit

from repro.experiments.figure2 import PAPER_FIGURE2, run_figure2
from repro.utils.formatting import Table, format_count


def test_figure2_table(benchmark):
    rows = benchmark(run_figure2)

    table = Table(
        ["1-delta", "eps", "F1/F4 none", "F1/F4 full", "F2/F3 none", "F2/F3 full"],
        align=[">"] * 6,
        title="Figure 2: samples required, H = 32 steps ('*' = impractical)",
    )
    for row in rows:
        flags = row.impractical()
        table.add_row(
            [
                row.reliability,
                row.tolerance,
                format_count(row.f1_none) + ("*" if flags["f1_none"] else ""),
                format_count(row.f1_full) + ("*" if flags["f1_full"] else ""),
                format_count(row.f2_none) + ("*" if flags["f2_none"] else ""),
                format_count(row.f2_full) + ("*" if flags["f2_full"] else ""),
            ]
        )
    emit(table.render())

    for row in rows:
        expected = PAPER_FIGURE2[(row.reliability, row.tolerance)]
        assert (row.f1_none, row.f1_full, row.f2_none, row.f2_full) == expected, (
            f"cell ({row.reliability}, {row.tolerance}) diverges from the paper"
        )
