"""E2 — Figure 3: impact of epsilon, delta and p on label complexity.

Shape assertions: at (p=0.1, eps=0.01) the Bennett optimization saves
roughly an order of magnitude over the Hoeffding baseline, and active
labeling amortizes another order of magnitude per commit; the advantage
shrinks as p grows and collapses by p=0.5.
"""

from conftest import emit

from repro.experiments.figure3 import sweep_delta, sweep_epsilon, sweep_variance_bound
from repro.utils.formatting import Table


def _render(points, varying: str) -> str:
    table = Table(
        [varying, "baseline", "pattern-1", "improvement", "active/commit"],
        align=[">"] * 5,
        title=f"Figure 3 sweep over {varying}",
    )
    for p in points:
        x = getattr(
            p,
            {"eps": "epsilon", "p": "variance_bound", "delta": "delta"}[varying],
        )
        table.add_row(
            [
                f"{x:g}",
                f"{p.baseline_labels:,}",
                f"{p.optimized_labels:,}",
                f"{p.improvement:.1f}x",
                f"{p.active_labels_per_commit:,}",
            ]
        )
    return table.render()


def test_figure3_epsilon_sweep(benchmark):
    points = benchmark(sweep_epsilon)
    emit(_render(points, "eps"))
    by_eps = {p.epsilon: p for p in points}
    headline = by_eps[0.01]
    assert headline.optimized_labels == 29_048  # the paper's "29K"
    assert 8.0 <= headline.improvement <= 12.0  # "~10x fewer"
    # Active labeling is another ~10x per commit.
    assert headline.optimized_labels / headline.active_labels_per_commit >= 8.0
    # The baseline collapses quadratically; the optimized curve is milder.
    assert by_eps[0.01].baseline_labels > 90 * by_eps[0.1].baseline_labels


def test_figure3_variance_bound_sweep(benchmark):
    points = benchmark(sweep_variance_bound)
    emit(_render(points, "p"))
    improvements = [p.improvement for p in points]
    # Improvement decays monotonically as the variance bound loosens...
    assert all(a >= b for a, b in zip(improvements, improvements[1:]))
    # ...from >15x at p=0.05 to low single digits at p=0.5.
    assert improvements[0] > 15.0
    assert improvements[-1] < 4.0


def test_figure3_delta_sweep(benchmark):
    points = benchmark(sweep_delta)
    emit(_render(points, "delta"))
    # Reliability is cheap: 1000x stricter delta costs < 2x the labels.
    assert points[-1].optimized_labels < 2 * points[0].optimized_labels
    for p in points:
        assert p.improvement > 8.0
