"""Fault-recovery benchmark: what surviving a failure actually costs.

Two recovery paths, each timed against its undisturbed twin and gated on
the recovery invariant (results element-wise identical — fault tolerance
may cost time, never correctness):

1. **Snapshot-fallback restore**: a persisted commit run whose newest
   snapshot is corrupted on disk.  A resume must quarantine the damage,
   fall back to the previous snapshot generation and replay the longer
   journal tail — producing exactly the builds of a clean resume.  The
   artifact records both restore times and both replay depths (measured
   read-only with ``fsck_state_dir`` before restoring).

2. **Worker-kill retry**: a sharded epsilon sweep whose first worker
   task is killed (`os._exit`) exactly once, schedule shared across
   processes through a counter directory.  The supervisor respawns the
   pool and re-dispatches; the sweep must come back bit-identical to the
   serial scan, and the artifact records the supervision overhead.

Run directly or via ``make bench-smoke`` (``--quick``):

    PYTHONPATH=src python benchmarks/bench_fault_recovery.py --quick

The correctness gates (parity, quarantine, respawn accounting) are
asserted in both modes; ``--quick`` only shrinks the workload — there
are no timing ratios to gate, recovery cost is recorded for the
trajectory, not thresholded.
"""

from __future__ import annotations

import argparse
import json
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.ci.repository import ModelRepository
from repro.ci.service import CIService
from repro.core.estimators.api import SampleSizeEstimator
from repro.core.script.config import CIScript
from repro.core.testset import Testset, TestsetPool
from repro.ml.models.base import FixedPredictionModel
from repro.ml.models.simulated import (
    ModelPairSpec,
    evolve_predictions,
    simulate_model_pair,
)
from repro.reliability.events import clear_events, reliability_events
from repro.reliability.faults import FaultRule, injected_faults
from repro.reliability.fsck import fsck_state_dir
from repro.stats.cache import clear_all_caches
from repro.stats.parallel import PlanningExecutor
from repro.stats.tight_bounds import tight_epsilon_many

REPO_ROOT = Path(__file__).resolve().parent.parent

CONDITION = "d < 0.25 +/- 0.1 /\\ n - o > 0.05 +/- 0.1"


def make_script(steps=4):
    return CIScript.from_dict(
        {
            "script": "./test_model.py",
            "condition": CONDITION,
            "reliability": 0.999,
            "mode": "fp-free",
            "adaptivity": "full",
            "steps": steps,
        }
    )


def make_world(script, commits, generations=3, seed=0):
    plan = SampleSizeEstimator().plan(
        script.condition,
        delta=script.delta,
        adaptivity=script.adaptivity,
        steps=script.steps,
    )
    pair = simulate_model_pair(
        ModelPairSpec(old_accuracy=0.80, new_accuracy=0.80, difference=0.0),
        n_examples=plan.pool_size,
        seed=seed,
    )
    labels = pair.labels
    models, current = [], pair.old_model.predictions
    for index in range(commits):
        target = 0.88 if index % 4 == 2 else 0.81
        predictions = evolve_predictions(
            current, labels, target_accuracy=target, difference=0.12, seed=100 + index
        )
        models.append(FixedPredictionModel(predictions, name=f"m{index}"))
        if index % 4 == 2:
            current = predictions
    rng = np.random.default_rng(seed + 1)
    testsets = [Testset(labels=labels, name="gen-0")]
    for generation in range(1, generations):
        testsets.append(
            Testset(
                labels=rng.integers(0, 2, size=plan.pool_size),
                name=f"gen-{generation}",
            )
        )
    return testsets, pair.old_model, models


def make_service(script, testsets, baseline):
    service = CIService(
        script,
        testsets[0],
        baseline,
        repository=ModelRepository(nonce="bench-nonce"),
    )
    service.install_testset_pool(TestsetPool(testsets[1:]))
    return service


def build_fingerprint(service):
    return [
        (
            build.build_number,
            build.commit.commit_id,
            build.commit.status.value,
            build.generation,
            build.result.promoted if build.result else None,
            build.result.testset_uses if build.result else None,
        )
        for build in service.builds
    ]


def timed_resume(state_dir):
    clear_all_caches()
    start = time.perf_counter()
    service = CIService.resume(state_dir)
    return service, time.perf_counter() - start


def bench_snapshot_fallback(quick: bool) -> dict:
    commits = 8 if quick else 16
    script = make_script()
    testsets, baseline, models = make_world(script, commits)

    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        service = make_service(script, testsets, baseline)
        service.persist_to(tmp / "state", snapshot_every=3)
        for model in models:
            service.repository.commit(model, message=model.name)
        reference = build_fingerprint(service)

        clean_dir = tmp / "clean"
        damaged_dir = tmp / "damaged"
        shutil.copytree(tmp / "state", clean_dir)
        shutil.copytree(tmp / "state", damaged_dir)
        snapshots = sorted((damaged_dir / "snapshots").glob("*.pkl"))
        assert len(snapshots) > 1, "cadence produced no fallback generation"
        snapshots[-1].write_bytes(snapshots[-1].read_bytes()[:80])

        depth_clean = fsck_state_dir(clean_dir)
        depth_damaged = fsck_state_dir(damaged_dir)
        assert depth_damaged.replay_commits > depth_clean.replay_commits

        clear_events()
        restored_clean, clean_seconds = timed_resume(clean_dir)
        restored_damaged, damaged_seconds = timed_resume(damaged_dir)

        identical = (
            build_fingerprint(restored_clean) == reference
            and build_fingerprint(restored_damaged) == reference
        )
        assert identical, "fallback restore diverged from the clean run"
        quarantined = restored_damaged._store.quarantined()
        assert len(quarantined) == 1
        assert reliability_events("snapshot-fallback")

    return {
        "commits": commits,
        "clean_restore_seconds": clean_seconds,
        "fallback_restore_seconds": damaged_seconds,
        "replay_commits_clean": depth_clean.replay_commits,
        "replay_commits_fallback": depth_damaged.replay_commits,
        "quarantined_files": len(quarantined),
        "results_identical": identical,
    }


def bench_worker_kill(quick: bool) -> dict:
    sizes = np.unique(np.linspace(300, 2400, 12 if quick else 24).astype(int))
    delta, tol = 1e-2, 1e-5

    clear_all_caches()
    start = time.perf_counter()
    expected = tight_epsilon_many(sizes, delta, tol=tol)
    serial_seconds = time.perf_counter() - start

    clear_all_caches()
    with tempfile.TemporaryDirectory() as counters:
        rules = [FaultRule(site="executor.task", action="kill", at=1, times=1)]
        with injected_faults(rules, counter_dir=counters):
            with PlanningExecutor(
                workers=2, max_retries=2, backoff=0.0, sleep=lambda _: None
            ) as executor:
                start = time.perf_counter()
                got = executor.tight_epsilon_many(sizes, delta, tol=tol)
                supervised_seconds = time.perf_counter() - start
                respawns, degraded = executor.respawns, executor.degraded

    identical = bool(np.array_equal(np.asarray(got), np.asarray(expected)))
    assert identical, "supervised sweep diverged from the serial scan"
    assert respawns >= 1, "the kill never reached a worker"
    assert not degraded, "a single shared kill must not spend the retry budget"

    return {
        "shards": int(len(sizes)),
        "serial_seconds": serial_seconds,
        "supervised_kill_seconds": supervised_seconds,
        "respawns": respawns,
        "degraded": degraded,
        "results_identical": identical,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="smoke mode: smaller workloads"
    )
    args = parser.parse_args()

    payload = {
        "quick": args.quick,
        "snapshot_fallback": bench_snapshot_fallback(args.quick),
        "worker_kill": bench_worker_kill(args.quick),
    }
    artifact = REPO_ROOT / "BENCH_fault_recovery.json"
    artifact.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    fallback = payload["snapshot_fallback"]
    kill = payload["worker_kill"]
    print(
        f"snapshot fallback: clean restore {fallback['clean_restore_seconds']:.3f}s "
        f"({fallback['replay_commits_clean']} commits replayed) vs "
        f"fallback {fallback['fallback_restore_seconds']:.3f}s "
        f"({fallback['replay_commits_fallback']} commits, "
        f"{fallback['quarantined_files']} quarantined)"
    )
    print(
        f"worker kill: serial sweep {kill['serial_seconds']:.3f}s vs supervised "
        f"{kill['supervised_kill_seconds']:.3f}s "
        f"({kill['respawns']} respawn(s), degraded={kill['degraded']})"
    )
    print(f"wrote {artifact.name}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
