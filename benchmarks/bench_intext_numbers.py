"""E6 — every in-text sample-size claim, recomputed and compared."""

from conftest import emit

from repro.experiments.intext import run_intext
from repro.utils.formatting import Table


def test_intext_claims(benchmark):
    claims = benchmark(run_intext)

    table = Table(
        ["source", "claim", "paper", "computed", "match"],
        align=["<", "<", ">", ">", "^"],
        title="in-text sample-size claims",
    )
    for claim in claims:
        table.add_row(
            [
                claim.source,
                claim.description,
                f"{claim.paper_value:,.0f}",
                f"{claim.computed_value:,.1f}",
                "yes" if claim.matches else "NO",
            ]
        )
    emit(table.render())

    for claim in claims:
        assert claim.matches, (
            f"{claim.source} claim {claim.paper_value} vs computed "
            f"{claim.computed_value}"
        )
    assert len(claims) >= 13
