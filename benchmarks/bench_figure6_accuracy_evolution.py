"""E5 — Figure 6: development vs. test accuracy over the iterations.

Assertions: dev accuracy is monotone increasing; test accuracy peaks at
iteration 7 (the model Figure 5's queries leave active) and dips at the
final submission.
"""

from conftest import emit

from repro.experiments.figure6 import run_figure6
from repro.utils.formatting import Table


def test_figure6_accuracy_evolution(benchmark):
    evolution = benchmark(run_figure6)

    table = Table(
        ["iteration", "dev accuracy", "test accuracy"],
        align=[">"] * 3,
        title="Figure 6: evolution of development and test accuracy",
    )
    for it, dev, test in zip(
        evolution.iterations, evolution.dev_accuracy, evolution.test_accuracy
    ):
        table.add_row([it, f"{dev:.3f}", f"{test:.3f}"])
    emit(table.render())

    assert evolution.dev_monotone
    assert evolution.best_test_iteration == 7
    # The last commit regresses on test while improving on dev — the
    # overfitting story the CI system protects against.
    assert evolution.test_accuracy[-1] < evolution.test_accuracy[-2]
    assert evolution.dev_accuracy[-1] > evolution.dev_accuracy[-2]
