"""E7 — §2.3 practicality window and §4.1.2 active-labeling effort.

Assertions: 2–4 engineers at 2 s/label produce 28.8K–57.6K labels/day
(the paper rounds to "30,000 to 60,000"); the cheap mode reaches ~10x
within two tolerance points; 2,188 labels at 5 s/label is ~3 hours.
"""

from conftest import emit

from repro.experiments.practicality import (
    run_active_labeling_effort,
    run_budget_analysis,
    run_cheap_mode,
)
from repro.utils.formatting import Table


def test_practicality_budget(benchmark):
    budgets = benchmark(run_budget_analysis)
    table = Table(
        ["team size", "sec/label", "labels/day"],
        align=[">"] * 3,
        title="§2.3: daily labeling capacity",
    )
    for b in budgets:
        table.add_row([b.team_size, b.seconds_per_label, f"{b.labels_per_day:,}"])
    emit(table.render())
    by_team = {b.team_size: b.labels_per_day for b in budgets}
    assert by_team[2] == 28_800  # "30,000" side of the window
    assert by_team[4] == 57_600  # "60,000" side of the window


def test_cheap_mode(benchmark):
    rows = benchmark(run_cheap_mode)
    table = Table(
        ["tolerance", "labels", "reduction"],
        align=[">"] * 3,
        title="§2.3 cheap mode: labels vs tolerance (F2, H=32, 0.9999)",
    )
    for r in rows:
        table.add_row([r.tolerance, f"{r.labels:,}", f"{r.reduction_vs_strict:.1f}x"])
    emit(table.render())
    # "easily reduced by a factor 10x ... by increasing the error
    # tolerance by a single or two percentage points"
    assert rows[-1].tolerance <= 0.03
    assert rows[-1].reduction_vs_strict >= 8.0


def test_active_labeling_effort(benchmark):
    effort = benchmark(run_active_labeling_effort)
    emit(
        f"§4.1.2: {effort.labels_per_commit:,} labels/commit at "
        f"{effort.seconds_per_label:g} s/label = {effort.hours_per_day:.2f} h/day"
    )
    # "the labeling team only needs to commit 3 hours a day"
    assert 2.5 <= effort.hours_per_day <= 3.5
