"""Perf benchmark: batched commit evaluation and epsilon-side planning.

Times the hot paths the batched-evaluation and testset-pool PRs optimize —

1. **Commit throughput**: a 64-commit queue drained through
   ``CIEngine.submit_many`` (one prediction per model, one vectorized
   ``evaluate_batch`` per comparison baseline, lazy result
   materialization) versus the sequential ``submit`` loop.  The batched
   results must be element-wise identical to the sequential engine —
   signals, promotions, alarms, budget — and the speedup must be >= 10x.
1b. **Sustained multi-generation throughput**: a 128-commit queue with a
   per-generation budget of 32, so draining it crosses >= 3 testset
   rotations.  The pool-aware ``submit_many`` (rotate on
   exhaustion, re-batch the remainder on the fresh generation) is timed
   against the caller-side idiom it replaces — a sequential ``submit``
   loop that catches ``TestsetExhaustedError`` and hand-rolls
   ``install_testset``.  Results must stay element-wise identical and the
   batched path must hold >= 8x across the rotations (each rotation
   forces a re-prediction + re-batch of the in-flight remainder, so some
   of the single-generation win is genuinely spent).
2. **Epsilon planning**: ``tight_epsilon_many`` over 32 testset sizes
   versus per-call ``tight_epsilon`` with cold caches per call (the
   fully-independent-workers convention of ``bench_perf_kernels``).  Each
   returned epsilon must satisfy the scalar bisection's bracket contract
   under full-fidelity trajectory probes: not exceeding at ``eps``,
   exceeding at ``eps - tol``.

A note on the epsilon speedup target: the original plan for this PR
assumed that dispatching all bisection midpoints of an ``n``-grid in one
kernel call would amortize per-call overhead into a >= 5x win.  The
kernels turned out to be memory-bandwidth-bound (per-probe cost is flat
from 257-point to 8k-point dispatches), so plain lockstep batching yields
only ~1.3x.  The shipped implementation instead replaces ~20 full
worst-case scans per size with advisory cutoff-tracking witnesses plus ~2
certified trajectory probes, which is worth ~4x end to end; the gate
below enforces >= 3x so the benchmark stays robust to machine noise, and
the measured ratio is recorded in the JSON for the trajectory.

Run via ``make bench-throughput`` or directly:

    PYTHONPATH=src python benchmarks/bench_commit_throughput.py

``--quick`` (what ``make ci`` runs) is the smoke mode: smaller queues and
sweeps, fewer timing repeats, the correctness assertions kept
(element-wise identity, >= 3 rotations, bracket certificates) and the
speedup gates skipped — hosted CI runners are too noisy to enforce
throughput ratios, but the JSON artifact must still be produced and
schema-valid (``benchmarks/check_bench_schema.py``).
"""

from __future__ import annotations

import argparse
import json
import statistics
import time
from pathlib import Path

import numpy as np

from repro.core.engine import CIEngine
from repro.core.estimators.api import SampleSizeEstimator
from repro.core.script.config import CIScript
from repro.core.testset import Testset, TestsetPool
from repro.exceptions import TestsetExhaustedError
from repro.ml.models.base import FixedPredictionModel
from repro.ml.models.simulated import (
    ModelPairSpec,
    evolve_predictions,
    simulate_model_pair,
)
from repro.stats.cache import clear_all_caches
from repro.stats.parallel import PlanningExecutor, resolve_workers
from repro.stats.tight_bounds import (
    exceeds_delta_many,
    tight_epsilon,
    tight_epsilon_many,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_commit_throughput.json"

BATCH = 64
# A production-style guardrail stack: absolute quality floors for both
# models, churn limits, and bounded gain from several angles.  Every
# clause adds scalar clause-walk work to the sequential path; the batched
# evaluator widens each one with a handful of vector operations.
CONDITION = (
    "n > 0.5 +/- 0.2 /\\ n > 0.45 +/- 0.22 /\\ o > 0.5 +/- 0.2 /\\ "
    "o > 0.45 +/- 0.22 /\\ d < 0.4 +/- 0.2 /\\ d < 0.45 +/- 0.22 /\\ "
    "n - o > 0.02 +/- 0.2 /\\ n - o < 0.4 +/- 0.22"
)
SCRIPT_FIELDS = {
    "script": "./test_model.py",
    "condition": CONDITION,
    "reliability": 0.999,
    "mode": "fp-free",
    "adaptivity": "none -> integration-team@example.com",
    "steps": BATCH,
}

MULTI_BATCH = 128  # sustained scenario: a longer queue spanning the pool
GENERATION_STEPS = 32  # per-generation budget: 128 commits -> 3 rotations
GENERATIONS = MULTI_BATCH // GENERATION_STEPS

EPSILON_SIZES = np.unique(np.linspace(1000, 10000, 32).astype(int))
EPSILON_DELTA = 1e-3
EPSILON_TOL = 1e-6


class _CachedPredictionModel:
    """A committed model whose testset predictions are precomputed.

    High-throughput CI deployments score a commit once and evaluate the
    stored prediction vector; this wrapper models that serving setup (the
    same arrangement ``figure5`` uses to share predictions across its
    three queries), so the benchmark isolates the evaluation pipeline
    that this PR optimizes rather than model-inference cost, which is
    workload-specific and identical on both paths.
    """

    def __init__(self, predictions, name):
        self._predictions = predictions
        self.name = name

    def predict(self, features):
        return self._predictions


def build_world(batch=BATCH, steps=None):
    """A `batch`-commit queue with a genuine improvement inside."""
    script = CIScript.from_dict({**SCRIPT_FIELDS, "steps": steps or batch})
    plan = SampleSizeEstimator().plan(
        script.condition,
        delta=script.delta,
        adaptivity=script.adaptivity,
        steps=script.steps,
        known_variance_bound=script.variance_bound,
    )
    pair = simulate_model_pair(
        ModelPairSpec(old_accuracy=0.80, new_accuracy=0.80, difference=0.0),
        n_examples=plan.pool_size,
        seed=7,
    )
    labels = pair.labels
    models, current = [], pair.old_model.predictions
    for i in range(batch):
        target = 0.90 if i == 30 else 0.82
        predictions = evolve_predictions(
            current, labels, target_accuracy=target, difference=0.12, seed=100 + i
        )
        models.append(_CachedPredictionModel(predictions, name=f"commit-{i}"))
        if i == 30:
            current = predictions
    baseline = _CachedPredictionModel(pair.old_model.predictions, name="baseline")
    return script, labels, baseline, models


def fresh_engine(script, labels, baseline):
    return CIEngine(script, Testset(labels=labels), baseline)


def bench_commit_throughput(quick: bool = False) -> dict:
    batch = 16 if quick else BATCH
    seq_runs, batch_runs = (2, 3) if quick else (9, 15)
    script, labels, baseline, models = build_world(batch=batch)

    def run_sequential():
        engine = fresh_engine(script, labels, baseline)
        return engine, [engine.submit(model) for model in models]

    def run_batched():
        engine = fresh_engine(script, labels, baseline)
        return engine, engine.submit_many(models)

    # Warm both paths (plan cache, numpy, allocator), then time each in
    # its own block — interleaving the two would let the sequential
    # path's working set evict the batch path's between measurements.
    run_sequential()
    run_batched()
    sequential_times, batched_times = [], []
    for _ in range(seq_runs):
        t0 = time.perf_counter()
        _, sequential_results = run_sequential()
        sequential_times.append(time.perf_counter() - t0)
    for _ in range(batch_runs):
        t0 = time.perf_counter()
        _, batched_results = run_batched()
        batched_times.append(time.perf_counter() - t0)
    t_seq = statistics.median(sequential_times)
    t_batch = statistics.median(batched_times)

    identical = len(sequential_results) == len(batched_results) and all(
        a == b for a, b in zip(sequential_results, batched_results)
    )
    return {
        "condition": CONDITION,
        "batch_size": batch,
        "pool_size": int(len(labels)),
        "promotions": sum(r.promoted for r in batched_results),
        "sequential_seconds": t_seq,
        "batched_seconds": t_batch,
        "sequential_commits_per_sec": batch / t_seq,
        "batched_commits_per_sec": batch / t_batch,
        "speedup": t_seq / t_batch,
        "results_identical": identical,
    }


def build_generations(labels, count, seed=23):
    """`count` equally-sized testset generations; gen-0 is the real world."""
    rng = np.random.default_rng(seed)
    testsets = [Testset(labels=labels, name="gen-0")]
    for g in range(1, count):
        testsets.append(
            Testset(labels=rng.integers(0, 2, size=len(labels)), name=f"gen-{g}")
        )
    return testsets


def bench_multi_generation_throughput(quick: bool = False) -> dict:
    multi_batch = 32 if quick else MULTI_BATCH
    generation_steps = 8 if quick else GENERATION_STEPS
    seq_runs, batch_runs = (2, 3) if quick else (9, 15)
    script, labels, baseline, models = build_world(
        batch=multi_batch, steps=generation_steps
    )
    testsets = build_generations(labels, multi_batch // generation_steps)

    def run_sequential():
        """The caller-side idiom the pool replaces: catch, install, retry."""
        engine = CIEngine(script, testsets[0], baseline)
        results, next_generation = [], 1
        for model in models:
            while True:
                try:
                    results.append(engine.submit(model))
                    break
                except TestsetExhaustedError:
                    engine.install_testset(testsets[next_generation])
                    next_generation += 1
        return engine, results

    def run_batched():
        engine = CIEngine(
            script, testsets[0], baseline, testset_pool=TestsetPool(testsets[1:])
        )
        return engine, engine.submit_many(models)

    run_sequential()
    run_batched()
    sequential_times, batched_times = [], []
    for _ in range(seq_runs):
        t0 = time.perf_counter()
        _, sequential_results = run_sequential()
        sequential_times.append(time.perf_counter() - t0)
    for _ in range(batch_runs):
        t0 = time.perf_counter()
        engine, batched_results = run_batched()
        batched_times.append(time.perf_counter() - t0)
    t_seq = statistics.median(sequential_times)
    t_batch = statistics.median(batched_times)

    identical = len(sequential_results) == len(batched_results) and all(
        a == b for a, b in zip(sequential_results, batched_results)
    )
    return {
        "condition": CONDITION,
        "batch_size": multi_batch,
        "generation_budget": generation_steps,
        "generations_served": int(engine.manager.generation),
        "rotations": len(engine.rotations),
        "pool_size": int(len(labels)),
        "sequential_seconds": t_seq,
        "batched_seconds": t_batch,
        "sequential_commits_per_sec": multi_batch / t_seq,
        "batched_commits_per_sec": multi_batch / t_batch,
        "speedup": t_seq / t_batch,
        "results_identical": identical,
    }


def bench_tight_epsilon_many(quick: bool = False) -> dict:
    sizes = (
        np.unique(np.linspace(1000, 2500, 4).astype(int)) if quick else EPSILON_SIZES
    )
    rounds = 1 if quick else 3
    clear_all_caches()
    many_times = []
    for _ in range(rounds):
        clear_all_caches()
        t0 = time.perf_counter()
        many = tight_epsilon_many(sizes, EPSILON_DELTA, tol=EPSILON_TOL)
        many_times.append(time.perf_counter() - t0)
    t_many = statistics.median(many_times)

    per_call_times = []
    per_call = []
    for n in sizes:
        clear_all_caches()
        t0 = time.perf_counter()
        per_call.append(tight_epsilon(int(n), EPSILON_DELTA, tol=EPSILON_TOL))
        per_call_times.append(time.perf_counter() - t0)
    t_per_call = sum(per_call_times)

    # Warm-start satellite: the same loop with the anchor registry left
    # warm between calls (nearest-neighbor bracket reuse).
    clear_all_caches()
    t0 = time.perf_counter()
    for n in sizes:
        tight_epsilon(int(n), EPSILON_DELTA, tol=EPSILON_TOL)
    t_warm_loop = time.perf_counter() - t0

    # Sharded satellite: the same cold sweep through the parallel
    # planning executor at workers="auto" (pool spawn off-clock; the
    # speedup gate for sharding lives in bench_perf_kernels, this row
    # records the trajectory and re-asserts identity).
    sharded_workers = resolve_workers("auto")
    clear_all_caches()
    with PlanningExecutor(sharded_workers).start() as executor:
        t0 = time.perf_counter()
        sharded = executor.tight_epsilon_many(sizes, EPSILON_DELTA, tol=EPSILON_TOL)
        t_sharded = time.perf_counter() - t0

    # The scalar bisection's bracket contract, checked with full-fidelity
    # trajectory probes: every epsilon is certified not-exceeding, and
    # tol below it certified exceeding.
    clear_all_caches()
    upper_ok = ~exceeds_delta_many(sizes, many, EPSILON_DELTA)
    lower_ok = exceeds_delta_many(sizes, many - EPSILON_TOL, EPSILON_DELTA)
    per_call_arr = np.asarray(per_call)
    return {
        "testset_sizes": sizes.tolist(),
        "delta": EPSILON_DELTA,
        "tol": EPSILON_TOL,
        "per_call_cold_seconds": t_per_call,
        "per_call_warm_anchor_loop_seconds": t_warm_loop,
        "many_seconds": t_many,
        "speedup_vs_cold_per_call": t_per_call / t_many,
        "sharded_workers": sharded_workers,
        "sharded_seconds": t_sharded,
        "sharded_identical": bool(np.array_equal(sharded, many)),
        "bracket_contract_upper_ok": bool(upper_ok.all()),
        "bracket_contract_lower_ok": bool(lower_ok.all()),
        "max_abs_diff_vs_per_call": float(np.max(np.abs(per_call_arr - many))),
        "max_rel_diff_vs_per_call": float(
            np.max(np.abs(per_call_arr - many) / per_call_arr)
        ),
    }


def main(quick: bool = False) -> dict:
    throughput = bench_commit_throughput(quick)
    multi_generation = bench_multi_generation_throughput(quick)
    epsilon = bench_tight_epsilon_many(quick)
    results = {
        "quick": quick,
        "commit_throughput": throughput,
        "multi_generation_throughput": multi_generation,
        "tight_epsilon_many": epsilon,
    }

    # Correctness gates hold in every mode; the speedup gates only on the
    # full run (quick mode is a CI smoke on a shared, noisy runner).
    assert throughput["results_identical"], (
        "submit_many diverged from the sequential engine"
    )
    assert multi_generation["results_identical"], (
        "pool-aware submit_many diverged from the manual rotate-and-resubmit loop"
    )
    assert multi_generation["rotations"] >= 3, (
        f"sustained scenario only crossed {multi_generation['rotations']} "
        "rotations; the benchmark requires >= 3"
    )
    assert epsilon["bracket_contract_upper_ok"] and epsilon["bracket_contract_lower_ok"], (
        "tight_epsilon_many broke the scalar bisection's bracket contract"
    )
    assert epsilon["sharded_identical"], (
        "workers='auto' tight_epsilon_many diverged from the serial sweep"
    )
    if not quick:
        assert throughput["speedup"] >= 10.0, (
            f"batched commit throughput {throughput['speedup']:.1f}x is below "
            "the required 10x"
        )
        assert multi_generation["speedup"] >= 8.0, (
            f"multi-generation batched throughput {multi_generation['speedup']:.1f}x "
            "is below the required 8x"
        )
        assert epsilon["speedup_vs_cold_per_call"] >= 3.0, (
            f"tight_epsilon_many speedup {epsilon['speedup_vs_cold_per_call']:.1f}x "
            "is below the 3x floor (see module docstring for the 5x -> ~4x "
            "target revision)"
        )

    OUTPUT.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {OUTPUT}")
    print(
        f"commits/sec: sequential {throughput['sequential_commits_per_sec']:,.0f}, "
        f"batched {throughput['batched_commits_per_sec']:,.0f} "
        f"({throughput['speedup']:.1f}x)"
    )
    print(
        f"sustained across {multi_generation['rotations']} rotations: "
        f"sequential {multi_generation['sequential_commits_per_sec']:,.0f}, "
        f"pooled batched {multi_generation['batched_commits_per_sec']:,.0f} "
        f"commits/sec ({multi_generation['speedup']:.1f}x)"
    )
    print(
        f"tight_epsilon over "
        f"{len(results['tight_epsilon_many']['testset_sizes'])} sizes: per-call "
        f"{epsilon['per_call_cold_seconds']:.2f}s, batched "
        f"{epsilon['many_seconds']:.2f}s "
        f"({epsilon['speedup_vs_cold_per_call']:.1f}x)"
    )
    return results


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: smaller queues/sweeps, speedup gates skipped",
    )
    main(quick=parser.parse_args().quick)
