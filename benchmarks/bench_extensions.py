"""E9 — extension-feature studies (stratified sampling, metric tax,
drift budgets) plus the paired-difference Figure 4 companion."""

from conftest import emit

from repro.experiments.extensions import (
    run_drift_budget,
    run_metric_tax,
    run_stratified_ablation,
)
from repro.experiments.figure4 import run_figure4_paired
from repro.utils.formatting import Table


def test_stratified_ablation(benchmark):
    rows = benchmark(run_stratified_ablation)
    table = Table(
        ["rare weight", "proportional eps", "optimized eps", "improvement"],
        align=[">"] * 4,
        title="E9a: stratified allocation vs proportional (10K labels)",
    )
    for r in rows:
        table.add_row(
            [
                r.rare_weight,
                f"{r.proportional_tolerance:.5f}",
                f"{r.optimized_tolerance:.5f}",
                f"{r.improvement:.2f}x",
            ]
        )
    emit(table.render())
    improvements = [r.improvement for r in rows]
    # No gain when balanced; growing gain with skew.
    assert improvements[0] == 1.0
    assert improvements == sorted(improvements)
    assert improvements[-1] > 1.3


def test_metric_tax(benchmark):
    rows = benchmark(run_metric_tax)
    table = Table(
        ["min class share", "accuracy n", "macro-F1 n", "tax"],
        align=[">"] * 4,
        title="E9b: macro-F1 label tax vs accuracy (McDiarmid)",
    )
    for r in rows:
        table.add_row(
            [
                r.min_class_fraction,
                f"{r.accuracy_samples:,}",
                f"{r.f1_samples:,}",
                f"{r.tax:.0f}x",
            ]
        )
    emit(table.render())
    taxes = [r.tax for r in rows]
    assert taxes == sorted(taxes)  # skew makes F1 testing more expensive
    assert taxes[0] > 1.0


def test_drift_budget(benchmark):
    rows = benchmark(run_drift_budget)
    table = Table(
        ["periods", "labels/period", "total"],
        align=[">"] * 3,
        title="E9c: drift-monitor budgets (accuracy floor, eps=0.02)",
    )
    for r in rows:
        table.add_row([r.periods, f"{r.samples_per_period:,}", f"{r.total_samples:,}"])
    emit(table.render())
    # Union bound: per-period cost grows only logarithmically in horizon.
    daily, monthly = rows[-1], rows[0]
    assert daily.samples_per_period < 2 * monthly.samples_per_period


def test_figure4_paired(benchmark):
    points = benchmark.pedantic(run_figure4_paired, rounds=1, iterations=1)
    table = Table(
        ["n", "hoeffding eps (range 2)", "bennett eps (p=0.1)", "empirical"],
        align=[">"] * 4,
        title="Figure 4 companion: paired-difference estimator validity",
    )
    for pt in points:
        table.add_row(
            [
                f"{pt.n_samples:,}",
                f"{pt.hoeffding_epsilon:.4f}",
                f"{pt.bennett_epsilon:.4f}",
                f"{pt.empirical_error:.4f}",
            ]
        )
    emit(table.render())
    for pt in points:
        assert pt.bennett_valid  # Bennett dominates the empirical error
        assert pt.bennett_epsilon < pt.hoeffding_epsilon / 2  # and is >2x tighter
