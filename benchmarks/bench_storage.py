"""Storage-governance benchmark: what bounding the disk actually costs.

A long multi-rotation commit run under the aggressive retention policy
(``snapshot_every=1``, ``keep_snapshots=2``) against a retention-off
twin, gated on the governance invariants (compaction may reclaim bytes,
never change results):

1. **Bounded bytes** — across >= 4 testset rotations the compacted
   run's journal and state directory must end smaller than the
   retention-off twin's, the snapshot store must hold exactly
   ``keep_snapshots`` generations, and every compaction pass's
   bytes-before/bytes-after pair is recorded for the trajectory.

2. **Compaction parity** — the compacted state directory must resume to
   builds element-wise identical to the in-memory reference, and so
   must the twin: retention drops only what snapshots already cover.

3. **Compaction pause** — the cost of one worst-case offline
   :func:`~repro.reliability.storage.maintain_state_dir` pass over the
   retention-off twin (the longest journal a real deployment would ever
   compact in one go), plus the per-check latency of a
   :class:`~repro.reliability.storage.StorageGovernor` measurement.

Run directly or via ``make bench-storage`` (``make bench-smoke`` uses
``--quick``):

    PYTHONPATH=src python benchmarks/bench_storage.py --quick

The correctness gates (parity, bounded bytes, rotation depth) are
asserted in both modes; ``--quick`` only shrinks the workload.
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

from bench_fault_recovery import (
    build_fingerprint,
    make_script,
    make_service,
    make_world,
)

from repro.ci.service import CIService
from repro.reliability.events import clear_events, reliability_events
from repro.reliability.fsck import fsck_state_dir
from repro.reliability.storage import (
    StorageGovernor,
    directory_bytes,
    maintain_state_dir,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

SNAPSHOT_EVERY = 1
KEEP_SNAPSHOTS = 2


def run_persisted(script, testsets, baseline, models, state_dir, keep):
    service = make_service(script, testsets, baseline)
    service.persist_to(
        state_dir,
        snapshot_every=SNAPSHOT_EVERY,
        keep_snapshots=keep,
        sync=False,
    )
    journal_bytes = []
    for model in models:
        service.repository.commit(model, message=model.name)
        journal_bytes.append((state_dir / "journal.jsonl").stat().st_size)
    return service, journal_bytes


def bench_compaction(quick: bool) -> dict:
    commits = 12 if quick else 16
    script = make_script(steps=2)  # rotate the testset every ~2 builds
    testsets, baseline, models = make_world(script, commits, generations=10)

    reference = make_service(script, testsets, baseline)
    for model in models:
        reference.repository.commit(model, message=model.name)
    rotations = len(reference.engine.rotations)
    assert rotations >= 4, f"workload only rotated {rotations} times"
    expected = build_fingerprint(reference)

    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        clear_events()
        compacted, journal_bytes = run_persisted(
            script, testsets, baseline, models, tmp / "compacted", KEEP_SNAPSHOTS
        )
        passes = [
            {
                "bytes_before": event.detail["bytes_before"],
                "bytes_after": event.detail["bytes_after"],
            }
            for event in reliability_events("journal-compacted")
        ]
        twin, _twin_bytes = run_persisted(
            script, testsets, baseline, models, tmp / "uncompacted", None
        )

        compacted_dir_bytes = directory_bytes(tmp / "compacted")
        twin_dir_bytes = directory_bytes(tmp / "uncompacted")
        snapshots_on_disk = len(list(compacted._store.sequences()))
        compacted_through = compacted._journal.compacted_through

        # Gate 1: bounded bytes.  The compacted run retains exactly
        # ``keep_snapshots`` generations and strictly fewer bytes than
        # the retention-off twin, whose footprint grows with the run.
        bounded = (
            snapshots_on_disk == KEEP_SNAPSHOTS
            and compacted_dir_bytes < twin_dir_bytes
            and journal_bytes[-1] < _twin_bytes[-1]
            and compacted_through > 0
        )
        assert bounded, (
            f"retention failed to bound the disk: {snapshots_on_disk} "
            f"snapshot(s), {compacted_dir_bytes}B vs twin {twin_dir_bytes}B"
        )
        assert passes, "no compaction pass ran during the workload"

        # Gate 2: compaction parity.  Both directories must be
        # restorable and resume to the reference builds.
        identical = True
        for directory in (tmp / "compacted", tmp / "uncompacted"):
            report = fsck_state_dir(directory)
            assert report.restorable, report.describe()
            resumed = CIService.resume(directory, record=False)
            identical = identical and build_fingerprint(resumed) == expected
        assert identical, "a compacted state dir diverged from the reference"

        # Gate 3 input: the worst-case pause — one offline maintenance
        # pass over the full-length twin journal.
        start = time.perf_counter()
        maintenance = maintain_state_dir(
            tmp / "uncompacted", keep=KEEP_SNAPSHOTS, sync=False
        )
        pause_seconds = time.perf_counter() - start
        assert fsck_state_dir(tmp / "uncompacted").restorable

        governor = StorageGovernor(soft_bytes=1, hard_bytes=10**12)
        start = time.perf_counter()
        level = governor.check(tmp / "compacted").level
        check_seconds = time.perf_counter() - start

    return {
        "commits": commits,
        "rotations": rotations,
        "snapshot_every": SNAPSHOT_EVERY,
        "keep_snapshots": KEEP_SNAPSHOTS,
        "compaction_passes": len(passes),
        "passes": passes,
        "journal_bytes_peak": max(journal_bytes),
        "journal_bytes_final": journal_bytes[-1],
        "journal_bytes_uncompacted": _twin_bytes[-1],
        "state_dir_bytes_final": compacted_dir_bytes,
        "state_dir_bytes_uncompacted": twin_dir_bytes,
        "compacted_through": compacted_through,
        "snapshots_on_disk": snapshots_on_disk,
        "bytes_bounded": bounded,
        "results_identical": identical,
        "offline_compaction_pause_seconds": pause_seconds,
        "offline_pass_dropped_records": maintenance.dropped_records,
        "offline_pass_pruned_snapshots": maintenance.pruned_snapshots,
        "governor_check_seconds": check_seconds,
        "governor_level": level,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="smoke mode: smaller workloads"
    )
    args = parser.parse_args()

    payload = {
        "quick": args.quick,
        "compaction": bench_compaction(args.quick),
    }
    artifact = REPO_ROOT / "BENCH_storage.json"
    artifact.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    data = payload["compaction"]
    print(
        f"compaction: {data['commits']} commits across {data['rotations']} "
        f"rotations — journal {data['journal_bytes_final']}B compacted vs "
        f"{data['journal_bytes_uncompacted']}B retention-off "
        f"({data['compaction_passes']} pass(es), state dir "
        f"{data['state_dir_bytes_final']}B vs {data['state_dir_bytes_uncompacted']}B)"
    )
    print(
        f"pauses: offline maintenance {data['offline_compaction_pause_seconds']:.3f}s "
        f"({data['offline_pass_dropped_records']} record(s) dropped), "
        f"governor check {data['governor_check_seconds'] * 1e3:.2f}ms"
    )
    print(f"wrote {artifact.name}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
