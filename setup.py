"""Setuptools shim for offline editable installs (`python setup.py develop`).

The canonical metadata lives in pyproject.toml; this file exists because the
build environment has no network access and no `wheel` package, so pip's
PEP 660 editable path is unavailable.
"""
from setuptools import setup

setup()
