"""Quickstart: the four-step ease.ml/ci workflow on a simulated project.

1. The integration team writes a ``.travis.yml``-style script with an
   ``ml:`` section;
2. the sample-size estimator tells them how many test labels to provide;
3. developers commit models;
4. the engine returns rigorous pass/fail signals, and the new-testset
   alarm fires when the statistical budget runs out.

Run:  python examples/quickstart.py
"""

from repro import CIEngine, CIScript, SampleSizeEstimator, Testset
from repro.ci.notifications import ConsoleTransport
from repro.ml.models.base import FixedPredictionModel
from repro.ml.models.simulated import (
    ModelPairSpec,
    evolve_predictions,
    simulate_model_pair,
)

SCRIPT = """
language: python

ml:
  - script     : ./test_model.py
  - condition  : n - o > 0.02 +/- 0.02 /\\ d < 0.1 +/- 0.02
  - reliability: 0.999
  - mode       : fp-free
  - adaptivity : full
  - steps      : 8
"""


def main() -> None:
    # Step 1: parse and validate the script.
    script = CIScript.from_yaml(SCRIPT)
    print("parsed script:")
    print(script.describe())
    print()

    # Step 2: how many labels must the integration team provide?
    plan = SampleSizeEstimator().plan(
        script.condition,
        delta=script.delta,
        adaptivity=script.adaptivity,
        steps=script.steps,
    )
    print(plan.describe())
    print()

    # Simulate the world: a deployed model at 85% accuracy over a pool of
    # exactly the required size, then a chain of candidate models evolved
    # from whatever is currently active.
    pool = plan.pool_size
    world = simulate_model_pair(
        ModelPairSpec(old_accuracy=0.85, new_accuracy=0.85, difference=0.0),
        n_examples=pool,
        seed=1,
    )
    testset = Testset(labels=world.labels, name="quickstart-testset")
    engine = CIEngine(
        script, testset, world.old_model, notifier=ConsoleTransport().send
    )

    # Steps 3-4: commit candidates and read the signals.  Each candidate
    # evolves from the active model's predictions on the shared pool.
    candidates = [
        ("tweak-learning-rate", 0.855, 0.04),  # +0.5 points: below the bar
        ("add-features", 0.895, 0.07),         # +4.5 points: clear pass
        ("risky-rewrite", 0.880, 0.18),        # changes too much: d-clause fails
        ("better-regularizer", 0.942, 0.06),   # +4.7 points over new active
    ]
    for i, (name, accuracy, difference) in enumerate(candidates):
        active_predictions = engine.active_model.predictions
        candidate = FixedPredictionModel(
            evolve_predictions(
                active_predictions,
                world.labels,
                target_accuracy=accuracy,
                difference=difference,
                seed=100 + i,
            ),
            name=name,
        )
        result = engine.submit(candidate)
        signal = "PASS" if result.developer_signal else "FAIL"
        print(f"commit {name!r}: {signal}")
        print("  " + result.evaluation.describe().replace("\n", "\n  "))
        if result.alarm_event is not None:
            print(f"  !! {result.alarm_event.message}")
    print()
    print(f"evaluations used: {engine.manager.uses} / budget {script.steps}")
    print(f"active model: {engine.active_model.name}")


if __name__ == "__main__":
    main()
