"""Why adaptivity costs samples (§3.3): overfitting a reused testset.

An "attacker" developer commits models that are pure random guessers
(true accuracy 50%) but uses the 1-bit pass/fail feedback to keep
whichever random perturbation happened to score higher on the testset.
On a testset sized for a *single* evaluation, the measured accuracy
drifts far above the truth — past the promised tolerance.  On a testset
sized with the paper's ``delta / 2^H`` budget, the drift stays inside
epsilon.

Run:  python examples/adaptive_attack_demo.py
"""

from repro.experiments.ablations import run_adaptive_attack
from repro.stats.adaptive import AdaptiveAttacker, ThresholdAttacker
from repro.utils.formatting import Table


def main() -> None:
    epsilon, delta, queries = 0.05, 1e-3, 64
    print(
        f"attack: {queries} adaptive queries against a reused testset; "
        f"guarantee sought: |measured - true| <= {epsilon} with "
        f"probability {1 - delta}\n"
    )

    # Watch one attack unfold on the naive testset.
    attacker = ThresholdAttacker(n_testset=1521, base_accuracy=0.5, seed=0)
    trace = AdaptiveAttacker(attacker).run(queries)
    table = Table(
        ["query", "measured accuracy", "true accuracy", "gap"],
        align=[">"] * 4,
        title="one attack on the naively sized testset (n=1521)",
    )
    for q in (1, 8, 16, 32, 48, 64):
        table.add_row(
            [
                q,
                f"{trace.empirical_scores[q - 1]:.4f}",
                f"{trace.true_scores[q - 1]:.4f}",
                f"{trace.empirical_scores[q - 1] - trace.true_scores[q - 1]:+.4f}",
            ]
        )
    print(table.render())
    print()

    # The systematic comparison (several replicates, both sizings).
    outcomes = run_adaptive_attack(
        epsilon=epsilon, delta=delta, queries=queries, n_replicates=8
    )
    table = Table(
        ["testset sizing", "n", "mean final gap", "max final gap", "within eps?"],
        align=["<", ">", ">", ">", "^"],
        title="does the (eps, delta) guarantee survive the attack?",
    )
    for o in outcomes:
        table.add_row(
            [
                o.sizing,
                f"{o.testset_size:,}",
                f"{o.mean_final_gap:.4f}",
                f"{o.max_final_gap:.4f}",
                "yes" if o.guarantee_held else "NO",
            ]
        )
    print(table.render())
    print(
        "\nThe naive sizing (one evaluation's worth of samples) is broken "
        "by feedback reuse; the paper's delta/2^H budget absorbs it."
    )


if __name__ == "__main__":
    main()
