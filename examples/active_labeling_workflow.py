"""Active labeling (§4.1.2) and the testset-pool labeling lifecycle.

Act 1 — amortizing labels across daily commits: a month of daily commits
is tested against ``n - o > 0.02 +/- 0.01`` with the disagreement capped
at 10%.  The Bennett-sized pool needs ~29K *potential* labels, but each
commit only requires labels where it disagrees with the deployed model —
and labels bought once are reused — so the labeling team's daily bill
stays near ``p * N`` and decays as the pool's labeled fraction grows.

Act 2 — keeping the engine fed: every testset generation retires after
``H`` evaluations, and the old workflow was reactive — run until
``TestsetExhaustedError``, then scramble for labels while commits queue.
With a :class:`~repro.core.testset.TestsetPool` the lifecycle inverts:
the engine rotates to the next pre-labeled generation by itself, and the
pool's *low-watermark callback* tells the labeling team to label the
next set while the current one still has runway — the hard stop becomes
scheduled, amortized labeling work.

Run:  python examples/active_labeling_workflow.py
"""

import numpy as np

from repro.core.dsl.parser import parse_condition
from repro.core.engine import CIEngine
from repro.core.estimators.api import SampleSizeEstimator
from repro.core.patterns.active import ActiveLabelingSession
from repro.core.patterns.matcher import find_gain_clause
from repro.core.script.config import CIScript
from repro.core.testset import Testset, TestsetPool
from repro.ml.labeling import LabelingCostModel, LabelOracle
from repro.ml.models.base import FixedPredictionModel
from repro.ml.models.simulated import ModelPairSpec, evolve_predictions, simulate_model_pair
from repro.utils.formatting import Table
from repro.utils.rng import ensure_rng

CONDITION = "d < 0.1 +/- 0.01 /\\ n - o > 0.02 +/- 0.01"


def main() -> None:
    plan = SampleSizeEstimator().plan(
        CONDITION, reliability=0.9999, adaptivity="none", steps=32
    )
    print(plan.describe())
    pool_size = plan.samples  # the Bennett-sized labeled requirement
    print(
        f"\nwithout active labeling: {pool_size:,} labels up front\n"
        f"with active labeling:    ~{plan.labels_per_evaluation:,} fresh "
        "labels per commit, amortized\n"
    )

    # Simulated world: deployed model at 88%, daily commits that wander
    # around +/- a point with ~6% prediction churn each.
    world = simulate_model_pair(
        ModelPairSpec(old_accuracy=0.88, new_accuracy=0.88, difference=0.0),
        n_examples=pool_size,
        seed=3,
    )
    oracle = LabelOracle(
        world.labels, cost_model=LabelingCostModel(seconds_per_label=5.0)
    )
    gain = find_gain_clause(parse_condition(CONDITION))
    assert gain is not None
    session = ActiveLabelingSession(
        pool_size=pool_size,
        label_source=oracle,
        gain=gain,
        reference_predictions=world.old_model.predictions,
        mode="fp-free",
    )

    rng = ensure_rng(17)
    table = Table(
        ["day", "d-hat", "gain-hat", "signal", "fresh labels", "total labels", "hours"],
        align=[">"] * 7,
        title="a month of daily commits",
    )
    predictions = world.old_model.predictions
    accuracy = 0.88
    for day in range(1, 22):
        accuracy = float(np.clip(accuracy + rng.normal(0.001, 0.004), 0.85, 0.92))
        predictions = evolve_predictions(
            session.reference_predictions,
            world.labels,
            target_accuracy=accuracy,
            difference=float(rng.uniform(0.04, 0.08)),
            seed=rng,
        )
        step = session.evaluate_commit(predictions)
        if step.passed:
            session.promote_reference(predictions)
        effort = oracle.cost_model.effort(step.fresh_labels)
        table.add_row(
            [
                day,
                f"{step.difference_estimate:.3f}",
                f"{step.gain_estimate:+.4f}",
                "PASS" if step.passed else "fail",
                f"{step.fresh_labels:,}",
                f"{step.cumulative_labels:,}",
                f"{effort.person_hours:.1f}",
            ]
        )
    print(table.render())
    total = oracle.total_effort()
    print(
        f"\ntotal: {oracle.labels_served:,} labels "
        f"({total.person_hours:.1f} labeler-hours at 5 s/label) — vs. "
        f"{pool_size:,} labels ({oracle.cost_model.effort(pool_size).person_hours:.1f} h) "
        "to label the whole pool up front."
    )
    print(
        f"pool labeled so far: {session.labeled_fraction:.1%} "
        "(labels are reused across commits)"
    )
    print()
    lifecycle_demo()


def lifecycle_demo() -> None:
    """Act 2: the pool's low-watermark callback drives labeling lead time."""
    script = CIScript.from_dict(
        {
            "script": "./test_model.py",
            "condition": CONDITION,
            "reliability": 0.999,
            "mode": "fp-free",
            "adaptivity": "none -> third-party@example.com",
            "steps": 8,  # each testset generation serves 8 commits
        }
    )
    plan = SampleSizeEstimator().plan(
        script.condition,
        delta=script.delta,
        adaptivity=script.adaptivity,
        steps=script.steps,
        known_variance_bound=script.variance_bound,
    )
    world = simulate_model_pair(
        ModelPairSpec(old_accuracy=0.88, new_accuracy=0.88, difference=0.0),
        n_examples=plan.pool_size,
        seed=5,
    )
    rng = ensure_rng(29)

    def label_fresh_testset(name: str) -> Testset:
        # Stands in for the labeling team producing the next generation
        # (in production: an ActiveLabelingSession over fresh pool data).
        return Testset(labels=rng.integers(0, 2, size=plan.pool_size), name=name)

    # Two generations labeled ahead; the low-watermark callback keeps one
    # generation of lead time from then on, instead of the old workflow's
    # "catch TestsetExhaustedError, then scramble".
    pool = TestsetPool([label_fresh_testset("ahead-1")], low_watermark=1)

    def on_low_watermark(event) -> None:
        print(f"  !! {event.message}")
        pool.add(label_fresh_testset(f"fresh-{pool.popped}"))
        print(f"     labeling team delivered a new generation "
              f"({pool.pending} pending again)")

    pool.on_low_watermark(on_low_watermark)
    engine = CIEngine(
        script,
        Testset(labels=world.labels, name="initial"),
        world.old_model,
        testset_pool=pool,
    )

    print("a quarter of commits through a generation-spanning pool:")
    commits = [
        FixedPredictionModel(
            evolve_predictions(
                world.old_model.predictions,
                world.labels,
                target_accuracy=float(np.clip(0.88 + 0.001 * i, 0.85, 0.92)),
                difference=0.06,
                seed=300 + i,
            ),
            name=f"day-{i}",
        )
        for i in range(20)
    ]
    results = engine.submit_many(commits)  # spans generations, no exception
    generations = sorted({r.generation for r in results})
    print(
        f"{len(results)} commits served by generations {generations} "
        f"({len(engine.rotations)} rotations, zero skipped builds)"
    )


if __name__ == "__main__":
    main()
