"""Active labeling (§4.1.2): amortizing labels across daily commits.

A month of daily commits is tested against ``n - o > 0.02 +/- 0.01`` with
the disagreement capped at 10%.  The Bennett-sized pool needs ~29K
*potential* labels, but each commit only requires labels where it
disagrees with the deployed model — and labels bought once are reused —
so the labeling team's daily bill stays near ``p * N`` and decays as the
pool's labeled fraction grows.

Run:  python examples/active_labeling_workflow.py
"""

import numpy as np

from repro.core.dsl.parser import parse_condition
from repro.core.estimators.api import SampleSizeEstimator
from repro.core.patterns.active import ActiveLabelingSession
from repro.core.patterns.matcher import find_gain_clause
from repro.ml.labeling import LabelingCostModel, LabelOracle
from repro.ml.models.simulated import ModelPairSpec, evolve_predictions, simulate_model_pair
from repro.utils.formatting import Table
from repro.utils.rng import ensure_rng

CONDITION = "d < 0.1 +/- 0.01 /\\ n - o > 0.02 +/- 0.01"


def main() -> None:
    plan = SampleSizeEstimator().plan(
        CONDITION, reliability=0.9999, adaptivity="none", steps=32
    )
    print(plan.describe())
    pool_size = plan.samples  # the Bennett-sized labeled requirement
    print(
        f"\nwithout active labeling: {pool_size:,} labels up front\n"
        f"with active labeling:    ~{plan.labels_per_evaluation:,} fresh "
        "labels per commit, amortized\n"
    )

    # Simulated world: deployed model at 88%, daily commits that wander
    # around +/- a point with ~6% prediction churn each.
    world = simulate_model_pair(
        ModelPairSpec(old_accuracy=0.88, new_accuracy=0.88, difference=0.0),
        n_examples=pool_size,
        seed=3,
    )
    oracle = LabelOracle(
        world.labels, cost_model=LabelingCostModel(seconds_per_label=5.0)
    )
    gain = find_gain_clause(parse_condition(CONDITION))
    assert gain is not None
    session = ActiveLabelingSession(
        pool_size=pool_size,
        label_source=oracle,
        gain=gain,
        reference_predictions=world.old_model.predictions,
        mode="fp-free",
    )

    rng = ensure_rng(17)
    table = Table(
        ["day", "d-hat", "gain-hat", "signal", "fresh labels", "total labels", "hours"],
        align=[">"] * 7,
        title="a month of daily commits",
    )
    predictions = world.old_model.predictions
    accuracy = 0.88
    for day in range(1, 22):
        accuracy = float(np.clip(accuracy + rng.normal(0.001, 0.004), 0.85, 0.92))
        predictions = evolve_predictions(
            session.reference_predictions,
            world.labels,
            target_accuracy=accuracy,
            difference=float(rng.uniform(0.04, 0.08)),
            seed=rng,
        )
        step = session.evaluate_commit(predictions)
        if step.passed:
            session.promote_reference(predictions)
        effort = oracle.cost_model.effort(step.fresh_labels)
        table.add_row(
            [
                day,
                f"{step.difference_estimate:.3f}",
                f"{step.gain_estimate:+.4f}",
                "PASS" if step.passed else "fail",
                f"{step.fresh_labels:,}",
                f"{step.cumulative_labels:,}",
                f"{effort.person_hours:.1f}",
            ]
        )
    print(table.render())
    total = oracle.total_effort()
    print(
        f"\ntotal: {oracle.labels_served:,} labels "
        f"({total.person_hours:.1f} labeler-hours at 5 s/label) — vs. "
        f"{pool_size:,} labels ({oracle.cost_model.effort(pool_size).person_hours:.1f} h) "
        "to label the whole pool up front."
    )
    print(
        f"pool labeled so far: {session.labeled_fraction:.1%} "
        "(labels are reused across commits)"
    )


if __name__ == "__main__":
    main()
