"""The paper's §5.2 case study: eight SemEval-2019 Task 3 submissions.

Replays the scripted development history (a documented stand-in for the
paper's real competition models — see ``repro/ml/datasets/emotion.py``)
through the three Figure 5 CI configurations, and prints the Figure 6
accuracy-evolution series.

Observables to look for (all match the paper):

* sample sizes 4,713 / 4,713 / 5,204 — vs. 44,268 for plain Hoeffding;
* every configuration leaves iteration 7 (the second-to-last commit)
  active, which is also where true test accuracy peaks;
* the fn-free query passes a superset of the fp-free query's commits.

Run:  python examples/semeval_workflow.py
"""

from repro.core.estimators.api import SampleSizeEstimator
from repro.experiments.figure5 import SEMEVAL_QUERIES, run_figure5
from repro.experiments.figure6 import run_figure6
from repro.ml.datasets.emotion import make_semeval_history
from repro.utils.formatting import Table


def main() -> None:
    history = make_semeval_history()
    print(
        f"scripted history: {len(history)} iterations over "
        f"{history.testset_size:,} test items; max pairwise prediction "
        f"difference {history.max_pairwise_difference():.3f} (<= 0.1)"
    )
    baseline = SampleSizeEstimator(optimizations="none").plan(
        "n - o > 0.02 +/- 0.02", delta=0.002, adaptivity="none", steps=7
    )
    print(f"plain Hoeffding would need {baseline.samples:,} labels — "
          f"more than the {history.testset_size:,} available\n")

    traces = run_figure5(history)
    table = Table(
        ["iteration", *(t.config.name for t in traces)],
        align=[">"] + ["^"] * len(traces),
        title="Figure 5: pass/fail signals per iteration",
    )
    for i in range(len(traces[0].signals)):
        table.add_row(
            [i + 2, *("PASS" if t.signals[i] else "fail" for t in traces)]
        )
    print(table.render())
    print()
    for trace in traces:
        print(
            f"{trace.config.name}: N={trace.planned_samples:,} "
            f"(paper: {trace.config.paper_samples:,}), "
            f"active model = iteration {trace.active_iteration}"
        )
    print()

    evolution = run_figure6(history)
    table = Table(
        ["iteration", "dev accuracy", "test accuracy"],
        align=[">", ">", ">"],
        title="Figure 6: accuracy evolution",
    )
    for it, dev, test in zip(
        evolution.iterations, evolution.dev_accuracy, evolution.test_accuracy
    ):
        table.add_row([it, f"{dev:.3f}", f"{test:.3f}"])
    print(table.render())
    print(
        f"\nbest test accuracy at iteration {evolution.best_test_iteration} "
        "— the model every CI query left active, even though the developer "
        "(looking at dev accuracy) would have shipped the last one."
    )


if __name__ == "__main__":
    main()
