"""Pattern 2 at runtime: the ImageNet-winners observation (§4.2).

The paper motivates the implicit-variance optimization with a striking
fact: AlexNet, AlexNet-BN, GoogLeNet, VGG and ResNet — five years of
architecture research — disagree on at most 25% of their top-1
predictions.  This example reproduces the observation on the simulated
zoo, then runs the full Pattern 2 two-testset procedure for a CI
comparison between two zoo members:

1. estimate their disagreement on a small *unlabeled* testset (16x
   smaller than what direct testing would need);
2. use the measured bound to size a Bennett test of ``n - o`` and run it.

Run:  python examples/model_zoo_pattern2.py
"""

from repro.core.dsl.parser import parse_condition
from repro.core.patterns.implicit_variance import ImplicitVarianceProcedure
from repro.core.patterns.matcher import find_gain_clause
from repro.ml.datasets.model_zoo import ImageNetZoo
from repro.stats.estimation import PairedSample
from repro.utils.formatting import Table


def main() -> None:
    zoo = ImageNetZoo(n_examples=60_000, seed=0)

    # The §4.2 observation, reproduced.
    table = Table(
        ["model", "top-1 accuracy"],
        align=["<", ">"],
        title="the (simulated) ImageNet zoo",
    )
    for member in zoo.members:
        table.add_row([member.name, f"{zoo.accuracy_of(member.name):.3f}"])
    print(table.render())
    print(
        f"max pairwise top-1 disagreement: "
        f"{zoo.max_pairwise_disagreement():.3f}  (paper: <= 0.25)\n"
    )

    # CI question: is the candidate at least 1 point better than the
    # deployed GoogLeNet?  Tested for a genuine upgrade (ResNet) and a
    # regression (AlexNet-BN).
    condition = "n - o > 0.01 +/- 0.02"
    gain = find_gain_clause(parse_condition(condition))
    assert gain is not None
    procedure = ImplicitVarianceProcedure(gain, delta=0.001, mode="fp-free")
    labels = zoo.labels
    old = zoo._lookup("GoogLeNet").model.predictions

    for candidate_name in ("ResNet", "AlexNet-BN"):
        new = zoo._lookup(candidate_name).model.predictions
        print(f"--- candidate: {candidate_name} (old: GoogLeNet)")

        # Stage 1: unlabeled disagreement estimation (no labels attached).
        n1 = procedure.difference_samples
        stage1 = PairedSample(old_predictions=old[:n1], new_predictions=new[:n1])
        d_hat = stage1.difference
        p_hat = min(1.0, d_hat + procedure.difference_tolerance)
        n2 = procedure.test_samples_for(p_hat)
        print(
            f"stage 1 (unlabeled): {n1:,} examples -> d-hat = {d_hat:.3f}, "
            f"variance bound p-hat = {p_hat:.3f}"
        )
        direct = procedure.test_samples_for(1.0)
        print(
            f"stage 2 (labeled):   {n2:,} examples needed "
            f"(vs ~{direct:,} with no variance bound — "
            f"{direct / n2:.1f}x more)"
        )

        # Stage 2: the labeled Bennett test.
        stage2 = PairedSample(
            old_predictions=old[:n2], new_predictions=new[:n2], labels=labels[:n2]
        )
        outcome = procedure.run(stage1, stage2)
        print(
            f"gain estimate: {outcome.gain_estimate:+.4f} in "
            f"{outcome.gain_interval} -> {outcome.outcome.value.upper()} "
            f"({'PASS' if outcome.passed else 'FAIL'})\n"
        )


if __name__ == "__main__":
    main()
