"""End-to-end pipeline with genuinely trained models — no simulation.

A development team iterates on an emotion classifier (synthetic corpus,
really-trained naive Bayes and softmax models); every commit flows
through the full CI stack: repository -> webhook -> build -> ease.ml/ci
engine -> signal routing, with the true signals mailed to the
integration team (``adaptivity: none``) and the testset alarm firing when
the budget runs out.

Run:  python examples/real_training_pipeline.py   (takes ~30 s)
"""

import numpy as np

from repro.ci.notifications import InMemoryEmailTransport
from repro.ci.repository import ModelRepository
from repro.ci.service import CIService
from repro.core.script.config import CIScript
from repro.core.testset import Testset
from repro.ml.datasets.emotion import EMOTION_CLASSES, EmotionDatasetGenerator
from repro.ml.metrics import accuracy, macro_f1
from repro.ml.models.naive_bayes import MultinomialNaiveBayes
from repro.ml.models.linear import SoftmaxRegression

SCRIPT = """
ml:
  - script     : ./test_model.py
  - condition  : n - o > 0.01 +/- 0.04
  - reliability: 0.99
  - mode       : fn-free
  - adaptivity : none -> integration-team@example.com
  - steps      : 4
"""


def main() -> None:
    rng_seed = 5
    generator = EmotionDatasetGenerator(seed=rng_seed)
    train_x, train_y = generator.sample(6000, seed=rng_seed + 1)
    test_x, test_y = generator.sample(9000, seed=rng_seed + 2)

    script = CIScript.from_yaml(SCRIPT)
    # Trained models consume raw feature matrices, so the testset's
    # features are the count vectors themselves.
    testset = Testset(labels=test_y, features=test_x, name="emotion-test")

    # The deployed baseline: naive Bayes on a small early data dump.
    baseline = MultinomialNaiveBayes(n_classes=len(EMOTION_CLASSES)).fit(
        train_x[:500], train_y[:500]
    )
    transport = InMemoryEmailTransport()
    service = CIService(
        script,
        testset,
        baseline,
        repository=ModelRepository("emotion-classifier"),
        transport=transport,
    )
    print(
        f"plan: {service.engine.plan.samples:,} labels needed; testset has "
        f"{testset.size:,}"
    )
    print(f"baseline test accuracy: {accuracy(baseline.predict(test_x), test_y):.3f}\n")

    # The development story: more data, then a model-family change.
    commits = [
        ("NB on 2k examples", MultinomialNaiveBayes(len(EMOTION_CLASSES)).fit(
            train_x[:2000], train_y[:2000])),
        ("NB on all data", MultinomialNaiveBayes(len(EMOTION_CLASSES)).fit(
            train_x, train_y)),
        ("softmax regression", SoftmaxRegression(
            len(EMOTION_CLASSES), n_epochs=120, seed=0).fit(
            np.log1p(train_x), train_y)),
    ]

    class LogFeatures:
        """Adapter: the softmax commit was trained on log counts."""

        def __init__(self, inner):
            self.inner = inner

        def predict(self, features):
            return self.inner.predict(np.log1p(features))

    for message, model in commits:
        if isinstance(model, SoftmaxRegression):
            model = LogFeatures(model)
        commit = service.repository.commit(model, message=message)
        build = service.builds[-1]
        result = build.result
        assert result is not None
        estimates = result.evaluation.clause_evaluations[0].estimates
        gain = estimates.get("n-o", estimates.get("n", 0.0) - estimates.get("o", 0.0))
        print(
            f"build #{build.build_number} {commit.commit_id} ({message}): "
            f"status={commit.status.value}  "
            f"true-signal={'PASS' if result.truly_passed else 'fail'}  "
            f"gain-hat={gain:+.4f}"
        )

    print("\n" + service.summary())
    print("\nmail received by the integration team:")
    for message in transport.messages:
        print(f"  [{message.sequence}] {message.subject}")

    best = service.active_model
    predictions = best.predict(test_x)
    print(
        f"\nactive model test accuracy: {accuracy(predictions, test_y):.3f}, "
        f"macro-F1: {macro_f1(predictions, test_y):.3f}"
    )


if __name__ == "__main__":
    main()
