"""Manifest / state-format / component-contract checks.

Everything here is about the seams themselves: the ``repro.ci-engine/v1``
state format, the warm-manifest replay, the planner-config round trip,
evaluator prepack purity, the raw ``StateStore`` read/write contract —
and the headline guarantee that a backend registers without a single
edit to ``core/engine.py``.
"""

import pickle
from pathlib import Path

import pytest

import repro.core.engine as engine_module
from repro.ci.persistence import BUILD_RECORDED, COMMIT_RECEIVED
from repro.core.engine import ENGINE_STATE_FORMAT, CIEngine
from repro.stats.cache import clear_all_caches, warm_after_restore
from repro.stats.estimation import PairedSample


def test_export_state_keeps_v1_format_and_names_the_backend(
    world, engine_factory, backend_name
):
    script, testsets, baseline, models = world("full")
    engine = engine_factory(script, testsets, baseline)
    state = engine.export_state()
    assert state["format"] == ENGINE_STATE_FORMAT == "repro.ci-engine/v1"
    assert state["backend"] == backend_name
    # The whole export must survive a pickle round trip (snapshot payload).
    assert pickle.loads(pickle.dumps(state))["backend"] == backend_name


def test_from_state_resumes_element_wise_with_cold_caches(
    world, engine_factory, backend_name
):
    script, testsets, baseline, models = world("full")
    engine = engine_factory(script, testsets, baseline)
    twin = engine_factory(script, testsets, baseline)
    for model in models[:4]:
        assert engine.submit(model) == twin.submit(model)

    frozen = pickle.dumps(engine.export_state())
    clear_all_caches()
    restored = CIEngine.from_state(pickle.loads(frozen))
    assert restored.backend.name == backend_name
    assert restored.plan == engine.plan
    for model in models[4:]:
        assert restored.submit(model) == twin.submit(model)
    assert restored.results == twin.results
    assert restored.rotations == twin.rotations


def test_warm_manifest_replay_rederives_the_same_plan(world, engine_factory):
    script, testsets, baseline, models = world("full")
    engine = engine_factory(script, testsets, baseline)
    manifest = engine.warm_manifest()
    assert manifest["plans"], "manifest must name at least one plan request"
    clear_all_caches()
    warm_after_restore(manifest)
    assert engine.planner.replan_for(script) == engine.plan


def test_planner_config_round_trip_plans_identically(world, backend):
    script, testsets, baseline, models = world("full")
    planner = backend.make_planner()
    clone = backend.planner_from_config(planner.export_config())
    assert clone.plan_for(script) == planner.plan_for(script)
    assert clone.export_config() == planner.export_config()


def test_prepack_is_idempotent_and_pure(world, backend):
    script, testsets, baseline, models = world("full")
    plan = backend.make_planner().plan_for(script)
    evaluator = backend.make_evaluator(plan, script.mode)
    testset = testsets[0]
    old_predictions = testset.predict_with(baseline)

    def sample_for(model):
        return PairedSample(
            old_predictions=old_predictions,
            new_predictions=testset.predict_with(model),
            labels=testset.labels,
        )

    before = [evaluator.evaluate(sample_for(model)) for model in models[:2]]
    evaluator.prepack()
    evaluator.prepack()  # idempotent: second call must be a no-op
    after = [evaluator.evaluate(sample_for(model)) for model in models[:2]]
    assert after == before


def test_state_store_contract(backend, tmp_path):
    store = backend.open_state_store(tmp_path / "state", create=True)
    assert store.load_latest() is None
    assert store.latest_info() is None
    assert list(store.quarantined()) == []

    base = store.journal_sequence
    if base is not None:
        store.append_event(COMMIT_RECEIVED, {"sequence": 0, "which": "first"})
        store.append_event(BUILD_RECORDED, {"build_number": 1})
        store.append_event(COMMIT_RECEIVED, {"sequence": 1, "which": "second"})
        assert store.journal_sequence == base + 3
        records = list(store.records_of(COMMIT_RECEIVED))
        assert [r.payload["which"] for r in records] == ["first", "second"]
        assert [r.sequence for r in records] == [base + 1, base + 3]
        assert all(r.type == COMMIT_RECEIVED for r in records)

    info = store.save_snapshot({"format": "conformance-probe", "value": 7})
    assert info.sequence >= 1
    state, loaded_info = store.load_latest()
    assert state["value"] == 7
    assert loaded_info.sequence == info.sequence
    assert loaded_info.journal_sequence == info.journal_sequence

    # A second snapshot strictly advances the sequence and wins load_latest.
    second = store.save_snapshot({"format": "conformance-probe", "value": 8})
    assert second.sequence > info.sequence
    assert store.load_latest()[0]["value"] == 8

    # Reopen from disk: everything above must be durable.
    reopened = backend.open_state_store(tmp_path / "state", create=False)
    assert reopened.load_latest()[0]["value"] == 8
    assert reopened.journal_sequence == store.journal_sequence
    assert str(tmp_path / "state") in reopened.location


def test_open_missing_state_dir_without_create_fails(backend, tmp_path):
    with pytest.raises(Exception):
        backend.open_state_store(tmp_path / "does-not-exist", create=False)


def test_backend_plugs_in_with_zero_engine_edits(backend_name):
    source = Path(engine_module.__file__).read_text(encoding="utf-8")
    assert "naive" not in source, (
        "core/engine.py must never special-case the reference backend"
    )
    if backend_name != "default":
        assert backend_name not in source, (
            f"core/engine.py must not mention backend {backend_name!r}; "
            "backends plug in through repro.core.kernel registration only"
        )
