"""Chaos leg: crash injection at every durable-write boundary.

A proxy store delegates to the backend's real ``StateStore`` and raises
a :class:`SimulatedCrash` at the Nth ``append_event`` — either *before*
delegating (the event is lost with the process) or *after* (the event is
durable, the acknowledgment is lost).  Sweeping N over every append of a
full run proves that whichever write the crash interrupts, a restore
from the surviving files converges on the uninterrupted reference.
"""

import pytest

from repro.ci.service import CIService

from tests.ci.test_restart_parity import assert_parity, finish_queue


class SimulatedCrash(RuntimeError):
    """Raised by the proxy store in place of a process crash."""


class CrashingStateStore:
    """A conforming StateStore that dies at the Nth event append.

    ``crash_at=None`` never crashes (used to count a run's appends).
    ``before=True`` crashes before the write reaches the inner store —
    the event is lost; ``before=False`` crashes after — the event is
    durable but the caller never hears back.
    """

    def __init__(self, inner, crash_at=None, *, before=True):
        self._inner = inner
        self._crash_at = crash_at
        self._before = before
        self.appends = 0

    @property
    def location(self):
        return self._inner.location

    @property
    def journal_sequence(self):
        return self._inner.journal_sequence

    def save_snapshot(self, state):
        return self._inner.save_snapshot(state)

    def load_latest(self, *, quarantine=True):
        return self._inner.load_latest(quarantine=quarantine)

    def append_event(self, type, payload):
        self.appends += 1
        if self._before and self.appends == self._crash_at:
            raise SimulatedCrash(f"lost append #{self.appends} ({type})")
        self._inner.append_event(type, payload)
        if not self._before and self.appends == self._crash_at:
            raise SimulatedCrash(f"unacknowledged append #{self.appends} ({type})")

    def records_of(self, type):
        return self._inner.records_of(type)

    def latest_info(self):
        return self._inner.latest_info()

    def quarantined(self):
        return self._inner.quarantined()


def _run_with_proxy(
    service_factory, backend, world_tuple, state_dir, crash_at=None, *, before=True
):
    """Drive a full run through a crash proxy; report whether it crashed."""
    script, testsets, baseline, models = world_tuple
    service = service_factory(script, testsets, baseline)
    inner = backend.open_state_store(state_dir, create=True)
    proxy = CrashingStateStore(inner, crash_at, before=before)
    service.attach_persistence(proxy)
    crashed = False
    try:
        service.snapshot()
        for model in models:
            service.repository.commit(model, message=model.name)
    except SimulatedCrash:
        crashed = True
    return proxy, crashed


@pytest.mark.parametrize("before", [True, False], ids=["lost-write", "unacked-write"])
def test_crash_at_every_append_restores_identically(
    before, tmp_path, world, service_factory, reference_service_factory, backend
):
    world_tuple = world("full")
    script, testsets, baseline, models = world_tuple

    reference = reference_service_factory(script, testsets, baseline)
    for model in models:
        reference.repository.commit(model, message=model.name)

    # Calibration run: how many appends does an uninterrupted run make?
    calibration, crashed = _run_with_proxy(
        service_factory, backend, world_tuple, tmp_path / "calibration"
    )
    assert not crashed
    total_appends = calibration.appends
    assert total_appends >= len(models)  # at least one event per commit

    for n in range(1, total_appends + 1):
        state_dir = tmp_path / f"{'lost' if before else 'unacked'}-{n:03d}"
        proxy, crashed = _run_with_proxy(
            service_factory, backend, world_tuple, state_dir, n, before=before
        )
        assert crashed, f"append #{n} should have crashed"
        # The process is gone; reopen the directory through the backend
        # and restore from whatever writes completed.
        survivor = backend.open_state_store(state_dir, create=False)
        restored = CIService.restore(survivor)
        finish_queue(restored, models)
        assert_parity(reference, restored)


def test_crash_during_restore_replay_leaves_directory_restorable(
    tmp_path, world, service_factory, reference_service_factory, backend
):
    """A crash while the *restore* itself journals must also be survivable."""
    world_tuple = world("full")
    script, testsets, baseline, models = world_tuple

    reference = reference_service_factory(script, testsets, baseline)
    for model in models:
        reference.repository.commit(model, message=model.name)

    state_dir = tmp_path / "restore-crash"
    service = service_factory(script, testsets, baseline)
    service.attach_persistence(backend.open_state_store(state_dir, create=True))
    service.snapshot()
    for model in models[:5]:
        service.repository.commit(model, message=model.name)
    del service  # crash one

    # Second incarnation crashes on its very first durable write.
    proxy = CrashingStateStore(
        backend.open_state_store(state_dir, create=False), 1, before=True
    )
    with pytest.raises(SimulatedCrash):
        CIService.restore(proxy)

    # Third incarnation restores cleanly and converges.
    restored = CIService.restore(backend.open_state_store(state_dir, create=False))
    finish_queue(restored, models)
    assert_parity(reference, restored)
