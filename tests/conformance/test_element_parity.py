"""Element-wise parity: the backend under test vs the stock components.

The paper's correctness criterion everywhere in this repo is element-wise
equality, and the conformance kit applies it to whole engine lifetimes:
same commits in, identical :class:`CommitResult` stream out — signals,
promotions, budget accounting, alarms and pool rotations — in all three
adaptivity modes, through both the scalar webhook and the batched ingest
path.
"""

import numpy as np
import pytest

from repro.stats.estimation import PairedSampleBatch

from tests.conformance.conftest import ADAPTIVITY_MODES


@pytest.mark.parametrize("adaptivity", ADAPTIVITY_MODES)
def test_submit_stream_is_element_wise_identical(
    adaptivity, world, engine_factory, reference_engine_factory
):
    script, testsets, baseline, models = world(adaptivity)
    engine = engine_factory(script, testsets, baseline)
    reference = reference_engine_factory(script, testsets, baseline)
    for model in models:
        assert engine.submit(model) == reference.submit(model)
    assert engine.results == reference.results
    assert engine.alarm.events == reference.alarm.events
    assert engine.rotations == reference.rotations
    assert engine.manager.generation == reference.manager.generation
    assert engine.manager.uses == reference.manager.uses
    assert engine.manager.remaining == reference.manager.remaining
    assert engine.pool.pending == reference.pool.pending
    assert getattr(engine.active_model, "name", None) == getattr(
        reference.active_model, "name", None
    )


@pytest.mark.parametrize("adaptivity", ADAPTIVITY_MODES)
def test_submit_many_matches_reference_sequential_loop(
    adaptivity, world, engine_factory, reference_engine_factory
):
    # The strongest cross-check in one assertion: the backend's batched
    # drain against the stock backend's one-at-a-time loop.
    script, testsets, baseline, models = world(adaptivity)
    engine = engine_factory(script, testsets, baseline)
    reference = reference_engine_factory(script, testsets, baseline)
    batched = engine.submit_many(models)
    sequential = [reference.submit(model) for model in models]
    assert batched == sequential
    assert engine.rotations == reference.rotations
    assert engine.alarm.events == reference.alarm.events
    assert engine.manager.uses == reference.manager.uses


@pytest.mark.parametrize("adaptivity", ADAPTIVITY_MODES)
def test_service_batch_ingest_parity(
    adaptivity, world, service_factory, reference_service_factory
):
    script, testsets, baseline, models = world(adaptivity)
    service = service_factory(script, testsets, baseline)
    reference = reference_service_factory(script, testsets, baseline)
    service.process_batch(models, messages=[model.name for model in models])
    for model in models:
        reference.repository.commit(model, message=model.name)
    ref, got = reference.builds, service.builds
    assert len(got) == len(ref)
    assert [b.result for b in got] == [b.result for b in ref]
    assert [b.commit.status for b in got] == [b.commit.status for b in ref]
    assert [b.commit.commit_id for b in got] == [b.commit.commit_id for b in ref]
    assert [b.generation for b in got] == [b.generation for b in ref]


def test_evaluate_batch_equals_scalar_evaluate_per_element(world, backend):
    script, testsets, baseline, models = world("full")
    planner = backend.make_planner()
    plan = planner.plan_for(script)
    evaluator = backend.make_evaluator(plan, script.mode)
    testset = testsets[0]
    batch = PairedSampleBatch(
        old_predictions=testset.predict_with(baseline),
        new_prediction_matrix=np.stack(
            [testset.predict_with(model) for model in models[:5]]
        ),
        labels=testset.labels,
    )
    results = evaluator.evaluate_batch(batch)
    assert len(results) == 5
    for i, result in enumerate(results):
        assert result == evaluator.evaluate(batch.sample(i))
