"""Restart parity through the backend's own state store.

The crash model matches ``tests/ci/test_restart_parity.py``: the process
loses all in-memory state but the files a durable write completed are
intact.  A conforming ``StateStore`` must let ``CIService.resume`` pick
up from *any* commit boundary and converge — element for element — on
the uninterrupted reference run.
"""

import pytest

from repro.ci.service import CIService

from tests.ci.test_restart_parity import assert_parity, finish_queue
from tests.conformance.conftest import ADAPTIVITY_MODES


def _persisted_prefix(service_factory, world_tuple, state_dir, k, **persist_kwargs):
    """Run a backend-persisted service for the first ``k`` commits, then 'crash'."""
    script, testsets, baseline, models = world_tuple
    service = service_factory(script, testsets, baseline)
    service.persist_to(state_dir, **persist_kwargs)
    for model in models[:k]:
        service.repository.commit(model, message=model.name)
    # The crash: drop every in-memory object; only state_dir survives.
    return None


@pytest.mark.parametrize("adaptivity", ADAPTIVITY_MODES)
def test_every_commit_boundary_resumes_identically(
    adaptivity, tmp_path, world, service_factory, reference_service_factory, backend_name
):
    world_tuple = world(adaptivity)
    script, testsets, baseline, models = world_tuple
    reference = reference_service_factory(script, testsets, baseline)
    for model in models:
        reference.repository.commit(model, message=model.name)

    for k in range(len(models) + 1):
        state_dir = tmp_path / f"prefix-{k:02d}"
        _persisted_prefix(service_factory, world_tuple, state_dir, k)
        restored = CIService.resume(state_dir, backend=backend_name)
        finish_queue(restored, models)
        assert_parity(reference, restored)


@pytest.mark.parametrize("adaptivity", ADAPTIVITY_MODES)
def test_snapshot_cadence_resumes_identically(
    adaptivity, tmp_path, world, service_factory, reference_service_factory, backend_name
):
    world_tuple = world(adaptivity)
    script, testsets, baseline, models = world_tuple
    reference = reference_service_factory(script, testsets, baseline)
    for model in models:
        reference.repository.commit(model, message=model.name)

    for k in (4, 7, len(models)):
        state_dir = tmp_path / f"cadence-{k:02d}"
        _persisted_prefix(service_factory, world_tuple, state_dir, k, snapshot_every=3)
        store = CIService.resume(state_dir, backend=backend_name)
        finish_queue(store, models)
        assert_parity(reference, store)


def test_double_resume_is_idempotent(
    tmp_path, world, service_factory, reference_service_factory, backend_name
):
    """Resuming the same directory twice never double-spends budget.

    First variant: two resumes from the same partial state, both finish
    the queue independently.  Second variant: the first resumed service
    journals its remaining commits back into the directory, and a
    subsequent resume replays them to the already-finished state.
    """
    world_tuple = world("full")
    script, testsets, baseline, models = world_tuple
    reference = reference_service_factory(script, testsets, baseline)
    for model in models:
        reference.repository.commit(model, message=model.name)

    state_dir = tmp_path / "twice"
    _persisted_prefix(service_factory, world_tuple, state_dir, 6)

    first = CIService.resume(state_dir, backend=backend_name)
    finish_queue(first, models)
    assert_parity(reference, first)

    second = CIService.resume(state_dir, backend=backend_name)
    # ``first`` journaled commits 7..N into the directory, so the replay
    # alone must reach the finished state; finish_queue is then a no-op.
    finish_queue(second, models)
    assert_parity(reference, second)


def test_resume_reports_backend_store_operations(
    tmp_path, world, service_factory, backend_name
):
    world_tuple = world("full")
    script, testsets, baseline, models = world_tuple
    _persisted_prefix(service_factory, world_tuple, tmp_path / "ops", 3)
    restored = CIService.resume(tmp_path / "ops", backend=backend_name)
    ops = restored.operations()
    assert ops.persistence_attached is True
    assert ops.journal_sequence is not None and ops.journal_sequence >= 3
    assert restored.engine.backend.name == backend_name
