"""A deliberately-naive kernel backend, registered from test code.

This module is the proof behind the kit's headline claim: a complete
``Planner`` / ``Evaluator`` / ``StateStore`` triple plugs into
:class:`~repro.core.engine.CIEngine` and :class:`~repro.ci.service.CIService`
through :mod:`repro.core.kernel` registration alone — zero edits to
``core/engine.py`` (``test_contracts.py`` literally asserts the engine
source never mentions this backend).

Every component takes the slowest correct path on purpose:

* :class:`NaivePlanner` — a cache-disabled, strictly-serial
  ``SampleSizeEstimator``: every ``plan_for``/``replan_for`` is a cold
  derivation returning a *new* (structurally equal) plan object, so the
  engine's rotation path exercises its evaluator-rebuild branch.
* :class:`NaiveEvaluator` — no vectorization: ``evaluate_batch`` loops
  the scalar reference evaluation over ``batch.sample(i)``; ``prepack``
  is a no-op.
* :class:`NaiveStateStore` — whole-file pickles plus a rewrite-the-file
  JSON journal.  Valid under the conformance crash model (in-memory
  loss with intact files): snapshots land via write-temp-then-rename
  and the journal rewrite is a temp-file replace, so a durable write is
  atomically whole.

The conformance suite must pass for this backend exactly as it does for
``"default"`` — that equivalence is what certifies the protocol
contracts rather than one implementation's internals.
"""

from __future__ import annotations

import json
import pickle
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.ci.persistence import JournalRecord, SnapshotInfo
from repro.core.estimators.api import SampleSizeEstimator
from repro.core.evaluation import ConditionEvaluator, EvaluationResult
from repro.core.kernel import (
    register_backend,
    register_evaluator,
    register_planner,
    register_state_store,
)
from repro.exceptions import PersistenceError, TestsetSizeError
from repro.utils.serialization import to_jsonable

BACKEND_NAME = "naive"


class NaivePlanner:
    """Cold, serial planning: correct, cache-less, never parallel."""

    def __init__(self, estimator: SampleSizeEstimator):
        self.estimator = estimator

    @classmethod
    def build(cls, *, workers=None, estimator=None, config=None) -> "NaivePlanner":
        if config is not None:
            base = dict(config)
        elif estimator is not None:
            base = estimator.export_config()
        else:
            base = {}
        # Whatever was asked for, plan cold and serially — the naive tier
        # has no cache and no executor.  Plans are pure functions of the
        # condition/spec/config, so results still match the default
        # backend's cached, possibly-parallel derivations bit for bit.
        base["use_plan_cache"] = False
        base["workers"] = None
        self_estimator = SampleSizeEstimator(**base)
        return cls(self_estimator)

    @property
    def workers(self):
        return self.estimator.workers

    def _derive(self, script):
        return self.estimator.plan(
            script.condition,
            delta=script.delta,
            adaptivity=script.adaptivity,
            steps=script.steps,
            known_variance_bound=script.variance_bound,
        )

    def plan_for(self, script):
        return self._derive(script)

    def replan_for(self, script):
        return self._derive(script)

    def export_config(self) -> dict[str, Any]:
        return self.estimator.export_config()

    def plan_requests(self, script) -> list[dict[str, Any]]:
        return [
            {
                "condition": script.condition_source,
                "delta": script.delta,
                "adaptivity": script.adaptivity.value,
                "steps": script.steps,
                "known_variance_bound": script.variance_bound,
                "estimator": self.estimator.export_config(),
            }
        ]


class NaiveEvaluator:
    """No vectorization: the scalar reference evaluation, element by element."""

    def __init__(self, plan, mode, *, enforce_sample_size: bool = True):
        self._scalar = ConditionEvaluator(
            plan, mode, enforce_sample_size=enforce_sample_size
        )

    @property
    def plan(self):
        return self._scalar.plan

    @property
    def mode(self):
        return self._scalar.mode

    @property
    def enforce_sample_size(self) -> bool:
        return self._scalar.enforce_sample_size

    def evaluate(self, sample) -> EvaluationResult:
        return self._scalar.evaluate(sample)

    def evaluate_batch(self, batch) -> tuple[EvaluationResult, ...]:
        if self.enforce_sample_size and len(batch) < self.plan.pool_size:
            raise TestsetSizeError(
                f"testset has {len(batch)} examples but the plan requires "
                f"{self.plan.pool_size}; the ({self.plan.delta:g})-guarantee "
                "would not hold"
            )
        return tuple(
            self._scalar.evaluate(batch.sample(i)) for i in range(batch.batch_size)
        )

    def prepack(self) -> None:
        pass  # nothing to prepack — the loop has no derived state


def _utc_stamp() -> str:
    return datetime.now(timezone.utc).isoformat()


class NaiveStateStore:
    """Whole-file pickles and a rewrite-everything JSON journal.

    Layout under one directory: ``naive-snap-<n>.pickle`` envelopes
    (sequence, journal sequence, state) and ``naive-journal.json`` — a
    single JSON array rewritten in full on every append via a temp-file
    replace.  O(journal) per event and proud of it; what matters for
    conformance is the contract: atomically-whole durable writes,
    1-based sequences, append-order reads.
    """

    def __init__(self, directory: str | Path, *, create: bool = True, sync: bool = True):
        self.directory = Path(directory)
        if create:
            self.directory.mkdir(parents=True, exist_ok=True)
        elif not self.directory.is_dir():
            raise PersistenceError(f"no naive state directory at {self.directory}")
        self._journal_path = self.directory / "naive-journal.json"

    @classmethod
    def open(cls, path, *, create: bool = True, sync: bool = True) -> "NaiveStateStore":
        return cls(path, create=create, sync=sync)

    # -- snapshots ---------------------------------------------------------
    def _snapshot_paths(self) -> list[tuple[int, Path]]:
        found = []
        for path in self.directory.glob("naive-snap-*.pickle"):
            try:
                found.append((int(path.stem.rsplit("-", 1)[1]), path))
            except ValueError:
                continue
        return sorted(found)

    def _info(self, sequence: int, envelope: Mapping[str, Any], path: Path) -> SnapshotInfo:
        return SnapshotInfo(
            sequence=sequence,
            journal_sequence=int(envelope["journal_sequence"]),
            format_version=1,
            path=path,
        )

    def save_snapshot(self, state: Mapping[str, Any]) -> SnapshotInfo:
        existing = self._snapshot_paths()
        sequence = existing[-1][0] + 1 if existing else 1
        envelope = {
            "sequence": sequence,
            "journal_sequence": self.journal_sequence,
            "state": dict(state),
        }
        path = self.directory / f"naive-snap-{sequence:06d}.pickle"
        temp = path.with_suffix(".tmp")
        temp.write_bytes(pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL))
        temp.replace(path)
        return self._info(sequence, envelope, path)

    def load_latest(self, *, quarantine: bool = True):
        existing = self._snapshot_paths()
        if not existing:
            return None
        sequence, path = existing[-1]
        envelope = pickle.loads(path.read_bytes())
        return dict(envelope["state"]), self._info(sequence, envelope, path)

    def latest_info(self) -> SnapshotInfo | None:
        existing = self._snapshot_paths()
        if not existing:
            return None
        sequence, path = existing[-1]
        envelope = pickle.loads(path.read_bytes())
        return self._info(sequence, envelope, path)

    def quarantined(self) -> list:
        return []

    # -- the event record --------------------------------------------------
    @property
    def location(self) -> str:
        return str(self.directory)

    def _read_journal(self) -> list[dict[str, Any]]:
        if not self._journal_path.exists():
            return []
        return json.loads(self._journal_path.read_text(encoding="utf-8"))

    @property
    def journal_sequence(self) -> int:
        return len(self._read_journal())

    def append_event(self, type: str, payload: Mapping[str, Any]) -> None:
        records = self._read_journal()
        records.append(
            to_jsonable(
                {
                    "sequence": len(records) + 1,
                    "type": type,
                    "recorded_at": _utc_stamp(),
                    "payload": dict(payload),
                }
            )
        )
        temp = self._journal_path.with_suffix(".tmp")
        temp.write_text(json.dumps(records), encoding="utf-8")
        temp.replace(self._journal_path)

    def records_of(self, type: str) -> Iterator[JournalRecord]:
        for record in self._read_journal():
            if record["type"] == type:
                yield JournalRecord(
                    sequence=int(record["sequence"]),
                    type=record["type"],
                    recorded_at=record["recorded_at"],
                    payload=record["payload"],
                )


def register() -> str:
    """Register the naive triple (idempotent; module import calls it)."""
    from repro.core.kernel import available_backends

    if BACKEND_NAME not in available_backends():
        register_planner(BACKEND_NAME, NaivePlanner.build)
        register_evaluator(BACKEND_NAME, NaiveEvaluator)
        register_state_store(BACKEND_NAME, NaiveStateStore.open)
        register_backend(
            BACKEND_NAME,
            planner=BACKEND_NAME,
            evaluator=BACKEND_NAME,
            state_store=BACKEND_NAME,
        )
    return BACKEND_NAME


register()
