"""Fixture factories of the backend conformance kit.

The suite certifies one backend per run — selected with
``--engine-backend <name>`` (default ``"default"``) — by comparing its
observable behavior element-wise against *reference* engines/services
built on the stock components.  CI runs it once per registered backend;
a new backend earns its registration by passing with

    pytest tests/conformance --engine-backend <name>

and nothing else.  Fixtures come in pairs: ``engine_factory`` /
``service_factory`` build on the backend under test, their
``reference_*`` twins on ``"default"``.
"""

from __future__ import annotations

import pytest

from repro.ci.repository import ModelRepository
from repro.ci.service import CIService
from repro.core.engine import CIEngine
from repro.core.kernel import KernelBackend, available_backends, get_backend
from repro.core.testset import TestsetPool

import tests.conformance.naive_backend  # noqa: F401  (registers "naive")

ADAPTIVITY_MODES = ["full", "none -> third-party@example.com", "firstChange"]


@pytest.fixture(scope="session")
def backend_name(request) -> str:
    name = request.config.getoption("--engine-backend")
    if name not in available_backends():
        raise pytest.UsageError(
            f"--engine-backend {name!r} is not registered; "
            f"known backends: {', '.join(available_backends())}"
        )
    return name


@pytest.fixture(scope="session")
def backend(backend_name) -> KernelBackend:
    return get_backend(backend_name)


@pytest.fixture(scope="session")
def world(parity_world_cache):
    """``get(adaptivity) -> (script, testsets, baseline, models)``, cached."""
    return parity_world_cache


@pytest.fixture
def engine_factory(backend_name):
    """Build a pool-aware engine on the backend under test."""

    def build(script, testsets, baseline, **kwargs):
        return CIEngine(
            script,
            testsets[0],
            baseline,
            testset_pool=TestsetPool(list(testsets[1:])),
            backend=backend_name,
            **kwargs,
        )

    return build


@pytest.fixture
def reference_engine_factory():
    """The same engine shape on the stock backend (the parity oracle)."""

    def build(script, testsets, baseline, **kwargs):
        return CIEngine(
            script,
            testsets[0],
            baseline,
            testset_pool=TestsetPool(list(testsets[1:])),
            **kwargs,
        )

    return build


def _service(script, testsets, baseline, backend_name=None):
    kwargs = {} if backend_name is None else {"backend": backend_name}
    service = CIService(
        script,
        testsets[0],
        baseline,
        repository=ModelRepository(nonce="conformance-nonce"),
        **kwargs,
    )
    service.install_testset_pool(TestsetPool(list(testsets[1:])))
    return service


@pytest.fixture
def service_factory(backend_name):
    """Build a pool-aware service whose engine runs the backend under test."""

    def build(script, testsets, baseline):
        return _service(script, testsets, baseline, backend_name=backend_name)

    return build


@pytest.fixture
def reference_service_factory():
    def build(script, testsets, baseline):
        return _service(script, testsets, baseline)

    return build
