"""Pool-aware engine: generation-spanning submits match manual rotation.

The acceptance contract of the testset-pool subsystem: an engine with a
:class:`TestsetPool` attached produces commit results *element-wise
identical* to an engine whose caller hand-rolls the rotate-and-resubmit
loop (catch ``TestsetExhaustedError`` -> ``install_testset`` -> retry),
under all three adaptivity modes — while never surfacing the error until
the pool is truly dry.
"""

import numpy as np
import pytest

from repro.core.engine import CIEngine
from repro.core.estimators.api import SampleSizeEstimator
from repro.core.script.config import CIScript
from repro.core.testset import Testset, TestsetPool
from repro.exceptions import EngineStateError, TestsetExhaustedError
from repro.ml.models.base import FixedPredictionModel
from repro.ml.models.simulated import (
    ModelPairSpec,
    evolve_predictions,
    simulate_model_pair,
)

CONDITION = "d < 0.25 +/- 0.1 /\\ n - o > 0.05 +/- 0.1"


def make_script(adaptivity, mode="fp-free", steps=4):
    return CIScript.from_dict(
        {
            "script": "./test_model.py",
            "condition": CONDITION,
            "reliability": 0.999,
            "mode": mode,
            "adaptivity": adaptivity,
            "steps": steps,
        }
    )


def make_world(script, commits=10, promote_at=(2, 6), generations=3, seed=0):
    """Commit queue plus `generations` equally-sized testsets."""
    plan = SampleSizeEstimator().plan(
        script.condition,
        delta=script.delta,
        adaptivity=script.adaptivity,
        steps=script.steps,
        known_variance_bound=script.variance_bound,
    )
    pair = simulate_model_pair(
        ModelPairSpec(old_accuracy=0.80, new_accuracy=0.80, difference=0.0),
        n_examples=plan.pool_size,
        seed=seed,
    )
    labels = pair.labels
    models, current = [], pair.old_model.predictions
    for i in range(commits):
        target = 0.88 if i in promote_at else 0.81
        predictions = evolve_predictions(
            current, labels, target_accuracy=target, difference=0.12, seed=100 + i
        )
        models.append(FixedPredictionModel(predictions, name=f"m{i}"))
        if i in promote_at:
            current = predictions
    rng = np.random.default_rng(seed + 1)
    testsets = [Testset(labels=labels, name="gen-0")]
    for g in range(1, generations):
        testsets.append(
            Testset(
                labels=rng.integers(0, 2, size=plan.pool_size),
                name=f"gen-{g}",
            )
        )
    return testsets, pair.old_model, models


def manual_rotation_loop(script, testsets, baseline, models):
    """The caller-side idiom the pool replaces: catch, install, resubmit."""
    engine = CIEngine(script, testsets[0], baseline)
    next_generation = 1
    results, error = [], None
    for model in models:
        while True:
            try:
                results.append(engine.submit(model))
                break
            except TestsetExhaustedError as exc:
                if next_generation >= len(testsets):
                    error = str(exc)
                    break
            engine.install_testset(testsets[next_generation])
            next_generation += 1
        if error is not None:
            break
    return engine, results, error


def pooled_engine(script, testsets, baseline):
    return CIEngine(
        script,
        testsets[0],
        baseline,
        testset_pool=TestsetPool(testsets[1:]),
    )


@pytest.mark.parametrize(
    "adaptivity", ["full", "none -> third-party@example.com", "firstChange"]
)
def test_submit_many_spans_generations_identically(adaptivity):
    script = make_script(adaptivity)
    testsets, baseline, models = make_world(script)
    manual, manual_results, manual_error = manual_rotation_loop(
        script, testsets, baseline, models
    )
    assert manual_error is None  # 3 generations x 4 steps cover 10 commits

    pooled = pooled_engine(script, testsets, baseline)
    pooled_results = pooled.submit_many(models)

    assert len(pooled_results) == len(manual_results) == len(models)
    for a, b in zip(manual_results, pooled_results):
        assert a == b  # evaluation, signals, uses, generation, alarms
    assert [r.generation for r in pooled_results] == [
        r.generation for r in manual_results
    ]
    assert manual.manager.generation == pooled.manager.generation
    assert manual.manager.uses == pooled.manager.uses
    assert np.array_equal(manual._active_predictions, pooled._active_predictions)
    assert getattr(manual.active_model, "name", None) == getattr(
        pooled.active_model, "name", None
    )


@pytest.mark.parametrize(
    "adaptivity", ["full", "none -> third-party@example.com", "firstChange"]
)
def test_sequential_submit_rotates_identically(adaptivity):
    script = make_script(adaptivity)
    testsets, baseline, models = make_world(script)
    _, manual_results, _ = manual_rotation_loop(script, testsets, baseline, models)

    pooled = pooled_engine(script, testsets, baseline)
    pooled_results = [pooled.submit(model) for model in models]
    assert pooled_results == manual_results


def test_rotation_mid_submit_many_rebatches_remainder():
    script = make_script("full", steps=4)
    testsets, baseline, models = make_world(script, commits=10)
    pooled = pooled_engine(script, testsets, baseline)
    results = pooled.submit_many(models)

    assert len(results) == 10
    assert [r.generation for r in results] == [1] * 4 + [2] * 4 + [3] * 2
    assert [r.testset_uses for r in results] == [1, 2, 3, 4] * 2 + [1, 2]
    # two mid-queue rotations happened, both budget-driven
    assert len(pooled.rotations) == 2
    assert [e.from_generation for e in pooled.rotations] == [1, 2]
    assert [e.to_generation for e in pooled.rotations] == [2, 3]
    # the budget-exhaustion alarms still fired on the retiring commits
    alarmed = [r.commit_index for r in results if r.alarm_event is not None]
    assert alarmed[:2] == [3, 7]


def test_alarm_triggered_rotation_under_full_adaptivity():
    """The alarm fires on retirement and the next submit rotates silently."""
    script = make_script("full", steps=4)
    testsets, baseline, models = make_world(script, commits=6)
    mails = []
    pooled = CIEngine(
        script,
        testsets[0],
        baseline,
        testset_pool=TestsetPool(testsets[1:]),
        notifier=lambda *args: mails.append(args),
    )
    for model in models[:4]:
        pooled.submit(model)
    assert pooled.manager.is_exhausted  # alarm fired, generation retired
    assert pooled.alarm.fired
    assert pooled.rotations == []

    result = pooled.submit(models[4])  # no error: rotation happens here
    assert result.generation == 2
    assert result.testset_uses == 1
    assert len(pooled.rotations) == 1
    rotation_mails = [m for m in mails if "rotated" in m[1]]
    assert len(rotation_mails) == 1
    assert "generation 2" in rotation_mails[0][2]


def test_first_change_pass_rotates_on_next_submit():
    # fn-free resolves UNKNOWN to pass, so every commit passes — and under
    # firstChange every pass retires its generation immediately.
    script = make_script("firstChange", mode="fn-free", steps=4)
    testsets, baseline, models = make_world(script, commits=3)
    pooled = pooled_engine(script, testsets, baseline)
    results = pooled.submit_many(models)

    assert [r.truly_passed for r in results] == [True, True, True]
    assert [r.generation for r in results] == [1, 2, 3]
    assert [r.testset_uses for r in results] == [1, 1, 1]
    assert all(r.alarm_event is not None for r in results)  # first-change
    assert len(pooled.rotations) == 2
    _, manual_results, manual_error = manual_rotation_loop(
        script, testsets, baseline, models
    )
    assert manual_error is None
    assert results == manual_results


def test_empty_pool_still_raises_when_truly_dry():
    script = make_script("full", steps=4)
    testsets, baseline, models = make_world(script, commits=10, generations=2)
    pooled = pooled_engine(script, testsets, baseline)
    with pytest.raises(TestsetExhaustedError):
        pooled.submit_many(models)
    # both generations were fully served before the error surfaced
    assert pooled.commits_evaluated == 8
    assert [r.generation for r in pooled.results] == [1] * 4 + [2] * 4
    assert pooled.pool.is_empty
    with pytest.raises(TestsetExhaustedError):
        pooled.submit(models[8])


def test_refilling_the_pool_revives_a_dry_engine():
    script = make_script("full", steps=4)
    testsets, baseline, models = make_world(script, commits=10, generations=3)
    pooled = pooled_engine(script, testsets[:2], baseline)
    with pytest.raises(TestsetExhaustedError):
        pooled.submit_many(models)
    pooled.pool.add(testsets[2])
    remainder = pooled.submit_many(models[pooled.commits_evaluated:])
    assert len(remainder) == 2
    assert all(r.generation == 3 for r in remainder)


def test_mixed_submit_and_submit_many_match_manual(adaptivity="full"):
    script = make_script(adaptivity)
    testsets, baseline, models = make_world(script)
    _, manual_results, _ = manual_rotation_loop(script, testsets, baseline, models)
    pooled = pooled_engine(script, testsets, baseline)
    mixed = [pooled.submit(models[0])]
    mixed += pooled.submit_many(models[1:7])
    mixed.append(pooled.submit(models[7]))
    mixed += pooled.submit_many(models[8:])
    assert mixed == manual_results


def test_engine_can_start_from_the_pool_alone():
    script = make_script("full")
    testsets, baseline, models = make_world(script, commits=3)
    engine = CIEngine(
        script, None, baseline, testset_pool=TestsetPool(testsets)
    )
    assert engine.manager.current.name == "gen-0"
    results = engine.submit_many(models)
    assert [r.generation for r in results] == [1, 1, 1]
    with pytest.raises(EngineStateError):
        CIEngine(script, None, baseline)


def test_undersized_pool_generation_fails_without_corrupting_state():
    from repro.exceptions import TestsetSizeError

    script = make_script("full", steps=4)
    testsets, baseline, models = make_world(script, commits=6, generations=2)
    runt = Testset(labels=np.zeros(4, dtype=int), name="runt")

    # constructor: the undersized first generation is rejected before the
    # pool pop consumes it
    pool = TestsetPool([runt] + testsets)
    with pytest.raises(TestsetSizeError):
        CIEngine(script, None, baseline, testset_pool=pool)
    assert pool.pending == 3 and pool.popped == 0

    # rotation: the size check fires before the pop consumes the entry,
    # so the pool keeps its audit trail and the engine stays in its
    # recoverable released state; a sized install revives it
    engine = CIEngine(
        script, testsets[0], baseline, testset_pool=TestsetPool([runt])
    )
    with pytest.raises(TestsetSizeError):
        engine.submit_many(models)
    assert engine.commits_evaluated == 4
    assert engine.pool.pending == 1 and engine.pool.popped == 0
    assert engine.rotations == []
    assert engine.manager.is_exhausted  # recoverable, not wedged
    engine.install_testset(testsets[1])
    assert engine.submit(models[4]).generation == 2


def test_pool_default_budget_filled_from_adaptivity_accounting():
    script = make_script("full", steps=4)
    testsets, baseline, _ = make_world(script, commits=1)
    pool = TestsetPool(testsets[1:])
    assert pool.default_budget is None
    CIEngine(script, testsets[0], baseline, testset_pool=pool)
    assert pool.default_budget == script.adaptivity.evaluations_per_testset(
        script.steps
    ) == 4
    assert pool.remaining_evaluations() == 2 * 4


def test_low_watermark_fires_during_engine_rotation():
    script = make_script("full", steps=4)
    testsets, baseline, models = make_world(script, commits=10)
    pool = TestsetPool(testsets[1:], low_watermark=1)
    events = []
    pool.on_low_watermark(events.append)
    engine = CIEngine(script, testsets[0], baseline, testset_pool=pool)
    engine.submit_many(models)
    # two rotations: 2 -> 1 pending (at watermark), 1 -> 0 pending (below)
    assert [e.pending_generations for e in events] == [1, 0]
