"""The batched evaluator is element-wise identical to the scalar reference."""

import pickle

import numpy as np
import pytest

from repro.core.estimators.api import SampleSizeEstimator
from repro.core.evaluation import ConditionEvaluator, EvaluationResult
from repro.core.logic import Mode, TernaryResult
from repro.exceptions import TestsetSizeError
from repro.stats.estimation import PairedSampleBatch


def make_batch(m, size=12, seed=0):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 3, size=m)
    old = labels.copy()
    old[rng.random(m) < 0.2] += 1
    old %= 3
    matrix = np.tile(labels, (size, 1))
    for i in range(size):
        wrong = rng.random(m) < rng.uniform(0.05, 0.4)
        matrix[i, wrong] = (matrix[i, wrong] + 1 + (i % 2)) % 3
    return PairedSampleBatch(
        old_predictions=old, new_prediction_matrix=matrix, labels=labels
    )


PLANS = [
    # baseline multi-variable Hoeffding clauses
    ("n > 0.6 +/- 0.1 /\\ d < 0.4 +/- 0.1 /\\ n - o > -0.2 +/- 0.15", {}),
    # pattern 2: Bennett on the paired gain
    ("n - o > 0.02 +/- 0.1", {"known_variance_bound": 0.4}),
    # pattern 1: hierarchical d-clause plus Bennett gain clause
    ("d < 0.45 +/- 0.1 /\\ n - o > 0.0 +/- 0.12", {}),
]


@pytest.mark.parametrize("condition,extra", PLANS)
@pytest.mark.parametrize("mode", ["fp-free", "fn-free"])
def test_batch_equals_scalar(condition, extra, mode):
    plan = SampleSizeEstimator().plan(condition, delta=1e-2, steps=2, **extra)
    evaluator = ConditionEvaluator(plan, mode, enforce_sample_size=False)
    batch = make_batch(m=400)
    batched = evaluator.evaluate_batch(batch)
    assert len(batched) == batch.batch_size
    for i, result in enumerate(batched):
        reference = evaluator.evaluate(batch.sample(i))
        assert result.ternary is reference.ternary
        assert result.passed == reference.passed
        assert result == reference  # materializes the lazy diagnostics
        assert result.describe() == reference.describe()


def test_batch_respects_sample_size_enforcement():
    plan = SampleSizeEstimator().plan("n > 0.8 +/- 0.02", delta=1e-3, steps=1)
    evaluator = ConditionEvaluator(plan, "fp-free")
    with pytest.raises(TestsetSizeError):
        evaluator.evaluate_batch(make_batch(m=50))


def test_empty_batch():
    plan = SampleSizeEstimator().plan("n > 0.5 +/- 0.2", delta=1e-2, steps=1)
    evaluator = ConditionEvaluator(plan, "fp-free", enforce_sample_size=False)
    batch = make_batch(m=30, size=0)
    assert evaluator.evaluate_batch(batch) == ()


def test_deferred_result_pickles_after_materialization_contract():
    plan = SampleSizeEstimator().plan("n > 0.5 +/- 0.2", delta=1e-2, steps=1)
    evaluator = ConditionEvaluator(plan, "fp-free", enforce_sample_size=False)
    result = evaluator.evaluate_batch(make_batch(m=60, size=3))[0]
    clone = pickle.loads(pickle.dumps(result))
    assert clone == result
    assert clone.clause_evaluations == result.clause_evaluations


def test_results_serialize_like_the_old_dataclass():
    from repro.utils.serialization import to_jsonable

    plan = SampleSizeEstimator().plan("n > 0.5 +/- 0.2", delta=1e-2, steps=1)
    evaluator = ConditionEvaluator(plan, "fp-free", enforce_sample_size=False)
    batch = make_batch(m=60, size=2)
    deferred = to_jsonable(evaluator.evaluate_batch(batch)[0])
    eager = to_jsonable(evaluator.evaluate(batch.sample(0)))
    assert deferred == eager
    assert set(deferred) == {"ternary", "passed", "mode", "clause_evaluations"}


def test_eager_constructor_still_works():
    result = EvaluationResult(
        ternary=TernaryResult.TRUE,
        passed=True,
        mode=Mode.FP_FREE,
        clause_evaluations=(),
    )
    assert result.was_determinate and result.clause_evaluations == ()
