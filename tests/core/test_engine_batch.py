"""submit_many is element-wise identical to a loop of submit calls."""

import numpy as np
import pytest

from repro.core.engine import CIEngine
from repro.core.estimators.api import SampleSizeEstimator
from repro.core.script.config import CIScript
from repro.core.testset import Testset
from repro.exceptions import TestsetExhaustedError
from repro.ml.models.base import FixedPredictionModel
from repro.ml.models.simulated import (
    ModelPairSpec,
    evolve_predictions,
    simulate_model_pair,
)

CONDITION = "d < 0.25 +/- 0.1 /\\ n - o > 0.05 +/- 0.1"


def make_script(adaptivity, mode="fp-free", steps=6):
    return CIScript.from_dict(
        {
            "script": "./test_model.py",
            "condition": CONDITION,
            "reliability": 0.999,
            "mode": mode,
            "adaptivity": adaptivity,
            "steps": steps,
        }
    )


def make_world(script, commits=8, promote_at=(2, 5), seed=0):
    plan = SampleSizeEstimator().plan(
        script.condition,
        delta=script.delta,
        adaptivity=script.adaptivity,
        steps=script.steps,
        known_variance_bound=script.variance_bound,
    )
    pair = simulate_model_pair(
        ModelPairSpec(old_accuracy=0.80, new_accuracy=0.80, difference=0.0),
        n_examples=plan.pool_size,
        seed=seed,
    )
    labels = pair.labels
    models, current = [], pair.old_model.predictions
    for i in range(commits):
        target = 0.88 if i in promote_at else 0.81
        predictions = evolve_predictions(
            current, labels, target_accuracy=target, difference=0.12, seed=100 + i
        )
        models.append(FixedPredictionModel(predictions, name=f"m{i}"))
        if i in promote_at:
            current = predictions
    return labels, pair.old_model, models


def run_both(script, labels, baseline, models):
    """Sequential loop and submit_many on twin engines; return everything."""
    mail_seq, mail_batch = [], []
    sequential = CIEngine(
        script,
        Testset(labels=labels),
        baseline,
        notifier=lambda *args: mail_seq.append(args),
    )
    batched = CIEngine(
        script,
        Testset(labels=labels),
        baseline,
        notifier=lambda *args: mail_batch.append(args),
    )
    seq_results, seq_error = [], None
    for model in models:
        try:
            seq_results.append(sequential.submit(model))
        except TestsetExhaustedError as exc:
            seq_error = str(exc)
            break
    batch_error = None
    try:
        batch_results = batched.submit_many(models)
    except TestsetExhaustedError as exc:
        batch_error = str(exc)
        batch_results = batched.results
    return (
        sequential,
        batched,
        seq_results,
        batch_results,
        seq_error,
        batch_error,
        mail_seq,
        mail_batch,
    )


@pytest.mark.parametrize(
    "adaptivity", ["full", "none -> third-party@example.com", "firstChange"]
)
@pytest.mark.parametrize("mode", ["fp-free", "fn-free"])
def test_submit_many_matches_sequential(adaptivity, mode):
    script = make_script(adaptivity, mode=mode)
    labels, baseline, models = make_world(script)
    (seq, bat, seq_results, batch_results, seq_error, batch_error,
     mail_seq, mail_batch) = run_both(script, labels, baseline, models)

    assert seq_error == batch_error
    assert len(seq_results) == len(batch_results)
    for a, b in zip(seq_results, batch_results):
        assert a == b  # covers evaluation, signals, alarms, uses, indices
    assert mail_seq == mail_batch
    assert seq.manager.uses == bat.manager.uses
    assert seq.manager.generation == bat.manager.generation
    assert seq.manager.is_exhausted == bat.manager.is_exhausted
    # active-model chain: both engines end on the same promoted commit
    assert getattr(seq.active_model, "name", None) == getattr(
        bat.active_model, "name", None
    )
    assert np.array_equal(seq._active_predictions, bat._active_predictions)


def test_promotion_rebatches_against_new_baseline():
    script = make_script("full", mode="fn-free", steps=8)
    labels, baseline, models = make_world(script, promote_at=(1, 4))
    _, bat, seq_results, batch_results, *_ = run_both(
        script, labels, baseline, models
    )
    promotions = [r.promoted for r in batch_results]
    assert any(promotions)
    # commits after a promotion are compared against the promoted model
    assert [r.promoted for r in seq_results] == promotions


def test_budget_exhaustion_mid_queue_preserves_results_and_raises():
    script = make_script("full", steps=4)
    labels, baseline, models = make_world(script)
    engine = CIEngine(script, Testset(labels=labels), baseline)
    with pytest.raises(TestsetExhaustedError):
        engine.submit_many(models)
    assert engine.commits_evaluated == 4  # budget consumed before the raise
    assert engine.results[-1].alarm_event is not None


def test_empty_queue_is_a_no_op():
    script = make_script("full")
    labels, baseline, _ = make_world(script)
    engine = CIEngine(script, Testset(labels=labels), baseline)
    assert engine.submit_many([]) == []
    assert engine.manager.uses == 0


def test_submit_many_interleaves_with_submit():
    script = make_script("full", steps=6)
    labels, baseline, models = make_world(script, commits=6, promote_at=(1,))
    sequential = CIEngine(script, Testset(labels=labels), baseline)
    mixed = CIEngine(script, Testset(labels=labels), baseline)
    seq_results = [sequential.submit(m) for m in models]
    mixed_results = [mixed.submit(models[0])]
    mixed_results += mixed.submit_many(models[1:4])
    mixed_results.append(mixed.submit(models[4]))
    mixed_results += mixed.submit_many(models[5:])
    assert seq_results == mixed_results
