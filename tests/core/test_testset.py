"""Tests for Testset and TestsetManager lifecycle."""

import numpy as np
import pytest

from repro.core.testset import Testset, TestsetManager
from repro.exceptions import EngineStateError, TestsetExhaustedError
from repro.ml.models.base import FixedPredictionModel


@pytest.fixture
def testset():
    return Testset(labels=np.array([0, 1, 0, 1]), name="t1")


class TestTestset:
    def test_default_features_are_indices(self, testset):
        np.testing.assert_array_equal(testset.features, np.arange(4))

    def test_size(self, testset):
        assert testset.size == 4 and len(testset) == 4

    def test_feature_label_mismatch(self):
        with pytest.raises(EngineStateError, match="align"):
            Testset(labels=np.array([0, 1]), features=np.zeros((3,)))

    def test_labels_must_be_1d(self):
        with pytest.raises(EngineStateError, match="one-dimensional"):
            Testset(labels=np.zeros((2, 2)))

    def test_predict_with(self, testset):
        model = FixedPredictionModel(np.array([0, 1, 1, 1]))
        np.testing.assert_array_equal(
            testset.predict_with(model), np.array([0, 1, 1, 1])
        )

    def test_predict_with_wrong_length_model(self, testset):
        class Short:
            def predict(self, features):
                return np.array([1])

        with pytest.raises(EngineStateError, match="predictions"):
            testset.predict_with(Short())


class TestManagerLifecycle:
    def test_consume_counts(self, testset):
        manager = TestsetManager(testset, budget=3)
        assert manager.consume() == 1
        assert manager.consume() == 2
        assert manager.remaining == 1

    def test_budget_spent_flag(self, testset):
        manager = TestsetManager(testset, budget=1)
        assert not manager.budget_spent
        manager.consume()
        assert manager.budget_spent

    def test_consume_after_retire_raises(self, testset):
        manager = TestsetManager(testset, budget=2)
        manager.retire()
        with pytest.raises(TestsetExhaustedError):
            manager.consume()

    def test_current_after_retire_raises(self, testset):
        manager = TestsetManager(testset, budget=2)
        manager.retire()
        with pytest.raises(TestsetExhaustedError):
            _ = manager.current

    def test_retire_returns_devset(self, testset):
        manager = TestsetManager(testset, budget=2)
        released = manager.retire()
        assert released is testset
        assert manager.released_testsets == [testset]

    def test_double_retire_raises(self, testset):
        manager = TestsetManager(testset, budget=2)
        manager.retire()
        with pytest.raises(EngineStateError, match="already released"):
            manager.retire()

    def test_install_requires_retired(self, testset):
        manager = TestsetManager(testset, budget=2)
        with pytest.raises(EngineStateError, match="retire"):
            manager.install(Testset(labels=np.array([1, 0])))

    def test_install_new_generation(self, testset):
        manager = TestsetManager(testset, budget=2)
        manager.retire()
        fresh = Testset(labels=np.array([1, 0]), name="t2")
        manager.install(fresh)
        assert manager.generation == 2
        assert manager.current is fresh
        assert manager.remaining == 2  # budget resets

    def test_install_custom_budget(self, testset):
        manager = TestsetManager(testset, budget=2)
        manager.retire()
        manager.install(Testset(labels=np.array([1, 0])), budget=7)
        assert manager.remaining == 7

    def test_is_exhausted(self, testset):
        manager = TestsetManager(testset, budget=1)
        assert not manager.is_exhausted
        manager.retire()
        assert manager.is_exhausted
