"""Tests for the SampleSizePlan / ClausePlan result objects."""

import pytest

from repro.core.estimators.api import SampleSizeEstimator
from repro.core.dsl.parser import parse_condition


@pytest.fixture
def pattern1_plan():
    return SampleSizeEstimator().plan(
        "d < 0.1 +/- 0.01 /\\ n - o > 0.02 +/- 0.01",
        reliability=0.9999,
        adaptivity="none",
        steps=32,
    )


@pytest.fixture
def baseline_plan():
    return SampleSizeEstimator(optimizations="none").plan(
        "n - o > 0.02 +/- 0.05", reliability=0.99, adaptivity="none", steps=4
    )


class TestSampleSizePlan:
    def test_samples_counts_only_labeled_clauses(self, pattern1_plan):
        assert pattern1_plan.samples == 29048
        assert pattern1_plan.pool_size == 66847

    def test_baseline_pool_equals_samples(self, baseline_plan):
        assert baseline_plan.pool_size == baseline_plan.samples

    def test_labels_per_evaluation(self, pattern1_plan):
        assert pattern1_plan.labels_per_evaluation == 2905

    def test_effective_delta(self, baseline_plan):
        assert baseline_plan.effective_delta == pytest.approx(0.01 / 4)

    def test_clause_plan_lookup(self, pattern1_plan):
        clause = pattern1_plan.formula.clauses[1]
        assert pattern1_plan.clause_plan_for(clause).clause == clause

    def test_clause_plan_lookup_missing(self, pattern1_plan):
        stray = parse_condition("n > 0.5 +/- 0.1").clauses[0]
        with pytest.raises(KeyError):
            pattern1_plan.clause_plan_for(stray)

    def test_describe_contains_key_facts(self, pattern1_plan):
        text = pattern1_plan.describe()
        assert "29,048" in text
        assert "66,847" in text
        assert "label-free" in text
        assert "pattern 1" in text

    def test_samples_int_ceils(self, baseline_plan):
        clause_plan = baseline_plan.clause_plans[0]
        assert clause_plan.samples_int >= clause_plan.samples - 1

    def test_variable_tolerances_keys(self, baseline_plan):
        clause_plan = baseline_plan.clause_plans[0]
        assert set(clause_plan.variable_tolerances()) == {"n", "o"}

    def test_expression_tolerance_matches_clause(self, baseline_plan):
        clause_plan = baseline_plan.clause_plans[0]
        assert clause_plan.expression_tolerance == pytest.approx(0.05)
