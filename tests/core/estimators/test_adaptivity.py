"""Tests for the adaptivity budget rules (§3.2–3.4)."""

import math

import pytest

from repro.core.estimators.adaptivity import Adaptivity
from repro.exceptions import InvalidParameterError


class TestBudgets:
    def test_none_divides_by_steps(self):
        assert Adaptivity.NONE.effective_delta(0.01, 10) == pytest.approx(0.001)

    def test_full_divides_by_two_to_steps(self):
        assert Adaptivity.FULL.effective_delta(0.01, 4) == pytest.approx(0.01 / 16)

    def test_first_change_same_as_none(self):
        # §3.4: the hybrid mode pays in lifetime, not in samples.
        assert Adaptivity.FIRST_CHANGE.effective_delta(
            0.01, 10
        ) == Adaptivity.NONE.effective_delta(0.01, 10)

    def test_single_step_all_equal_except_full(self):
        none = Adaptivity.NONE.effective_delta(0.01, 1)
        full = Adaptivity.FULL.effective_delta(0.01, 1)
        assert none == pytest.approx(0.01)
        assert full == pytest.approx(0.005)

    def test_log_form_survives_huge_h(self):
        # 2^-10000 underflows a float, but the log stays finite.
        log_delta = Adaptivity.FULL.log_effective_delta(0.01, 10_000)
        assert log_delta == pytest.approx(math.log(0.01) - 10_000 * math.log(2))
        assert Adaptivity.FULL.effective_delta(0.01, 10_000) == 0.0  # underflow

    def test_invalid_delta(self):
        with pytest.raises(InvalidParameterError):
            Adaptivity.NONE.effective_delta(0.0, 5)

    def test_invalid_steps(self):
        with pytest.raises(InvalidParameterError):
            Adaptivity.FULL.effective_delta(0.01, 0)


class TestParsing:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("none", Adaptivity.NONE),
            ("full", Adaptivity.FULL),
            ("firstChange", Adaptivity.FIRST_CHANGE),
            ("FIRSTCHANGE", Adaptivity.FIRST_CHANGE),
            ("  full  ", Adaptivity.FULL),
        ],
    )
    def test_parse(self, text, expected):
        assert Adaptivity.parse(text) is expected

    def test_parse_unknown(self):
        with pytest.raises(InvalidParameterError, match="unknown adaptivity"):
            Adaptivity.parse("partial")


class TestBehaviourFlags:
    def test_signal_release(self):
        assert Adaptivity.FULL.releases_signal_to_developer
        assert Adaptivity.FIRST_CHANGE.releases_signal_to_developer
        assert not Adaptivity.NONE.releases_signal_to_developer

    def test_retirement_rule(self):
        assert Adaptivity.FIRST_CHANGE.retires_testset_on_pass
        assert not Adaptivity.FULL.retires_testset_on_pass
        assert not Adaptivity.NONE.retires_testset_on_pass
