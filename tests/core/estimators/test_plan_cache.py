"""The process-wide plan cache: identity, keying, and invalidation."""

import pytest

from repro.core.estimators.api import SampleSizeEstimator
from repro.stats.cache import clear_all_caches

CONDITION = "n - o > 0.02 +/- 0.01 /\\ n > 0.8 +/- 0.05"
SPEC = {"reliability": 0.999, "adaptivity": "full", "steps": 16}


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_all_caches()
    yield
    clear_all_caches()


class TestPlanCache:
    def test_cached_plan_identical_to_cold(self):
        estimator = SampleSizeEstimator()
        cold = estimator.plan(CONDITION, **SPEC)
        warm = estimator.plan(CONDITION, **SPEC)
        assert warm == cold
        assert warm is cold  # served from cache, not recomputed

    def test_cached_matches_uncached_estimator(self):
        cached = SampleSizeEstimator().plan(CONDITION, **SPEC)
        uncached = SampleSizeEstimator(use_plan_cache=False).plan(CONDITION, **SPEC)
        assert cached == uncached

    def test_textual_variants_share_an_entry(self):
        estimator = SampleSizeEstimator()
        a = estimator.plan("n > 0.8 +/- 0.05", **SPEC)
        b = estimator.plan("n>0.8+/-0.05", **SPEC)
        assert a is b

    def test_cache_shared_across_instances(self):
        a = SampleSizeEstimator().plan(CONDITION, **SPEC)
        b = SampleSizeEstimator().plan(CONDITION, **SPEC)
        assert a is b

    def test_reliability_and_delta_spellings_share_an_entry(self):
        estimator = SampleSizeEstimator()
        a = estimator.plan("n > 0.8 +/- 0.05", reliability=0.999)
        b = estimator.plan("n > 0.8 +/- 0.05", delta=1.0 - 0.999)
        assert a is b

    def test_different_specs_get_different_plans(self):
        estimator = SampleSizeEstimator()
        a = estimator.plan(CONDITION, **SPEC)
        b = estimator.plan(CONDITION, reliability=0.999, adaptivity="none", steps=16)
        assert a is not b and a.samples != b.samples

    def test_estimator_config_in_key(self):
        auto = SampleSizeEstimator().plan(CONDITION, **SPEC)
        none = SampleSizeEstimator(optimizations="none").plan(CONDITION, **SPEC)
        assert auto is not none
        assert none.samples >= auto.samples

    def test_disabled_cache_recomputes(self):
        estimator = SampleSizeEstimator(use_plan_cache=False)
        a = estimator.plan(CONDITION, **SPEC)
        b = estimator.plan(CONDITION, **SPEC)
        assert a == b and a is not b

    def test_clear_plan_cache(self):
        estimator = SampleSizeEstimator()
        a = estimator.plan(CONDITION, **SPEC)
        SampleSizeEstimator.clear_plan_cache()
        b = estimator.plan(CONDITION, **SPEC)
        assert a == b and a is not b

    def test_cache_info_counts(self):
        estimator = SampleSizeEstimator()
        base = estimator.plan_cache_info()
        estimator.plan(CONDITION, **SPEC)
        estimator.plan(CONDITION, **SPEC)
        info = estimator.plan_cache_info()
        assert info.hits == base.hits + 1
        assert info.misses == base.misses + 1
