"""Tests for optimal tolerance allocation (§3.1 rule 2)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimators.allocation import allocate_numeric, allocate_tolerances
from repro.exceptions import InvalidParameterError


class TestClosedForm:
    def test_symmetric_terms_split_evenly(self):
        terms = [("n", 1.0, 1.0, 0.01), ("o", 1.0, 1.0, 0.01)]
        allocations = allocate_tolerances(terms, 0.02)
        assert allocations[0].tolerance == pytest.approx(0.01)
        assert allocations[1].tolerance == pytest.approx(0.01)

    def test_equalization_property(self):
        terms = [("n", 1.0, 1.0, 0.01), ("o", 1.7, 1.0, 0.003)]
        allocations = allocate_tolerances(terms, 0.02)
        assert allocations[0].samples == pytest.approx(allocations[1].samples)

    def test_tolerances_sum_to_budget(self):
        terms = [("n", 1.0, 1.0, 0.01), ("o", 2.0, 1.0, 0.01), ("d", 0.5, 1.0, 0.01)]
        allocations = allocate_tolerances(terms, 0.05)
        assert sum(a.tolerance for a in allocations) == pytest.approx(0.05)

    def test_paper_f2_closed_form(self):
        # n - o at delta/(2H) per term reproduces Figure 2's F2 column.
        delta_term = 0.01 / (2 * 32)
        terms = [("n", 1.0, 1.0, delta_term), ("o", 1.0, 1.0, delta_term)]
        n = allocate_tolerances(terms, 0.1)[0].samples
        assert math.ceil(n) == 1753

    def test_bigger_coefficient_gets_more_tolerance(self):
        terms = [("n", 1.0, 1.0, 0.01), ("o", 3.0, 1.0, 0.01)]
        a_n, a_o = allocate_tolerances(terms, 0.04)
        assert a_o.tolerance > a_n.tolerance
        # With equal per-term deltas the optimum equalizes the *variable*
        # tolerances (eps_i proportional to |c_i| exactly cancels).
        assert a_o.variable_tolerance == pytest.approx(a_n.variable_tolerance)

    def test_zero_coefficient_rejected(self):
        with pytest.raises(InvalidParameterError):
            allocate_tolerances([("n", 0.0, 1.0, 0.01)], 0.05)

    def test_empty_terms_rejected(self):
        with pytest.raises(InvalidParameterError):
            allocate_tolerances([], 0.05)

    @given(
        c1=st.floats(min_value=0.1, max_value=5),
        c2=st.floats(min_value=0.1, max_value=5),
        eps=st.floats(min_value=1e-3, max_value=0.3),
    )
    @settings(max_examples=50)
    def test_optimality_against_perturbations(self, c1, c2, eps):
        """No nearby split beats the closed-form optimum."""
        terms = [("n", c1, 1.0, 0.01), ("o", c2, 1.0, 0.01)]
        optimal = allocate_tolerances(terms, eps)[0].samples

        def cost(eps1: float) -> float:
            eps2 = eps - eps1
            n1 = (c1**2) * math.log(1 / 0.01) / (2 * eps1**2)
            n2 = (c2**2) * math.log(1 / 0.01) / (2 * eps2**2)
            return max(n1, n2)

        base = allocate_tolerances(terms, eps)[0].tolerance
        for shift in (-0.2, -0.05, 0.05, 0.2):
            eps1 = base * (1 + shift)
            if 0 < eps1 < eps:
                assert optimal <= cost(eps1) * (1 + 1e-9)


class TestNumericAllocator:
    def test_matches_closed_form_for_hoeffding(self):
        delta = 0.001
        c1, c2, eps = 1.0, 1.6, 0.04

        def make_cost(c):
            return lambda e: (c**2) * math.log(1 / delta) / (2 * e**2)

        tolerances, n = allocate_numeric([make_cost(c1), make_cost(c2)], eps)
        closed = allocate_tolerances(
            [("n", c1, 1.0, delta), ("o", c2, 1.0, delta)], eps
        )
        assert n == pytest.approx(closed[0].samples, rel=1e-4)
        assert tolerances[0] == pytest.approx(closed[0].tolerance, rel=1e-3)

    def test_single_term(self):
        tolerances, n = allocate_numeric(
            [lambda e: 1.0 / (e * e)], 0.1
        )
        assert tolerances[0] == pytest.approx(0.1, rel=1e-6)
        assert n == pytest.approx(100.0, rel=1e-4)

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            allocate_numeric([], 0.1)
