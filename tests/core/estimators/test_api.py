"""Tests for the SampleSizeEstimator facade — including every paper number."""

import pytest

from repro.core.estimators.api import SampleSizeEstimator
from repro.core.estimators.plans import ClauseStrategy
from repro.exceptions import InvalidParameterError


@pytest.fixture
def baseline():
    return SampleSizeEstimator(optimizations="none")


@pytest.fixture
def optimized():
    return SampleSizeEstimator()


class TestBaselineNumbers:
    @pytest.mark.parametrize(
        "reliability,eps,adaptivity,expected",
        [
            (0.99, 0.1, "none", 404),
            (0.99, 0.1, "full", 1340),
            (0.9999, 0.05, "full", 6279),
            (0.9999, 0.01, "none", 63381),
            (0.9999, 0.01, "full", 156956),
        ],
    )
    def test_figure2_f1(self, baseline, reliability, eps, adaptivity, expected):
        plan = baseline.plan(
            f"n > 0.8 +/- {eps}",
            reliability=reliability,
            adaptivity=adaptivity,
            steps=32,
        )
        assert plan.samples == expected

    @pytest.mark.parametrize(
        "reliability,eps,adaptivity,expected",
        [
            (0.99, 0.1, "none", 1753),
            (0.99, 0.1, "full", 5496),
            (0.9999, 0.01, "none", 267385),
            (0.9999, 0.01, "full", 641684),
        ],
    )
    def test_figure2_f2(self, baseline, reliability, eps, adaptivity, expected):
        plan = baseline.plan(
            f"n - o > 0.02 +/- {eps}",
            reliability=reliability,
            adaptivity=adaptivity,
            steps=32,
        )
        assert plan.samples == expected

    def test_first_change_matches_none(self, baseline):
        kwargs = dict(reliability=0.999, steps=16)
        none = baseline.plan("n > 0.8 +/- 0.05", adaptivity="none", **kwargs)
        hybrid = baseline.plan("n > 0.8 +/- 0.05", adaptivity="firstChange", **kwargs)
        assert none.samples == hybrid.samples

    def test_section31_example_structure(self, baseline):
        plan = baseline.plan(
            "n - 1.1 * o > 0.01 +/- 0.01 /\\ d < 0.1 +/- 0.01",
            delta=1e-4,
            adaptivity="none",
            steps=1,
        )
        gain_plan, d_plan = plan.clause_plans
        # Formula split: each clause gets delta/2; terms get delta/4.
        assert gain_plan.delta == pytest.approx(5e-5)
        assert gain_plan.terms[0].delta == pytest.approx(2.5e-5)
        assert d_plan.terms[0].delta == pytest.approx(5e-5)
        # The asymmetric coefficient gets proportionally more tolerance.
        tol = {t.variable: t.tolerance for t in gain_plan.terms}
        assert tol["o"] == pytest.approx(1.1 * tol["n"], rel=1e-9)


class TestPattern1:
    CONDITION = "d < 0.1 +/- 0.01 /\\ n - o > 0.02 +/- 0.01"

    def test_29k_labels(self, optimized):
        plan = optimized.plan(
            self.CONDITION, reliability=0.9999, adaptivity="none", steps=32
        )
        assert plan.samples == 29048

    def test_67k_fully_adaptive(self, optimized):
        plan = optimized.plan(
            self.CONDITION, reliability=0.9999, adaptivity="full", steps=32
        )
        assert plan.samples == 67706

    def test_d_clause_is_label_free(self, optimized):
        plan = optimized.plan(
            self.CONDITION, reliability=0.9999, adaptivity="none", steps=32
        )
        d_plan = next(
            p for p in plan.clause_plans if p.clause.variables() == {"d"}
        )
        assert not d_plan.requires_labels
        assert plan.pool_size > plan.samples  # unlabeled filter is larger

    def test_strategy_assignment(self, optimized):
        plan = optimized.plan(
            self.CONDITION, reliability=0.9999, adaptivity="none", steps=32
        )
        strategies = {
            tuple(sorted(p.clause.variables())): p.strategy
            for p in plan.clause_plans
        }
        assert strategies[("d",)] is ClauseStrategy.HOEFFDING_PER_VARIABLE
        assert strategies[("n", "o")] is ClauseStrategy.BENNETT_PAIRED

    def test_inflated_policy_is_more_conservative(self):
        threshold = SampleSizeEstimator(variance_bound_policy="threshold")
        inflated = SampleSizeEstimator(variance_bound_policy="inflated")
        kwargs = dict(reliability=0.9999, adaptivity="none", steps=32)
        assert (
            inflated.plan(self.CONDITION, **kwargs).samples
            > threshold.plan(self.CONDITION, **kwargs).samples
        )

    def test_optimizations_off_uses_hoeffding_everywhere(self, baseline):
        plan = baseline.plan(
            self.CONDITION, reliability=0.9999, adaptivity="none", steps=32
        )
        assert all(
            p.strategy is ClauseStrategy.HOEFFDING_PER_VARIABLE
            for p in plan.clause_plans
        )

    def test_labels_per_evaluation_scaled_by_p(self, optimized):
        plan = optimized.plan(
            self.CONDITION, reliability=0.9999, adaptivity="none", steps=32
        )
        assert plan.labels_per_evaluation == pytest.approx(
            plan.samples * 0.1, rel=0.01
        )


class TestPattern2:
    def test_figure5_non_adaptive(self, optimized):
        plan = optimized.plan(
            "n - o > 0.02 +/- 0.02",
            delta=0.002,
            adaptivity="none",
            steps=7,
            known_variance_bound=0.1,
        )
        assert plan.samples == 4713

    def test_figure5_adaptive(self, optimized):
        plan = optimized.plan(
            "n - o > 0.018 +/- 0.022",
            delta=0.002,
            adaptivity="full",
            steps=7,
            known_variance_bound=0.1,
        )
        assert plan.samples == 5204

    def test_without_bound_falls_back_to_hoeffding(self, optimized):
        plan = optimized.plan(
            "n - o > 0.02 +/- 0.02", delta=0.002, adaptivity="none", steps=7
        )
        assert plan.clause_plans[0].strategy is ClauseStrategy.HOEFFDING_PER_VARIABLE
        assert plan.samples == 44269  # ceil of the paper's 44,268.3

    def test_explicit_d_clause_wins_over_known_bound(self, optimized):
        # Pattern 1 fires (threshold 0.05), ignoring the looser known bound.
        plan = optimized.plan(
            "d < 0.05 +/- 0.01 /\\ n - o > 0.02 +/- 0.02",
            delta=0.002,
            adaptivity="none",
            steps=7,
            known_variance_bound=0.5,
        )
        gain_plan = next(
            p for p in plan.clause_plans if p.strategy is ClauseStrategy.BENNETT_PAIRED
        )
        assert gain_plan.variance_bound == pytest.approx(0.05)


class TestExactBinomial:
    def test_tightens_single_variable_clause(self):
        hoeffding = SampleSizeEstimator(optimizations="none")
        exact = SampleSizeEstimator(
            optimizations="none", use_exact_binomial=True
        )
        kwargs = dict(reliability=0.99, adaptivity="none", steps=4)
        n_h = hoeffding.plan("n > 0.8 +/- 0.05", **kwargs).samples
        n_e = exact.plan("n > 0.8 +/- 0.05", **kwargs).samples
        assert n_e <= n_h

    def test_strategy_marked(self):
        exact = SampleSizeEstimator(use_exact_binomial=True)
        plan = exact.plan(
            "n > 0.8 +/- 0.05", reliability=0.99, adaptivity="none", steps=4
        )
        assert plan.clause_plans[0].strategy is ClauseStrategy.EXACT_BINOMIAL


class TestValidation:
    def test_reliability_and_delta_mutually_exclusive(self, baseline):
        with pytest.raises(InvalidParameterError, match="exactly one"):
            baseline.plan("n > 0.8 +/- 0.05", reliability=0.99, delta=0.01)

    def test_one_of_reliability_delta_required(self, baseline):
        with pytest.raises(InvalidParameterError, match="exactly one"):
            baseline.plan("n > 0.8 +/- 0.05")

    def test_invalid_optimizations_flag(self):
        with pytest.raises(InvalidParameterError):
            SampleSizeEstimator(optimizations="sometimes")

    def test_invalid_policy(self):
        with pytest.raises(InvalidParameterError):
            SampleSizeEstimator(variance_bound_policy="hopeful")

    def test_condition_type_checked(self, baseline):
        with pytest.raises(InvalidParameterError, match="condition"):
            baseline.plan(42, reliability=0.99)

    def test_trivial_strategy_total(self, baseline):
        total = baseline.trivial_fully_adaptive_total(
            "n > 0.8 +/- 0.05", delta=1e-4, steps=32
        )
        per_step = baseline.plan(
            "n > 0.8 +/- 0.05", delta=1e-4, adaptivity="none", steps=32
        ).samples
        assert total == 32 * per_step

    def test_plan_describe_mentions_pattern(self, optimized):
        plan = optimized.plan(
            "d < 0.1 +/- 0.01 /\\ n - o > 0.02 +/- 0.01",
            reliability=0.9999,
            adaptivity="none",
            steps=32,
        )
        assert "pattern 1" in plan.describe()
