"""Tests for the new-testset alarm."""

import pytest

from repro.core.alarm import AlarmReason, NewTestsetAlarm


class TestAlarm:
    def test_initially_silent(self):
        alarm = NewTestsetAlarm()
        assert not alarm.fired and alarm.events == []

    def test_fire_records_event(self):
        alarm = NewTestsetAlarm()
        event = alarm.fire(
            AlarmReason.BUDGET_EXHAUSTED, testset_name="t", uses=32, generation=1
        )
        assert alarm.fired
        assert event.reason is AlarmReason.BUDGET_EXHAUSTED
        assert event.uses == 32
        assert "budget" in event.message

    def test_first_change_message(self):
        alarm = NewTestsetAlarm()
        event = alarm.fire(
            AlarmReason.FIRST_CHANGE_PASS, testset_name="t", uses=3, generation=1
        )
        assert "firstChange" in event.message
        assert "released" in event.message

    def test_subscribers_notified_in_order(self):
        alarm = NewTestsetAlarm()
        seen = []
        alarm.subscribe(lambda e: seen.append(("a", e.generation)))
        alarm.subscribe(lambda e: seen.append(("b", e.generation)))
        alarm.fire(AlarmReason.BUDGET_EXHAUSTED, testset_name="t", uses=1, generation=1)
        assert seen == [("a", 1), ("b", 1)]

    def test_subscriber_errors_propagate(self):
        alarm = NewTestsetAlarm()

        def boom(event):
            raise RuntimeError("transport down")

        alarm.subscribe(boom)
        with pytest.raises(RuntimeError, match="transport down"):
            alarm.fire(
                AlarmReason.BUDGET_EXHAUSTED, testset_name="t", uses=1, generation=1
            )

    def test_multiple_events_accumulate(self):
        alarm = NewTestsetAlarm()
        for generation in (1, 2, 3):
            alarm.fire(
                AlarmReason.BUDGET_EXHAUSTED,
                testset_name=f"t{generation}",
                uses=4,
                generation=generation,
            )
        assert [e.generation for e in alarm.events] == [1, 2, 3]

    def test_events_list_is_copy(self):
        alarm = NewTestsetAlarm()
        alarm.fire(AlarmReason.BUDGET_EXHAUSTED, testset_name="t", uses=1, generation=1)
        alarm.events.clear()
        assert alarm.fired
