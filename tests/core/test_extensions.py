"""Tests for the extension features: metrics, order statistics, drift."""

import numpy as np
import pytest

from repro.core.extensions.drift import DriftMonitor
from repro.core.extensions.metrics import (
    AccuracyMetric,
    MacroF1Metric,
    MetricCondition,
    MetricTester,
)
from repro.core.extensions.order_stats import TopKCondition
from repro.core.logic import TernaryResult
from repro.exceptions import (
    EngineStateError,
    InvalidParameterError,
    TestsetSizeError,
)
from repro.ml.models.base import FixedPredictionModel
from repro.ml.models.simulated import simulate_accuracy_model
from repro.utils.rng import ensure_rng


class TestAccuracyMetricTester:
    def test_accuracy_condition_sizing_matches_mcdiarmid(self):
        condition = MetricCondition(AccuracyMetric(), ">", 0.8, 0.05)
        tester = MetricTester(condition, delta=0.01)
        # Two-sided McDiarmid at sensitivity 1: ln(2/delta)/(2 eps^2).
        assert tester.sample_size() == 1060

    def test_paired_condition_doubles_sensitivity(self):
        single = MetricTester(
            MetricCondition(AccuracyMetric(), ">", 0.0, 0.05), delta=0.01
        )
        paired = MetricTester(
            MetricCondition(AccuracyMetric(), ">", 0.0, 0.05, paired=True),
            delta=0.01,
        )
        assert paired.sample_size() == pytest.approx(4 * single.sample_size(), abs=2)

    def test_evaluation_flow(self, rng):
        model, labels = simulate_accuracy_model(0.9, 2000, exact=True, seed=0)
        condition = MetricCondition(AccuracyMetric(), ">", 0.8, 0.05)
        tester = MetricTester(condition, delta=0.01)
        value, interval, outcome, passed = tester.evaluate(
            model.predictions, labels
        )
        assert value == pytest.approx(0.9, abs=1e-3)
        assert outcome is TernaryResult.TRUE and passed

    def test_paired_needs_old_predictions(self):
        condition = MetricCondition(AccuracyMetric(), ">", 0.0, 0.05, paired=True)
        tester = MetricTester(condition, delta=0.01)
        labels = np.zeros(tester.sample_size(), dtype=int)
        with pytest.raises(InvalidParameterError, match="old_predictions"):
            tester.evaluate(labels, labels)

    def test_adaptivity_budget_applies(self):
        condition = MetricCondition(AccuracyMetric(), ">", 0.8, 0.05)
        non_adaptive = MetricTester(condition, delta=0.01, steps=8)
        adaptive = MetricTester(condition, delta=0.01, adaptivity="full", steps=8)
        assert adaptive.sample_size() > non_adaptive.sample_size()

    def test_undersized_testset_rejected(self):
        condition = MetricCondition(AccuracyMetric(), ">", 0.8, 0.05)
        tester = MetricTester(condition, delta=0.01)
        with pytest.raises(TestsetSizeError):
            tester.evaluate(np.zeros(10, dtype=int), np.zeros(10, dtype=int))


class TestMacroF1Metric:
    def test_sensitivity_grows_with_skew(self):
        balanced = MacroF1Metric(n_classes=4, min_class_fraction=0.25)
        skewed = MacroF1Metric(n_classes=4, min_class_fraction=0.02)
        assert skewed.sensitivity() > balanced.sensitivity()

    def test_compute_on_balanced_data(self, rng):
        labels = np.repeat(np.arange(4), 100)
        metric = MacroF1Metric(n_classes=4, min_class_fraction=0.2)
        assert metric.compute(labels, labels) == pytest.approx(1.0)

    def test_assumption_violation_detected(self):
        labels = np.zeros(100, dtype=int)  # class 1..3 missing entirely
        metric = MacroF1Metric(n_classes=4, min_class_fraction=0.1)
        with pytest.raises(InvalidParameterError, match="stratified"):
            metric.compute(labels, labels)

    def test_f1_condition_costs_more_than_accuracy(self):
        accuracy = MetricTester(
            MetricCondition(AccuracyMetric(), ">", 0.8, 0.02), delta=0.01
        )
        f1 = MetricTester(
            MetricCondition(
                MacroF1Metric(n_classes=4, min_class_fraction=0.1), ">", 0.8, 0.02
            ),
            delta=0.01,
        )
        assert f1.sample_size() > accuracy.sample_size()


class TestTopK:
    def make_history(self, accuracies, n, seed=0):
        rng = ensure_rng(seed)
        labels = rng.integers(0, 4, n)
        history = []
        for i, acc in enumerate(accuracies):
            correct = rng.random(n) < acc
            preds = labels.copy()
            wrong = ~correct
            preds[wrong] = (labels[wrong] + 1) % 4
            history.append(preds)
        return labels, history

    def test_clear_winner_is_top_1(self):
        condition = TopKCondition(k=1, tolerance=0.02, delta=0.01)
        n = condition.sample_size(3)
        labels, history = self.make_history([0.7, 0.72, 0.71], n)
        candidate = labels.copy()  # 100% accurate
        outcome = condition.evaluate(candidate, history, labels)
        assert outcome.outcome is TernaryResult.TRUE and outcome.passed

    def test_clear_loser_fails(self):
        condition = TopKCondition(k=2, tolerance=0.02, delta=0.01)
        n = condition.sample_size(3)
        labels, history = self.make_history([0.8, 0.82, 0.85], n)
        rng = ensure_rng(5)
        candidate = (labels + rng.integers(1, 4, len(labels))) % 4  # ~0 accuracy
        outcome = condition.evaluate(candidate, history, labels)
        assert outcome.outcome is TernaryResult.FALSE and not outcome.passed

    def test_near_tie_is_unknown(self):
        condition = TopKCondition(k=1, tolerance=0.05, delta=0.01)
        n = condition.sample_size(2)
        labels, history = self.make_history([0.8, 0.8], n, seed=1)
        outcome = condition.evaluate(history[0], history[1:] + [history[0]], labels)
        assert outcome.outcome is TernaryResult.UNKNOWN

    def test_k_exceeding_history_trivially_true(self):
        condition = TopKCondition(k=5, tolerance=0.05, delta=0.01)
        labels, history = self.make_history([0.7], 500)
        outcome = condition.evaluate(history[0], history, labels)
        assert outcome.passed

    def test_sample_size_grows_with_history(self):
        condition = TopKCondition(k=1, tolerance=0.05, delta=0.01)
        assert condition.sample_size(20) > condition.sample_size(2)

    def test_undersized_testset(self):
        condition = TopKCondition(k=1, tolerance=0.01, delta=0.001)
        labels, history = self.make_history([0.7], 100)
        with pytest.raises(TestsetSizeError):
            condition.evaluate(history[0], history, labels)


class TestDriftMonitor:
    def make_monitor(self, model, periods=4, tolerance=0.05):
        return DriftMonitor(
            model,
            threshold=0.8,
            tolerance=tolerance,
            delta=0.01,
            periods=periods,
        )

    def test_healthy_model_never_alarms(self):
        model, labels = simulate_accuracy_model(0.95, 10_000, exact=True, seed=0)
        monitor = self.make_monitor(model)
        n = monitor.samples_per_period
        rng = ensure_rng(1)
        for _ in range(4):
            idx = rng.choice(len(labels), size=n, replace=False)
            obs = monitor.observe(idx, labels[idx])
            assert obs.healthy
        assert not monitor.drift_detected

    def test_drifted_model_alarms(self):
        # The "distribution" changes: new labels make the model ~50% accurate.
        model, labels = simulate_accuracy_model(0.95, 20_000, exact=True, seed=0)
        monitor = self.make_monitor(model)
        n = monitor.samples_per_period
        rng = ensure_rng(2)
        idx = rng.choice(len(labels), size=n, replace=False)
        drifted_labels = (labels[idx] + rng.integers(0, 2, n)) % 10
        obs = monitor.observe(idx, drifted_labels)
        assert not obs.healthy
        assert monitor.drift_detected

    def test_budget_enforced(self):
        model, labels = simulate_accuracy_model(0.95, 10_000, exact=True, seed=0)
        monitor = self.make_monitor(model, periods=1)
        n = monitor.samples_per_period
        monitor.observe(np.arange(n), labels[:n])
        with pytest.raises(EngineStateError, match="budget"):
            monitor.observe(np.arange(n), labels[:n])

    def test_period_testset_too_small(self):
        model, labels = simulate_accuracy_model(0.95, 10_000, exact=True, seed=0)
        monitor = self.make_monitor(model)
        with pytest.raises(TestsetSizeError):
            monitor.observe(np.arange(5), labels[:5])

    def test_trajectory_recorded(self):
        model, labels = simulate_accuracy_model(0.9, 10_000, exact=True, seed=0)
        monitor = self.make_monitor(model, periods=3)
        n = monitor.samples_per_period
        rng = ensure_rng(3)
        for _ in range(3):
            idx = rng.choice(len(labels), size=n, replace=False)
            monitor.observe(idx, labels[idx])
        assert len(monitor.trajectory()) == 3
        assert monitor.trajectory().mean() == pytest.approx(0.9, abs=0.02)
