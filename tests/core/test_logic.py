"""Tests for three-valued logic and mode resolution."""

import pytest

from repro.core.logic import Mode, TernaryResult, resolve_ternary, ternary_and
from repro.exceptions import InvalidParameterError

T, F, U = TernaryResult.TRUE, TernaryResult.FALSE, TernaryResult.UNKNOWN


class TestTernaryAnd:
    def test_all_true(self):
        assert ternary_and([T, T]) is T

    def test_false_dominates(self):
        assert ternary_and([T, U, F]) is F

    def test_unknown_beats_true(self):
        assert ternary_and([T, U, T]) is U

    def test_empty_is_true(self):
        assert ternary_and([]) is T

    def test_operator_form(self):
        assert (T & U) is U
        assert (U & F) is F

    def test_non_ternary_rejected(self):
        with pytest.raises(InvalidParameterError):
            ternary_and([T, True])


class TestBoolGuard:
    def test_bool_coercion_raises(self):
        with pytest.raises(TypeError, match="explicit mode"):
            bool(U)

    def test_if_statement_guarded(self):
        with pytest.raises(TypeError):
            if T:  # noqa: PLR1702 - the point is that this raises
                pass


class TestModeResolution:
    def test_fp_free_maps_unknown_to_false(self):
        assert resolve_ternary(U, Mode.FP_FREE) is False

    def test_fn_free_maps_unknown_to_true(self):
        assert resolve_ternary(U, Mode.FN_FREE) is True

    def test_determinate_values_unchanged(self):
        for mode in Mode:
            assert resolve_ternary(T, mode) is True
            assert resolve_ternary(F, mode) is False

    def test_string_mode_accepted(self):
        assert resolve_ternary(U, "fn-free") is True
        assert resolve_ternary(U, "fp-free") is False

    def test_mode_parse_case_insensitive(self):
        assert Mode.parse("FP-Free") is Mode.FP_FREE

    def test_mode_parse_unknown(self):
        with pytest.raises(InvalidParameterError, match="unknown mode"):
            Mode.parse("accurate")
