"""Tests for the condition evaluator (§3.5 semantics)."""

import numpy as np
import pytest

from repro.core.estimators.api import SampleSizeEstimator
from repro.core.evaluation import ConditionEvaluator
from repro.core.logic import TernaryResult
from repro.exceptions import TestsetSizeError
from repro.ml.models.simulated import ModelPairSpec, simulate_model_pair
from repro.stats.estimation import PairedSample


def make_sample(old, new, diff, n, seed=0) -> PairedSample:
    pair = simulate_model_pair(
        ModelPairSpec(
            old_accuracy=old, new_accuracy=new, difference=diff,
            disagree_wrong=max(0.0, diff - abs(new - old)) / 2,
        ),
        n_examples=n,
        seed=seed,
    )
    return PairedSample(
        old_predictions=pair.old_model.predictions,
        new_predictions=pair.new_model.predictions,
        labels=pair.labels,
    )


@pytest.fixture
def gain_plan():
    return SampleSizeEstimator(optimizations="none").plan(
        "n - o > 0.02 +/- 0.05", reliability=0.99, adaptivity="none", steps=4
    )


class TestPerVariableEvaluation:
    def test_clear_pass(self, gain_plan):
        evaluator = ConditionEvaluator(gain_plan, "fp-free")
        sample = make_sample(0.8, 0.95, 0.16, gain_plan.pool_size)
        result = evaluator.evaluate(sample)
        assert result.passed and result.ternary is TernaryResult.TRUE

    def test_clear_fail(self, gain_plan):
        evaluator = ConditionEvaluator(gain_plan, "fn-free")
        sample = make_sample(0.9, 0.75, 0.16, gain_plan.pool_size)
        result = evaluator.evaluate(sample)
        assert not result.passed and result.ternary is TernaryResult.FALSE

    def test_unknown_split_by_mode(self, gain_plan):
        # gain 0.04: inside (0.02 - 0.1, 0.02 + 0.1) band -> Unknown.
        sample = make_sample(0.8, 0.84, 0.06, gain_plan.pool_size)
        fp = ConditionEvaluator(gain_plan, "fp-free").evaluate(sample)
        fn = ConditionEvaluator(gain_plan, "fn-free").evaluate(sample)
        assert fp.ternary is TernaryResult.UNKNOWN
        assert not fp.passed and fn.passed
        assert not fp.was_determinate

    def test_interval_width_equals_clause_tolerance_budget(self, gain_plan):
        evaluator = ConditionEvaluator(gain_plan, "fp-free")
        sample = make_sample(0.8, 0.9, 0.12, gain_plan.pool_size)
        result = evaluator.evaluate(sample)
        ce = result.clause_evaluations[0]
        # Two independent +/-eps_i intervals: total width = 2 * sum eps_i
        # = 2 * clause tolerance.
        assert ce.interval.width == pytest.approx(2 * 0.05, rel=1e-9)

    def test_estimates_reported(self, gain_plan):
        evaluator = ConditionEvaluator(gain_plan, "fp-free")
        sample = make_sample(0.8, 0.9, 0.12, gain_plan.pool_size)
        ce = evaluator.evaluate(sample).clause_evaluations[0]
        assert ce.estimates["n"] == pytest.approx(0.9, abs=1e-3)
        assert ce.estimates["o"] == pytest.approx(0.8, abs=1e-3)

    def test_sample_too_small(self, gain_plan):
        evaluator = ConditionEvaluator(gain_plan, "fp-free")
        sample = make_sample(0.8, 0.9, 0.12, 10)
        with pytest.raises(TestsetSizeError):
            evaluator.evaluate(sample)

    def test_enforcement_can_be_disabled(self, gain_plan):
        evaluator = ConditionEvaluator(gain_plan, "fp-free", enforce_sample_size=False)
        sample = make_sample(0.8, 0.9, 0.12, 50)
        evaluator.evaluate(sample)  # no raise


class TestPairedEvaluation:
    @pytest.fixture
    def bennett_plan(self):
        return SampleSizeEstimator().plan(
            "n - o > 0.02 +/- 0.02",
            delta=0.002,
            adaptivity="none",
            steps=7,
            known_variance_bound=0.1,
        )

    def test_paired_interval_tighter_than_per_variable(self, bennett_plan, gain_plan):
        sample = make_sample(0.85, 0.9, 0.07, max(bennett_plan.pool_size, gain_plan.pool_size))
        paired = ConditionEvaluator(bennett_plan, "fp-free").evaluate(sample)
        assert paired.clause_evaluations[0].interval.width == pytest.approx(2 * 0.02)

    def test_paired_estimates_carry_d(self, bennett_plan):
        sample = make_sample(0.85, 0.9, 0.07, bennett_plan.pool_size)
        ce = ConditionEvaluator(bennett_plan, "fp-free").evaluate(sample).clause_evaluations[0]
        assert "n-o" in ce.estimates and "d" in ce.estimates
        assert ce.estimates["d"] == pytest.approx(0.07, abs=1e-3)


class TestConjunction:
    def test_f5_composite(self):
        plan = SampleSizeEstimator(optimizations="none").plan(
            "d < 0.1 +/- 0.03 /\\ n - o > 0.02 +/- 0.05",
            reliability=0.99,
            adaptivity="none",
            steps=2,
        )
        evaluator = ConditionEvaluator(plan, "fp-free")
        good = make_sample(0.8, 0.95, 0.16, plan.pool_size)
        result = evaluator.evaluate(good)
        # Gain clause passes clearly, but d = 0.16 > 0.1 + 0.03 fails.
        assert not result.passed
        d_eval = next(
            ce for ce in result.clause_evaluations
            if ce.clause.variables() == {"d"}
        )
        assert d_eval.outcome is TernaryResult.FALSE

    def test_describe_contains_all_clauses(self, gain_plan):
        evaluator = ConditionEvaluator(gain_plan, "fp-free")
        sample = make_sample(0.8, 0.9, 0.12, gain_plan.pool_size)
        text = evaluator.evaluate(sample).describe()
        assert "PASS" in text or "FAIL" in text
        assert "n - o" in text
