"""Tests for the from-scratch YAML-subset parser."""

import pytest

from repro.core.script.yamlite import parse_yamlite
from repro.exceptions import ScriptError


class TestScalars:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("k: 3", 3),
            ("k: 3.5", 3.5),
            ("k: true", True),
            ("k: no", False),
            ("k: null", None),
            ("k: hello", "hello"),
            ("k: 'quoted: string'", "quoted: string"),
            ('k: "0.5"', "0.5"),
        ],
    )
    def test_scalar_kinds(self, text, expected):
        assert parse_yamlite(text) == {"k": expected}

    def test_empty_document(self):
        assert parse_yamlite("") is None
        assert parse_yamlite("\n  \n# comment only\n") is None


class TestMappings:
    def test_flat_mapping(self):
        doc = parse_yamlite("a: 1\nb: 2")
        assert doc == {"a": 1, "b": 2}

    def test_nested_mapping(self):
        doc = parse_yamlite("outer:\n  inner: 1\n  other: 2\ntop: 3")
        assert doc == {"outer": {"inner": 1, "other": 2}, "top": 3}

    def test_spaces_around_colon(self):
        # The paper's files write "key : value".
        assert parse_yamlite("script : ./test.py") == {"script": "./test.py"}

    def test_value_containing_colon_no_space(self):
        assert parse_yamlite("url: host:8080") == {"url": "host:8080"}

    def test_empty_value_is_none(self):
        assert parse_yamlite("k:") == {"k": None}

    def test_duplicate_key_rejected(self):
        with pytest.raises(ScriptError, match="duplicate"):
            parse_yamlite("a: 1\na: 2")

    def test_comments_stripped(self):
        assert parse_yamlite("a: 1  # trailing\n# full line\nb: 2") == {
            "a": 1,
            "b": 2,
        }

    def test_hash_inside_quotes_kept(self):
        assert parse_yamlite("a: 'x # y'") == {"a": "x # y"}


class TestSequences:
    def test_scalar_list(self):
        assert parse_yamlite("- 1\n- 2\n- 3") == [1, 2, 3]

    def test_list_under_key(self):
        assert parse_yamlite("items:\n  - a\n  - b") == {"items": ["a", "b"]}

    def test_paper_ml_section_shape(self):
        text = (
            "ml:\n"
            "  - script     : ./test_model.py\n"
            "  - condition  : n - o > 0.02 +/- 0.01\n"
            "  - reliability: 0.9999\n"
            "  - steps      : 32\n"
        )
        doc = parse_yamlite(text)
        assert doc["ml"][0] == {"script": "./test_model.py"}
        assert doc["ml"][1] == {"condition": "n - o > 0.02 +/- 0.01"}
        assert doc["ml"][2] == {"reliability": 0.9999}
        assert doc["ml"][3] == {"steps": 32}

    def test_multi_key_list_item(self):
        text = "jobs:\n  - name: a\n    cmd: run\n  - name: b\n    cmd: test"
        doc = parse_yamlite(text)
        assert doc == {
            "jobs": [{"name": "a", "cmd": "run"}, {"name": "b", "cmd": "test"}]
        }

    def test_empty_dash_is_none(self):
        assert parse_yamlite("-\n- 2") == [None, 2]


class TestErrors:
    def test_tabs_rejected(self):
        with pytest.raises(ScriptError, match="tabs"):
            parse_yamlite("a:\n\tb: 1")

    def test_anchor_rejected(self):
        with pytest.raises(ScriptError, match="not supported"):
            parse_yamlite("&anchor x")

    def test_document_marker_rejected(self):
        with pytest.raises(ScriptError, match="not supported"):
            parse_yamlite("---\na: 1")

    def test_bad_over_indent(self):
        with pytest.raises(ScriptError, match="indentation"):
            parse_yamlite("a: 1\n    b: 2")

    def test_non_mapping_line_rejected(self):
        with pytest.raises(ScriptError, match="key: value"):
            parse_yamlite("a: 1\njust words")


class TestRealisticDocument:
    def test_travis_like_file(self):
        text = """
language: python
python:
  - 3.9
  - 3.10
install: pip install -e .
script: pytest

ml:
  - script     : ./test_model.py
  - condition  : d < 0.1 +/- 0.01
  - reliability: 0.9999
  - mode       : fp-free
  - adaptivity : none -> xx@abc.com
  - steps      : 32
"""
        doc = parse_yamlite(text)
        assert doc["language"] == "python"
        assert doc["python"] == [3.9, 3.1] or doc["python"] == [3.9, 3.10]
        assert len(doc["ml"]) == 6
        assert doc["ml"][4] == {"adaptivity": "none -> xx@abc.com"}
