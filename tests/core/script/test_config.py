"""Tests for the CIScript configuration object."""

import pytest

from repro.core.estimators.adaptivity import Adaptivity
from repro.core.logic import Mode
from repro.core.script.config import CIScript
from repro.exceptions import ScriptError

VALID = {
    "script": "./test_model.py",
    "condition": "n - o > 0.02 +/- 0.01",
    "reliability": 0.9999,
    "mode": "fp-free",
    "adaptivity": "full",
    "steps": 32,
}


def make(**overrides):
    fields = dict(VALID)
    fields.update(overrides)
    return CIScript.from_dict(fields)


class TestFromDict:
    def test_valid_script(self):
        script = make()
        assert script.reliability == 0.9999
        assert script.mode is Mode.FP_FREE
        assert script.adaptivity is Adaptivity.FULL
        assert script.steps == 32
        assert script.delta == pytest.approx(1e-4)

    def test_condition_parsed(self):
        assert make().condition.variables() == {"n", "o"}

    def test_unknown_field_rejected(self):
        with pytest.raises(ScriptError, match="unknown"):
            make(extra_field=1)

    def test_missing_field_rejected(self):
        fields = dict(VALID)
        del fields["steps"]
        with pytest.raises(ScriptError, match="missing"):
            CIScript.from_dict(fields)

    def test_invalid_condition(self):
        with pytest.raises(ScriptError, match="invalid condition"):
            make(condition="n >> 0.5")

    def test_invalid_mode(self):
        with pytest.raises(ScriptError, match="mode"):
            make(mode="fpfree")

    def test_reliability_must_be_number(self):
        with pytest.raises(ScriptError, match="reliability"):
            make(reliability="0.999")

    def test_reliability_bounds(self):
        with pytest.raises(ScriptError):
            make(reliability=1.0)

    def test_steps_must_be_int(self):
        with pytest.raises(ScriptError, match="steps"):
            make(steps=2.5)

    def test_steps_positive(self):
        with pytest.raises(ScriptError):
            make(steps=0)

    def test_variance_bound_optional(self):
        assert make().variance_bound is None
        assert make(variance_bound=0.1).variance_bound == 0.1

    def test_variance_bound_validated(self):
        with pytest.raises(ScriptError):
            make(variance_bound="ten percent")


class TestAdaptivityParsing:
    def test_none_requires_email(self):
        with pytest.raises(ScriptError, match="notification"):
            make(adaptivity="none")

    def test_none_with_redirect(self):
        script = make(adaptivity="none -> xx@abc.com")
        assert script.adaptivity is Adaptivity.NONE
        assert script.notification_email == "xx@abc.com"

    def test_redirect_on_full_rejected(self):
        with pytest.raises(ScriptError, match="only meaningful"):
            make(adaptivity="full -> xx@abc.com")

    def test_invalid_email_rejected(self):
        with pytest.raises(ScriptError, match="invalid notification"):
            make(adaptivity="none -> not-an-email")

    def test_first_change(self):
        assert make(adaptivity="firstChange").adaptivity is Adaptivity.FIRST_CHANGE

    def test_unknown_adaptivity(self):
        with pytest.raises(ScriptError):
            make(adaptivity="sometimes")


class TestFromYaml:
    def test_paper_script_round_trip(self):
        text = """
ml:
  - script     : ./test_model.py
  - condition  : n - o > 0.02 +/- 0.01
  - reliability: 0.9999
  - mode       : fp-free
  - adaptivity : full
  - steps      : 32
"""
        script = CIScript.from_yaml(text)
        assert script.steps == 32
        assert script.condition_source == "n - o > 0.02 +/- 0.01"

    def test_mapping_style_ml_section(self):
        text = """
ml:
  condition  : d < 0.1 +/- 0.01
  reliability: 0.999
  mode       : fn-free
  adaptivity : full
  steps      : 8
"""
        assert CIScript.from_yaml(text).mode is Mode.FN_FREE

    def test_missing_ml_section(self):
        with pytest.raises(ScriptError, match="no 'ml' section"):
            CIScript.from_yaml("language: python")

    def test_duplicate_ml_field(self):
        text = "ml:\n  - steps: 1\n  - steps: 2\n"
        with pytest.raises(ScriptError, match="duplicate"):
            CIScript.from_yaml(text)

    def test_from_file(self, tmp_path):
        path = tmp_path / ".travis.yml"
        path.write_text(
            "ml:\n"
            "  - condition  : n > 0.8 +/- 0.05\n"
            "  - reliability: 0.99\n"
            "  - mode       : fn-free\n"
            "  - adaptivity : full\n"
            "  - steps      : 4\n"
        )
        assert CIScript.from_file(path).steps == 4


class TestDescribe:
    def test_describe_reparses(self):
        script = make(adaptivity="none -> xx@abc.com", variance_bound=0.1)
        text = script.describe()
        reparsed = CIScript.from_yaml(text)
        assert reparsed.notification_email == "xx@abc.com"
        assert reparsed.variance_bound == 0.1
        assert reparsed.condition_source == script.condition_source
