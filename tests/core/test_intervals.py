"""Tests for the §3.5 interval algebra."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import Interval
from repro.core.logic import TernaryResult
from repro.exceptions import InvalidParameterError

finite = st.floats(min_value=-10, max_value=10, allow_nan=False)


class TestConstruction:
    def test_ordered_bounds(self):
        interval = Interval(0.1, 0.2)
        assert interval.low == 0.1 and interval.high == 0.2

    def test_reversed_bounds_rejected(self):
        with pytest.raises(InvalidParameterError, match="out of order"):
            Interval(0.2, 0.1)

    def test_from_estimate(self):
        interval = Interval.from_estimate(0.5, 0.1)
        assert interval.low == pytest.approx(0.4)
        assert interval.high == pytest.approx(0.6)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(InvalidParameterError):
            Interval.from_estimate(0.5, -0.1)

    def test_exact(self):
        assert Interval.exact(0.3).width == 0.0


class TestAlgebra:
    def test_paper_addition_rule(self):
        # [a, b] + [c, d] = [a + c, b + d]
        assert Interval(1, 2) + Interval(3, 5) == Interval(4, 7)

    def test_subtraction_flips(self):
        assert Interval(1, 2) - Interval(0.5, 1) == Interval(0, 1.5)

    def test_negation(self):
        assert -Interval(1, 2) == Interval(-2, -1)

    def test_scale_positive(self):
        assert Interval(1, 2).scale(2) == Interval(2, 4)

    def test_scale_negative_flips(self):
        assert Interval(1, 2).scale(-1) == Interval(-2, -1)

    def test_shift(self):
        assert Interval(1, 2).shift(0.5) == Interval(1.5, 2.5)

    def test_intersect_overlapping(self):
        assert Interval(0, 2).intersect(Interval(1, 3)) == Interval(1, 2)

    def test_intersect_disjoint_is_none(self):
        assert Interval(0, 1).intersect(Interval(2, 3)) is None

    @given(finite, st.floats(min_value=0, max_value=5), finite,
           st.floats(min_value=0, max_value=5))
    @settings(max_examples=60)
    def test_addition_width_adds(self, c1, w1, c2, w2):
        a = Interval.from_estimate(c1, w1)
        b = Interval.from_estimate(c2, w2)
        assert (a + b).width == pytest.approx(a.width + b.width, abs=1e-9)

    @given(finite, st.floats(min_value=0, max_value=5), finite)
    @settings(max_examples=60)
    def test_scale_width(self, center, tol, factor):
        interval = Interval.from_estimate(center, tol)
        assert interval.scale(factor).width == pytest.approx(
            abs(factor) * interval.width, rel=1e-9, abs=1e-9
        )


class TestComparisons:
    def test_greater_true(self):
        assert Interval(0.5, 0.6).compare_greater(0.4) is TernaryResult.TRUE

    def test_greater_false(self):
        assert Interval(0.1, 0.3).compare_greater(0.4) is TernaryResult.FALSE

    def test_greater_unknown_straddles(self):
        assert Interval(0.3, 0.5).compare_greater(0.4) is TernaryResult.UNKNOWN

    def test_greater_boundary_is_not_true(self):
        # low == threshold: not strictly greater everywhere.
        assert Interval(0.4, 0.5).compare_greater(0.4) is TernaryResult.UNKNOWN

    def test_less_true(self):
        assert Interval(0.1, 0.3).compare_less(0.4) is TernaryResult.TRUE

    def test_less_false(self):
        assert Interval(0.5, 0.6).compare_less(0.4) is TernaryResult.FALSE

    def test_less_unknown(self):
        assert Interval(0.3, 0.5).compare_less(0.4) is TernaryResult.UNKNOWN

    def test_appendix_example(self):
        # Appendix A.2: x < 0.1 +/- 0.01 with x-hat outcomes.
        tolerance = 0.01
        cases = [
            (0.115, TernaryResult.FALSE),   # x-hat > 0.11
            (0.085, TernaryResult.TRUE),    # x-hat < 0.09
            (0.1, TernaryResult.UNKNOWN),   # straddles
        ]
        for estimate, expected in cases:
            interval = Interval.from_estimate(estimate, tolerance)
            assert interval.compare_less(0.1) is expected, estimate

    def test_dispatch(self):
        assert Interval(0.5, 0.6).compare(">", 0.4) is TernaryResult.TRUE
        assert Interval(0.5, 0.6).compare("<", 0.4) is TernaryResult.FALSE

    def test_dispatch_invalid(self):
        with pytest.raises(InvalidParameterError):
            Interval(0, 1).compare(">=", 0.5)
