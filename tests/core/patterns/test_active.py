"""Tests for the active-labeling session (§4.1.2)."""

import numpy as np
import pytest

from repro.core.dsl.parser import parse_condition
from repro.core.patterns.active import ActiveLabelingSession
from repro.core.patterns.matcher import find_gain_clause
from repro.exceptions import InvalidParameterError, LabelBudgetExceededError
from repro.ml.labeling import LabelOracle
from repro.ml.models.simulated import ModelPairSpec, evolve_predictions, simulate_model_pair


@pytest.fixture
def world():
    return simulate_model_pair(
        ModelPairSpec(old_accuracy=0.9, new_accuracy=0.9, difference=0.0),
        n_examples=5000,
        seed=0,
    )


def make_session(world, oracle=None, mode="fp-free", max_labels=None):
    gain = find_gain_clause(parse_condition("n - o > 0.02 +/- 0.05"))
    oracle = oracle or LabelOracle(world.labels)
    return (
        ActiveLabelingSession(
            pool_size=len(world.labels),
            label_source=oracle,
            gain=gain,
            reference_predictions=world.old_model.predictions,
            mode=mode,
            max_labels=max_labels,
        ),
        oracle,
    )


class TestLabelAccounting:
    def test_identical_model_needs_no_labels(self, world):
        session, oracle = make_session(world)
        step = session.evaluate_commit(world.old_model.predictions)
        assert step.fresh_labels == 0
        assert oracle.labels_served == 0
        assert step.difference_estimate == 0.0

    def test_labels_bounded_by_disagreement(self, world):
        session, oracle = make_session(world)
        new = evolve_predictions(
            world.old_model.predictions,
            world.labels,
            target_accuracy=0.92,
            difference=0.06,
            seed=1,
        )
        step = session.evaluate_commit(new)
        disagreement = int((new != world.old_model.predictions).sum())
        assert step.fresh_labels == disagreement
        assert oracle.labels_served == disagreement

    def test_labels_are_reused_across_commits(self, world):
        session, oracle = make_session(world)
        new = evolve_predictions(
            world.old_model.predictions, world.labels,
            target_accuracy=0.92, difference=0.06, seed=1,
        )
        first = session.evaluate_commit(new)
        again = session.evaluate_commit(new)  # same commit re-evaluated
        assert again.fresh_labels == 0
        assert again.cumulative_labels == first.cumulative_labels

    def test_budget_enforced(self, world):
        session, _ = make_session(world, max_labels=10)
        new = evolve_predictions(
            world.old_model.predictions, world.labels,
            target_accuracy=0.91, difference=0.05, seed=2,
        )
        with pytest.raises(LabelBudgetExceededError):
            session.evaluate_commit(new)


class TestEstimates:
    def test_gain_estimate_matches_full_relabeling(self, world):
        session, _ = make_session(world)
        new = evolve_predictions(
            world.old_model.predictions, world.labels,
            target_accuracy=0.93, difference=0.07, seed=3,
        )
        step = session.evaluate_commit(new)
        full_gain = float(
            np.mean(new == world.labels)
            - np.mean(world.old_model.predictions == world.labels)
        )
        assert step.gain_estimate == pytest.approx(full_gain, abs=1e-12)

    def test_pass_promotion_flow(self, world):
        session, _ = make_session(world)
        new = evolve_predictions(
            world.old_model.predictions, world.labels,
            target_accuracy=0.98, difference=0.09, seed=4,
        )
        step = session.evaluate_commit(new)
        assert step.passed
        session.promote_reference(new)
        follow_up = session.evaluate_commit(new)
        assert follow_up.difference_estimate == 0.0

    def test_step_indices_increment(self, world):
        session, _ = make_session(world)
        for expected in range(3):
            step = session.evaluate_commit(world.old_model.predictions)
            assert step.commit_index == expected


class TestValidation:
    def test_wrong_length_reference(self, world):
        gain = find_gain_clause(parse_condition("n - o > 0.02 +/- 0.05"))
        with pytest.raises(InvalidParameterError):
            ActiveLabelingSession(
                pool_size=100,
                label_source=LabelOracle(world.labels),
                gain=gain,
                reference_predictions=world.old_model.predictions,  # 5000 != 100
            )

    def test_wrong_length_commit(self, world):
        session, _ = make_session(world)
        with pytest.raises(InvalidParameterError):
            session.evaluate_commit(world.old_model.predictions[:10])

    def test_bad_label_source(self, world):
        session, _ = make_session(world, oracle=lambda idx: np.array([0]))
        new = evolve_predictions(
            world.old_model.predictions, world.labels,
            target_accuracy=0.91, difference=0.05, seed=5,
        )
        with pytest.raises(InvalidParameterError, match="label_source"):
            session.evaluate_commit(new)
