"""Tests for Pattern 2 and the coarse-to-fine accuracy test."""

import pytest

from repro.core.dsl.parser import parse_condition
from repro.core.logic import TernaryResult
from repro.core.patterns.implicit_variance import (
    CoarseToFineAccuracyTest,
    ImplicitVarianceProcedure,
)
from repro.core.patterns.matcher import (
    find_accuracy_bound_clause,
    find_gain_clause,
)
from repro.exceptions import TestsetSizeError
from repro.ml.models.simulated import ModelPairSpec, simulate_model_pair
from repro.stats.estimation import PairedSample


def make_procedure(delta=0.002, mode="fp-free") -> ImplicitVarianceProcedure:
    gain = find_gain_clause(parse_condition("n - o > 0.02 +/- 0.02"))
    return ImplicitVarianceProcedure(gain, delta=delta, mode=mode)


def make_sample(old, new, diff, n, seed=0) -> PairedSample:
    pair = simulate_model_pair(
        ModelPairSpec(
            old_accuracy=old, new_accuracy=new, difference=diff,
            disagree_wrong=max(0.0, diff - abs(new - old)) / 2,
        ),
        n_examples=n,
        seed=seed,
    )
    return PairedSample(
        old_predictions=pair.old_model.predictions,
        new_predictions=pair.new_model.predictions,
        labels=pair.labels,
    )


class TestSixteenXClaim:
    def test_first_testset_16x_smaller(self):
        """§4.2: the d-estimation testset is 16x smaller than testing
        n - o directly at tolerance D with Hoeffding (range 2)."""
        proc = make_procedure()
        direct = (2**2) * -__import__("math").log(proc.delta / 2) / (
            2 * proc.gain.tolerance**2
        )
        assert direct / proc.difference_samples == pytest.approx(16.0, rel=0.01)

    def test_difference_tolerance_doubled(self):
        proc = make_procedure()
        assert proc.difference_tolerance == pytest.approx(0.04)


class TestRuntime:
    def test_two_stage_pass(self):
        proc = make_procedure()
        n1 = proc.difference_samples
        sample1 = make_sample(0.85, 0.9, 0.06, n1, seed=1)
        p_hat = min(1.0, sample1.difference + proc.difference_tolerance)
        n2 = proc.test_samples_for(p_hat)
        sample2 = make_sample(0.85, 0.9, 0.06, n2, seed=2)
        outcome = proc.run(sample1, sample2)
        assert outcome.variance_bound == pytest.approx(p_hat)
        assert outcome.outcome is TernaryResult.TRUE
        assert outcome.passed

    def test_stage1_too_small(self):
        proc = make_procedure()
        tiny = make_sample(0.85, 0.9, 0.06, 10)
        with pytest.raises(TestsetSizeError, match="stage 1"):
            proc.run(tiny, tiny)

    def test_stage2_growth_demanded(self):
        proc = make_procedure()
        sample1 = make_sample(0.85, 0.9, 0.06, proc.difference_samples, seed=3)
        small2 = make_sample(0.85, 0.9, 0.06, 100, seed=4)
        with pytest.raises(TestsetSizeError, match="grow"):
            proc.run(sample1, small2)

    def test_larger_disagreement_needs_more_stage2(self):
        proc = make_procedure()
        assert proc.test_samples_for(0.3) > proc.test_samples_for(0.1)


class TestCoarseToFine:
    def make(self, threshold=0.95, tolerance=0.01, delta=1e-3):
        bound = find_accuracy_bound_clause(
            parse_condition(f"n > {threshold} +/- {tolerance}")
        )
        return CoarseToFineAccuracyTest(bound, delta=delta)

    def test_high_lower_bound_reduces_fine_samples(self):
        test = self.make()
        assert test.fine_samples_for(0.95) < test.fine_samples_for(0.6)

    def test_below_half_falls_back_to_hoeffding(self):
        test = self.make()
        hoeffding = test.fine_samples_for(0.3)
        also = test.fine_samples_for(0.0)
        assert hoeffding == also  # same fallback

    def test_savings_at_large_threshold(self):
        """The paper: improvement only when the bound is large (~0.9+)."""
        test = self.make(threshold=0.95)
        fallback = test.fine_samples_for(0.3)
        assert test.fine_samples_for(0.93) < fallback / 3

    def test_run_flow(self):
        test = self.make(threshold=0.9, tolerance=0.02)
        lb, required, outcome, passed = test.run(
            coarse_accuracy=0.95,
            fine_sample_accuracy=0.94,
            fine_n=test.fine_samples_for(0.95 - test.coarse_tolerance),
        )
        assert lb == pytest.approx(0.95 - test.coarse_tolerance)
        assert outcome is TernaryResult.TRUE and passed

    def test_run_insufficient_fine_samples(self):
        test = self.make()
        with pytest.raises(TestsetSizeError):
            test.run(coarse_accuracy=0.97, fine_sample_accuracy=0.97, fine_n=10)
