"""Tests for hierarchical testing (Pattern 1 runtime)."""

import numpy as np
import pytest

from repro.core.dsl.parser import parse_condition
from repro.core.logic import TernaryResult
from repro.core.patterns.hierarchical import FilterOutcome, HierarchicalTest
from repro.core.patterns.matcher import match_pattern1
from repro.exceptions import TestsetSizeError
from repro.ml.models.simulated import ModelPairSpec, simulate_model_pair
from repro.stats.estimation import PairedSample


def make_test(delta=1e-4 / 32, mode="fp-free", policy="threshold") -> HierarchicalTest:
    formula = parse_condition("d < 0.1 +/- 0.01 /\\ n - o > 0.02 +/- 0.01")
    pattern = match_pattern1(formula)
    assert pattern is not None
    return HierarchicalTest(
        pattern.difference,
        pattern.gain,
        delta=delta,
        mode=mode,
        variance_bound_policy=policy,
    )


def make_sample(old_acc, new_acc, diff, n, seed=0) -> PairedSample:
    pair = simulate_model_pair(
        ModelPairSpec(
            old_accuracy=old_acc,
            new_accuracy=new_acc,
            difference=diff,
            disagree_wrong=max(0.0, diff - abs(new_acc - old_acc)) / 2,
        ),
        n_examples=n,
        seed=seed,
    )
    return PairedSample(
        old_predictions=pair.old_model.predictions,
        new_predictions=pair.new_model.predictions,
        labels=pair.labels,
    )


class TestSizing:
    def test_test_samples_match_paper_29k(self):
        test = make_test()
        assert test.test_samples == 29048

    def test_filter_uses_unlabeled_hoeffding(self):
        test = make_test()
        # ln(1/(delta/2)) / (2 * 0.01^2) at delta = 1e-4/32.
        assert test.filter_samples == 66847

    def test_expected_labels_is_p_fraction(self):
        test = make_test()
        assert test.expected_labels == pytest.approx(0.1 * test.test_samples, abs=1)

    def test_inflated_policy_larger(self):
        assert make_test(policy="inflated").test_samples > make_test().test_samples


class TestRuntime:
    def test_filter_rejects_large_difference_without_labels(self):
        test = make_test()
        n = max(test.filter_samples, test.test_samples)
        sample = make_sample(0.55, 0.53, 0.3, n)
        outcome = test.run(sample)
        assert outcome.filter_outcome is FilterOutcome.REJECTED
        assert outcome.labels_used == 0
        assert not outcome.passed

    def test_clear_pass(self):
        test = make_test()
        n = max(test.filter_samples, test.test_samples)
        sample = make_sample(0.85, 0.90, 0.06, n)
        outcome = test.run(sample)
        assert outcome.filter_outcome is FilterOutcome.PROCEED
        assert outcome.gain_outcome is TernaryResult.TRUE
        assert outcome.passed
        assert outcome.labels_used == int(sample.disagreement_mask.sum())

    def test_unknown_resolved_by_mode(self):
        n = 70_000
        sample = make_sample(0.85, 0.875, 0.06, n)  # gain 0.025, in (0.01, 0.03)
        fp = make_test(mode="fp-free").run(sample)
        fn = make_test(mode="fn-free").run(sample)
        assert fp.gain_outcome is TernaryResult.UNKNOWN
        assert not fp.passed and fn.passed

    def test_sample_too_small_raises(self):
        test = make_test()
        sample = make_sample(0.9, 0.92, 0.05, 1000)
        with pytest.raises(TestsetSizeError):
            test.run(sample)

    def test_borderline_difference_proceeds_but_d_clause_unknown(self):
        test = make_test()
        n = max(test.filter_samples, test.test_samples)
        sample = make_sample(0.85, 0.91, 0.105, n)  # d-hat in (0.09, 0.11)
        outcome = test.run(sample)
        assert outcome.filter_outcome is FilterOutcome.PROCEED
        assert outcome.difference_outcome is TernaryResult.UNKNOWN
        # fp-free: unknown conjunction -> fail.
        assert not outcome.passed
