"""Tests for the formula pattern matcher."""

import pytest

from repro.core.dsl.parser import parse_condition
from repro.core.patterns.matcher import (
    find_accuracy_bound_clause,
    find_difference_clause,
    find_gain_clause,
    match_pattern1,
    match_pattern2,
)


class TestDifferenceClause:
    def test_canonical_form(self):
        match = find_difference_clause(parse_condition("d < 0.1 +/- 0.01"))
        assert match is not None
        assert match.threshold == pytest.approx(0.1)
        assert match.tolerance == pytest.approx(0.01)

    def test_constant_folded_into_threshold(self):
        match = find_difference_clause(parse_condition("d + 0.02 < 0.1 +/- 0.01"))
        assert match is not None
        assert match.threshold == pytest.approx(0.08)

    def test_wrong_comparator_rejected(self):
        assert find_difference_clause(parse_condition("d > 0.1 +/- 0.01")) is None

    def test_scaled_d_rejected(self):
        assert find_difference_clause(parse_condition("2 * d < 0.1 +/- 0.01")) is None

    def test_inflated_bound(self):
        match = find_difference_clause(parse_condition("d < 0.1 +/- 0.02"))
        assert match.inflated_variance_bound == pytest.approx(0.14)


class TestGainClause:
    def test_canonical_form(self):
        match = find_gain_clause(parse_condition("n - o > 0.02 +/- 0.01"))
        assert match is not None
        assert match.scale == pytest.approx(1.0)
        assert match.threshold == pytest.approx(0.02)

    def test_reordered_form(self):
        match = find_gain_clause(parse_condition("-o + n > 0.02 +/- 0.01"))
        assert match is not None

    def test_scaled_gain(self):
        match = find_gain_clause(parse_condition("2 * n - 2 * o > 0.04 +/- 0.02"))
        assert match is not None
        assert match.scale == pytest.approx(2.0)

    def test_asymmetric_coefficients_rejected(self):
        assert find_gain_clause(parse_condition("n - 1.1 * o > 0.02 +/- 0.01")) is None

    def test_wrong_direction_rejected(self):
        assert find_gain_clause(parse_condition("o - n > 0.02 +/- 0.01")) is None

    def test_less_than_rejected(self):
        assert find_gain_clause(parse_condition("n - o < 0.02 +/- 0.01")) is None


class TestAccuracyBound:
    def test_canonical(self):
        match = find_accuracy_bound_clause(parse_condition("n > 0.9 +/- 0.01"))
        assert match is not None and match.threshold == pytest.approx(0.9)

    def test_constant_folding(self):
        match = find_accuracy_bound_clause(parse_condition("n - 0.05 > 0.85 +/- 0.01"))
        assert match is not None and match.threshold == pytest.approx(0.9)

    def test_o_variable_rejected(self):
        assert find_accuracy_bound_clause(parse_condition("o > 0.9 +/- 0.01")) is None


class TestPatterns:
    def test_pattern1_both_orders(self):
        a = match_pattern1(
            parse_condition("d < 0.1 +/- 0.01 /\\ n - o > 0.02 +/- 0.01")
        )
        b = match_pattern1(
            parse_condition("n - o > 0.02 +/- 0.01 /\\ d < 0.1 +/- 0.01")
        )
        assert a is not None and b is not None
        assert a.difference.threshold == b.difference.threshold

    def test_pattern1_with_extra_clause(self):
        formula = parse_condition(
            "n > 0.5 +/- 0.1 /\\ d < 0.1 +/- 0.01 /\\ n - o > 0.02 +/- 0.01"
        )
        assert match_pattern1(formula) is not None

    def test_pattern1_requires_both(self):
        assert match_pattern1(parse_condition("d < 0.1 +/- 0.01")) is None
        assert match_pattern1(parse_condition("n - o > 0.02 +/- 0.01")) is None

    def test_pattern2_bare_gain(self):
        assert match_pattern2(parse_condition("n - o > 0.02 +/- 0.01")) is not None

    def test_pattern2_blocked_by_d_clause(self):
        formula = parse_condition("d < 0.1 +/- 0.01 /\\ n - o > 0.02 +/- 0.01")
        assert match_pattern2(formula) is None
