"""Engine edge cases: Pattern 1 formulas end-to-end, replacement testsets,
alarm notification routing."""

import numpy as np
import pytest

from repro.core.engine import CIEngine
from repro.core.script.config import CIScript
from repro.core.testset import Testset
from repro.exceptions import TestsetSizeError
from repro.ml.models.base import FixedPredictionModel
from repro.ml.models.simulated import (
    ModelPairSpec,
    evolve_predictions,
    simulate_model_pair,
)


def pattern1_script(**overrides):
    fields = {
        "condition": "d < 0.15 +/- 0.04 /\\ n - o > 0.02 +/- 0.04",
        "reliability": 0.99,
        "mode": "fp-free",
        "adaptivity": "full",
        "steps": 3,
    }
    fields.update(overrides)
    return CIScript.from_dict(fields)


@pytest.fixture
def pattern1_engine():
    script = pattern1_script()
    from repro.core.estimators.api import SampleSizeEstimator

    plan = SampleSizeEstimator().plan(
        script.condition, delta=script.delta,
        adaptivity=script.adaptivity, steps=script.steps,
    )
    world = simulate_model_pair(
        ModelPairSpec(old_accuracy=0.85, new_accuracy=0.85, difference=0.0),
        n_examples=plan.pool_size,
        seed=0,
    )
    mail = []
    engine = CIEngine(
        script,
        Testset(labels=world.labels, name="p1"),
        world.old_model,
        notifier=lambda *args: mail.append(args),
    )
    return engine, world, mail


class TestPattern1ThroughEngine:
    def test_d_clause_vetoes_big_gain(self, pattern1_engine):
        engine, world, _ = pattern1_engine
        # +6 points but 23% churn (nearly the max churn compatible with
        # that gain from 85% accuracy): the d clause vetoes the commit
        # regardless of the improvement.
        churner = FixedPredictionModel(
            evolve_predictions(
                engine.active_model.predictions, world.labels,
                target_accuracy=0.91, difference=0.23, seed=1,
            ),
            name="churner",
        )
        result = engine.submit(churner)
        assert not result.truly_passed
        d_eval = next(
            ce for ce in result.evaluation.clause_evaluations
            if ce.clause.variables() == {"d"}
        )
        assert d_eval.outcome.value == "false"

    def test_quiet_improvement_passes_both(self, pattern1_engine):
        engine, world, _ = pattern1_engine
        quiet = FixedPredictionModel(
            evolve_predictions(
                engine.active_model.predictions, world.labels,
                target_accuracy=0.93, difference=0.10, seed=2,
            ),
            name="quiet",
        )
        result = engine.submit(quiet)
        assert result.truly_passed and result.promoted

    def test_plan_exposes_split_costs(self, pattern1_engine):
        engine, _, _ = pattern1_engine
        assert engine.plan.pool_size > engine.plan.samples
        assert engine.plan.labels_per_evaluation < engine.plan.samples


class TestReplacementTestsets:
    def test_undersized_replacement_rejected(self, basic_script):
        from repro.core.estimators.api import SampleSizeEstimator

        plan = SampleSizeEstimator().plan(
            basic_script.condition, delta=basic_script.delta,
            adaptivity=basic_script.adaptivity, steps=basic_script.steps,
        )
        world = simulate_model_pair(
            ModelPairSpec(old_accuracy=0.8, new_accuracy=0.8, difference=0.0),
            n_examples=plan.pool_size,
            seed=3,
        )
        engine = CIEngine(
            basic_script, Testset(labels=world.labels), world.old_model
        )
        for i in range(basic_script.steps):
            engine.submit(world.old_model)
        tiny = Testset(labels=np.zeros(10, dtype=int), name="tiny")
        with pytest.raises(TestsetSizeError, match="replacement"):
            engine.install_testset(tiny)

    def test_alarm_mail_routed_in_full_mode(self, pattern1_engine):
        engine, world, mail = pattern1_engine
        for i in range(3):
            engine.submit(world.old_model)
        assert any("new testset" in subject for _, subject, _ in mail)

    def test_active_predictions_recomputed_on_install(self, basic_script):
        from repro.core.estimators.api import SampleSizeEstimator

        plan = SampleSizeEstimator().plan(
            basic_script.condition, delta=basic_script.delta,
            adaptivity=basic_script.adaptivity, steps=basic_script.steps,
        )
        world = simulate_model_pair(
            ModelPairSpec(old_accuracy=0.8, new_accuracy=0.8, difference=0.0),
            n_examples=plan.pool_size,
            seed=4,
        )
        engine = CIEngine(
            basic_script, Testset(labels=world.labels), world.old_model
        )
        for _ in range(basic_script.steps):
            engine.submit(world.old_model)
        fresh = simulate_model_pair(
            ModelPairSpec(old_accuracy=0.8, new_accuracy=0.8, difference=0.0),
            n_examples=plan.pool_size,
            seed=5,
        )
        engine.install_testset(
            Testset(labels=fresh.labels, name="g2"), baseline_model=fresh.old_model
        )
        # Submitting the same baseline yields zero gain on the new testset.
        result = engine.submit(fresh.old_model)
        estimates = result.evaluation.clause_evaluations[0].estimates
        gain = estimates.get(
            "n-o", estimates.get("n", 0.0) - estimates.get("o", 0.0)
        )
        assert gain == pytest.approx(0.0, abs=1e-12)
