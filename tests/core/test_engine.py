"""Tests for the CI engine: signal routing, promotion, alarms, lifecycle."""

import numpy as np
import pytest

from repro.core.engine import CIEngine
from repro.core.script.config import CIScript
from repro.core.testset import Testset
from repro.exceptions import TestsetExhaustedError, TestsetSizeError
from repro.ml.models.base import FixedPredictionModel
from repro.ml.models.simulated import (
    ModelPairSpec,
    evolve_predictions,
    simulate_model_pair,
)


def make_script(**overrides) -> CIScript:
    fields = {
        "condition": "n - o > 0.02 +/- 0.05",
        "reliability": 0.99,
        "mode": "fp-free",
        "adaptivity": "full",
        "steps": 4,
    }
    fields.update(overrides)
    return CIScript.from_dict(fields)


def make_world(plan_pool: int, accuracy=0.85, seed=0):
    pair = simulate_model_pair(
        ModelPairSpec(old_accuracy=accuracy, new_accuracy=accuracy, difference=0.0),
        n_examples=plan_pool,
        seed=seed,
    )
    return pair


def pool_for(script: CIScript) -> int:
    from repro.core.estimators.api import SampleSizeEstimator

    return SampleSizeEstimator().plan(
        script.condition,
        delta=script.delta,
        adaptivity=script.adaptivity,
        steps=script.steps,
        known_variance_bound=script.variance_bound,
    ).pool_size


def evolve(engine, world, accuracy, difference, seed):
    return FixedPredictionModel(
        evolve_predictions(
            engine.active_model.predictions,
            world.labels,
            target_accuracy=accuracy,
            difference=difference,
            seed=seed,
        ),
        name=f"acc-{accuracy}",
    )


class TestConstruction:
    def test_small_testset_rejected(self):
        script = make_script()
        world = make_world(100)
        with pytest.raises(TestsetSizeError):
            CIEngine(script, Testset(labels=world.labels), world.old_model)

    def test_enforcement_override(self):
        script = make_script()
        world = make_world(100)
        engine = CIEngine(
            script,
            Testset(labels=world.labels),
            world.old_model,
            enforce_testset_size=False,
        )
        assert engine.plan.samples > 100  # undersized but allowed


class TestFullAdaptivity:
    @pytest.fixture
    def engine_and_world(self):
        script = make_script(adaptivity="full")
        pool = pool_for(script)
        world = make_world(pool)
        engine = CIEngine(script, Testset(labels=world.labels), world.old_model)
        return engine, world

    def test_developer_sees_signal(self, engine_and_world):
        engine, world = engine_and_world
        model = evolve(engine, world, 0.95, 0.12, seed=1)
        result = engine.submit(model)
        assert result.developer_signal is True
        assert result.truly_passed and result.accepted and result.promoted

    def test_failing_commit_not_promoted(self, engine_and_world):
        engine, world = engine_and_world
        model = evolve(engine, world, 0.86, 0.05, seed=2)
        result = engine.submit(model)
        assert result.developer_signal is False
        assert not result.promoted
        assert engine.active_model is not model

    def test_promotion_changes_comparison_baseline(self, engine_and_world):
        engine, world = engine_and_world
        better = evolve(engine, world, 0.95, 0.12, seed=3)
        engine.submit(better)
        # The same model resubmitted now gains 0 against itself.
        result = engine.submit(better)
        assert not result.truly_passed

    def test_budget_alarm_fires_on_last_use(self, engine_and_world):
        engine, world = engine_and_world
        results = []
        for i in range(4):
            model = evolve(engine, world, 0.85, 0.04, seed=10 + i)
            results.append(engine.submit(model))
        assert results[-1].alarm_event is not None
        assert engine.manager.is_exhausted

    def test_submit_after_exhaustion_raises(self, engine_and_world):
        engine, world = engine_and_world
        for i in range(4):
            engine.submit(evolve(engine, world, 0.85, 0.04, seed=20 + i))
        with pytest.raises(TestsetExhaustedError):
            engine.submit(world.old_model)

    def test_install_testset_resumes(self, engine_and_world):
        engine, world = engine_and_world
        for i in range(4):
            engine.submit(evolve(engine, world, 0.85, 0.04, seed=30 + i))
        fresh_world = make_world(len(world.labels), seed=99)
        engine.install_testset(
            Testset(labels=fresh_world.labels, name="gen2"),
            baseline_model=fresh_world.old_model,
        )
        result = engine.submit(fresh_world.old_model)
        assert result.testset_uses == 1
        assert engine.manager.generation == 2


class TestNoneAdaptivity:
    @pytest.fixture
    def engine_world_mail(self):
        script = make_script(adaptivity="none -> third-party@example.com")
        pool = pool_for(script)
        world = make_world(pool)
        mail = []
        engine = CIEngine(
            script,
            Testset(labels=world.labels),
            world.old_model,
            notifier=lambda *args: mail.append(args),
        )
        return engine, world, mail

    def test_developer_signal_withheld(self, engine_world_mail):
        engine, world, mail = engine_world_mail
        result = engine.submit(evolve(engine, world, 0.95, 0.12, seed=1))
        assert result.developer_signal is None
        assert result.truly_passed  # integration team knows

    def test_all_commits_accepted(self, engine_world_mail):
        engine, world, mail = engine_world_mail
        failing = evolve(engine, world, 0.80, 0.07, seed=2)
        result = engine.submit(failing)
        assert result.accepted and not result.truly_passed

    def test_third_party_receives_true_signal(self, engine_world_mail):
        engine, world, mail = engine_world_mail
        engine.submit(evolve(engine, world, 0.95, 0.12, seed=3))
        recipients = [m[0] for m in mail]
        assert "third-party@example.com" in recipients
        assert any("PASS" in m[1] for m in mail)

    def test_promotion_still_happens_on_true_pass(self, engine_world_mail):
        engine, world, mail = engine_world_mail
        model = evolve(engine, world, 0.95, 0.12, seed=4)
        result = engine.submit(model)
        assert result.promoted and engine.active_model is model


class TestFirstChange:
    def test_pass_retires_testset(self):
        script = make_script(adaptivity="firstChange")
        pool = pool_for(script)
        world = make_world(pool)
        engine = CIEngine(script, Testset(labels=world.labels), world.old_model)
        # Failing commits keep the testset alive.
        fail = evolve(engine, world, 0.86, 0.05, seed=1)
        assert engine.submit(fail).alarm_event is None
        # The first pass retires it immediately (§3.4).
        good = evolve(engine, world, 0.95, 0.12, seed=2)
        result = engine.submit(good)
        assert result.truly_passed
        assert result.alarm_event is not None
        assert result.alarm_event.reason.value == "first-change-pass"
        assert engine.manager.is_exhausted
        with pytest.raises(TestsetExhaustedError):
            engine.submit(good)

    def test_first_change_costs_like_non_adaptive(self):
        hybrid = make_script(adaptivity="firstChange")
        none = make_script(adaptivity="none -> x@y.com")
        assert pool_for(hybrid) == pool_for(none)
