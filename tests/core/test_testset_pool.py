"""TestsetPool: ordering, budgets, watermark callbacks, pickling."""

import pickle

import numpy as np
import pytest

from repro.core.testset import PoolLowWatermarkEvent, Testset, TestsetPool
from repro.exceptions import EngineStateError, TestsetExhaustedError


def make_testsets(count, size=8):
    return [
        Testset(labels=np.arange(size) % 2, name=f"gen-{i}") for i in range(count)
    ]


def test_pop_is_fifo_and_counts():
    testsets = make_testsets(3)
    pool = TestsetPool(testsets)
    assert pool.pending == len(pool) == 3
    assert pool.pending_testsets == testsets
    popped = [pool.pop()[0] for _ in range(3)]
    assert popped == testsets
    assert pool.pending == 0
    assert pool.popped == 3
    assert pool.is_empty


def test_pop_on_dry_pool_raises():
    pool = TestsetPool()
    with pytest.raises(TestsetExhaustedError):
        pool.pop()


def test_budgets_align_with_testsets():
    testsets = make_testsets(2)
    pool = TestsetPool(testsets, budgets=[5, None], default_budget=9)
    assert pool.remaining_evaluations() == 5 + 9
    assert pool.pop() == (testsets[0], 5)
    assert pool.pop() == (testsets[1], None)  # engine falls back to default
    with pytest.raises(EngineStateError):
        TestsetPool(testsets, budgets=[5])


def test_remaining_evaluations_without_default_counts_explicit_only():
    pool = TestsetPool(make_testsets(2), budgets=[4, None])
    assert pool.remaining_evaluations() == 4
    pool.default_budget = 6
    assert pool.remaining_evaluations() == 10


def test_add_appends_at_the_back():
    testsets = make_testsets(2)
    pool = TestsetPool([testsets[0]])
    pool.add(testsets[1], budget=3)
    assert pool.pop()[0] is testsets[0]
    assert pool.pop() == (testsets[1], 3)


def test_low_watermark_fires_on_crossing_pop():
    pool = TestsetPool(make_testsets(3), default_budget=4, low_watermark=1)
    events = []
    pool.on_low_watermark(events.append)
    pool.pop()  # 2 pending: above watermark, no event
    assert events == []
    pool.pop()  # 1 pending: at watermark
    pool.pop()  # 0 pending: below watermark
    assert len(events) == 2
    assert isinstance(events[0], PoolLowWatermarkEvent)
    assert events[0].pending_generations == 1
    assert events[0].remaining_evaluations == 4
    assert events[0].popped_testset_name == "gen-1"
    assert "Label a new testset" in events[0].message
    assert events[1].pending_generations == 0


def test_low_watermark_zero_fires_only_when_dry():
    pool = TestsetPool(make_testsets(2), low_watermark=0)
    events = []
    pool.on_low_watermark(events.append)
    pool.pop()
    assert events == []
    pool.pop()
    assert [e.pending_generations for e in events] == [0]


def test_callback_refilling_keeps_pool_in_steady_state():
    pool = TestsetPool(make_testsets(1), low_watermark=1)
    labeled = []

    def label_new_set(event):
        fresh = Testset(labels=np.zeros(8), name=f"fresh-{len(labeled)}")
        labeled.append(fresh)
        pool.add(fresh)

    pool.on_low_watermark(label_new_set)
    for _ in range(4):
        pool.pop()
    assert pool.pending == 1  # every pop below the watermark labeled one more
    assert len(labeled) == 4


def test_negative_watermark_rejected():
    with pytest.raises(EngineStateError):
        TestsetPool(low_watermark=-1)


def test_invalid_budgets_rejected_at_construction():
    from repro.exceptions import InvalidParameterError

    testsets = make_testsets(2)
    for bad in (0, -5):
        with pytest.raises(InvalidParameterError):
            TestsetPool(testsets, budgets=[4, bad])
        with pytest.raises(InvalidParameterError):
            TestsetPool(testsets[:1]).add(testsets[1], budget=bad)


def test_manager_install_rejects_zero_budget():
    from repro.core.testset import TestsetManager
    from repro.exceptions import InvalidParameterError

    testsets = make_testsets(2)
    manager = TestsetManager(testsets[0], budget=2)
    manager.consume(), manager.consume()
    manager.retire()
    with pytest.raises(InvalidParameterError):
        manager.install(testsets[1], budget=0)  # not a silent fallback
    manager.install(testsets[1])  # None still means "inherit"
    assert manager.remaining == 2


def test_pickle_round_trip_preserves_state_but_not_callbacks():
    testsets = make_testsets(3)
    pool = TestsetPool(testsets, budgets=[3, None, 7], default_budget=5,
                       low_watermark=2)
    pool.on_low_watermark(lambda event: None)  # unpicklable wiring
    pool.pop()

    clone = pickle.loads(pickle.dumps(pool))
    assert clone.pending == 2
    assert clone.popped == 1
    assert clone.default_budget == 5
    assert clone.low_watermark == 2
    assert clone.remaining_evaluations() == 5 + 7
    assert [t.name for t in clone.pending_testsets] == ["gen-1", "gen-2"]
    np.testing.assert_array_equal(
        clone.pending_testsets[0].labels, testsets[1].labels
    )
    # callbacks are runtime wiring and do not survive; popping must not
    # try to invoke a stale one
    next_name = clone.pop()[0].name
    assert next_name == "gen-1"
    assert clone._callbacks == []
