"""Tests for the condition-DSL parser (permissive and strict grammars)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dsl.nodes import BinaryOp, Clause, Constant, Formula, Variable
from repro.core.dsl.parser import parse_clause, parse_condition, parse_expression
from repro.exceptions import SemanticError, SyntaxParseError


class TestExpressionParsing:
    def test_single_variable(self):
        assert parse_expression("n") == Variable("n")

    def test_difference(self):
        assert parse_expression("n - o") == BinaryOp("-", Variable("n"), Variable("o"))

    def test_left_associativity(self):
        expr = parse_expression("n - o - d")
        assert expr == BinaryOp(
            "-", BinaryOp("-", Variable("n"), Variable("o")), Variable("d")
        )

    def test_multiplication_precedence(self):
        expr = parse_expression("n - 1.1 * o")
        assert expr == BinaryOp(
            "-", Variable("n"), BinaryOp("*", Constant(1.1), Variable("o"))
        )

    def test_parentheses_override(self):
        expr = parse_expression("(n - o) * 2")
        assert expr == BinaryOp(
            "*", BinaryOp("-", Variable("n"), Variable("o")), Constant(2.0)
        )

    def test_unary_minus(self):
        expr = parse_expression("-n + o")
        assert expr.evaluate({"n": 0.3, "o": 0.5}) == pytest.approx(0.2)

    def test_unmatched_paren(self):
        with pytest.raises(SyntaxParseError):
            parse_expression("(n - o")


class TestClauseParsing:
    def test_paper_clause(self):
        clause = parse_clause("n - o > 0.02 +/- 0.01")
        assert clause.comparator == ">"
        assert clause.threshold == 0.02
        assert clause.tolerance == 0.01

    def test_less_than(self):
        clause = parse_clause("d < 0.1 +/- 0.01")
        assert clause.comparator == "<"

    def test_missing_tolerance_rejected(self):
        with pytest.raises(SyntaxParseError, match="error tolerance"):
            parse_clause("n > 0.5")

    def test_missing_comparator(self):
        with pytest.raises(SyntaxParseError, match="comparison"):
            parse_clause("n + o +/- 0.1")

    def test_negative_threshold_permissive(self):
        clause = parse_clause("n - o > -0.01 +/- 0.01")
        assert clause.threshold == -0.01

    def test_zero_tolerance_rejected(self):
        with pytest.raises(SemanticError, match="tolerance"):
            parse_clause("n > 0.5 +/- 0")

    def test_constant_only_expression_rejected(self):
        with pytest.raises(SemanticError, match="vacuous"):
            parse_clause("0.5 > 0.4 +/- 0.01")


class TestFormulaParsing:
    def test_single_clause_formula(self):
        formula = parse_condition("n > 0.8 +/- 0.05")
        assert isinstance(formula, Formula) and len(formula) == 1

    def test_paper_conjunction(self):
        formula = parse_condition("n - o > 0.02 +/- 0.01 /\\ d < 0.1 +/- 0.01")
        assert len(formula) == 2
        assert formula.clauses[1].variables() == {"d"}

    def test_three_clauses(self):
        source = "n > 0.5 +/- 0.1 /\\ d < 0.2 +/- 0.1 /\\ n - o > 0 +/- 0.1"
        assert len(parse_condition(source)) == 3

    def test_trailing_conjunction_rejected(self):
        with pytest.raises(SyntaxParseError):
            parse_condition("n > 0.5 +/- 0.1 /\\")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SyntaxParseError):
            parse_condition("n > 0.5 +/- 0.1 n")

    def test_variables_union(self):
        formula = parse_condition("n - o > 0.02 +/- 0.01 /\\ d < 0.1 +/- 0.01")
        assert formula.variables() == {"n", "o", "d"}


class TestStrictGrammar:
    def test_paper_examples_accepted(self):
        for source in (
            "n > 0.8 +/- 0.05",
            "n - o > 0.02 +/- 0.01",
            "d < 0.1 +/- 0.01",
            "n - 1.1 * o > 0.01 +/- 0.01 /\\ d < 0.1 +/- 0.01",
            "n * 2 - o > 0.01 +/- 0.01",
        ):
            parse_condition(source, strict=True)

    def test_parentheses_rejected(self):
        with pytest.raises(SyntaxParseError):
            parse_condition("(n - o) > 0.02 +/- 0.01", strict=True)

    def test_constant_head_term_rejected(self):
        with pytest.raises(SyntaxParseError):
            parse_condition("0.5 + n > 0.6 +/- 0.01", strict=True)

    def test_constant_times_constant_rejected(self):
        with pytest.raises(SyntaxParseError):
            parse_condition("2 * 3 > 0.5 +/- 0.01", strict=True)

    def test_negative_tolerance_rejected_in_strict(self):
        with pytest.raises(SyntaxParseError, match="strict"):
            parse_condition("n > 0.5 +/- -0.01", strict=True)

    def test_var_times_var_rejected(self):
        with pytest.raises(SyntaxParseError):
            parse_condition("n * o > 0.5 +/- 0.01", strict=True)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "source",
        [
            "n > 0.8 +/- 0.05",
            "n - o > 0.02 +/- 0.01",
            "n - o > 0.02 +/- 0.01 /\\ d < 0.1 +/- 0.01",
            "n - 1.1 * o > 0.01 +/- 0.01",
        ],
    )
    def test_to_source_reparses_identically(self, source):
        formula = parse_condition(source)
        assert parse_condition(formula.to_source()) == formula

    @given(
        threshold=st.floats(min_value=-1, max_value=1).map(lambda x: round(x, 4)),
        tolerance=st.floats(min_value=1e-4, max_value=0.5).map(lambda x: round(x, 4)),
        comparator=st.sampled_from([">", "<"]),
        variable=st.sampled_from(["n", "o", "d"]),
    )
    @settings(max_examples=60)
    def test_generated_clause_round_trips(
        self, threshold, tolerance, comparator, variable
    ):
        clause = Clause(
            expression=Variable(variable),
            comparator=comparator,
            threshold=threshold,
            tolerance=tolerance,
        )
        assert parse_clause(clause.to_source()) == clause
