"""Tests for the condition-DSL lexer."""

import pytest

from repro.core.dsl.lexer import tokenize
from repro.core.dsl.tokens import TokenType
from repro.exceptions import LexerError


def types(source: str) -> list[TokenType]:
    return [t.type for t in tokenize(source)]


class TestBasicTokens:
    def test_variables(self):
        assert types("n o d")[:-1] == [TokenType.VARIABLE] * 3

    def test_number(self):
        token = tokenize("0.25")[0]
        assert token.type is TokenType.NUMBER and token.value == 0.25

    def test_leading_dot_number(self):
        assert tokenize(".5")[0].value == 0.5

    def test_integer_number(self):
        assert tokenize("3")[0].value == 3.0

    def test_scientific_notation(self):
        assert tokenize("1e-3")[0].value == 0.001

    def test_operators(self):
        assert types("+ - * > <")[:-1] == [
            TokenType.PLUS,
            TokenType.MINUS,
            TokenType.STAR,
            TokenType.GREATER,
            TokenType.LESS,
        ]

    def test_parens(self):
        assert types("( )")[:-1] == [TokenType.LPAREN, TokenType.RPAREN]

    def test_eof_always_last(self):
        assert types("")[-1] is TokenType.EOF


class TestMultiCharTokens:
    def test_plus_minus_is_single_token(self):
        assert types("+/-")[:-1] == [TokenType.PLUS_MINUS]

    def test_plus_alone_before_slash_dash_not_confused(self):
        # "+ /-" (with a space) is PLUS then an error on '/'.
        with pytest.raises(LexerError):
            tokenize("+ /-")

    def test_conjunction(self):
        assert types("/\\")[:-1] == [TokenType.AND]

    def test_full_clause(self):
        tokens = types("n - o > 0.02 +/- 0.01")
        assert tokens == [
            TokenType.VARIABLE,
            TokenType.MINUS,
            TokenType.VARIABLE,
            TokenType.GREATER,
            TokenType.NUMBER,
            TokenType.PLUS_MINUS,
            TokenType.NUMBER,
            TokenType.EOF,
        ]


class TestErrors:
    def test_unknown_identifier(self):
        with pytest.raises(LexerError, match="unknown identifier"):
            tokenize("accuracy > 0.5 +/- 0.1")

    def test_division_rejected_with_hint(self):
        with pytest.raises(LexerError, match="division is unsupported"):
            tokenize("n / o > 1 +/- 0.1")

    def test_unexpected_character(self):
        with pytest.raises(LexerError, match="unexpected character"):
            tokenize("n > 0.5 @ 0.1")

    def test_error_carries_position(self):
        try:
            tokenize("n > 0.5 @")
        except LexerError as exc:
            assert exc.position == 8
        else:  # pragma: no cover
            pytest.fail("expected LexerError")

    def test_caret_diagnostic_rendered(self):
        with pytest.raises(LexerError, match=r"\^"):
            tokenize("n > 0.5 @")


class TestWhitespace:
    def test_whitespace_insensitive(self):
        compact = [
            (t.type, t.value) for t in tokenize("n-o>0.02+/-0.01")
        ]
        spaced = [
            (t.type, t.value) for t in tokenize("  n - o  >  0.02  +/-  0.01 ")
        ]
        assert compact == spaced

    def test_newlines_allowed(self):
        assert types("n >\n 0.5 +/- 0.1")[-1] is TokenType.EOF

    def test_positions_recorded(self):
        positions = [t.position for t in tokenize("n > 0.5")][:-1]
        assert positions == [0, 2, 4]
