"""Tests for linear canonicalization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dsl.linear import LinearExpression, linearize
from repro.core.dsl.parser import parse_clause, parse_expression
from repro.exceptions import SemanticError


class TestLinearize:
    def test_single_variable(self):
        lin = linearize(parse_expression("n"))
        assert lin.coefficient("n") == 1.0 and lin.constant == 0.0

    def test_difference(self):
        lin = linearize(parse_expression("n - o"))
        assert lin.coefficient("n") == 1.0
        assert lin.coefficient("o") == -1.0

    def test_scaled_variable_left_constant(self):
        lin = linearize(parse_expression("1.1 * o"))
        assert lin.coefficient("o") == pytest.approx(1.1)

    def test_scaled_variable_right_constant(self):
        lin = linearize(parse_expression("o * 1.1"))
        assert lin.coefficient("o") == pytest.approx(1.1)

    def test_constant_folding(self):
        lin = linearize(parse_expression("n + 0.1 - 0.05"))
        assert lin.constant == pytest.approx(0.05)

    def test_cancellation_drops_variable(self):
        lin = linearize(parse_expression("n - n + d"))
        assert lin.variables() == {"d"}

    def test_distribution_over_parens(self):
        lin = linearize(parse_expression("(n - o) * 2"))
        assert lin.coefficient("n") == 2.0 and lin.coefficient("o") == -2.0

    def test_negation(self):
        lin = linearize(parse_expression("-(n - o)"))
        assert lin.coefficient("n") == -1.0 and lin.coefficient("o") == 1.0

    def test_nonlinear_product_rejected(self):
        with pytest.raises(SemanticError, match="nonlinear"):
            linearize(parse_expression("(n - o) * (n + o)"))

    def test_clause_input_uses_lhs(self):
        lin = linearize(parse_clause("n - o > 0.02 +/- 0.01"))
        assert lin.variables() == {"n", "o"}

    @given(
        n=st.floats(min_value=0, max_value=1),
        o=st.floats(min_value=0, max_value=1),
        d=st.floats(min_value=0, max_value=1),
    )
    @settings(max_examples=50)
    def test_linearized_evaluation_matches_ast(self, n, o, d):
        expr = parse_expression("n - 1.1 * o + 0.5 * d - 0.02")
        assignment = {"n": n, "o": o, "d": d}
        assert linearize(expr).evaluate(assignment) == pytest.approx(
            expr.evaluate(assignment)
        )


class TestLinearExpression:
    def test_value_range_default(self):
        lin = LinearExpression({"n": 1.0, "o": -1.1})
        assert lin.value_range() == pytest.approx(2.1)

    def test_value_range_custom(self):
        lin = LinearExpression({"n": 2.0})
        assert lin.value_range({"n": 0.5}) == pytest.approx(1.0)

    def test_algebra_add(self):
        a = LinearExpression({"n": 1.0}, 0.1)
        b = LinearExpression({"n": 0.5, "o": 1.0}, -0.1)
        c = a + b
        assert c.coefficient("n") == 1.5 and c.constant == pytest.approx(0.0)

    def test_algebra_sub_cancels(self):
        a = LinearExpression({"n": 1.0})
        assert (a - a).is_constant

    def test_scale(self):
        lin = LinearExpression({"n": 1.0}, 1.0).scale(-2.0)
        assert lin.coefficient("n") == -2.0 and lin.constant == -2.0

    def test_zero_coefficients_dropped(self):
        lin = LinearExpression({"n": 0.0, "o": 1.0})
        assert lin.variables() == {"o"}

    def test_unknown_variable_rejected(self):
        with pytest.raises(SemanticError):
            LinearExpression({"x": 1.0})

    def test_to_source_canonical(self):
        lin = LinearExpression({"n": 1.0, "o": -1.1}, 0.5)
        assert lin.to_source() == "n - 1.1 * o + 0.5"

    def test_constant_only_source(self):
        assert LinearExpression({}, -0.5).to_source() == "-0.5"
