"""Tests for the DSL AST nodes."""

import pytest

from repro.core.dsl.nodes import (
    BinaryOp,
    Clause,
    Constant,
    Formula,
    Negation,
    Variable,
)
from repro.exceptions import SemanticError


class TestVariable:
    def test_valid_names(self):
        for name in ("n", "o", "d"):
            assert Variable(name).name == name

    def test_invalid_name_rejected(self):
        with pytest.raises(SemanticError, match="unknown variable"):
            Variable("x")

    def test_evaluate(self):
        assert Variable("n").evaluate({"n": 0.7}) == 0.7

    def test_missing_assignment(self):
        with pytest.raises(SemanticError, match="no value"):
            Variable("n").evaluate({})

    def test_hashable(self):
        assert len({Variable("n"), Variable("n"), Variable("o")}) == 2


class TestExpressions:
    def test_binary_evaluate(self):
        expr = BinaryOp("-", Variable("n"), Variable("o"))
        assert expr.evaluate({"n": 0.9, "o": 0.8}) == pytest.approx(0.1)

    def test_invalid_op(self):
        with pytest.raises(SemanticError):
            BinaryOp("/", Variable("n"), Constant(2.0))

    def test_negation(self):
        assert Negation(Variable("n")).evaluate({"n": 0.4}) == -0.4

    def test_to_source_parenthesizes_products(self):
        expr = BinaryOp("*", BinaryOp("-", Variable("n"), Variable("o")), Constant(2))
        assert expr.to_source() == "(n - o) * 2"

    def test_to_source_subtraction_grouping(self):
        expr = BinaryOp("-", Variable("n"), BinaryOp("+", Variable("o"), Variable("d")))
        assert expr.to_source() == "n - (o + d)"

    def test_variables_aggregation(self):
        expr = BinaryOp("+", Variable("n"), BinaryOp("*", Constant(2), Variable("d")))
        assert expr.variables() == {"n", "d"}


class TestClause:
    def test_exact_evaluation(self):
        clause = Clause(Variable("n"), ">", 0.8, 0.05)
        assert clause.evaluate_exact({"n": 0.85})
        assert not clause.evaluate_exact({"n": 0.75})

    def test_less_comparator(self):
        clause = Clause(Variable("d"), "<", 0.1, 0.01)
        assert clause.evaluate_exact({"d": 0.05})

    def test_bad_comparator(self):
        with pytest.raises(SemanticError):
            Clause(Variable("n"), ">=", 0.8, 0.05)

    def test_negative_tolerance(self):
        with pytest.raises(SemanticError):
            Clause(Variable("n"), ">", 0.8, -0.05)


class TestFormula:
    def test_conjunction_semantics(self):
        formula = Formula(
            (
                Clause(Variable("n"), ">", 0.8, 0.01),
                Clause(Variable("d"), "<", 0.1, 0.01),
            )
        )
        assert formula.evaluate_exact({"n": 0.9, "d": 0.05})
        assert not formula.evaluate_exact({"n": 0.9, "d": 0.2})

    def test_empty_rejected(self):
        with pytest.raises(SemanticError, match="at least one"):
            Formula(())

    def test_iteration_order(self):
        clauses = (
            Clause(Variable("n"), ">", 0.8, 0.01),
            Clause(Variable("d"), "<", 0.1, 0.01),
        )
        assert tuple(Formula(clauses)) == clauses

    def test_str_is_source(self):
        formula = Formula((Clause(Variable("n"), ">", 0.8, 0.01),))
        assert str(formula) == "n > 0.8 +/- 0.01"
