"""Tests for repro.utils.formatting."""

import pytest

from repro.utils.formatting import (
    Table,
    format_count,
    format_float,
    format_scientific,
    render_series,
)


class TestFormatters:
    def test_format_count_thousands(self):
        assert format_count(63381) == "63,381"

    def test_format_count_truncates_float(self):
        assert format_count(404.9) == "404"

    def test_format_float_digits(self):
        assert format_float(3.14159, 2) == "3.14"

    def test_format_scientific(self):
        assert format_scientific(0.0001) == "1.00e-04"


class TestTable:
    def test_basic_render(self):
        t = Table(["a", "b"])
        t.add_row([1, 2])
        out = t.render()
        assert "a" in out and "1" in out and "|" in out

    def test_right_alignment(self):
        t = Table(["col"], align=[">"])
        t.add_row([1])
        t.add_row([1000])
        lines = t.render().splitlines()
        assert lines[-2].endswith("   1")
        assert lines[-1].endswith("1000")

    def test_title_renders_above(self):
        t = Table(["x"], title="My Table")
        t.add_row([1])
        assert t.render().splitlines()[0] == "My Table"

    def test_row_width_mismatch_raises(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError, match="2 columns"):
            t.add_row([1])

    def test_align_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="align"):
            Table(["a", "b"], align=[">"])

    def test_invalid_align_char_raises(self):
        with pytest.raises(ValueError, match="alignment"):
            Table(["a"], align=["x"])

    def test_add_rows_bulk(self):
        t = Table(["a"])
        t.add_rows([[1], [2], [3]])
        assert len(t.rows) == 3

    def test_str_is_render(self):
        t = Table(["a"])
        t.add_row([1])
        assert str(t) == t.render()

    def test_empty_table_renders_header_only(self):
        t = Table(["only"])
        out = t.render()
        assert "only" in out
        assert len(out.splitlines()) == 2  # header + rule


class TestRenderSeries:
    def test_series_alignment(self):
        out = render_series("title", [1, 2], {"y": [10, 20]}, x_label="x")
        lines = out.splitlines()
        assert lines[0] == "title"
        assert "x" in lines[2] and "y" in lines[2]
        assert "10" in out and "20" in out
