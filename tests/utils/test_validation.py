"""Tests for repro.utils.validation."""

import math

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.utils.validation import (
    check_fraction,
    check_in_range,
    check_positive,
    check_positive_int,
    check_probability,
    check_type,
)


class TestCheckProbability:
    def test_interior_value_passes(self):
        assert check_probability(0.5) == 0.5

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.1, 1.1])
    def test_open_interval_rejects_boundary(self, bad):
        with pytest.raises(InvalidParameterError):
            check_probability(bad)

    @pytest.mark.parametrize("ok", [0.0, 1.0, 0.3])
    def test_inclusive_accepts_boundary(self, ok):
        assert check_probability(ok, inclusive=True) == ok

    def test_nan_rejected(self):
        with pytest.raises(InvalidParameterError, match="finite"):
            check_probability(math.nan)

    def test_inf_rejected(self):
        with pytest.raises(InvalidParameterError, match="finite"):
            check_probability(math.inf, inclusive=True)

    def test_bool_rejected(self):
        with pytest.raises(InvalidParameterError):
            check_probability(True)

    def test_name_appears_in_message(self):
        with pytest.raises(InvalidParameterError, match="myparam"):
            check_probability(2.0, "myparam")


class TestCheckFraction:
    def test_boundaries_allowed(self):
        assert check_fraction(0.0, "f") == 0.0
        assert check_fraction(1.0, "f") == 1.0

    def test_outside_rejected(self):
        with pytest.raises(InvalidParameterError):
            check_fraction(1.5, "f")


class TestCheckPositive:
    def test_positive_passes(self):
        assert check_positive(0.1, "x") == 0.1

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_nonpositive_rejected(self, bad):
        with pytest.raises(InvalidParameterError):
            check_positive(bad, "x")

    def test_string_rejected(self):
        with pytest.raises(InvalidParameterError):
            check_positive("3", "x")  # strings are not numbers here


class TestCheckPositiveInt:
    def test_int_passes(self):
        assert check_positive_int(3, "n") == 3

    def test_numpy_integer_coerced(self):
        out = check_positive_int(np.int32(5), "n")
        assert out == 5 and isinstance(out, int)

    @pytest.mark.parametrize("bad", [0, -2])
    def test_nonpositive_rejected(self, bad):
        with pytest.raises(InvalidParameterError):
            check_positive_int(bad, "n")

    def test_bool_rejected(self):
        with pytest.raises(InvalidParameterError):
            check_positive_int(True, "n")

    def test_float_rejected(self):
        with pytest.raises(InvalidParameterError):
            check_positive_int(2.0, "n")


class TestCheckInRange:
    def test_inclusive_default(self):
        assert check_in_range(0.0, "x", 0.0, 1.0) == 0.0
        assert check_in_range(1.0, "x", 0.0, 1.0) == 1.0

    def test_exclusive_low(self):
        with pytest.raises(InvalidParameterError):
            check_in_range(0.0, "x", 0.0, 1.0, low_inclusive=False)

    def test_exclusive_high(self):
        with pytest.raises(InvalidParameterError):
            check_in_range(1.0, "x", 0.0, 1.0, high_inclusive=False)

    def test_bracket_rendering(self):
        with pytest.raises(InvalidParameterError, match=r"\(0, 1\]"):
            check_in_range(0.0, "x", 0, 1, low_inclusive=False)


class TestCheckType:
    def test_match_passes(self):
        assert check_type("s", "x", str) == "s"

    def test_tuple_of_types(self):
        assert check_type(3, "x", (int, float)) == 3

    def test_mismatch_raises(self):
        with pytest.raises(InvalidParameterError, match="of type int"):
            check_type("s", "x", int)
