"""Tests for repro.utils.serialization."""

import enum
from dataclasses import dataclass

import numpy as np
import pytest

from repro.utils.serialization import dumps, loads, to_jsonable


class Color(enum.Enum):
    RED = "red"


@dataclass
class Point:
    x: float
    arr: np.ndarray


class TestToJsonable:
    def test_scalars_pass_through(self):
        for v in (None, True, 3, 2.5, "s"):
            assert to_jsonable(v) == v

    def test_numpy_scalars(self):
        assert to_jsonable(np.int64(3)) == 3
        assert to_jsonable(np.float64(2.5)) == 2.5
        assert to_jsonable(np.bool_(True)) is True

    def test_ndarray_to_list(self):
        assert to_jsonable(np.array([1, 2])) == [1, 2]

    def test_enum_by_value(self):
        assert to_jsonable(Color.RED) == "red"

    def test_dataclass_with_numpy_field(self):
        out = to_jsonable(Point(x=1.0, arr=np.array([3.0])))
        assert out == {"x": 1.0, "arr": [3.0]}

    def test_nested_dict_keys_stringified(self):
        assert to_jsonable({1: "a"}) == {"1": "a"}

    def test_set_sorted(self):
        assert to_jsonable({3, 1, 2}) == [1, 2, 3]

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError, match="cannot serialize"):
            to_jsonable(object())


class TestRoundTrip:
    def test_dumps_loads(self):
        original = {"a": [1, 2], "b": {"c": 0.5}}
        assert loads(dumps(original)) == original

    def test_dumps_dataclass(self):
        text = dumps(Point(x=2.0, arr=np.arange(2)))
        assert loads(text) == {"arr": [0, 1], "x": 2.0}
