"""Tests for repro.utils.serialization."""

import datetime
import enum
import pathlib
from dataclasses import dataclass

import numpy as np
import pytest

from repro.utils.serialization import dumps, loads, to_jsonable


class Color(enum.Enum):
    RED = "red"


@dataclass
class Point:
    x: float
    arr: np.ndarray


class TestToJsonable:
    def test_scalars_pass_through(self):
        for v in (None, True, 3, 2.5, "s"):
            assert to_jsonable(v) == v

    def test_numpy_scalars(self):
        assert to_jsonable(np.int64(3)) == 3
        assert to_jsonable(np.float64(2.5)) == 2.5
        assert to_jsonable(np.bool_(True)) is True

    def test_ndarray_to_list(self):
        assert to_jsonable(np.array([1, 2])) == [1, 2]

    def test_enum_by_value(self):
        assert to_jsonable(Color.RED) == "red"

    def test_dataclass_with_numpy_field(self):
        out = to_jsonable(Point(x=1.0, arr=np.array([3.0])))
        assert out == {"x": 1.0, "arr": [3.0]}

    def test_nested_dict_keys_stringified(self):
        assert to_jsonable({1: "a"}) == {"1": "a"}

    def test_set_sorted(self):
        assert to_jsonable({3, 1, 2}) == [1, 2, 3]

    def test_datetime_iso8601(self):
        stamp = datetime.datetime(2026, 7, 30, 12, 34, 56, tzinfo=datetime.timezone.utc)
        assert to_jsonable(stamp) == "2026-07-30T12:34:56+00:00"

    def test_naive_datetime_iso8601(self):
        assert to_jsonable(datetime.datetime(2026, 1, 2, 3, 4, 5)) == (
            "2026-01-02T03:04:05"
        )

    def test_date_iso8601(self):
        assert to_jsonable(datetime.date(2026, 7, 30)) == "2026-07-30"

    def test_path_as_string(self):
        path = pathlib.Path("state") / "journal.jsonl"
        assert to_jsonable(path) == str(path)

    def test_pure_path_as_string(self):
        assert to_jsonable(pathlib.PurePosixPath("/a/b")) == "/a/b"

    def test_journal_style_payload_round_trips(self):
        # The shape journal records use: datetimes and paths nested in a dict.
        payload = {
            "recorded_at": datetime.datetime(2026, 7, 30, 1, 2, 3),
            "path": pathlib.Path("snapshots/snapshot-000001.pkl"),
            "sequence": np.int64(4),
        }
        assert loads(dumps(payload)) == {
            "recorded_at": "2026-07-30T01:02:03",
            "path": "snapshots/snapshot-000001.pkl",
            "sequence": 4,
        }

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError, match="cannot serialize"):
            to_jsonable(object())


class TestRoundTrip:
    def test_dumps_loads(self):
        original = {"a": [1, 2], "b": {"c": 0.5}}
        assert loads(dumps(original)) == original

    def test_dumps_dataclass(self):
        text = dumps(Point(x=2.0, arr=np.arange(2)))
        assert loads(text) == {"arr": [0, 1], "x": 2.0}
