"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(ensure_rng(1).random(5), ensure_rng(2).random(5))

    def test_generator_passes_through(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(7)
        assert isinstance(ensure_rng(ss), np.random.Generator)

    def test_numpy_integer_seed(self):
        assert isinstance(ensure_rng(np.int64(3)), np.random.Generator)

    def test_invalid_seed_type_raises(self):
        with pytest.raises(TypeError, match="seed must be"):
            ensure_rng("not-a-seed")

    def test_float_seed_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng(1.5)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_children(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError, match="non-negative"):
            spawn_rngs(0, -1)

    def test_children_are_independent(self):
        a, b = spawn_rngs(0, 2)
        assert not np.array_equal(a.random(10), b.random(10))

    def test_reproducible_from_same_seed(self):
        first = [g.random(3) for g in spawn_rngs(9, 3)]
        second = [g.random(3) for g in spawn_rngs(9, 3)]
        for x, y in zip(first, second):
            np.testing.assert_array_equal(x, y)

    def test_spawn_from_generator(self):
        gen = np.random.default_rng(0)
        children = spawn_rngs(gen, 3)
        assert len(children) == 3
        assert all(isinstance(c, np.random.Generator) for c in children)
