"""Storage governance: watermarks, reclamation, degrade-to-read-only.

The governor itself only measures and classifies; these tests pin the
three layers that act on it — the repository's commit gates (veto before
any mutation), the service's storage gate (soft → reclaim and proceed,
hard → typed retryable read-only, recovery on the first pass back
under), and the operations surface that makes all of it visible to
``repro ops``.
"""

import pickle
import sys

import pytest

sys.path.insert(0, "tests/ci")
from test_restart_parity import (  # noqa: E402
    make_script,
    make_service,
    make_world,
)

from repro.ci.repository import ModelRepository  # noqa: E402
from repro.ci.service import CIService  # noqa: E402
from repro.exceptions import InvalidParameterError, StorageExhaustedError  # noqa: E402
from repro.reliability.events import reliability_events  # noqa: E402
from repro.reliability.storage import (  # noqa: E402
    StorageGovernor,
    directory_bytes,
)


class TestGovernorUnits:
    def test_watermark_validation(self):
        with pytest.raises(InvalidParameterError, match="soft_bytes"):
            StorageGovernor(soft_bytes=0)
        with pytest.raises(InvalidParameterError, match="hard_bytes"):
            StorageGovernor(hard_bytes=-1)
        with pytest.raises(InvalidParameterError, match="must not exceed"):
            StorageGovernor(soft_bytes=100, hard_bytes=50)

    def test_level_classification(self, tmp_path):
        (tmp_path / "data.bin").write_bytes(b"x" * 100)
        governor = StorageGovernor(soft_bytes=150, hard_bytes=300)
        status = governor.check(tmp_path)
        assert (status.level, status.read_only, status.used_bytes) == ("ok", False, 100)
        (tmp_path / "more.bin").write_bytes(b"x" * 100)
        status = governor.check(tmp_path)
        assert (status.level, status.read_only) == ("soft", False)
        (tmp_path / "evenmore.bin").write_bytes(b"x" * 200)
        status = governor.check(tmp_path)
        assert (status.level, status.read_only) == ("hard", True)
        assert "storage hard" in status.describe()

    def test_unlimited_watermarks(self, tmp_path):
        (tmp_path / "data.bin").write_bytes(b"x" * 10_000)
        assert StorageGovernor().check(tmp_path).level == "ok"
        # Only a hard limit: never "soft", straight to read-only.
        governor = StorageGovernor(hard_bytes=5_000)
        assert governor.check(tmp_path).level == "hard"
        assert StorageGovernor(hard_bytes=50_000).check(tmp_path).level == "ok"

    def test_directory_bytes(self, tmp_path):
        assert directory_bytes(tmp_path / "absent") == 0
        (tmp_path / "a.bin").write_bytes(b"x" * 10)
        (tmp_path / "nested").mkdir()
        (tmp_path / "nested" / "b.bin").write_bytes(b"x" * 32)
        assert directory_bytes(tmp_path) == 42
        assert directory_bytes(tmp_path / "a.bin") == 10


class TestCommitGateMechanics:
    def test_gate_veto_leaves_repository_unmutated(self):
        repo = ModelRepository()
        calls = []

        def gate(count):
            calls.append(count)
            raise RuntimeError("vetoed")

        repo.add_commit_gate(gate)
        with pytest.raises(RuntimeError, match="vetoed"):
            repo.commit(object(), message="m")
        assert len(repo) == 0
        with pytest.raises(RuntimeError, match="vetoed"):
            repo.commit_many([object(), object(), object()])
        assert len(repo) == 0
        # The batch gate sees the push size, not 1.
        assert calls == [1, 3]

    def test_gates_are_runtime_wiring_not_state(self):
        repo = ModelRepository()
        repo.add_commit_gate(lambda count: None)
        clone = pickle.loads(pickle.dumps(repo))
        assert clone._commit_gates == []


def _persisted_service(tmp_path, storage, commits=4):
    script = make_script("full")
    testsets, baseline, models = make_world(script, commits=commits)
    service = make_service(script, testsets, baseline)
    service.persist_to(
        tmp_path / "state",
        snapshot_every=2,
        keep_snapshots=1,
        sync=False,
        storage=storage,
    )
    return service, models, tmp_path / "state"


def _events(kind):
    return [event for event in reliability_events() if event.kind == kind]


class TestServiceDegrade:
    def test_soft_watermark_reclaims_and_proceeds(self, tmp_path):
        # soft_bytes=1 keeps every commit at the soft level: the gate
        # must reclaim (snapshot + prune + compact) and proceed — soft
        # pressure never rejects work.
        governor = StorageGovernor(soft_bytes=1, hard_bytes=10**12)
        service, models, _state_dir = _persisted_service(tmp_path, governor)
        for model in models:
            service.repository.commit(model, message=model.name)
        assert len(service.repository) == len(models)
        assert _events("storage-soft-watermark")
        # Reclamation really ran: a single retained generation and a
        # checkpoint-truncated journal.
        assert len(list(service._store.sequences())) == 1
        assert service._journal.compacted_through > 0
        assert service.operations().storage_level == "soft"

    def test_hard_watermark_degrades_and_recovers(self, tmp_path):
        governor = StorageGovernor(
            soft_bytes=10**12 - 1, hard_bytes=10**12, retry_after_seconds=3.0
        )
        service, models, state_dir = _persisted_service(tmp_path, governor)
        service.repository.commit(models[0], message=models[0].name)

        # Runaway growth the reclamation pass cannot touch.
        base = directory_bytes(state_dir)
        governor.soft_bytes = 10 * base
        governor.hard_bytes = 20 * base
        filler = state_dir / "runaway.bin"
        filler.write_bytes(b"\0" * (25 * base))

        journal_before = service._journal.last_sequence
        builds_before = len(service.builds)
        for attempt in range(2):
            with pytest.raises(StorageExhaustedError) as excinfo:
                service.repository.commit(models[1], message=models[1].name)
            assert excinfo.value.retry_after_seconds == 3.0
        # Vetoed before anything mutated, and the degradation event is
        # recorded once (on the transition), not per rejected commit.
        assert len(service.repository) == 1
        assert len(service.builds) == builds_before
        assert service._journal.last_sequence == journal_before
        assert len(_events("storage-degraded-read-only")) == 1

        report = service.operations()
        assert report.storage_read_only
        assert report.storage_level == "hard"
        assert report.storage_bytes >= governor.hard_bytes
        assert "READ-ONLY" in report.describe()

        # Restore must work on a full disk: read-only degradation gates
        # commits, never recovery.
        resumed = CIService.resume(
            state_dir, keep_snapshots=1, storage=governor, record=False
        )
        assert len(resumed.repository) == 1

        # Reclaiming the runaway bytes clears the mode on the very next
        # gate pass; the refused commit retries successfully.
        filler.unlink()
        service.repository.commit(models[1], message=models[1].name)
        assert len(service.repository) == 2
        assert _events("storage-recovered")
        report = service.operations()
        assert not report.storage_read_only
        assert report.storage_level == "ok"

    def test_operations_without_governor_reports_no_storage(self, tmp_path):
        service, models, _state_dir = _persisted_service(tmp_path, storage=None)
        service.repository.commit(models[0], message=models[0].name)
        report = service.operations()
        assert report.storage_level is None
        assert report.storage_bytes is None
        assert not report.storage_read_only
        assert "READ-ONLY" not in report.describe()
