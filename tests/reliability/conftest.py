"""Isolation fixtures for the chaos suite.

Fault injection and the reliability event log are process-wide state;
every test here starts and ends with no injector installed, an empty
event log, the parent process *not* marked as a worker (a leaked worker
mark would let a ``kill`` rule take down pytest itself), and no shared
executors left degraded for the next test.
"""

import pytest

import repro.reliability.faults as faults
from repro.reliability.events import clear_events
from repro.stats.parallel import shutdown_executors


@pytest.fixture(autouse=True)
def reliability_isolation():
    faults.uninstall_injector()
    clear_events()
    worker_flag = faults._IS_WORKER
    env_checked = faults._ENV_CHECKED
    yield
    faults.uninstall_injector()
    faults._IS_WORKER = worker_flag
    faults._ENV_CHECKED = env_checked
    clear_events()
    shutdown_executors()
