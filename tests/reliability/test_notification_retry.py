"""Flaky transports: retry, dead-letter, and the service guarantee.

A webhook or mail endpoint that raises must never blow up ``submit`` /
``process_batch`` or silently lose a build's notification: the service
wraps every transport in a :class:`RetryingTransport`, and messages that
exhaust their retries become :class:`DeadLetter` records on the
repository's *durable* log — they survive snapshots and restores so an
operator can re-send them.
"""

import pytest

from repro.ci.notifications import (
    DeadLetter,
    FlakyTransport,
    InMemoryEmailTransport,
    RetryingTransport,
)
from repro.ci.repository import ModelRepository
from repro.ci.service import CIService
from repro.core.script.config import CIScript
from repro.core.testset import Testset
from repro.ml.models.base import FixedPredictionModel
from repro.ml.models.simulated import ModelPairSpec, simulate_model_pair
from repro.reliability.events import reliability_events
from repro.reliability.faults import FaultRule, injected_faults

NO_SLEEP = dict(backoff=0.0, sleep=lambda _: None)


class TestRetryingTransport:
    def test_transient_failure_is_retried_to_success(self):
        flaky = FlakyTransport(failures=2)
        transport = RetryingTransport(flaky, retries=2, **NO_SLEEP)
        transport.send("dev", "s", "b")
        assert flaky.attempts == 3
        assert [m.subject for m in flaky.messages] == ["s"]
        assert transport.dead_letters == []
        assert len(reliability_events("notification-retry")) == 2

    def test_exhausted_retries_dead_letter_instead_of_raising(self):
        flaky = FlakyTransport(failures=10)
        seen = []
        transport = RetryingTransport(
            flaky, retries=1, on_dead_letter=seen.append, **NO_SLEEP
        )
        transport.send("dev", "s", "b")  # must not raise
        (letter,) = transport.dead_letters
        assert seen == [letter]
        assert letter == DeadLetter(
            recipient="dev",
            subject="s",
            body="b",
            error=letter.error,
            attempts=2,
        )
        assert "ConnectionError" in letter.error
        assert reliability_events("notification-dead-letter")

    def test_backoff_grows_exponentially_and_caps(self):
        sleeps = []
        transport = RetryingTransport(
            FlakyTransport(failures=10),
            retries=4,
            backoff=0.1,
            max_backoff=0.3,
            sleep=sleeps.append,
        )
        transport.send("dev", "s", "b")
        assert sleeps == [0.1, 0.2, 0.3, 0.3]

    def test_drop_rule_loses_the_message_without_retrying(self):
        inner = InMemoryEmailTransport()
        transport = RetryingTransport(inner, retries=2, **NO_SLEEP)
        with injected_faults(
            [FaultRule(site="notification.send", action="drop", at=1)]
        ):
            transport.send("dev", "s", "b")
        assert inner.messages == []
        assert transport.dead_letters == []
        assert reliability_events("notification-dropped")

    def test_injected_raise_exercises_the_retry_path(self):
        inner = InMemoryEmailTransport()
        transport = RetryingTransport(inner, retries=2, **NO_SLEEP)
        with injected_faults(
            [FaultRule(site="notification.send", action="raise", at=1)]
        ):
            transport.send("dev", "s", "b")
        assert [m.subject for m in inner.messages] == ["s"]


class TestRepositoryDeadLetterLog:
    def test_record_and_read(self):
        repository = ModelRepository()
        letter = DeadLetter("dev", "s", "b", "boom", 3)
        repository.record_dead_letter(letter)
        assert repository.dead_letters == [letter]

    def test_log_survives_pickling(self):
        import pickle

        repository = ModelRepository()
        repository.record_dead_letter(DeadLetter("dev", "s", "b", "boom", 3))
        restored = pickle.loads(pickle.dumps(repository))
        assert restored.dead_letters == repository.dead_letters

    def test_old_state_defaults_to_empty_log(self):
        repository = ModelRepository()
        state = repository.__getstate__()
        state.pop("_dead_letters")
        reborn = ModelRepository.__new__(ModelRepository)
        reborn.__setstate__(state)
        assert reborn.dead_letters == []

    def test_drain_returns_and_clears(self):
        repository = ModelRepository()
        letters = [DeadLetter("dev", f"s{i}", "b", "boom", 3) for i in range(3)]
        for letter in letters:
            repository.record_dead_letter(letter)
        assert repository.drain_dead_letters() == letters
        assert repository.dead_letters == []
        # Draining is the acknowledgement: a second sweep sees nothing.
        assert repository.drain_dead_letters() == []

    def test_drain_does_not_share_the_internal_list(self):
        repository = ModelRepository()
        repository.record_dead_letter(DeadLetter("dev", "s", "b", "boom", 3))
        drained = repository.drain_dead_letters()
        repository.record_dead_letter(DeadLetter("dev", "s2", "b", "boom", 3))
        assert [letter.subject for letter in drained] == ["s"]
        assert [letter.subject for letter in repository.dead_letters] == ["s2"]


def make_world():
    script = CIScript.from_dict(
        {
            "script": "./test_model.py",
            "condition": "n - o > 0.02 +/- 0.1",
            "reliability": 0.99,
            "mode": "fp-free",
            "adaptivity": "none -> third-party@example.com",
            "steps": 4,
        }
    )
    pair = simulate_model_pair(
        ModelPairSpec(old_accuracy=0.80, new_accuracy=0.85, difference=0.1),
        n_examples=2000,
        seed=3,
    )
    testset = Testset(labels=pair.labels[:2000], name="gen-0")
    model = FixedPredictionModel(pair.new_model.predictions[:2000], name="m0")
    return script, testset, pair.old_model, model


class TestServiceGuarantee:
    def test_flaky_transport_cannot_raise_through_submit(self):
        script, testset, baseline, model = make_world()
        flaky = FlakyTransport(failures=10**6)  # never delivers
        service = CIService(script, testset, baseline, transport=flaky)
        service.delivery._sleep = lambda _: None
        service.repository.commit(model)  # would raise without the wrapper
        assert len(service.builds) == 1 and service.builds[0].ran
        assert service.repository.dead_letters  # the signal was preserved
        letter = service.repository.dead_letters[0]
        assert letter.recipient == "third-party@example.com"

    def test_retries_eventually_deliver(self):
        script, testset, baseline, model = make_world()
        flaky = FlakyTransport(failures=1)
        service = CIService(script, testset, baseline, transport=flaky)
        service.delivery._sleep = lambda _: None
        service.repository.commit(model)
        assert [m.recipient for m in flaky.messages] == ["third-party@example.com"]
        assert service.repository.dead_letters == []

    def test_dead_letters_survive_snapshot_and_restore(self, tmp_path):
        script, testset, baseline, model = make_world()
        flaky = FlakyTransport(failures=10**6)
        service = CIService(script, testset, baseline, transport=flaky)
        service.delivery._sleep = lambda _: None
        service.persist_to(tmp_path / "state")
        service.repository.commit(model)
        service.snapshot()
        restored = CIService.resume(tmp_path / "state")
        assert restored.repository.dead_letters == service.repository.dead_letters

    def test_drained_state_round_trips_snapshot_and_restore(self, tmp_path):
        """An operator's drain is durable: restore does not resurrect."""
        script, testset, baseline, model = make_world()
        flaky = FlakyTransport(failures=10**6)
        service = CIService(script, testset, baseline, transport=flaky)
        service.delivery._sleep = lambda _: None
        service.persist_to(tmp_path / "state")
        service.repository.commit(model)
        assert service.repository.dead_letters
        drained = service.repository.drain_dead_letters()
        assert drained and service.repository.dead_letters == []
        service.snapshot()
        restored = CIService.resume(tmp_path / "state")
        assert restored.repository.dead_letters == []

    def test_dead_letters_surface_on_the_operations_report(self):
        script, testset, baseline, model = make_world()
        flaky = FlakyTransport(failures=10**6)
        service = CIService(script, testset, baseline, transport=flaky)
        service.delivery._sleep = lambda _: None
        service.repository.commit(model)
        report = service.operations()
        assert report.dead_letters == len(service.repository.dead_letters) > 0
        assert "dead letter(s)" in report.describe()

    def test_already_retrying_transport_is_not_double_wrapped(self):
        script, testset, baseline, _ = make_world()
        transport = RetryingTransport(InMemoryEmailTransport(), **NO_SLEEP)
        service = CIService(script, testset, baseline, transport=transport)
        assert service.delivery is transport
        # ...but its dead letters are still routed to the repository.
        assert transport.on_dead_letter == service._record_dead_letter

    def test_restored_service_rewraps_the_new_transport(self, tmp_path):
        script, testset, baseline, model = make_world()
        service = CIService(
            script, testset, baseline, transport=InMemoryEmailTransport()
        )
        service.persist_to(tmp_path / "state")
        service.repository.commit(model)
        flaky = FlakyTransport(failures=10**6)
        restored = CIService.resume(tmp_path / "state", transport=flaky)
        restored.delivery._sleep = lambda _: None
        assert isinstance(restored.delivery, RetryingTransport)
        restored.repository.commit(model)
        assert restored.repository.dead_letters
