"""Supervision ladder: retry, respawn, degrade — results never change.

The executor contract under chaos mirrors the worker-count-invariance
contract of the parallel-planning suite: kill a worker mid-shard, hang
it, or make its task raise, and the caller still receives exactly the
serial answer — the only observable differences are the supervision
events (``task-retry``, ``pool-respawn``, ``planning-degraded``) and the
:attr:`PlanningExecutor.degraded` flag.
"""

import numpy as np
import pytest

from repro.reliability.events import reliability_events
from repro.reliability.faults import FaultRule, injected_faults
from repro.stats.cache import clear_all_caches
from repro.stats.parallel import (
    TASK_TIMEOUT_ENV,
    PlanningExecutor,
    get_executor,
    shutdown_executors,
)
from repro.stats.tight_bounds import tight_sample_size

SIZES = np.unique(np.linspace(300, 1600, 8).astype(int))
DELTA, TOL = 1e-2, 1e-5
SPECS = [(0.05, 1e-3), (0.04, 1e-3), (0.06, 1e-2), (0.05, 1e-2)]

# Fast supervisor settings: no real backoff sleeps, short retry ladder.
FAST = dict(max_retries=1, backoff=0.0, sleep=lambda _: None)


def serial_epsilons():
    clear_all_caches()
    with PlanningExecutor(workers=1) as executor:
        return executor.tight_epsilon_many(SIZES, DELTA, tol=TOL)


def serial_sample_sizes():
    clear_all_caches()
    return [tight_sample_size(e, d) for e, d in SPECS]


class TestRetryRecovers:
    def test_single_raise_is_retried_and_result_is_serial(self, tmp_path):
        # counter_dir makes the schedule global: the raise fires exactly
        # once across every worker, so the second dispatch round succeeds.
        expected = serial_epsilons()
        clear_all_caches()
        rules = [FaultRule(site="executor.task", action="raise", at=1)]
        with injected_faults(rules, counter_dir=tmp_path / "counters"):
            with PlanningExecutor(workers=2, **FAST) as executor:
                got = executor.tight_epsilon_many(SIZES, DELTA, tol=TOL)
                assert not executor.degraded
                assert executor.respawns == 1
                kinds = [event.kind for event in executor.events]
        np.testing.assert_array_equal(got, expected)
        assert "task-retry" in kinds and "planning-degraded" not in kinds

    def test_completed_shards_are_not_recomputed(self, tmp_path):
        # Only the failed round's pending shards are re-dispatched; the
        # retry event records how many remained.
        clear_all_caches()
        rules = [FaultRule(site="executor.task", action="raise", at=1)]
        with injected_faults(rules, counter_dir=tmp_path / "counters"):
            with PlanningExecutor(workers=2, **FAST) as executor:
                executor.tight_sample_size_many(SPECS)
                retry = next(
                    event
                    for event in executor.events
                    if event.kind == "task-retry"
                )
        assert 1 <= retry.detail["remaining_tasks"] <= len(SPECS)


class TestDegradation:
    def test_repeated_worker_kills_degrade_to_serial(self):
        # Per-process counters: every fresh worker's first task dies, so
        # each dispatch round breaks the pool until the supervisor gives
        # up and computes the remaining shards in-process.  The parent is
        # not a worker, so the degraded re-traversal cannot be killed.
        expected = serial_epsilons()
        clear_all_caches()
        rules = [FaultRule(site="executor.task", action="kill", at=1, times=None)]
        with injected_faults(rules):
            with PlanningExecutor(workers=2, **FAST) as executor:
                got = executor.tight_epsilon_many(SIZES, DELTA, tol=TOL)
                assert executor.degraded
                assert executor.respawns == 2  # initial round + one retry
                kinds = [event.kind for event in executor.events]
        np.testing.assert_array_equal(got, expected)
        assert kinds.count("pool-respawn") == 2
        assert kinds.count("planning-degraded") == 1

    def test_degraded_executor_stays_serial(self):
        clear_all_caches()
        rules = [FaultRule(site="executor.task", action="kill", at=1, times=None)]
        with injected_faults(rules):
            with PlanningExecutor(workers=2, **FAST) as executor:
                executor.tight_epsilon_many(SIZES, DELTA, tol=TOL)
                assert executor.degraded
        # After the schedule is gone the executor still refuses to spawn.
        assert executor._pool is None
        got = executor.tight_sample_size_many(SPECS)
        assert executor._pool is None
        assert got == serial_sample_sizes()

    def test_hung_worker_times_out_and_results_survive(self):
        expected = serial_sample_sizes()
        clear_all_caches()
        rules = [
            FaultRule(
                site="executor.task",
                action="hang",
                at=1,
                times=None,
                hang_seconds=10.0,
            )
        ]
        with injected_faults(rules):
            with PlanningExecutor(
                workers=2, task_timeout=0.5, max_retries=0, backoff=0.0
            ) as executor:
                got = executor.tight_sample_size_many(SPECS)
                assert executor.degraded  # one hung round spends the budget
        assert got == expected

    def test_events_reach_the_process_wide_log(self):
        clear_all_caches()
        rules = [FaultRule(site="executor.task", action="kill", at=1, times=None)]
        with injected_faults(rules):
            with PlanningExecutor(workers=2, **FAST) as executor:
                executor.tight_epsilon_many(SIZES, DELTA, tol=TOL)
        assert reliability_events("planning-degraded")
        assert reliability_events("pool-respawn")


class TestNonRetryableErrors:
    def test_real_task_errors_propagate_immediately(self):
        with PlanningExecutor(workers=2, **FAST) as executor:
            with pytest.raises(Exception) as excinfo:
                executor._run_tasks(_explode, [1, 2])
            assert "genuine bug" in str(excinfo.value)
            assert not executor.degraded
            assert executor.respawns == 0


def _explode(_payload):
    raise ValueError("genuine bug in the task, not an infrastructure failure")


class TestShutdownSafety:
    def test_close_is_idempotent(self):
        executor = PlanningExecutor(workers=2).start()
        assert executor._pool is not None
        executor.close()
        executor.close()
        assert executor._pool is None

    def test_close_after_broken_pool_does_not_hang(self):
        clear_all_caches()
        rules = [FaultRule(site="executor.task", action="kill", at=1, times=None)]
        with injected_faults(rules):
            executor = PlanningExecutor(workers=2, max_retries=0, backoff=0.0)
            executor.tight_epsilon_many(SIZES, DELTA, tol=TOL)
        executor.close()
        executor.close()

    def test_shutdown_executors_reaps_degraded_shared_pools(self):
        clear_all_caches()
        rules = [FaultRule(site="executor.task", action="kill", at=1, times=None)]
        with injected_faults(rules):
            executor = get_executor(2)
            executor.max_retries, executor.backoff = 0, 0.0
            executor._sleep = lambda _: None
            executor.tight_epsilon_many(SIZES, DELTA, tol=TOL)
            assert executor.degraded
        shutdown_executors()
        fresh = get_executor(2)
        assert fresh is not executor and not fresh.degraded


class TestTaskTimeoutConfig:
    def test_env_supplies_the_default(self, monkeypatch):
        monkeypatch.setenv(TASK_TIMEOUT_ENV, "2.5")
        assert PlanningExecutor(workers=1).task_timeout == 2.5
        monkeypatch.delenv(TASK_TIMEOUT_ENV)
        assert PlanningExecutor(workers=1).task_timeout is None

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(TASK_TIMEOUT_ENV, "2.5")
        assert PlanningExecutor(workers=1, task_timeout=9.0).task_timeout == 9.0

    def test_non_positive_rejected(self):
        from repro.exceptions import InvalidParameterError

        with pytest.raises(InvalidParameterError, match="task_timeout"):
            PlanningExecutor(workers=1, task_timeout=0)
