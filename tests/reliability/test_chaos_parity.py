"""The chaos parity gate: kill workers, corrupt snapshots — same results.

Acceptance criterion of the fault-tolerance PR, in the style of the
restart-parity suite: a run whose planning workers are killed mid-sweep
AND whose latest snapshot is corrupted on disk must, after a resume,
finish the commit queue with build records element-wise identical to the
uninterrupted serial run — in all three adaptivity modes.  Fault
tolerance is allowed to cost retries, respawns, degraded-mode planning
and a longer journal replay; it is never allowed to change a result.

``test_seeded_chaos_parity`` is the CI chaos leg's entry point: it reads
``REPRO_FAULT_SEED`` (default 0, so the test is deterministic locally
too) and schedules probabilistic faults from it.
"""

import sys

import numpy as np
import pytest

sys.path.insert(0, "tests/ci")
from test_restart_parity import (  # noqa: E402
    ADAPTIVITY_MODES,
    assert_parity,
    finish_queue,
    make_script,
    make_service,
    make_world,
    run_reference,
)

from repro.ci.repository import ModelRepository  # noqa: E402
from repro.ci.service import CIService  # noqa: E402
from repro.core.testset import TestsetPool  # noqa: E402
from repro.reliability.events import reliability_events  # noqa: E402
from repro.reliability.faults import (  # noqa: E402
    FaultRule,
    injected_faults,
    seed_from_env,
)
from repro.stats.cache import clear_all_caches  # noqa: E402
from repro.stats.parallel import PlanningExecutor, shutdown_executors  # noqa: E402

KILL_EVERY_WORKER = FaultRule(
    site="executor.task", action="kill", at=1, times=None
)


def make_chaos_service(script, testsets, baseline):
    """A parallel-planning service built while workers are being killed.

    Caches and shared executors are cleared first so construction really
    performs the cold sharded planning pass (epsilon sweep + plan
    derivation) in worker processes — which the active kill rule then
    takes down, driving the full supervision ladder before the plan
    comes back bit-identical from the serial fallback.
    """
    clear_all_caches()
    shutdown_executors()
    service = CIService(
        script,
        testsets[0],
        baseline,
        repository=ModelRepository(nonce="parity-nonce"),
        workers=2,
    )
    service.install_testset_pool(TestsetPool(testsets[1:]))
    return service


def truncate(path, keep=80):
    path.write_bytes(path.read_bytes()[:keep])


@pytest.mark.parametrize("adaptivity", ADAPTIVITY_MODES)
def test_killed_workers_plus_corrupt_snapshot_restore_identically(
    adaptivity, tmp_path
):
    script = make_script(adaptivity)
    testsets, baseline, models = make_world(script)
    reference = run_reference(script, testsets, baseline, models)

    # -- chaos run: every planning worker dies on its first task ----------
    with injected_faults([KILL_EVERY_WORKER]):
        service = make_chaos_service(script, testsets, baseline)
        service.persist_to(tmp_path / "state", snapshot_every=3)
        for model in models[:6]:
            service.repository.commit(model, message=model.name)
    assert reliability_events("planning-degraded")  # the ladder was walked
    assert_parity_prefix(reference, service, 6)

    # -- then the newest snapshot rots on disk ----------------------------
    snapshots = sorted((tmp_path / "state" / "snapshots").glob("*.pkl"))
    assert len(snapshots) > 1  # cadence produced a fallback generation
    truncate(snapshots[-1])

    # -- resume in a "new process": cold caches, fresh executors ----------
    clear_all_caches()
    shutdown_executors()
    restored = CIService.resume(tmp_path / "state")
    assert restored._store.quarantined()  # the damage was moved aside
    assert reliability_events("snapshot-fallback")
    finish_queue(restored, models)
    assert_parity(reference, restored)


def assert_parity_prefix(reference, service, count):
    ref, got = reference.builds[:count], service.builds
    assert len(got) == count
    assert [b.result for b in got] == [b.result for b in ref]
    assert [b.commit.status for b in got] == [b.commit.status for b in ref]
    assert [b.commit.commit_id for b in got] == [b.commit.commit_id for b in ref]


def test_seeded_chaos_parity(tmp_path):
    """The CI chaos leg: probabilistic faults from ``REPRO_FAULT_SEED``.

    Whatever schedule the seed draws — flaky worker tasks raising at
    random traversals, shared-table attachments failing at ``shm.attach``
    (workers then fall back to a private log-factorial regrow) — the
    sharded epsilon sweep and the cold plan derivations must return
    exactly the serial answers (retried, degraded to serial, or computed
    off a private table; never different).
    """
    seed = seed_from_env(default=0)
    sizes = np.unique(np.linspace(300, 1600, 8).astype(int))
    specs = [(0.05, 1e-3), (0.04, 1e-3), (0.06, 1e-2), (0.05, 1e-2)]

    clear_all_caches()
    with PlanningExecutor(workers=1) as serial:
        expected_eps = serial.tight_epsilon_many(sizes, 1e-2, tol=1e-5)
    expected_ns = [serial.tight_sample_size(e, d) for e, d in specs]

    rules = [
        FaultRule(
            site="executor.task",
            action="raise",
            probability=0.25,
            times=None,
        ),
        FaultRule(
            site="shm.attach",
            action="raise",
            probability=0.5,
            times=None,
        ),
    ]
    clear_all_caches()
    with injected_faults(rules, seed=seed):
        with PlanningExecutor(
            workers=2, max_retries=2, backoff=0.0, sleep=lambda _: None
        ) as executor:
            got_eps = executor.tight_epsilon_many(sizes, 1e-2, tol=1e-5)
            got_ns = executor.tight_sample_size_many(specs)
    np.testing.assert_array_equal(got_eps, expected_eps)
    assert got_ns == expected_ns
