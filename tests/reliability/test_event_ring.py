"""The reliability event log's ring buffer: bounded, newest-first wins."""

import pytest

from repro.reliability.events import (
    DEFAULT_EVENT_CAPACITY,
    clear_events,
    dropped_event_count,
    event_capacity,
    record_event,
    reliability_events,
    set_event_capacity,
)


@pytest.fixture(autouse=True)
def restore_capacity():
    yield
    set_event_capacity(DEFAULT_EVENT_CAPACITY)
    clear_events()


def test_default_capacity(capsys):
    assert event_capacity() == DEFAULT_EVENT_CAPACITY
    assert dropped_event_count() == 0


def test_overflow_drops_oldest_and_tallies():
    set_event_capacity(3)
    for index in range(5):
        record_event("tick", "test", index=index)
    events = reliability_events("tick")
    assert [e.detail["index"] for e in events] == [2, 3, 4]
    assert dropped_event_count() == 2
    # Semantics below capacity are unchanged: order, filtering, detail.
    assert reliability_events("other") == []


def test_shrink_keeps_newest():
    set_event_capacity(10)
    for index in range(6):
        record_event("tick", "test", index=index)
    set_event_capacity(2)
    assert [e.detail["index"] for e in reliability_events()] == [4, 5]
    assert dropped_event_count() == 4
    assert event_capacity() == 2


def test_grow_loses_nothing():
    set_event_capacity(2)
    record_event("a", "test")
    record_event("b", "test")
    set_event_capacity(50)
    assert [e.kind for e in reliability_events()] == ["a", "b"]
    record_event("c", "test")
    assert len(reliability_events()) == 3
    assert dropped_event_count() == 0


def test_clear_resets_tally():
    set_event_capacity(1)
    record_event("a", "test")
    record_event("b", "test")
    assert dropped_event_count() == 1
    clear_events()
    assert reliability_events() == []
    assert dropped_event_count() == 0


def test_capacity_validation():
    with pytest.raises(ValueError):
        set_event_capacity(0)
