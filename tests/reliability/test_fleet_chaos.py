"""Fleet-scale chaos: the overload, quarantine and crash-replay gates.

Acceptance criteria of the fleet PR, in the style of the chaos-parity
suite:

* **Overload** — a seeded burst exceeding the queue bounds leaves every
  submission either durably-enqueued-and-eventually-processed or
  rejected with a typed admission error; none silently dropped, and the
  accepted prefix's results are element-wise identical to an isolated
  service run.
* **Quarantine** — a fault-injected failing tenant trips its breaker
  while every other tenant's results are identical to unperturbed runs;
  once healed, the quarantined tenant's durable backlog completes to
  parity too.
* **Crash replay** — a fleet killed after intake-appends (including
  mid-append, tearing the intake file) resumes in a fresh process and
  replays to element-wise identical results.

``test_seeded_fleet_chaos_parity`` is the CI chaos leg's fleet entry
point: it reads ``REPRO_FAULT_SEED`` and schedules probabilistic
hydrate/evict/process faults from it.
"""

import shutil
import sys

import pytest

sys.path.insert(0, "tests/ci")
from test_restart_parity import (  # noqa: E402
    ADAPTIVITY_MODES,
    assert_parity,
    make_script,
    make_world,
)

from repro.ci.repository import ModelRepository  # noqa: E402
from repro.ci.service import CIService  # noqa: E402
from repro.core.testset import TestsetPool  # noqa: E402
from repro.exceptions import AdmissionError  # noqa: E402
from repro.fleet import AdmissionPolicy, CIFleet  # noqa: E402
from repro.reliability.faults import (  # noqa: E402
    FaultRule,
    InjectedFault,
    injected_faults,
    seed_from_env,
)


def build_worlds(adaptivity, count, commits=4):
    script = make_script(adaptivity, steps=4)
    return {
        f"t-{i:02d}": (script, *make_world(script, commits=commits, seed=i))
        for i in range(count)
    }


def register_all(fleet, worlds):
    for tenant_id, (script, testsets, baseline, _) in worlds.items():
        fleet.register(
            tenant_id,
            script,
            testsets[0],
            baseline,
            repository=ModelRepository(nonce=f"nonce-{tenant_id}"),
            pool=TestsetPool(testsets[1:]),
        )


def reference(tenant_id, world, upto=None):
    """Isolated single-service run over the first ``upto`` commits."""
    script, testsets, baseline, models = world
    service = CIService(
        script,
        testsets[0],
        baseline,
        repository=ModelRepository(nonce=f"nonce-{tenant_id}"),
    )
    service.install_testset_pool(TestsetPool(testsets[1:]))
    for index, model in enumerate(models[:upto]):
        service.repository.commit(model, message=f"c{index}")
    return service


class TestOverloadGate:
    def test_burst_none_silently_dropped(self, tmp_path):
        """Exceed both bounds; account for every single submission."""
        worlds = build_worlds("full", 3, commits=5)
        fleet = CIFleet(
            tmp_path / "fleet",
            sync=False,
            admission=AdmissionPolicy(
                max_pending_per_tenant=3, max_pending_total=8
            ),
        )
        register_all(fleet, worlds)
        accepted = {tenant_id: 0 for tenant_id in worlds}
        rejections = []
        for tenant_id, world in worlds.items():
            for index, model in enumerate(world[3]):
                try:
                    fleet.enqueue(tenant_id, model, message=f"c{index}")
                    accepted[tenant_id] += 1
                except AdmissionError as exc:
                    rejections.append((tenant_id, exc))
        # Every submission has exactly one typed outcome.
        attempted = sum(len(w[3]) for w in worlds.values())
        assert sum(accepted.values()) + len(rejections) == attempted
        assert rejections, "burst must actually exceed the bounds"
        assert all(exc.retry_after_seconds > 0 for _, exc in rejections)
        # Every accepted submission is durably pending right now...
        for tenant_id, count in accepted.items():
            assert fleet._intake(tenant_id).pending_count == count
        # ...and eventually processed, element-wise identical to an
        # isolated run over the accepted prefix.
        report = fleet.drain()
        assert report.errors == {} and report.skipped == ()
        for tenant_id, world in worlds.items():
            assert len(report.builds[tenant_id]) == accepted[tenant_id]
            assert_parity(
                reference(tenant_id, world, upto=accepted[tenant_id]),
                fleet.service(tenant_id),
            )


class TestQuarantineGate:
    @pytest.mark.parametrize("adaptivity", ADAPTIVITY_MODES)
    def test_failing_tenant_never_perturbs_the_rest(self, tmp_path, adaptivity):
        worlds = build_worlds(adaptivity, 3, commits=4)
        bad = "t-00"
        clock_now = [0.0]
        fleet = CIFleet(
            tmp_path / "fleet",
            sync=False,
            max_resident=1,  # force churn while the chaos runs
            failure_threshold=2,
            cooldown_seconds=30.0,
            clock=lambda: clock_now[0],
        )
        register_all(fleet, worlds)
        rule = FaultRule(
            site=f"fleet.process.{bad}",
            action="raise",
            probability=1.0,
            times=None,
        )
        quarantined = 0
        with injected_faults([rule]):
            for index in range(4):
                for tenant_id, world in worlds.items():
                    model = world[3][index]
                    if tenant_id == bad:
                        try:
                            fleet.submit(bad, model, message=f"c{index}")
                        except InjectedFault:
                            pass  # accepted, processing deferred
                        except AdmissionError:
                            quarantined += 1
                    else:
                        fleet.submit(tenant_id, model, message=f"c{index}")
        assert fleet._breaker(bad).times_opened >= 1
        assert quarantined >= 1
        # Healthy tenants: element-wise identical to unperturbed runs.
        for tenant_id, world in worlds.items():
            if tenant_id != bad:
                assert_parity(
                    reference(tenant_id, world), fleet.service(tenant_id)
                )
        # Heal: cooldown elapses, the fault schedule is gone.  The
        # backlog (everything accepted pre-quarantine) completes, and
        # whatever was door-rejected is resubmitted — full parity.
        clock_now[0] += 31.0
        fleet.drain(bad)
        processed = len(fleet.service(bad).builds)
        for index in range(processed, 4):
            fleet.submit(bad, worlds[bad][3][index], message=f"c{index}")
        assert_parity(reference(bad, worlds[bad]), fleet.service(bad))


class TestCrashGate:
    @pytest.mark.parametrize("adaptivity", ADAPTIVITY_MODES)
    def test_kill_after_intake_append_replays_identically(
        self, tmp_path, adaptivity
    ):
        """The fleet crash gate: accepted-but-unprocessed work survives."""
        worlds = build_worlds(adaptivity, 2, commits=4)
        root = tmp_path / "fleet"
        fleet = CIFleet(root, sync=True, max_resident=1)
        register_all(fleet, worlds)
        for tenant_id, world in worlds.items():
            for index in range(2):
                fleet.submit(tenant_id, world[3][index], message=f"c{index}")
            for index in range(2, 4):
                fleet.enqueue(tenant_id, world[3][index], message=f"c{index}")
        # Kill: no close(), no snapshots of the resident engines — the
        # copied root is exactly what the dead process left on disk.
        crashed_root = tmp_path / "crashed"
        shutil.copytree(root, crashed_root)

        resumed = CIFleet(crashed_root, sync=False, max_resident=1)
        report = resumed.drain()
        assert report.errors == {} and report.skipped == ()
        for tenant_id, world in worlds.items():
            assert [b.commit.sequence for b in report.builds[tenant_id]] == [2, 3]
            assert_parity(
                reference(tenant_id, world), resumed.service(tenant_id)
            )

    def test_torn_intake_append_heals_on_resume(self, tmp_path):
        """Crash mid-append: the torn submission was never accepted."""
        worlds = build_worlds("full", 1, commits=3)
        world = worlds["t-00"]
        root = tmp_path / "fleet"
        fleet = CIFleet(root, sync=True)
        register_all(fleet, worlds)
        fleet.submit("t-00", world[3][0], message="c0")
        with injected_faults(
            [FaultRule(site="intake.append", action="tear", at=1, tear_at=25)]
        ):
            with pytest.raises(InjectedFault):
                fleet.enqueue("t-00", world[3][1], message="c1")
        crashed_root = tmp_path / "crashed"
        shutil.copytree(root, crashed_root)

        resumed = CIFleet(crashed_root, sync=False)
        assert resumed.drain().builds == {}  # nothing pending: torn != accepted
        assert_parity(
            reference("t-00", world, upto=1), resumed.service("t-00")
        )
        # The healed queue accepts the retried submission cleanly.
        resumed.submit("t-00", world[3][1], message="c1")
        assert_parity(reference("t-00", world, upto=2), resumed.service("t-00"))

    def test_crash_between_commit_and_ack_never_duplicates(self, tmp_path):
        """The ack crash window: journaled commit, missing ack."""
        worlds = build_worlds("full", 1, commits=2)
        world = worlds["t-00"]
        root = tmp_path / "fleet"
        fleet = CIFleet(root, sync=True)
        register_all(fleet, worlds)
        fleet.submit("t-00", world[3][0], message="c0")
        with injected_faults(
            [FaultRule(site="intake.append", action="tear", at=2, tear_at=25)]
        ):
            # at=2 lands the tear on the *ack* append (the submission
            # append is traversal 1): the commit is journaled in the
            # tenant's event journal, the ack is torn.
            with pytest.raises(InjectedFault):
                fleet.submit("t-00", world[3][1], message="c1")
        crashed_root = tmp_path / "crashed"
        shutil.copytree(root, crashed_root)

        resumed = CIFleet(crashed_root, sync=False)
        report = resumed.drain()
        # The drain heals the missing ack by sequence — the build is
        # reported, but it was NOT re-run (budget spent exactly once).
        assert [b.commit.sequence for b in report.builds["t-00"]] == [1]
        assert_parity(reference("t-00", world, upto=2), resumed.service("t-00"))
        assert resumed.drain().builds == {}


def test_seeded_fleet_chaos_parity(tmp_path):
    """CI chaos-leg entry point: probabilistic fleet faults, same results.

    Hydrate failures surface as retryable errors, evict failures are
    absorbed, process failures defer durable work — and none of them may
    change a single result.
    """
    seed = seed_from_env()
    worlds = build_worlds("full", 3, commits=4)
    fleet = CIFleet(
        tmp_path / "fleet",
        sync=False,
        max_resident=1,
        failure_threshold=1000,  # chaos, not quarantine, is under test
    )
    register_all(fleet, worlds)
    rules = [
        FaultRule(
            site="fleet.hydrate", action="raise", probability=0.25, times=None
        ),
        FaultRule(
            site="fleet.evict", action="raise", probability=0.25, times=None
        ),
        FaultRule(
            site="fleet.process", action="raise", probability=0.15, times=None
        ),
    ]
    with injected_faults(rules, seed=seed):
        for index in range(4):
            for tenant_id, world in worlds.items():
                fleet.enqueue(tenant_id, world[3][index], message=f"c{index}")
                for _ in range(50):
                    try:
                        fleet.drain(tenant_id)
                        break
                    except InjectedFault:
                        continue
                else:  # pragma: no cover - would mean a broken schedule
                    pytest.fail("drain never succeeded under chaos")
    for tenant_id, world in worlds.items():
        assert_parity(reference(tenant_id, world), fleet.service(tenant_id))
