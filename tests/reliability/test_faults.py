"""The fault-injection harness itself: determinism, gating, activation.

Every chaos test in this suite leans on the injector being *scheduled*
rather than random — these tests pin that contract down: positional and
probabilistic rules fire reproducibly from (rules, seed) alone,
worker-only actions never fire in the supervising parent, counters can
be shared across processes through ``counter_dir``, and the environment
spec activates an injector lazily (how spawn-context workers and the CI
chaos leg pick up the schedule).
"""

import json

import pytest

import repro.reliability.faults as faults
from repro.reliability.faults import (
    FAULT_SEED_ENV,
    FAULT_SPEC_ENV,
    FaultInjector,
    FaultRule,
    InjectedFault,
    fault_point,
    get_injector,
    injected_faults,
    install_injector,
    seed_from_env,
    torn_bytes,
    uninstall_injector,
)


class TestFaultRule:
    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultRule(site="x", action="explode")

    def test_at_must_be_positive(self):
        with pytest.raises(ValueError, match="at must be >= 1"):
            FaultRule(site="x", action="raise", at=0)

    def test_probability_bounds(self):
        with pytest.raises(ValueError, match="probability"):
            FaultRule(site="x", action="raise", probability=1.5)


class TestPositionalRules:
    def test_fires_on_exactly_the_nth_traversal(self):
        injector = FaultInjector([FaultRule(site="s", action="raise", at=3)])
        assert injector.check("s") is None
        assert injector.check("s") is None
        fired = injector.check("s")
        assert fired is not None and fired.occurrence == 3
        assert injector.check("s") is None  # times=1 spent

    def test_times_limits_repeat_firings(self):
        injector = FaultInjector(
            [FaultRule(site="s", action="raise", at=None, probability=1.0, times=2)]
        )
        firings = [injector.check("s") for _ in range(5)]
        assert [f is not None for f in firings] == [True, True, False, False, False]

    def test_unlimited_times(self):
        injector = FaultInjector(
            [FaultRule(site="s", action="raise", probability=1.0, times=None)]
        )
        assert all(injector.check("s") for _ in range(4))

    def test_sites_count_independently(self):
        injector = FaultInjector([FaultRule(site="b", action="raise", at=1)])
        # Traversals of unrelated sites never advance site b's counter.
        assert injector.check("a") is None
        assert injector.check("a") is None
        assert injector.check("b") is not None

    def test_first_matching_rule_wins(self):
        injector = FaultInjector(
            [
                FaultRule(site="s", action="drop", at=1),
                FaultRule(site="s", action="raise", at=1),
            ]
        )
        fired = injector.check("s")
        assert fired is not None and fired.action == "drop"


class TestProbabilisticDeterminism:
    def rule(self):
        return FaultRule(site="s", action="raise", probability=0.3, times=None)

    def test_same_seed_same_schedule(self):
        a = FaultInjector([self.rule()], seed=7)
        b = FaultInjector([self.rule()], seed=7)
        pattern_a = [a.check("s") is not None for _ in range(50)]
        pattern_b = [b.check("s") is not None for _ in range(50)]
        assert pattern_a == pattern_b
        assert any(pattern_a) and not all(pattern_a)

    def test_different_seeds_differ(self):
        a = FaultInjector([self.rule()], seed=7)
        b = FaultInjector([self.rule()], seed=8)
        assert [a.check("s") is not None for _ in range(50)] != [
            b.check("s") is not None for _ in range(50)
        ]

    def test_draws_are_independent_of_other_sites(self):
        # Interleaving traversals of another site must not shift s's draws.
        alone = FaultInjector([self.rule()], seed=7)
        interleaved = FaultInjector([self.rule()], seed=7)
        pattern_alone = [alone.check("s") is not None for _ in range(30)]
        pattern_inter = []
        for _ in range(30):
            interleaved.check("other")
            pattern_inter.append(interleaved.check("s") is not None)
        assert pattern_alone == pattern_inter


class TestWorkerGating:
    def test_kill_and_hang_never_fire_in_the_parent(self):
        injector = FaultInjector(
            [
                FaultRule(site="s", action="kill", at=1),
                FaultRule(site="s", action="hang", at=2),
            ]
        )
        assert not faults.in_worker()
        assert injector.check("s") is None
        assert injector.check("s") is None

    def test_worker_mark_enables_them(self):
        injector = FaultInjector([FaultRule(site="s", action="kill", at=1)])
        faults._IS_WORKER = True  # restored by the isolation fixture
        fired = injector.check("s")
        assert fired is not None and fired.action == "kill"

    def test_raise_still_fires_in_the_parent(self):
        injector = FaultInjector([FaultRule(site="s", action="raise", at=1)])
        assert injector.check("s") is not None


class TestSharedCounters:
    def test_counter_dir_continues_across_injector_instances(self, tmp_path):
        # Two instances stand in for two processes sharing the schedule:
        # the traversal count (and the rule's firing tally) must be
        # global, so an at=2 rule fires exactly once across both.
        rule = FaultRule(site="s", action="raise", at=2)
        first = FaultInjector([rule], counter_dir=tmp_path)
        second = FaultInjector([rule], counter_dir=tmp_path)
        assert first.check("s") is None  # global traversal 1
        assert second.check("s") is not None  # global traversal 2
        assert first.check("s") is None  # tally shared: already fired
        assert second.check("s") is None

    def test_per_process_counters_restart_per_instance(self):
        rule = FaultRule(site="s", action="raise", at=1, times=None)
        first = FaultInjector([rule])
        second = FaultInjector([rule])
        assert first.check("s") is not None
        assert second.check("s") is not None  # its own traversal 1


class TestFaultPoint:
    def test_noop_without_injector(self):
        uninstall_injector()
        assert fault_point("anything") is None

    def test_raise_action_raises_with_site(self):
        with injected_faults([FaultRule(site="s", action="raise", at=1)]):
            with pytest.raises(InjectedFault) as excinfo:
                fault_point("s")
            assert excinfo.value.site == "s"

    def test_injected_fault_is_not_a_repro_error(self):
        from repro.exceptions import ReproError

        assert not issubclass(InjectedFault, ReproError)

    def test_tear_is_returned_to_the_caller(self):
        with injected_faults(
            [FaultRule(site="s", action="tear", at=1, tear_at=3)]
        ):
            fired = fault_point("s")
        assert fired is not None and fired.action == "tear"
        assert torn_bytes(b"abcdef", fired) == b"abc"

    def test_torn_bytes_clamps_to_data_length(self):
        with injected_faults(
            [FaultRule(site="s", action="tear", at=1, tear_at=99)]
        ):
            fired = fault_point("s")
        assert torn_bytes(b"ab", fired) == b"ab"
        assert torn_bytes(b"ab", None) is None

    def test_context_manager_restores_previous_injector(self):
        outer = install_injector(FaultInjector([]))
        with injected_faults([FaultRule(site="s", action="raise", at=1)]):
            assert get_injector() is not outer
        assert get_injector() is outer

    def test_audit_trail_records_firings(self):
        with injected_faults(
            [FaultRule(site="s", action="raise", at=1)]
        ) as injector:
            with pytest.raises(InjectedFault):
                fault_point("s")
        assert [(f.site, f.action) for f in injector.fired] == [("s", "raise")]


class TestEnvironmentActivation:
    def test_spec_and_seed_activate_lazily(self, monkeypatch):
        spec = [{"site": "s", "action": "raise", "at": 1}]
        monkeypatch.setenv(FAULT_SPEC_ENV, json.dumps(spec))
        monkeypatch.setenv(FAULT_SEED_ENV, "42")
        monkeypatch.setattr(faults, "_ENV_CHECKED", False)
        monkeypatch.setattr(faults, "_INSTALLED", None)
        injector = get_injector()
        assert injector is not None
        assert injector.seed == 42
        assert [r.site for r in injector.rules] == ["s"]

    def test_no_spec_means_no_injector(self, monkeypatch):
        monkeypatch.delenv(FAULT_SPEC_ENV, raising=False)
        monkeypatch.setattr(faults, "_ENV_CHECKED", False)
        monkeypatch.setattr(faults, "_INSTALLED", None)
        assert get_injector() is None

    def test_seed_from_env_default(self, monkeypatch):
        monkeypatch.delenv(FAULT_SEED_ENV, raising=False)
        assert seed_from_env() == 0
        monkeypatch.setenv(FAULT_SEED_ENV, "not-a-number")
        assert seed_from_env(default=5) == 5
        monkeypatch.setenv(FAULT_SEED_ENV, "9")
        assert seed_from_env() == 9
