"""Disk-fault chaos: real ENOSPC/EIO at every write site, every occurrence.

The storage-governance PR's chaos gate, in the style of the restart- and
fleet-parity suites: a *real* :class:`OSError` (``ENOSPC`` or ``EIO``,
not the library's own :class:`InjectedFault`) injected at any of the
instrumented disk sites —

* ``journal.write``  — the disk fills before any journal byte lands,
* ``snapshot.rename`` — the atomic publish of a finished snapshot fails,
* ``journal.compact`` — compaction's rewrite cannot start,
* ``intake.write``   — a fleet submission cannot be durably accepted,

— at any occurrence must (a) leave the state directory fsck-restorable,
and (b) let a retried run finish to results element-wise identical to
an unperturbed reference, in all three adaptivity modes.

``test_env_spec_disk_chaos_parity`` is the CI disk-chaos leg's entry
point: the workflow exports ``REPRO_FAULT_SPEC`` (a JSON list of errno
rules) and ``REPRO_FAULT_SEED``; run locally with the environment unset
it falls back to a built-in probabilistic spec.
"""

import errno
import json
import os
import sys

import pytest

sys.path.insert(0, "tests/ci")
from test_restart_parity import (  # noqa: E402
    ADAPTIVITY_MODES,
    assert_parity,
    make_script,
    make_service,
    make_world,
    run_reference,
)

from repro.ci.persistence import EventJournal, SnapshotStore, scan_journal  # noqa: E402
from repro.ci.repository import ModelRepository  # noqa: E402
from repro.ci.service import CIService  # noqa: E402
from repro.core.testset import TestsetPool  # noqa: E402
from repro.exceptions import AdmissionError, StorageExhaustedError  # noqa: E402
from repro.fleet import CIFleet  # noqa: E402
from repro.fleet.intake import IntakeQueue  # noqa: E402
from repro.reliability.faults import (  # noqa: E402
    FaultRule,
    InjectedFault,
    injected_faults,
    seed_from_env,
)
from repro.reliability.fsck import fsck_state_dir  # noqa: E402
from repro.reliability.storage import StorageGovernor, directory_bytes  # noqa: E402

DISK_SITES = ("journal.write", "snapshot.rename", "journal.compact")

# Aggressive persistence so every disk site is traversed many times per
# run: snapshot every second build, and keep only the newest generation
# so every snapshot advances the compaction anchor (prune + compact).
PERSIST = dict(snapshot_every=2, keep_snapshots=1, sync=False)
RESUME = dict(snapshot_every=2, keep_snapshots=1)


# ---------------------------------------------------------------------------
# The chaos driver: commit the queue, recovering from OSErrors the way the
# runbook says — fsck (must be restorable), resume from disk, retry.
# ---------------------------------------------------------------------------

def _recovering_resume(state_dir, attempts=10):
    """Resume from disk, retrying when faults strike the resume itself."""
    for _ in range(attempts):
        try:
            return CIService.resume(state_dir, **RESUME)
        except OSError:
            report = fsck_state_dir(state_dir)
            assert report.restorable, report.describe()
    raise AssertionError("resume kept failing under injected disk faults")


def run_with_disk_faults(script, testsets, baseline, models, state_dir, rules, seed=0):
    """Drive the full commit queue to completion under disk faults.

    Every :class:`OSError` escaping a durable write is handled like a
    crashed process: the in-memory service that saw it is discarded,
    the state directory is fsck'd (and must report restorable), and a
    fresh service resumes from disk and retries from the repository's
    durable length.  Returns ``(service, recoveries)``.
    """
    recoveries = 0
    with injected_faults(rules, seed=seed):
        service = make_service(script, testsets, baseline)
        try:
            service.persist_to(state_dir, **PERSIST)
        except OSError:
            # The initial snapshot (or its journal record) failed; the
            # attachment itself survived, so retrying the snapshot
            # completes setup exactly as an operator rerun would.
            for _ in range(10):
                recoveries += 1
                try:
                    service.snapshot()
                    break
                except OSError:
                    continue
            else:
                raise AssertionError("initial snapshot kept failing")
        while len(service.repository) < len(models):
            index = len(service.repository)
            try:
                service.repository.commit(models[index], message=models[index].name)
            except OSError:
                recoveries += 1
                report = fsck_state_dir(state_dir)
                assert report.restorable, report.describe()
                service = _recovering_resume(state_dir)
    assert fsck_state_dir(state_dir).restorable
    return service, recoveries


def count_site_traversals(script, testsets, baseline, models, state_dir):
    """Fault-free dry run counting how often each disk site is traversed.

    Uses never-firing sentinel rules: the injector only counts a site's
    occurrences while some rule watches it.
    """
    sentinels = [
        FaultRule(site=site, action="raise", at=10**9) for site in DISK_SITES
    ]
    with injected_faults(sentinels) as injector:
        service = make_service(script, testsets, baseline)
        service.persist_to(state_dir, **PERSIST)
        for model in models:
            service.repository.commit(model, message=model.name)
        return {site: injector._counts.get(site, 0) for site in DISK_SITES}


# ---------------------------------------------------------------------------
# Errno-action units: the faults are real OSErrors and the write paths
# fail cleanly (nothing half-written, retry succeeds).
# ---------------------------------------------------------------------------

class TestErrnoInjection:
    def test_unknown_errno_name_rejected(self):
        with pytest.raises(ValueError, match="errno"):
            FaultRule(site="journal.write", action="errno", errno_name="ENOTREAL")

    def test_enospc_at_journal_write_is_a_real_oserror(self, tmp_path):
        journal = EventJournal(tmp_path / "journal.jsonl", sync=False)
        rule = FaultRule(site="journal.write", action="errno", at=1)
        with injected_faults([rule]):
            with pytest.raises(OSError) as excinfo:
                journal.append("promotion", {"commit": "c1"})
            assert excinfo.value.errno == errno.ENOSPC
            assert not isinstance(excinfo.value, InjectedFault)
            # The fault fires before any byte lands: no torn tail, no
            # quarantine, and the sequence counter did not advance.
            record = journal.append("promotion", {"commit": "c1"})
        assert record.sequence == 1
        scan = scan_journal(tmp_path / "journal.jsonl")
        assert (scan.records, scan.torn_tail_bytes, scan.corrupt_lines) == (1, 0, ())

    def test_eio_at_snapshot_rename_leaves_store_intact(self, tmp_path):
        store = SnapshotStore(tmp_path / "snapshots")
        rule = FaultRule(
            site="snapshot.rename", action="errno", at=1, errno_name="EIO"
        )
        with injected_faults([rule]):
            with pytest.raises(OSError) as excinfo:
                store.save({"state": "first"})
            assert excinfo.value.errno == errno.EIO
            # The unpublished temp file is cleaned up and no snapshot
            # generation was minted.
            assert list((tmp_path / "snapshots").glob("*.tmp")) == []
            assert store.latest_sequence == 0
            info = store.save({"state": "second"})
        assert info.sequence == 1
        state, _ = store.load_latest()
        assert state == {"state": "second"}

    def test_enospc_at_intake_write_rejects_submission_cleanly(self, tmp_path):
        from repro.ml.models.base import FixedPredictionModel

        queue = IntakeQueue.create(
            tmp_path / "intake.jsonl", base_repo_sequence=0, sync=False
        )
        model = FixedPredictionModel([1, 0, 1], name="m0")
        rule = FaultRule(site="intake.write", action="errno", at=1)
        with injected_faults([rule]):
            with pytest.raises(OSError) as excinfo:
                queue.append(model, message="m0")
            assert excinfo.value.errno == errno.ENOSPC
            # By the crash model the submission was not accepted; a
            # fresh open (what the gateway does after the error) sees
            # an empty queue and the retry lands durably.
            reopened = IntakeQueue(tmp_path / "intake.jsonl", sync=False)
            assert reopened.pending_count == 0
            reopened.append(model, message="m0")
        assert IntakeQueue(tmp_path / "intake.jsonl", sync=False).pending_count == 1


# ---------------------------------------------------------------------------
# The exhaustive gate: every occurrence of every disk site, both errnos.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("adaptivity", ADAPTIVITY_MODES)
def test_every_disk_fault_occurrence_recovers_to_parity(adaptivity, tmp_path):
    script = make_script(adaptivity)
    testsets, baseline, models = make_world(script, commits=5)
    reference = run_reference(script, testsets, baseline, models)
    counts = count_site_traversals(
        script, testsets, baseline, models, tmp_path / "dry-run"
    )
    for site in DISK_SITES:
        assert counts[site] >= 1, f"{site} never traversed — dead instrumentation"

    case = 0
    for site in DISK_SITES:
        for occurrence in range(1, counts[site] + 1):
            # Alternate errnos so both ENOSPC and EIO hit every site.
            errno_name = "ENOSPC" if occurrence % 2 else "EIO"
            rules = [
                FaultRule(
                    site=site, action="errno", at=occurrence, errno_name=errno_name
                )
            ]
            state_dir = tmp_path / f"case-{case:03d}"
            case += 1
            service, recoveries = run_with_disk_faults(
                script, testsets, baseline, models, state_dir, rules
            )
            assert recoveries == 1, f"{site} occurrence {occurrence}"
            assert_parity(reference, service)


# ---------------------------------------------------------------------------
# Fleet-level disk chaos: intake faults and the hard-watermark tenant.
# ---------------------------------------------------------------------------

def _fleet_world(tenant_seed, commits=3):
    script = make_script("full")
    testsets, baseline, models = make_world(script, commits=commits, seed=tenant_seed)
    return script, testsets, baseline, models


def _register(fleet, tenant_id, world):
    script, testsets, baseline, _ = world
    return fleet.register(
        tenant_id,
        script,
        testsets[0],
        baseline,
        repository=ModelRepository(nonce=f"nonce-{tenant_id}"),
        pool=TestsetPool(testsets[1:]),
    )


def _fleet_reference(tenant_id, world):
    script, testsets, baseline, models = world
    service = CIService(
        script,
        testsets[0],
        baseline,
        repository=ModelRepository(nonce=f"nonce-{tenant_id}"),
    )
    service.install_testset_pool(TestsetPool(testsets[1:]))
    for model in models:
        service.repository.commit(model, message=model.name)
    return service


class TestFleetDiskChaos:
    def test_intake_write_fault_then_retry_reaches_parity(self, tmp_path):
        worlds = {"t-a": _fleet_world(0), "t-b": _fleet_world(1)}
        fleet = CIFleet(tmp_path / "fleet", sync=False)
        for tenant_id, world in worlds.items():
            _register(fleet, tenant_id, world)

        rule = FaultRule(site="intake.write", action="errno", at=2)
        faults_seen = 0
        with injected_faults([rule]):
            for tenant_id, world in worlds.items():
                for model in world[3]:
                    try:
                        fleet.enqueue(tenant_id, model, message=model.name)
                    except OSError as exc:
                        assert exc.errno == errno.ENOSPC
                        faults_seen += 1
                        # The submission was not accepted; the retry is
                        # the client's redelivery.
                        fleet.enqueue(tenant_id, model, message=model.name)
            assert faults_seen == 1
            fleet.drain()

        assert fleet.fsck().healthy
        for tenant_id, world in worlds.items():
            reference = _fleet_reference(tenant_id, world)
            restored = CIService.resume(fleet.tenant_dir(tenant_id), record=False)
            assert_parity(reference, restored)

    def test_hard_watermark_tenant_rejected_typed_while_others_drain(self, tmp_path):
        worlds = {"t-full": _fleet_world(0), "t-ok": _fleet_world(1)}
        fleet = CIFleet(tmp_path / "fleet", sync=False)
        for tenant_id, world in worlds.items():
            _register(fleet, tenant_id, world)

        # Watermarks sized off the real post-registration footprint, so
        # the healthy tenant has headroom and only the filler (runaway
        # growth reclamation cannot touch) trips the hard level.
        base = max(
            directory_bytes(fleet.tenant_dir(tenant_id)) for tenant_id in fleet
        )
        fleet.storage = StorageGovernor(
            soft_bytes=3 * base, hard_bytes=4 * base, retry_after_seconds=2.5
        )
        filler = fleet.tenant_dir("t-full") / "runaway.bin"
        filler.write_bytes(b"\0" * (5 * base))

        with pytest.raises(StorageExhaustedError) as excinfo:
            fleet.enqueue("t-full", worlds["t-full"][3][0], message="m0")
        assert isinstance(excinfo.value, AdmissionError)
        assert excinfo.value.tenant == "t-full"
        assert excinfo.value.retry_after_seconds == 2.5
        assert fleet.rejections["storage-exhausted"] == 1

        # The other tenant is untouched: accepted, drained, to parity.
        for model in worlds["t-ok"][3]:
            fleet.enqueue("t-ok", model, message=model.name)
        fleet.drain()
        assert_parity(
            _fleet_reference("t-ok", worlds["t-ok"]),
            CIService.resume(fleet.tenant_dir("t-ok"), record=False),
        )

        report = fleet.operations()
        by_tenant = {status.tenant_id: status for status in report.tenant_status}
        assert by_tenant["t-full"].storage_level == "hard"
        assert by_tenant["t-ok"].storage_level == "ok"
        assert "storage-exhausted" in report.describe()

        # Reclaiming the runaway bytes reopens the door; the backlog
        # then completes to parity like nothing happened.
        filler.unlink()
        for model in worlds["t-full"][3]:
            fleet.enqueue("t-full", model, message=model.name)
        fleet.drain()
        assert_parity(
            _fleet_reference("t-full", worlds["t-full"]),
            CIService.resume(fleet.tenant_dir("t-full"), record=False),
        )


# ---------------------------------------------------------------------------
# The CI chaos leg's entry point (environment-driven spec).
# ---------------------------------------------------------------------------

DEFAULT_ENV_SPEC = [
    {"site": "journal.write", "action": "errno", "errno_name": "ENOSPC",
     "at": None, "probability": 0.05, "times": 2},
    {"site": "snapshot.rename", "action": "errno", "errno_name": "EIO",
     "at": None, "probability": 0.2, "times": 1},
    {"site": "journal.compact", "action": "errno", "errno_name": "ENOSPC",
     "at": None, "probability": 0.25, "times": 1},
]


@pytest.mark.parametrize("adaptivity", ADAPTIVITY_MODES)
def test_env_spec_disk_chaos_parity(adaptivity, tmp_path):
    """CI entry point: seeded probabilistic ENOSPC/EIO across all sites."""
    spec = os.environ.get("REPRO_FAULT_SPEC")
    mappings = json.loads(spec) if spec else DEFAULT_ENV_SPEC
    rules = [FaultRule(**mapping) for mapping in mappings]
    # This leg drives a single service; rules for foreign sites (the
    # fleet legs consume the same spec) simply never fire here.
    rules = [rule for rule in rules if rule.site in DISK_SITES]
    assert rules, "REPRO_FAULT_SPEC contained no disk-site rules"
    seed = seed_from_env(default=7)

    script = make_script(adaptivity)
    testsets, baseline, models = make_world(script, commits=6)
    reference = run_reference(script, testsets, baseline, models)
    service, _recoveries = run_with_disk_faults(
        script, testsets, baseline, models, tmp_path / "state", rules, seed=seed
    )
    assert_parity(reference, service)
