"""Chaos suite: fault injection, supervision, corruption-tolerant restore."""
