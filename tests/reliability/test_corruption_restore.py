"""Corruption tolerance: checksums, quarantine, fallback, the doctor.

Snapshots and journal lines carry CRCs; damage is detected at read time,
the damaged generation is quarantined (renamed aside — never deleted),
and restore falls back to an older snapshot with a longer journal
replay.  ``fsck_state_dir`` classifies all of it without mutating a
byte.
"""

import os
import pickle

import pytest

from repro.ci.persistence import (
    EventJournal,
    SnapshotStore,
    scan_journal,
)
from repro.exceptions import PersistenceError, SnapshotCorruptError
from repro.reliability.events import reliability_events
from repro.reliability.faults import FaultRule, InjectedFault, injected_faults
from repro.reliability.fsck import fsck_state_dir


def truncate(path, keep=80):
    path.write_bytes(path.read_bytes()[:keep])


def dir_fingerprint(directory):
    """(name, size, mtime_ns) of every file under ``directory``."""
    entries = []
    for root, _, names in os.walk(directory):
        for name in sorted(names):
            path = os.path.join(root, name)
            stat = os.stat(path)
            entries.append(
                (os.path.relpath(path, directory), stat.st_size, stat.st_mtime_ns)
            )
    return sorted(entries)


class TestSnapshotChecksums:
    def test_truncated_snapshot_raises_corrupt(self, tmp_path):
        store = SnapshotStore(tmp_path)
        info = store.save({"state": 1})
        truncate(info.path)
        assert not store.verify(info.sequence)
        with pytest.raises(SnapshotCorruptError):
            store.load(info.sequence)

    def test_bit_rot_fails_the_checksum(self, tmp_path):
        # Flip one byte deep in the payload: the envelope still unpickles
        # (same length, same structure) but the CRC must catch it.
        store = SnapshotStore(tmp_path)
        info = store.save({"state": list(range(100))})
        raw = bytearray(info.path.read_bytes())
        raw[-40] ^= 0xFF
        info.path.write_bytes(bytes(raw))
        with pytest.raises(PersistenceError):
            store.load(info.sequence)

    def test_injected_tear_is_silent_at_write_time(self, tmp_path):
        # The tear lands at the final path and save() reports success —
        # exactly the failure a checksum exists to catch later.
        store = SnapshotStore(tmp_path)
        with injected_faults(
            [FaultRule(site="snapshot.write", action="tear", at=1, tear_at=60)]
        ):
            info = store.save({"state": 1})
        assert info.path.exists()
        assert not store.verify(info.sequence)

    def test_fsync_failure_leaves_no_final_file(self, tmp_path):
        store = SnapshotStore(tmp_path)
        with injected_faults(
            [FaultRule(site="snapshot.fsync", action="raise", at=1)]
        ):
            with pytest.raises(InjectedFault):
                store.save({"state": 1})
        assert store.latest_sequence == 0
        assert store.load_latest() is None


class TestQuarantineAndFallback:
    def make_store(self, tmp_path, generations=3):
        store = SnapshotStore(tmp_path)
        for number in range(1, generations + 1):
            store.save({"generation": number}, journal_sequence=number * 10)
        return store

    def test_load_latest_falls_back_past_corruption(self, tmp_path):
        store = self.make_store(tmp_path)
        truncate(tmp_path / "snapshot-000003.pkl")
        payload, info = store.load_latest()
        assert payload == {"generation": 2}
        assert info.journal_sequence == 20  # replay extends from here
        fallbacks = reliability_events("snapshot-fallback")
        assert fallbacks and fallbacks[-1].detail["skipped_snapshots"] == 1

    def test_corrupt_file_is_quarantined_not_deleted(self, tmp_path):
        store = self.make_store(tmp_path)
        damaged = tmp_path / "snapshot-000003.pkl"
        original_bytes = damaged.read_bytes()[:80]
        truncate(damaged)
        store.load_latest()
        assert not damaged.exists()
        quarantined = store.quarantined()
        assert [p.name for p in quarantined] == ["snapshot-000003.pkl.quarantined"]
        assert quarantined[0].read_bytes() == original_bytes
        assert reliability_events("snapshot-quarantined")

    def test_read_only_mode_skips_in_place(self, tmp_path):
        store = self.make_store(tmp_path)
        truncate(tmp_path / "snapshot-000003.pkl")
        before = dir_fingerprint(tmp_path)
        payload, _ = store.load_latest(quarantine=False)
        assert payload == {"generation": 2}
        assert dir_fingerprint(tmp_path) == before
        assert reliability_events("snapshot-skipped")
        assert not store.quarantined()

    def test_every_snapshot_corrupt_means_none(self, tmp_path):
        store = self.make_store(tmp_path, generations=2)
        truncate(tmp_path / "snapshot-000001.pkl")
        truncate(tmp_path / "snapshot-000002.pkl")
        assert store.load_latest() is None
        assert len(store.quarantined()) == 2

    def test_latest_info_skips_corrupt_generations(self, tmp_path):
        store = self.make_store(tmp_path)
        truncate(tmp_path / "snapshot-000003.pkl")
        fresh = SnapshotStore(tmp_path)  # cold metadata cache
        info = fresh.latest_info()
        assert info is not None and info.sequence == 2


class TestPruneSafety:
    def test_prune_never_removes_the_newest_valid_snapshot(self, tmp_path):
        store = SnapshotStore(tmp_path)
        for number in range(1, 4):
            store.save({"generation": number})
        truncate(tmp_path / "snapshot-000003.pkl")
        removed = store.prune(keep=1)
        # Generation 2 is the newest *valid* one: it must survive; the
        # corrupt newest file is not prune's to touch either.
        assert [p.name for p in removed] == ["snapshot-000001.pkl"]
        assert (tmp_path / "snapshot-000002.pkl").exists()
        assert (tmp_path / "snapshot-000003.pkl").exists()
        assert store.load_latest(quarantine=False)[0] == {"generation": 2}


class TestJournalIntegrity:
    def fill(self, tmp_path, events=4):
        journal = EventJournal(tmp_path / "journal.jsonl", sync=False)
        for number in range(events):
            journal.append("snapshot", {"snapshot_sequence": number})
        return journal

    def test_lines_carry_crcs(self, tmp_path):
        journal = self.fill(tmp_path)
        for line in journal.path.read_text().splitlines():
            assert '"crc":' in line

    def test_flipped_byte_in_middle_line_raises(self, tmp_path):
        journal = self.fill(tmp_path)
        lines = journal.path.read_text().splitlines()
        # Corrupt a digit inside line 2's payload without breaking JSON.
        lines[1] = lines[1].replace('"snapshot_sequence": 1', '"snapshot_sequence": 7')
        journal.path.write_text("".join(line + "\n" for line in lines))
        with pytest.raises(PersistenceError, match="corrupt"):
            list(EventJournal(journal.path, sync=False).records())

    def test_injected_tear_loses_only_the_in_flight_append(self, tmp_path):
        journal = self.fill(tmp_path, events=2)
        with injected_faults(
            [FaultRule(site="journal.append", action="tear", at=1, tear_at=25)]
        ):
            with pytest.raises(InjectedFault, match="torn"):
                journal.append("snapshot", {"snapshot_sequence": 99})
        assert journal.last_sequence == 2  # the torn append never happened
        reopened = EventJournal(journal.path, sync=False)
        assert reopened.last_sequence == 2
        assert len(list(reopened.records())) == 2
        sidecars = list(journal.path.parent.glob("*.torn-*.quarantined"))
        assert len(sidecars) == 1 and len(sidecars[0].read_bytes()) == 25
        assert reliability_events("journal-torn-tail")

    def test_injected_fsync_failure_raises(self, tmp_path):
        journal = self.fill(tmp_path, events=1)
        with injected_faults(
            [FaultRule(site="journal.fsync", action="raise", at=1)]
        ):
            with pytest.raises(InjectedFault):
                journal.append("snapshot", {})
        assert journal.last_sequence == 1

    def test_scan_journal_is_read_only(self, tmp_path):
        journal = self.fill(tmp_path)
        with open(journal.path, "ab") as handle:
            handle.write(b'{"torn')
        before = dir_fingerprint(tmp_path)
        scan = scan_journal(journal.path)
        assert dir_fingerprint(tmp_path) == before
        assert scan.records == 4
        assert scan.torn_tail_bytes == len(b'{"torn')
        assert scan.corrupt_lines == ()


class TestFsck:
    def make_state_dir(self, tmp_path):
        state = tmp_path / "state"
        store = SnapshotStore(state / "snapshots")
        journal = EventJournal(state / "journal.jsonl", sync=False)
        for number in range(1, 4):
            store.save({"generation": number}, journal_sequence=journal.last_sequence)
            journal.append("snapshot", {"snapshot_sequence": number})
            journal.append(
                "commit-received", {"sequence": number - 1, "model_pickle": ""}
            )
        return state

    def test_missing_directory_reports_cleanly(self, tmp_path):
        report = fsck_state_dir(tmp_path / "nope")
        assert not report.exists and not report.restorable
        assert "does not exist" in report.describe()

    def test_healthy_directory(self, tmp_path):
        report = fsck_state_dir(self.make_state_dir(tmp_path))
        assert report.restorable and report.restore_sequence == 3
        assert [s.status for s in report.snapshots] == ["valid"] * 3
        # Snapshot 3 anchors at journal seq 4; one commit record follows.
        assert report.replay_commits == 1
        assert report.replay_events == 2

    def test_corrupt_snapshot_classified_and_replay_extends(self, tmp_path):
        state = self.make_state_dir(tmp_path)
        truncate(state / "snapshots" / "snapshot-000003.pkl")
        report = fsck_state_dir(state)
        assert [s.status for s in report.snapshots] == [
            "valid",
            "valid",
            "corrupt",
        ]
        assert report.restorable and report.restore_sequence == 2
        assert report.replay_commits == 2  # anchor moved one generation back
        assert "corrupt" in report.describe()

    def test_fsck_never_mutates(self, tmp_path):
        state = self.make_state_dir(tmp_path)
        truncate(state / "snapshots" / "snapshot-000003.pkl")
        with open(state / "journal.jsonl", "ab") as handle:
            handle.write(b'{"torn')
        before = dir_fingerprint(state)
        first = fsck_state_dir(state)
        second = fsck_state_dir(state)
        assert dir_fingerprint(state) == before
        assert first == second
        assert first.journal.torn_tail_bytes > 0

    def test_quarantined_files_are_reported(self, tmp_path):
        state = self.make_state_dir(tmp_path)
        truncate(state / "snapshots" / "snapshot-000003.pkl")
        SnapshotStore(state / "snapshots").load_latest()  # quarantines
        report = fsck_state_dir(state)
        assert [p.name for p in report.quarantined] == [
            "snapshot-000003.pkl.quarantined"
        ]
        assert "quarantined   : 1 file(s)" in report.describe()

    def test_nothing_restorable(self, tmp_path):
        state = self.make_state_dir(tmp_path)
        for path in (state / "snapshots").glob("*.pkl"):
            truncate(path)
        report = fsck_state_dir(state)
        assert not report.restorable
        assert report.replay_commits == 0 and report.replay_events == 0
        assert "IMPOSSIBLE" in report.describe()

    def test_unsupported_version_is_distinguished(self, tmp_path):
        state = self.make_state_dir(tmp_path)
        path = state / "snapshots" / "snapshot-000003.pkl"
        path.write_bytes(
            pickle.dumps({"format_version": 99, "sequence": 3, "payload_pickle": b""})
        )
        report = fsck_state_dir(state)
        assert report.snapshots[-1].status == "unsupported-version"
        assert report.restore_sequence == 2
