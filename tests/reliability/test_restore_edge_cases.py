"""Restore edge cases: missing pieces, gaps, and inspecting damaged dirs.

The corners of the recovery matrix: a state directory missing its
snapshots, missing its journal, holding quarantined wreckage, or holding
a journal that no longer lines up with any snapshot — each must fail
loudly or restore exactly, never limp into a half-restored service.
"""

import json
import shutil
import sys

import pytest

sys.path.insert(0, "tests/ci")
from test_restart_parity import (  # noqa: E402
    assert_parity,
    finish_queue,
    make_script,
    make_service,
    make_world,
    run_persisted,
    run_reference,
)

from repro.ci.service import CIService  # noqa: E402
from repro.cli import main  # noqa: E402
from repro.exceptions import PersistenceError  # noqa: E402


@pytest.fixture(scope="module")
def world():
    script = make_script("full")
    testsets, baseline, models = make_world(script)
    return script, testsets, baseline, models


def persisted_state(world, tmp_path, **kwargs):
    script, testsets, baseline, models = world
    run_persisted(script, testsets, baseline, models, tmp_path / "state", **kwargs)
    return tmp_path / "state"


def truncate(path, keep=80):
    path.write_bytes(path.read_bytes()[:keep])


class TestMissingPieces:
    def test_missing_snapshot_dir_fails_loudly(self, world, tmp_path):
        state = persisted_state(world, tmp_path)
        shutil.rmtree(state / "snapshots")
        with pytest.raises(PersistenceError, match="no snapshot to restore"):
            CIService.resume(state)

    def test_snapshot_only_restore_without_a_journal(self, world, tmp_path):
        # A deleted journal is lost history, not an error: the service
        # restores to exactly the snapshot and continues from there.
        script, testsets, baseline, models = world
        state = persisted_state(world, tmp_path)
        reference = run_reference(script, testsets, baseline, models)
        (state / "journal.jsonl").unlink()
        restored = CIService.resume(state)
        assert len(restored.builds) == 0  # only the initial snapshot existed
        finish_queue(restored, models)
        assert_parity(reference, restored)

    def test_all_snapshots_corrupt_fails_loudly(self, world, tmp_path):
        state = persisted_state(world, tmp_path)
        for path in (state / "snapshots").glob("*.pkl"):
            truncate(path)
        with pytest.raises(PersistenceError, match="no snapshot to restore"):
            CIService.resume(state)


class TestJournalGapDetection:
    def test_missing_commit_record_is_reported_as_misalignment(
        self, world, tmp_path
    ):
        # Delete one mid-tail commit-received record: replay hits a hole
        # in the sequence run and must refuse with the gap message rather
        # than rebuild a history with a silently different lineage.
        state = persisted_state(world, tmp_path)
        journal = state / "journal.jsonl"
        lines = journal.read_text().splitlines()
        commit_lines = [
            number
            for number, line in enumerate(lines)
            if json.loads(line)["type"] == "commit-received"
        ]
        del lines[commit_lines[2]]
        journal.write_text("".join(line + "\n" for line in lines))
        with pytest.raises(
            PersistenceError, match="journal does not line up with the snapshot"
        ):
            CIService.resume(state)

    def test_gap_detection_survives_a_snapshot_fallback(self, world, tmp_path):
        # Falling back past a corrupt snapshot extends the replay window;
        # a hole in that extended window must still be caught.
        state = persisted_state(world, tmp_path, snapshot_every=3)
        snapshots = sorted((state / "snapshots").glob("*.pkl"))
        assert len(snapshots) > 1
        truncate(snapshots[-1])
        journal = state / "journal.jsonl"
        lines = journal.read_text().splitlines()
        commit_lines = [
            number
            for number, line in enumerate(lines)
            if json.loads(line)["type"] == "commit-received"
        ]
        del lines[commit_lines[-2]]
        journal.write_text("".join(line + "\n" for line in lines))
        with pytest.raises(
            PersistenceError, match="journal does not line up with the snapshot"
        ):
            CIService.resume(state)


class TestInspectingDamagedDirs:
    def test_repro_ops_on_a_quarantined_state_dir(self, world, tmp_path, capsys):
        # Corrupt the newest snapshot, let a real restore quarantine it,
        # then inspect: `repro ops` must restore from the fallback
        # generation and report the quarantined file — without renaming,
        # truncating or journaling anything further.
        script, testsets, baseline, models = world
        state = persisted_state(world, tmp_path, snapshot_every=3)
        snapshots = sorted((state / "snapshots").glob("*.pkl"))
        truncate(snapshots[-1])
        restored = CIService.resume(state)  # quarantines the damage
        finish_queue(restored, models)
        assert restored._store.quarantined()

        listing = sorted(p.name for p in (state / "snapshots").iterdir())
        journal_bytes = (state / "journal.jsonl").read_bytes()
        code = main(["ops", str(state)])
        out = capsys.readouterr().out
        assert code == 0
        assert "1 quarantined file(s)" in out
        assert sorted(p.name for p in (state / "snapshots").iterdir()) == listing
        assert (state / "journal.jsonl").read_bytes() == journal_bytes

    def test_repro_ops_fsck_reports_without_restoring(
        self, world, tmp_path, capsys
    ):
        state = persisted_state(world, tmp_path, snapshot_every=3)
        snapshots = sorted((state / "snapshots").glob("*.pkl"))
        truncate(snapshots[-1])
        listing = sorted(p.name for p in (state / "snapshots").iterdir())
        code = main(["ops", str(state), "--fsck"])
        out = capsys.readouterr().out
        assert code == 0
        assert "corrupt" in out and "restore       : snapshot #" in out
        # Read-only: the corrupt file is still in place, nothing renamed.
        assert sorted(p.name for p in (state / "snapshots").iterdir()) == listing

    def test_repro_ops_fsck_json(self, world, tmp_path, capsys):
        state = persisted_state(world, tmp_path)
        code = main(["ops", str(state), "--fsck", "--json"])
        report = json.loads(capsys.readouterr().out)
        assert code == 0
        assert report["restorable"] is True
        assert report["journal"]["records"] > 0

    def test_repro_ops_fsck_unrestorable_exits_2(self, world, tmp_path, capsys):
        state = persisted_state(world, tmp_path)
        for path in (state / "snapshots").glob("*.pkl"):
            truncate(path)
        code = main(["ops", str(state), "--fsck"])
        assert code == 2
        assert "IMPOSSIBLE" in capsys.readouterr().out
