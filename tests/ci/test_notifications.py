"""Tests for notification transports."""

from repro.ci.notifications import ConsoleTransport, InMemoryEmailTransport


class TestInMemoryTransport:
    def test_records_messages_in_order(self):
        transport = InMemoryEmailTransport()
        transport.send("a@x.com", "s1", "b1")
        transport.send("b@x.com", "s2", "b2")
        assert len(transport) == 2
        assert [m.sequence for m in transport.messages] == [0, 1]

    def test_messages_for_filters_recipient(self):
        transport = InMemoryEmailTransport()
        transport.send("a@x.com", "s", "b")
        transport.send("b@x.com", "s", "b")
        transport.send("a@x.com", "s2", "b")
        assert len(transport.messages_for("a@x.com")) == 2

    def test_messages_list_is_copy(self):
        transport = InMemoryEmailTransport()
        transport.send("a@x.com", "s", "b")
        transport.messages.clear()
        assert len(transport) == 1


class TestConsoleTransport:
    def test_prints_subject_and_body(self, capsys):
        ConsoleTransport().send("team@x.com", "subject line", "line1\nline2")
        out = capsys.readouterr().out
        assert "team@x.com" in out
        assert "subject line" in out
        assert "line1" in out and "line2" in out
