"""Restart parity: crash at any journal boundary, restore, finish the queue.

The headline invariant of the persistence subsystem (mirroring the
pool-parity methodology of ``tests/core/test_engine_pool.py``): a service
killed at *any* journal boundary and restored from its state directory
finishes the commit queue with a ``CommitResult``/``BuildRecord``
sequence element-wise identical to the uninterrupted run — results,
statuses, generations, alarm events, rotation log and budget accounting
— in all three adaptivity modes.

The crash is simulated faithfully rather than in-process: the persisted
run's state directory is copied *as a crash at journal sequence ``j``
would have left it* — only snapshots taken at or before ``j``, and the
journal truncated to its first ``j`` records — and a fresh service is
restored from the copy.  Because the copy is built from on-disk artifacts
only, the restored service shares no Python state with the crashed one.
"""

import shutil

import numpy as np
import pytest

from repro.ci.repository import ModelRepository
from repro.ci.service import CIService
from repro.core.estimators.api import SampleSizeEstimator
from repro.core.script.config import CIScript
from repro.core.testset import Testset, TestsetPool
from repro.ci.persistence import SnapshotStore
from repro.ml.models.base import FixedPredictionModel
from repro.ml.models.simulated import (
    ModelPairSpec,
    evolve_predictions,
    simulate_model_pair,
)

CONDITION = "d < 0.25 +/- 0.1 /\\ n - o > 0.05 +/- 0.1"
ADAPTIVITY_MODES = ["full", "none -> third-party@example.com", "firstChange"]


def make_script(adaptivity, steps=4):
    return CIScript.from_dict(
        {
            "script": "./test_model.py",
            "condition": CONDITION,
            "reliability": 0.999,
            "mode": "fp-free",
            "adaptivity": adaptivity,
            "steps": steps,
        }
    )


def make_world(script, commits=10, promote_at=(2, 6), generations=3, seed=0):
    """Commit queue plus ``generations`` equally-sized testsets."""
    plan = SampleSizeEstimator().plan(
        script.condition,
        delta=script.delta,
        adaptivity=script.adaptivity,
        steps=script.steps,
        known_variance_bound=script.variance_bound,
    )
    pair = simulate_model_pair(
        ModelPairSpec(old_accuracy=0.80, new_accuracy=0.80, difference=0.0),
        n_examples=plan.pool_size,
        seed=seed,
    )
    labels = pair.labels
    models, current = [], pair.old_model.predictions
    for i in range(commits):
        target = 0.88 if i in promote_at else 0.81
        predictions = evolve_predictions(
            current, labels, target_accuracy=target, difference=0.12, seed=100 + i
        )
        models.append(FixedPredictionModel(predictions, name=f"m{i}"))
        if i in promote_at:
            current = predictions
    rng = np.random.default_rng(seed + 1)
    testsets = [Testset(labels=labels, name="gen-0")]
    for g in range(1, generations):
        testsets.append(
            Testset(labels=rng.integers(0, 2, size=plan.pool_size), name=f"gen-{g}")
        )
    return testsets, pair.old_model, models


def make_service(script, testsets, baseline):
    # A fixed repository nonce so the uninterrupted reference and every
    # restored run mint byte-identical commit ids.
    service = CIService(
        script,
        testsets[0],
        baseline,
        repository=ModelRepository(nonce="parity-nonce"),
    )
    service.install_testset_pool(TestsetPool(testsets[1:]))
    return service


def crash_copy(state_dir, crash_dir, boundary):
    """Reconstruct the state dir as a crash at journal seq ``boundary`` left it.

    Journal record sequences are 1-based line numbers, so the first
    ``boundary`` lines are exactly the records appended at or before the
    boundary; a snapshot file exists iff it was taken at or before it.
    """
    source = SnapshotStore(state_dir / "snapshots")
    (crash_dir / "snapshots").mkdir(parents=True)
    for sequence in source.sequences():
        _, info = source.load(sequence)
        if info.journal_sequence <= boundary:
            shutil.copy2(info.path, crash_dir / "snapshots" / info.path.name)
    lines = (state_dir / "journal.jsonl").read_text(encoding="utf-8").splitlines()
    (crash_dir / "journal.jsonl").write_text(
        "".join(line + "\n" for line in lines[:boundary]), encoding="utf-8"
    )


def assert_parity(reference, restored):
    """Element-wise build/engine/budget equality of two finished services."""
    ref, got = reference.builds, restored.builds
    assert len(got) == len(ref)
    assert [b.build_number for b in got] == [b.build_number for b in ref]
    assert [b.result for b in got] == [b.result for b in ref]
    assert [b.commit.status for b in got] == [b.commit.status for b in ref]
    assert [b.commit.commit_id for b in got] == [b.commit.commit_id for b in ref]
    assert [b.generation for b in got] == [b.generation for b in ref]
    assert [b.skipped_reason for b in got] == [b.skipped_reason for b in ref]
    assert restored.engine.results == reference.engine.results
    assert restored.engine.alarm.events == reference.engine.alarm.events
    assert restored.engine.rotations == reference.engine.rotations
    assert restored.engine.manager.generation == reference.engine.manager.generation
    assert restored.engine.manager.uses == reference.engine.manager.uses
    assert restored.engine.manager.remaining == reference.engine.manager.remaining
    assert restored.engine.pool.pending == reference.engine.pool.pending
    assert getattr(restored.engine.active_model, "name", None) == getattr(
        reference.engine.active_model, "name", None
    )


def run_reference(script, testsets, baseline, models):
    service = make_service(script, testsets, baseline)
    for model in models:
        service.repository.commit(model, message=model.name)
    return service


def run_persisted(script, testsets, baseline, models, state_dir, **persist_kwargs):
    service = make_service(script, testsets, baseline)
    # Retention off: crash_copy reconstructs historical crash states from
    # the final directory, so every snapshot generation must survive.
    persist_kwargs.setdefault("keep_snapshots", None)
    service.persist_to(state_dir, **persist_kwargs)
    for model in models:
        service.repository.commit(model, message=model.name)
    return service


def finish_queue(restored, models):
    """Feed every model the restored repository does not already hold."""
    for model in models[len(restored.repository):]:
        restored.repository.commit(model, message=model.name)
    return restored


@pytest.mark.parametrize("adaptivity", ADAPTIVITY_MODES)
def test_every_journal_boundary_restores_identically(adaptivity, tmp_path):
    script = make_script(adaptivity)
    testsets, baseline, models = make_world(script)
    reference = run_reference(script, testsets, baseline, models)
    persisted = run_persisted(
        script, testsets, baseline, models, tmp_path / "state"
    )
    assert_parity(reference, persisted)  # journaling itself changes nothing

    total = persisted._journal.last_sequence
    assert total > len(models)  # commit-received + build trail per commit
    for boundary in range(total + 1):
        crash_dir = tmp_path / f"crash-{boundary:03d}"
        crash_copy(tmp_path / "state", crash_dir, boundary)
        restored = CIService.resume(crash_dir)
        finish_queue(restored, models)
        assert_parity(reference, restored)


@pytest.mark.parametrize("adaptivity", ADAPTIVITY_MODES)
def test_snapshot_cadence_boundaries_restore_identically(adaptivity, tmp_path):
    # With snapshot_every=3 some crash points restore from a mid-run
    # snapshot and replay a short journal tail; results must not care.
    script = make_script(adaptivity)
    testsets, baseline, models = make_world(script)
    reference = run_reference(script, testsets, baseline, models)
    persisted = run_persisted(
        script, testsets, baseline, models, tmp_path / "state", snapshot_every=3
    )
    assert persisted._store.latest_sequence > 1  # cadence actually snapshotted

    total = persisted._journal.last_sequence
    for boundary in range(total + 1):
        crash_dir = tmp_path / f"crash-{boundary:03d}"
        crash_copy(tmp_path / "state", crash_dir, boundary)
        restored = CIService.resume(crash_dir)
        finish_queue(restored, models)
        assert_parity(reference, restored)


def test_batch_ingest_crash_boundaries_restore_identically(tmp_path):
    # process_batch journals every commit-received up front; a crash after
    # any prefix of those records replays that prefix sequentially, and
    # the remainder is re-ingested as a batch.  Sequential-vs-batch parity
    # (PR 2) plus replay determinism keep the outcome identical.
    script = make_script("full")
    testsets, baseline, models = make_world(script)
    reference = make_service(script, testsets, baseline)
    reference.process_batch(models)

    persisted = make_service(script, testsets, baseline)
    persisted.persist_to(tmp_path / "state", keep_snapshots=None)
    persisted.process_batch(models)
    assert_parity(reference, persisted)

    total = persisted._journal.last_sequence
    for boundary in range(total + 1):
        crash_dir = tmp_path / f"crash-{boundary:03d}"
        crash_copy(tmp_path / "state", crash_dir, boundary)
        restored = CIService.resume(crash_dir)
        remainder = models[len(restored.repository):]
        if remainder:
            restored.process_batch(remainder)
        assert_parity(reference, restored)
