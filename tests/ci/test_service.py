"""Tests for the CI service (repository -> builds -> signals)."""

import numpy as np
import pytest

from repro.ci.commit import CommitStatus
from repro.ci.notifications import InMemoryEmailTransport
from repro.ci.repository import ModelRepository
from repro.ci.service import CIService
from repro.core.script.config import CIScript
from repro.core.testset import Testset
from repro.ml.models.base import FixedPredictionModel
from repro.ml.models.simulated import (
    ModelPairSpec,
    evolve_predictions,
    simulate_model_pair,
)


def make_service(adaptivity="full", steps=3):
    script = CIScript.from_dict(
        {
            "condition": "n - o > 0.02 +/- 0.05",
            "reliability": 0.99,
            "mode": "fp-free",
            "adaptivity": adaptivity,
            "steps": steps,
        }
    )
    from repro.core.estimators.api import SampleSizeEstimator

    pool = SampleSizeEstimator().plan(
        script.condition, delta=script.delta,
        adaptivity=script.adaptivity, steps=script.steps,
    ).pool_size
    world = simulate_model_pair(
        ModelPairSpec(old_accuracy=0.85, new_accuracy=0.85, difference=0.0),
        n_examples=pool,
        seed=0,
    )
    transport = InMemoryEmailTransport()
    service = CIService(
        script,
        Testset(labels=world.labels, name="svc-test"),
        world.old_model,
        repository=ModelRepository("svc-repo"),
        transport=transport,
    )
    return service, world, transport


def candidate(service, world, accuracy, difference, seed):
    return FixedPredictionModel(
        evolve_predictions(
            service.active_model.predictions,
            world.labels,
            target_accuracy=accuracy,
            difference=difference,
            seed=seed,
        ),
        name=f"cand-{seed}",
    )


class TestWebhookFlow:
    def test_commit_triggers_build(self):
        service, world, _ = make_service()
        service.repository.commit(world.old_model, message="noop")
        assert len(service.builds) == 1
        assert service.builds[0].ran

    def test_build_numbers_increment(self):
        service, world, _ = make_service()
        service.repository.commit(world.old_model)
        service.repository.commit(world.old_model)
        assert [b.build_number for b in service.builds] == [1, 2]

    def test_status_reflects_signal(self):
        service, world, _ = make_service()
        good = candidate(service, world, 0.95, 0.12, seed=1)
        commit = service.repository.commit(good, message="improvement")
        assert commit.status is CommitStatus.PASSED
        bad = candidate(service, world, 0.9, 0.07, seed=2)  # -5 vs new active
        commit = service.repository.commit(bad)
        assert commit.status is CommitStatus.FAILED

    def test_active_model_tracks_promotions(self):
        service, world, _ = make_service()
        good = candidate(service, world, 0.95, 0.12, seed=3)
        service.repository.commit(good)
        assert service.active_model is good

    def test_exhausted_testset_skips_builds(self):
        service, world, _ = make_service(steps=1)
        service.repository.commit(world.old_model)  # consumes the budget
        commit = service.repository.commit(world.old_model)
        assert commit.status is CommitStatus.SKIPPED
        assert not service.builds[-1].ran
        assert service.builds[-1].skipped_reason

    def test_install_testset_resumes_builds(self):
        service, world, _ = make_service(steps=1)
        service.repository.commit(world.old_model)
        fresh = simulate_model_pair(
            ModelPairSpec(old_accuracy=0.85, new_accuracy=0.85, difference=0.0),
            n_examples=len(world.labels),
            seed=50,
        )
        service.install_testset(
            Testset(labels=fresh.labels, name="gen2"), baseline_model=fresh.old_model
        )
        commit = service.repository.commit(fresh.old_model)
        assert commit.status is not CommitStatus.SKIPPED


class TestHiddenSignals:
    def test_none_mode_hides_status(self):
        service, world, transport = make_service(
            adaptivity="none -> team@example.com"
        )
        good = candidate(service, world, 0.95, 0.12, seed=4)
        commit = service.repository.commit(good)
        assert commit.status is CommitStatus.ACCEPTED
        # but the third party got the true signal
        subjects = [m.subject for m in transport.messages_for("team@example.com")]
        assert any("PASS" in s for s in subjects)

    def test_summary_renders(self):
        service, world, _ = make_service()
        service.repository.commit(world.old_model)
        text = service.summary()
        assert "svc-repo" in text and "#1" in text
