"""Tests for the CI service (repository -> builds -> signals)."""

import numpy as np
import pytest

from repro.ci.commit import CommitStatus
from repro.ci.notifications import InMemoryEmailTransport
from repro.ci.repository import ModelRepository
from repro.ci.service import CIService
from repro.core.script.config import CIScript
from repro.core.testset import Testset
from repro.ml.models.base import FixedPredictionModel
from repro.ml.models.simulated import (
    ModelPairSpec,
    evolve_predictions,
    simulate_model_pair,
)


def make_service(adaptivity="full", steps=3):
    script = CIScript.from_dict(
        {
            "condition": "n - o > 0.02 +/- 0.05",
            "reliability": 0.99,
            "mode": "fp-free",
            "adaptivity": adaptivity,
            "steps": steps,
        }
    )
    from repro.core.estimators.api import SampleSizeEstimator

    pool = SampleSizeEstimator().plan(
        script.condition, delta=script.delta,
        adaptivity=script.adaptivity, steps=script.steps,
    ).pool_size
    world = simulate_model_pair(
        ModelPairSpec(old_accuracy=0.85, new_accuracy=0.85, difference=0.0),
        n_examples=pool,
        seed=0,
    )
    transport = InMemoryEmailTransport()
    service = CIService(
        script,
        Testset(labels=world.labels, name="svc-test"),
        world.old_model,
        repository=ModelRepository("svc-repo"),
        transport=transport,
    )
    return service, world, transport


def candidate(service, world, accuracy, difference, seed):
    return FixedPredictionModel(
        evolve_predictions(
            service.active_model.predictions,
            world.labels,
            target_accuracy=accuracy,
            difference=difference,
            seed=seed,
        ),
        name=f"cand-{seed}",
    )


class TestWebhookFlow:
    def test_commit_triggers_build(self):
        service, world, _ = make_service()
        service.repository.commit(world.old_model, message="noop")
        assert len(service.builds) == 1
        assert service.builds[0].ran

    def test_build_numbers_increment(self):
        service, world, _ = make_service()
        service.repository.commit(world.old_model)
        service.repository.commit(world.old_model)
        assert [b.build_number for b in service.builds] == [1, 2]

    def test_status_reflects_signal(self):
        service, world, _ = make_service()
        good = candidate(service, world, 0.95, 0.12, seed=1)
        commit = service.repository.commit(good, message="improvement")
        assert commit.status is CommitStatus.PASSED
        bad = candidate(service, world, 0.9, 0.07, seed=2)  # -5 vs new active
        commit = service.repository.commit(bad)
        assert commit.status is CommitStatus.FAILED

    def test_active_model_tracks_promotions(self):
        service, world, _ = make_service()
        good = candidate(service, world, 0.95, 0.12, seed=3)
        service.repository.commit(good)
        assert service.active_model is good

    def test_exhausted_testset_skips_builds(self):
        service, world, _ = make_service(steps=1)
        service.repository.commit(world.old_model)  # consumes the budget
        commit = service.repository.commit(world.old_model)
        assert commit.status is CommitStatus.SKIPPED
        assert not service.builds[-1].ran
        assert service.builds[-1].skipped_reason

    def test_install_testset_resumes_builds(self):
        service, world, _ = make_service(steps=1)
        service.repository.commit(world.old_model)
        fresh = simulate_model_pair(
            ModelPairSpec(old_accuracy=0.85, new_accuracy=0.85, difference=0.0),
            n_examples=len(world.labels),
            seed=50,
        )
        service.install_testset(
            Testset(labels=fresh.labels, name="gen2"), baseline_model=fresh.old_model
        )
        commit = service.repository.commit(fresh.old_model)
        assert commit.status is not CommitStatus.SKIPPED


class TestProcessBatch:
    def _models(self, service, world, count=5, promote_at=(1,)):
        out = []
        current = service.active_model.predictions
        for i in range(count):
            target = 0.95 if i in promote_at else 0.90
            predictions = evolve_predictions(
                current, world.labels,
                target_accuracy=target, difference=0.12, seed=200 + i,
            )
            out.append(FixedPredictionModel(predictions, name=f"batch-{i}"))
            if i in promote_at:
                current = predictions
        return out

    def test_batch_matches_sequential_webhook(self):
        sequential, world, _ = make_service(steps=6)
        batched, _, _ = make_service(steps=6)
        models = self._models(sequential, world)
        for model in models:
            sequential.repository.commit(model)
        records = batched.process_batch(models)
        assert len(records) == len(models)
        assert len(batched.builds) == len(sequential.builds)
        for a, b in zip(sequential.builds, batched.builds):
            assert a.build_number == b.build_number
            assert a.commit.status is b.commit.status
            assert (a.result is None) == (b.result is None)
            if a.result is not None:
                assert a.result == b.result
        assert getattr(sequential.active_model, "name", None) == getattr(
            batched.active_model, "name", None
        )

    def test_exhaustion_mid_batch_skips_remaining(self):
        sequential, world, _ = make_service(steps=2)
        batched, _, _ = make_service(steps=2)
        models = self._models(sequential, world, count=4, promote_at=())
        for model in models:
            sequential.repository.commit(model)
        batched.process_batch(models)
        seq_status = [b.commit.status for b in sequential.builds]
        bat_status = [b.commit.status for b in batched.builds]
        assert seq_status == bat_status
        assert bat_status[-1] is CommitStatus.SKIPPED
        assert [b.skipped_reason for b in sequential.builds] == [
            b.skipped_reason for b in batched.builds
        ]

    def test_batch_records_returned_in_order(self):
        service, world, _ = make_service(steps=6)
        models = self._models(service, world, count=3, promote_at=())
        records = service.process_batch(models, messages=["a", "b", "c"])
        assert [r.commit.message for r in records] == ["a", "b", "c"]
        assert [r.build_number for r in records] == [1, 2, 3]

    def test_commit_many_without_batch_observer_falls_back(self):
        repo = ModelRepository("plain")
        seen = []
        repo.on_commit(seen.append)
        commits = repo.commit_many([object(), object()])
        assert seen == commits

    def test_plain_subscribers_still_hear_batched_pushes(self):
        # an audit logger subscribed per-commit must see every commit of
        # a push even though the service consumes it through the batch
        # webhook (and the service must not double-process)
        service, world, _ = make_service(steps=6)
        audit = []
        service.repository.on_commit(audit.append)
        models = self._models(service, world, count=3, promote_at=())
        records = service.process_batch(models)
        assert [c.model for c in audit] == models
        assert len(records) == 3 and len(service.builds) == 3


class TestHiddenSignals:
    def test_none_mode_hides_status(self):
        service, world, transport = make_service(
            adaptivity="none -> team@example.com"
        )
        good = candidate(service, world, 0.95, 0.12, seed=4)
        commit = service.repository.commit(good)
        assert commit.status is CommitStatus.ACCEPTED
        # but the third party got the true signal
        subjects = [m.subject for m in transport.messages_for("team@example.com")]
        assert any("PASS" in s for s in subjects)

    def test_summary_renders(self):
        service, world, _ = make_service()
        service.repository.commit(world.old_model)
        text = service.summary()
        assert "svc-repo" in text and "#1" in text
