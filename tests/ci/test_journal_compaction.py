"""Checkpoint-truncate journal compaction: bounded disk, identical replay.

The storage-governance tentpole's journal half.  ``EventJournal.compact``
drops every record a snapshot already captures behind a
``compacted-through`` header; these tests pin down the rewrite's
crash-safety, its idempotence, the reader/fsck contract for compacted
journals, and — the acceptance gate — that a run under *aggressive*
compaction (``snapshot_every=1``, ``keep_snapshots=1``) restarted at
every single commit boundary restores element-wise identical to the
uninterrupted run in all three adaptivity modes.

Also here: the self-healing-append regression — a failed fsync used to
leave a fully-written (valid-looking) line on disk for an event the
caller was told never happened; a later append would then mint a
duplicate sequence.
"""

import sys

import pytest

sys.path.insert(0, "tests/ci")
from test_restart_parity import (  # noqa: E402
    ADAPTIVITY_MODES,
    assert_parity,
    make_script,
    make_service,
    make_world,
    run_reference,
)

from repro.ci.persistence import (  # noqa: E402
    COMPACTION,
    EventJournal,
    scan_journal,
)
from repro.ci.service import CIService  # noqa: E402
from repro.exceptions import PersistenceError  # noqa: E402
from repro.reliability.events import reliability_events  # noqa: E402
from repro.reliability.faults import FaultRule, injected_faults  # noqa: E402
from repro.reliability.fsck import fsck_state_dir  # noqa: E402
from repro.reliability.storage import maintain_state_dir  # noqa: E402


def make_journal(tmp_path, events=0):
    journal = EventJournal(tmp_path / "journal.jsonl", sync=False)
    for i in range(events):
        journal.append("commit-received", {"sequence": i})
    return journal


# ---------------------------------------------------------------------------
# compact(): the rewrite itself
# ---------------------------------------------------------------------------

class TestCompact:
    def test_drops_prefix_and_keeps_survivors_with_original_sequences(
        self, tmp_path
    ):
        journal = make_journal(tmp_path, events=5)
        assert journal.compact(3) == 3
        records = list(journal.records())
        assert [r.sequence for r in records] == [3, 4, 5]
        assert records[0].type == COMPACTION
        assert records[0].payload == {"compacted_through": 3, "dropped": 3}
        assert journal.compacted_through == 3
        assert reliability_events("journal-compacted")

    def test_append_after_compaction_continues_the_sequence(self, tmp_path):
        journal = make_journal(tmp_path, events=5)
        journal.compact(3)
        record = journal.append("commit-received", {"sequence": 5})
        assert record.sequence == 6
        assert journal.last_sequence == 6

    def test_reopen_resumes_counter_and_boundary(self, tmp_path):
        journal = make_journal(tmp_path, events=5)
        journal.compact(4)
        journal.close()
        reopened = EventJournal(tmp_path / "journal.jsonl", sync=False)
        assert reopened.last_sequence == 5
        assert reopened.compacted_through == 4
        assert reopened.append("commit-received", {"sequence": 5}).sequence == 6

    def test_double_compaction_is_idempotent(self, tmp_path):
        journal = make_journal(tmp_path, events=5)
        assert journal.compact(3) == 3
        before = journal.path.read_bytes()
        assert journal.compact(3) == 0
        assert journal.compact(2) == 0
        assert journal.path.read_bytes() == before

    def test_recompaction_accumulates_dropped_count(self, tmp_path):
        journal = make_journal(tmp_path, events=5)
        journal.compact(2)
        journal.compact(5)  # drops the old header plus records 3..5
        (header,) = list(journal.records())
        assert header.type == COMPACTION
        assert header.payload == {"compacted_through": 5, "dropped": 6}

    def test_compacting_past_the_newest_record_raises(self, tmp_path):
        journal = make_journal(tmp_path, events=2)
        with pytest.raises(PersistenceError, match="cannot compact"):
            journal.compact(3)

    def test_compaction_shrinks_the_file(self, tmp_path):
        journal = make_journal(tmp_path, events=50)
        before = journal.path.stat().st_size
        journal.compact(49)
        assert journal.path.stat().st_size < before / 2

    def test_records_of_after_compaction_sees_only_survivors(self, tmp_path):
        journal = make_journal(tmp_path, events=4)
        journal.append("snapshot", {"snapshot_sequence": 1})
        journal.compact(4)
        assert [r.payload for r in journal.records_of("commit-received")] == []
        assert len(list(journal.records_of("snapshot"))) == 1
        journal.append("commit-received", {"sequence": 4})
        assert [
            r.payload["sequence"] for r in journal.records_of("commit-received")
        ] == [4]


# ---------------------------------------------------------------------------
# Edge cases: empty and header-only journals
# ---------------------------------------------------------------------------

class TestEdgeCases:
    def test_empty_journal_compaction_is_a_no_op(self, tmp_path):
        journal = make_journal(tmp_path, events=0)
        assert journal.compact(0) == 0
        assert journal.compacted_through == 0
        with pytest.raises(PersistenceError, match="cannot compact"):
            journal.compact(1)

    def test_empty_journal_scan_reports_no_compaction(self, tmp_path):
        make_journal(tmp_path, events=0)
        scan = scan_journal(tmp_path / "journal.jsonl")
        assert scan.compacted_through == 0
        assert scan.records == 0

    def test_header_only_journal_roundtrips(self, tmp_path):
        journal = make_journal(tmp_path, events=3)
        journal.compact(3)  # every record dropped: only the header remains
        journal.close()
        reopened = EventJournal(tmp_path / "journal.jsonl", sync=False)
        assert len(list(reopened.records())) == 1
        assert reopened.last_sequence == 3
        assert reopened.compacted_through == 3
        assert list(reopened.records_of("commit-received")) == []
        assert reopened.append("commit-received", {"sequence": 3}).sequence == 4

    def test_header_only_journal_scan(self, tmp_path):
        journal = make_journal(tmp_path, events=3)
        journal.compact(3)
        scan = scan_journal(journal.path)
        assert scan.records == 1
        assert scan.last_sequence == 3
        assert scan.compacted_through == 3
        assert scan.commit_sequences == ()
        assert not scan.corrupt_lines
        assert scan.torn_tail_bytes == 0


# ---------------------------------------------------------------------------
# The self-healing append (satellite bugfix)
# ---------------------------------------------------------------------------

class TestFailedAppendSelfHeals:
    def test_fsync_failure_then_successful_append_mints_no_duplicate(
        self, tmp_path
    ):
        journal = make_journal(tmp_path, events=1)
        rule = FaultRule(site="journal.fsync", action="raise", at=1)
        with injected_faults([rule]):
            with pytest.raises(Exception):
                journal.append("commit-received", {"sequence": 1})
        # The failed append healed eagerly: its (fully written, CRC-valid)
        # line was truncated away, so the retry reuses the sequence
        # instead of minting a duplicate line for sequence 2.
        record = journal.append("commit-received", {"sequence": 1})
        assert record.sequence == 2
        sequences = [r.sequence for r in journal.records()]
        assert sequences == [1, 2]
        assert len(sequences) == len(set(sequences))

    def test_heal_quarantines_the_failed_bytes(self, tmp_path):
        journal = make_journal(tmp_path, events=1)
        rule = FaultRule(site="journal.fsync", action="raise", at=1)
        with injected_faults([rule]):
            with pytest.raises(Exception):
                journal.append("commit-received", {"sequence": 1})
        sidecars = list(tmp_path.glob("journal.jsonl.torn-*.quarantined*"))
        assert len(sidecars) == 1
        assert sidecars[0].stat().st_size > 0
        assert reliability_events("journal-torn-tail")

    def test_reopen_after_failed_append_sees_a_clean_journal(self, tmp_path):
        journal = make_journal(tmp_path, events=2)
        rule = FaultRule(site="journal.fsync", action="raise", at=1)
        with injected_faults([rule]):
            with pytest.raises(Exception):
                journal.append("commit-received", {"sequence": 2})
        journal.close()
        reopened = EventJournal(tmp_path / "journal.jsonl", sync=False)
        assert reopened.last_sequence == 2
        scan = scan_journal(tmp_path / "journal.jsonl")
        assert not scan.corrupt_lines
        assert scan.torn_tail_bytes == 0


# ---------------------------------------------------------------------------
# fsck on compacted directories
# ---------------------------------------------------------------------------

def make_compacted_state_dir(tmp_path):
    """A real service run whose snapshots pruned and journal compacted."""
    script = make_script("full")
    testsets, baseline, models = make_world(script, commits=6)
    service = make_service(script, testsets, baseline)
    service.persist_to(
        tmp_path / "state", snapshot_every=2, keep_snapshots=2, sync=False
    )
    for model in models[:6]:
        service.repository.commit(model, message=model.name)
    return tmp_path / "state", service


class TestFsckOnCompactedDirs:
    def test_compacted_dir_is_restorable(self, tmp_path):
        state_dir, service = make_compacted_state_dir(tmp_path)
        assert service._journal.compacted_through > 0
        report = fsck_state_dir(state_dir)
        assert report.restorable
        assert report.journal.compacted_through > 0
        assert "compacted through seq" in report.describe()

    def test_fsck_is_read_only_on_compacted_dirs(self, tmp_path):
        state_dir, _service = make_compacted_state_dir(tmp_path)
        before = (state_dir / "journal.jsonl").read_bytes()
        fsck_state_dir(state_dir)
        assert (state_dir / "journal.jsonl").read_bytes() == before

    def test_journal_compacted_past_every_snapshot_is_unrestorable(
        self, tmp_path
    ):
        state_dir, service = make_compacted_state_dir(tmp_path)
        # Simulate the corruption fsck exists to catch: compact beyond the
        # newest snapshot's anchor, leaving an unreplayable gap.
        service._journal.compact(service._journal.last_sequence)
        anchor = service._store.latest_info().journal_sequence
        assert service._journal.compacted_through > anchor
        report = fsck_state_dir(state_dir)
        assert not report.restorable

    def test_maintain_state_dir_offline_matches_fsck(self, tmp_path):
        # The fleet's cold-tenant reclamation path: prune + compact a dir
        # nobody has resident, then verify it still restores.
        script = make_script("full")
        testsets, baseline, models = make_world(script, commits=4)
        service = make_service(script, testsets, baseline)
        service.persist_to(
            tmp_path / "state", snapshot_every=1, keep_snapshots=None, sync=False
        )
        for model in models[:4]:
            service.repository.commit(model, message=model.name)
        service._journal.close()
        report = maintain_state_dir(tmp_path / "state", keep=2, sync=False)
        assert report.pruned_snapshots > 0
        assert report.dropped_records > 0
        assert report.bytes_after < report.bytes_before
        assert fsck_state_dir(tmp_path / "state").restorable


# ---------------------------------------------------------------------------
# Retention on the snapshot cadence (satellite: prune wired into persist_to)
# ---------------------------------------------------------------------------

class TestRetentionCadence:
    def test_keep_snapshots_bounds_generations_on_disk(self, tmp_path):
        script = make_script("full")
        testsets, baseline, models = make_world(script, commits=8)
        service = make_service(script, testsets, baseline)
        service.persist_to(
            tmp_path / "state", snapshot_every=1, keep_snapshots=3, sync=False
        )
        for model in models[:8]:
            service.repository.commit(model, message=model.name)
        on_disk = list((tmp_path / "state" / "snapshots").glob("snapshot-*.pkl"))
        assert len(on_disk) == 3
        assert service._journal.compacted_through > 0

    def test_prune_never_removes_the_newest_valid_snapshot(self, tmp_path):
        script = make_script("full")
        testsets, baseline, models = make_world(script, commits=3)
        service = make_service(script, testsets, baseline)
        service.persist_to(
            tmp_path / "state", snapshot_every=1, keep_snapshots=1, sync=False
        )
        for model in models[:3]:
            service.repository.commit(model, message=model.name)
        newest = service._store.latest_info()
        assert newest is not None and newest.path.exists()
        restored = CIService.resume(tmp_path / "state", record=False)
        assert len(restored.repository) == 3

    def test_retention_off_keeps_every_generation(self, tmp_path):
        script = make_script("full")
        testsets, baseline, models = make_world(script, commits=4)
        service = make_service(script, testsets, baseline)
        service.persist_to(
            tmp_path / "state", snapshot_every=1, keep_snapshots=None, sync=False
        )
        for model in models[:4]:
            service.repository.commit(model, message=model.name)
        on_disk = list((tmp_path / "state" / "snapshots").glob("snapshot-*.pkl"))
        assert len(on_disk) == 5  # the initial snapshot plus one per commit
        assert service._journal.compacted_through == 0


# ---------------------------------------------------------------------------
# The acceptance gate: aggressive compaction + restart at every boundary
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("adaptivity", ADAPTIVITY_MODES)
def test_aggressive_compaction_restarts_restore_identically(
    adaptivity, tmp_path
):
    """snapshot_every=1, keep_snapshots=1, restart after *every* commit.

    Every snapshot prunes down to a single generation and compacts the
    journal through its anchor, and the service is abandoned and resumed
    from disk at every commit boundary — the harshest cadence the
    retention knobs allow.  Results must be element-wise identical to
    the uninterrupted, never-persisted run.
    """
    script = make_script(adaptivity)
    testsets, baseline, models = make_world(script)
    reference = run_reference(script, testsets, baseline, models)

    state_dir = tmp_path / "state"
    service = make_service(script, testsets, baseline)
    service.persist_to(
        state_dir, snapshot_every=1, keep_snapshots=1, sync=False
    )
    journal_sizes = []
    for model in models:
        service.repository.commit(model, message=model.name)
        journal_sizes.append((state_dir / "journal.jsonl").stat().st_size)
        service = CIService.resume(
            state_dir, snapshot_every=1, keep_snapshots=1
        )
    assert_parity(reference, service)
    # Aggressive retention keeps exactly one generation on disk, and the
    # compacted journal never grows with the commit count.
    on_disk = list((state_dir / "snapshots").glob("snapshot-*.pkl"))
    assert len(on_disk) == 1
    assert max(journal_sizes) <= 2 * min(journal_sizes)
