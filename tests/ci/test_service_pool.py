"""Pool-aware CIService: builds span generations, annotated and notified."""

import numpy as np
import pytest

from repro.ci.commit import CommitStatus
from repro.ci.notifications import InMemoryEmailTransport
from repro.ci.service import CIService
from repro.core.estimators.api import SampleSizeEstimator
from repro.core.script.config import CIScript
from repro.core.testset import Testset, TestsetPool
from repro.ml.models.base import FixedPredictionModel
from repro.ml.models.simulated import (
    ModelPairSpec,
    evolve_predictions,
    simulate_model_pair,
)

CONDITION = "d < 0.25 +/- 0.1 /\\ n - o > 0.05 +/- 0.1"


def make_script(adaptivity="full", steps=4):
    return CIScript.from_dict(
        {
            "script": "./test_model.py",
            "condition": CONDITION,
            "reliability": 0.999,
            "mode": "fp-free",
            "adaptivity": adaptivity,
            "steps": steps,
        }
    )


def make_world(script, commits=10, generations=3, seed=0):
    plan = SampleSizeEstimator().plan(
        script.condition,
        delta=script.delta,
        adaptivity=script.adaptivity,
        steps=script.steps,
        known_variance_bound=script.variance_bound,
    )
    pair = simulate_model_pair(
        ModelPairSpec(old_accuracy=0.80, new_accuracy=0.80, difference=0.0),
        n_examples=plan.pool_size,
        seed=seed,
    )
    labels = pair.labels
    models, current = [], pair.old_model.predictions
    for i in range(commits):
        target = 0.88 if i == 2 else 0.81
        predictions = evolve_predictions(
            current, labels, target_accuracy=target, difference=0.12, seed=100 + i
        )
        models.append(FixedPredictionModel(predictions, name=f"m{i}"))
        if i == 2:
            current = predictions
    rng = np.random.default_rng(seed + 1)
    testsets = [Testset(labels=labels, name="gen-0")]
    for g in range(1, generations):
        testsets.append(
            Testset(labels=rng.integers(0, 2, size=plan.pool_size), name=f"gen-{g}")
        )
    return testsets, pair.old_model, models


def make_service(script, testsets, baseline, transport=None):
    service = CIService(script, testsets[0], baseline, transport=transport)
    service.install_testset_pool(TestsetPool(testsets[1:]))
    return service


def test_process_batch_spans_generations_without_skipping():
    script = make_script()
    testsets, baseline, models = make_world(script)
    service = make_service(script, testsets, baseline)
    builds = service.process_batch(models)

    assert len(builds) == 10
    assert all(build.ran for build in builds)  # nothing skipped
    assert [build.generation for build in builds] == [1] * 4 + [2] * 4 + [3] * 2
    assert [build.commit.generation for build in builds] == [
        build.generation for build in builds
    ]
    assert all(
        build.commit.status is not CommitStatus.SKIPPED for build in builds
    )
    assert len(service.engine.rotations) == 2


def test_per_commit_webhook_rotates_too():
    script = make_script()
    testsets, baseline, models = make_world(script, commits=6)
    service = make_service(script, testsets, baseline)
    for model in models:
        service.repository.commit(model)
    builds = service.builds
    assert [build.generation for build in builds] == [1, 1, 1, 1, 2, 2]
    assert all(build.ran for build in builds)


def test_pool_and_manual_rotation_produce_identical_statuses():
    script = make_script()
    testsets, baseline, models = make_world(script)

    manual = CIService(script, testsets[0], baseline)
    statuses_manual = []
    next_generation = 1
    for model in models:
        commit = manual.repository.commit(model)
        while commit.status is CommitStatus.SKIPPED:
            manual.install_testset(testsets[next_generation])
            next_generation += 1
            commit = manual.repository.commit(model)
        statuses_manual.append(commit.status)

    pooled = make_service(script, testsets, baseline)
    builds = pooled.process_batch(models)
    assert [build.commit.status for build in builds] == statuses_manual


def test_dry_pool_skips_builds_with_reason():
    script = make_script()
    testsets, baseline, models = make_world(script, commits=10, generations=2)
    service = make_service(script, testsets, baseline)
    builds = service.process_batch(models)
    assert len(builds) == 10
    ran = [build for build in builds if build.ran]
    skipped = [build for build in builds if not build.ran]
    assert len(ran) == 8 and len(skipped) == 2
    assert all(build.generation is None for build in skipped)
    assert all("released" in build.skipped_reason for build in skipped)
    assert all(
        build.commit.status is CommitStatus.SKIPPED for build in skipped
    )


def test_undersized_pool_generation_skips_instead_of_desyncing():
    script = make_script()
    testsets, baseline, models = make_world(script, commits=6, generations=1)
    service = CIService(script, testsets[0], baseline)
    runt = Testset(labels=np.zeros(4, dtype=int), name="runt")
    service.install_testset_pool(TestsetPool([runt]))
    builds = service.process_batch(models)
    # every commit has a build record: 4 evaluated, 2 skipped with the
    # rotation failure as the reason — builds never desync from results
    assert len(builds) == 6
    assert [build.ran for build in builds] == [True] * 4 + [False] * 2
    assert all("runt" in build.skipped_reason for build in builds if not build.ran)
    assert len(service.builds) == len(service.engine.results) + 2


def test_rotation_notices_flow_through_transport():
    script = make_script()
    testsets, baseline, models = make_world(script)
    transport = InMemoryEmailTransport()
    service = make_service(script, testsets, baseline, transport=transport)
    service.process_batch(models)
    rotation_mail = [
        m for m in transport.messages if "generation rotated" in m.subject
    ]
    assert len(rotation_mail) == 2
    assert "generation 2" in rotation_mail[0].body
    assert "generation 3" in rotation_mail[1].body


def test_alarm_mail_still_precedes_rotation_mail():
    """Retirement alarm (budget spent) then rotation, in delivery order."""
    script = make_script()
    testsets, baseline, models = make_world(script, commits=5)
    transport = InMemoryEmailTransport()
    service = make_service(script, testsets, baseline, transport=transport)
    service.process_batch(models)
    subjects = [m.subject for m in transport.messages]
    alarm_index = subjects.index("[ease.ml/ci] new testset required")
    rotation_index = subjects.index("[ease.ml/ci] testset generation rotated")
    assert alarm_index < rotation_index


def test_summary_renders_for_pooled_builds():
    script = make_script()
    testsets, baseline, models = make_world(script, commits=6)
    service = make_service(script, testsets, baseline)
    service.process_batch(models)
    text = service.summary()
    assert text.count("#") >= 6
