"""Unit and integration tests for the snapshot/journal persistence layer."""

import datetime
import json
import pickle

import numpy as np
import pytest

from repro.ci.notifications import InMemoryEmailTransport
from repro.ci.persistence import (
    BUILD_RECORDED,
    COMMIT_RECEIVED,
    RESTORE,
    SNAPSHOT,
    SNAPSHOT_FORMAT_VERSION,
    EventJournal,
    SnapshotStore,
    decode_model,
    encode_model,
    open_state_dir,
)
from repro.ci.repository import ModelRepository
from repro.ci.service import CIService
from repro.core.estimators.api import SampleSizeEstimator
from repro.core.script.config import CIScript
from repro.core.testset import Testset
from repro.exceptions import PersistenceError
from repro.ml.models.base import FixedPredictionModel
from repro.ml.models.simulated import (
    ModelPairSpec,
    evolve_predictions,
    simulate_model_pair,
)

CONDITION = "d < 0.25 +/- 0.1 /\\ n - o > 0.05 +/- 0.1"


def make_script(adaptivity="full", steps=4, mode="fp-free"):
    return CIScript.from_dict(
        {
            "script": "./test_model.py",
            "condition": CONDITION,
            "reliability": 0.999,
            "mode": mode,
            "adaptivity": adaptivity,
            "steps": steps,
        }
    )


def make_world(script, commits=6, promote_at=(2,), seed=0):
    plan = SampleSizeEstimator().plan(
        script.condition,
        delta=script.delta,
        adaptivity=script.adaptivity,
        steps=script.steps,
        known_variance_bound=script.variance_bound,
    )
    pair = simulate_model_pair(
        ModelPairSpec(old_accuracy=0.80, new_accuracy=0.80, difference=0.0),
        n_examples=plan.pool_size,
        seed=seed,
    )
    labels = pair.labels
    models, current = [], pair.old_model.predictions
    for i in range(commits):
        target = 0.88 if i in promote_at else 0.81
        predictions = evolve_predictions(
            current, labels, target_accuracy=target, difference=0.12, seed=100 + i
        )
        models.append(FixedPredictionModel(predictions, name=f"m{i}"))
        if i in promote_at:
            current = predictions
    return Testset(labels=labels, name="gen-0"), pair.old_model, models


def make_service(script, testset, baseline, transport=None):
    return CIService(
        script,
        testset,
        baseline,
        transport=transport,
        repository=ModelRepository(nonce="fixed-nonce"),
    )


@pytest.fixture(scope="module")
def world():
    script = make_script()
    testset, baseline, models = make_world(script)
    return script, testset, baseline, models


# ---------------------------------------------------------------------------
# EventJournal
# ---------------------------------------------------------------------------

class TestEventJournal:
    def test_append_assigns_monotonic_sequences(self, tmp_path):
        journal = EventJournal(tmp_path / "journal.jsonl")
        a = journal.append(SNAPSHOT, {"snapshot_sequence": 1})
        b = journal.append(SNAPSHOT, {"snapshot_sequence": 2})
        assert (a.sequence, b.sequence) == (1, 2)
        assert journal.last_sequence == 2

    def test_records_round_trip(self, tmp_path):
        journal = EventJournal(tmp_path / "journal.jsonl")
        journal.append(COMMIT_RECEIVED, {"sequence": 0, "author": "dev"})
        records = list(journal.records())
        assert len(records) == 1
        assert records[0].type == COMMIT_RECEIVED
        assert records[0].payload == {"sequence": 0, "author": "dev"}

    def test_reopen_resumes_sequence(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        EventJournal(path).append(SNAPSHOT, {})
        journal = EventJournal(path)
        assert journal.last_sequence == 1
        assert journal.append(SNAPSHOT, {}).sequence == 2

    def test_unknown_event_type_rejected(self, tmp_path):
        journal = EventJournal(tmp_path / "journal.jsonl")
        with pytest.raises(PersistenceError, match="unknown journal event type"):
            journal.append("made-up", {})

    def test_torn_trailing_line_is_dropped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = EventJournal(path)
        journal.append(SNAPSHOT, {"snapshot_sequence": 1})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"sequence": 2, "type": "snapsh')  # crash mid-append
        reopened = EventJournal(path)
        assert [r.sequence for r in reopened.records()] == [1]
        # the next append continues after the last *intact* record
        assert reopened.append(SNAPSHOT, {}).sequence == 2

    def test_torn_middle_line_raises(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = EventJournal(path)
        journal.append(SNAPSHOT, {})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("garbage-not-json\n")
            handle.write(
                json.dumps(
                    {
                        "sequence": 2,
                        "type": SNAPSHOT,
                        "recorded_at": "2026-01-01T00:00:00",
                        "payload": {},
                    }
                )
                + "\n"
            )
        with pytest.raises(PersistenceError, match="corrupt"):
            list(EventJournal(path).records())

    def test_append_after_torn_tail_heals_the_file(self, tmp_path):
        # Regression: append() opens in append mode, so torn trailing
        # bytes left in the file would merge with the next record (losing
        # it) and then become non-trailing corruption that bricks the
        # journal.  Opening must truncate the torn tail first.
        path = tmp_path / "journal.jsonl"
        EventJournal(path).append(SNAPSHOT, {})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"sequence": 2, "type": "snapsh')  # crash mid-append
        reopened = EventJournal(path)
        assert reopened.append(SNAPSHOT, {}).sequence == 2
        reopened.append(SNAPSHOT, {})
        assert [r.sequence for r in EventJournal(path).records()] == [1, 2, 3]

    def test_injectable_clock_stamps_iso8601(self, tmp_path):
        stamp = datetime.datetime(2026, 7, 30, 1, 2, 3, tzinfo=datetime.timezone.utc)
        journal = EventJournal(tmp_path / "journal.jsonl", clock=lambda: stamp)
        record = journal.append(SNAPSHOT, {})
        assert record.recorded_at == "2026-07-30T01:02:03+00:00"

    def test_records_of_filters(self, tmp_path):
        journal = EventJournal(tmp_path / "journal.jsonl")
        journal.append(SNAPSHOT, {})
        journal.append(COMMIT_RECEIVED, {"sequence": 0})
        assert [r.type for r in journal.records_of(COMMIT_RECEIVED)] == [
            COMMIT_RECEIVED
        ]


class TestModelEncoding:
    def test_round_trip(self):
        model = FixedPredictionModel(np.array([1, 0, 1]), name="m")
        clone = decode_model(encode_model(model))
        assert clone.name == "m"
        np.testing.assert_array_equal(clone.predictions, model.predictions)

    def test_payload_is_json_safe(self):
        payload = encode_model(FixedPredictionModel(np.array([1])))
        assert json.loads(json.dumps(payload)) == payload


# ---------------------------------------------------------------------------
# SnapshotStore
# ---------------------------------------------------------------------------

class TestSnapshotStore:
    def test_save_load_round_trip(self, tmp_path):
        store = SnapshotStore(tmp_path / "snaps")
        info = store.save({"x": 1}, journal_sequence=7)
        payload, loaded_info = store.load_latest()
        assert payload == {"x": 1}
        assert loaded_info == info
        assert info.journal_sequence == 7
        assert info.format_version == SNAPSHOT_FORMAT_VERSION

    def test_sequences_increment(self, tmp_path):
        store = SnapshotStore(tmp_path / "snaps")
        assert store.save("a").sequence == 1
        assert store.save("b").sequence == 2
        assert store.sequences() == [1, 2]
        assert store.load(1)[0] == "a"
        assert store.load_latest()[0] == "b"

    def test_empty_store(self, tmp_path):
        store = SnapshotStore(tmp_path / "snaps")
        assert store.load_latest() is None
        assert store.latest_info() is None
        assert store.latest_sequence == 0

    def test_missing_sequence_raises(self, tmp_path):
        store = SnapshotStore(tmp_path / "snaps")
        with pytest.raises(PersistenceError, match="not found"):
            store.load(3)

    def test_no_temp_files_left_behind(self, tmp_path):
        store = SnapshotStore(tmp_path / "snaps")
        store.save({"x": 1})
        assert [p.name for p in (tmp_path / "snaps").iterdir()] == [
            "snapshot-000001.pkl"
        ]

    def test_unsupported_format_version_raises(self, tmp_path):
        store = SnapshotStore(tmp_path / "snaps")
        info = store.save({"x": 1})
        envelope = pickle.loads(info.path.read_bytes())
        envelope["format_version"] = 999
        info.path.write_bytes(pickle.dumps(envelope))
        with pytest.raises(PersistenceError, match="format version"):
            store.load_latest()

    def test_prune_keeps_newest(self, tmp_path):
        store = SnapshotStore(tmp_path / "snaps")
        for value in "abc":
            store.save(value)
        removed = store.prune(keep=1)
        assert len(removed) == 2
        assert store.sequences() == [3]
        assert store.load_latest()[0] == "c"

    def test_prune_validates_keep(self, tmp_path):
        with pytest.raises(PersistenceError, match="keep"):
            SnapshotStore(tmp_path / "snaps").prune(keep=0)


class TestOpenStateDir:
    def test_creates_layout(self, tmp_path):
        store, journal = open_state_dir(tmp_path / "state")
        assert store.directory == tmp_path / "state" / "snapshots"
        assert journal.path == tmp_path / "state" / "journal.jsonl"

    def test_missing_dir_with_create_false_raises(self, tmp_path):
        with pytest.raises(PersistenceError, match="does not exist"):
            open_state_dir(tmp_path / "nope", create=False)


# ---------------------------------------------------------------------------
# Service snapshot / journal / restore
# ---------------------------------------------------------------------------

class TestServicePersistence:
    def test_snapshot_requires_store(self, world):
        script, testset, baseline, _ = world
        service = make_service(script, testset, baseline)
        with pytest.raises(PersistenceError, match="no snapshot store"):
            service.snapshot()

    def test_persist_to_takes_initial_snapshot(self, world, tmp_path):
        script, testset, baseline, _ = world
        service = make_service(script, testset, baseline)
        info = service.persist_to(tmp_path / "state")
        assert info.sequence == 1
        restored = CIService.resume(tmp_path / "state")
        assert restored.builds == []
        assert restored.engine.commits_evaluated == 0
        assert restored.plan == service.plan

    def test_webhook_journals_commit_before_build(self, world, tmp_path):
        script, testset, baseline, models = world
        service = make_service(script, testset, baseline)
        service.persist_to(tmp_path / "state")
        service.repository.commit(models[0], message="m0")
        types = [r.type for r in service._journal.records()]
        assert types.index(COMMIT_RECEIVED) < types.index(BUILD_RECORDED)

    def test_restore_without_snapshot_raises(self, tmp_path):
        store, journal = open_state_dir(tmp_path / "state")
        with pytest.raises(PersistenceError, match="no snapshot"):
            CIService.restore(store, journal)

    def test_restore_records_event(self, world, tmp_path):
        script, testset, baseline, models = world
        service = make_service(script, testset, baseline)
        service.persist_to(tmp_path / "state")
        service.repository.commit(models[0], message="m0")
        restored = CIService.resume(tmp_path / "state")
        restores = list(restored._journal.records_of(RESTORE))
        assert len(restores) == 1
        assert restores[0].payload["replayed_commits"] == 1

    def test_ops_style_restore_does_not_mutate_journal(self, world, tmp_path):
        script, testset, baseline, models = world
        service = make_service(script, testset, baseline)
        service.persist_to(tmp_path / "state")
        service.repository.commit(models[0], message="m0")
        before = service._journal.last_sequence
        CIService.resume(tmp_path / "state", record=False)
        assert EventJournal(tmp_path / "state" / "journal.jsonl").last_sequence == before

    def test_double_restore_replays_once(self, world, tmp_path):
        script, testset, baseline, models = world
        service = make_service(script, testset, baseline)
        service.persist_to(tmp_path / "state")
        for model in models[:3]:
            service.repository.commit(model, message=model.name)
        first = CIService.resume(tmp_path / "state")
        second = CIService.resume(tmp_path / "state")
        assert first.engine.commits_evaluated == 3
        assert second.engine.commits_evaluated == 3
        assert [b.result for b in first.builds] == [b.result for b in second.builds]
        # replayed evaluations spend exactly the original budget
        assert second.engine.manager.uses == service.engine.manager.uses

    def test_replay_gap_raises(self, world, tmp_path):
        script, testset, baseline, models = world
        service = make_service(script, testset, baseline)
        service.persist_to(tmp_path / "state")
        journal = service._journal
        # a journaled commit two sequences ahead of the snapshot head
        journal.append(
            COMMIT_RECEIVED,
            {"sequence": 5, "author": "dev", "message": "hole",
             "model_pickle": encode_model(models[0])},
        )
        with pytest.raises(PersistenceError, match="does not line up"):
            CIService.resume(tmp_path / "state")

    def test_resume_after_torn_tail_does_not_brick_the_state_dir(
        self, world, tmp_path
    ):
        # A crash mid-append leaves a torn trailing journal line; the
        # resume that recovers from it appends a RESTORE record.  That
        # append must not merge into the torn bytes — the state dir has
        # to survive arbitrarily many crash/resume cycles.
        script, testset, baseline, models = world
        service = make_service(script, testset, baseline)
        service.persist_to(tmp_path / "state")
        service.repository.commit(models[0], message="m0")
        journal_path = tmp_path / "state" / "journal.jsonl"
        with open(journal_path, "a", encoding="utf-8") as handle:
            handle.write('{"sequence": 99, "type": "com')  # crash mid-append
        restored = CIService.resume(tmp_path / "state")
        assert len(restored.builds) == 1
        records = list(EventJournal(journal_path).records())
        assert records[-1].type == RESTORE
        again = CIService.resume(tmp_path / "state")
        assert len(again.builds) == 1
        again.repository.commit(models[1], message="m1")
        assert list(EventJournal(journal_path).records())  # still readable

    def test_torn_push_is_replayed(self, world, tmp_path):
        # Crash after journaling commit-received but before the build ran:
        # the restored service evaluates the commit as if never interrupted.
        script, testset, baseline, models = world
        reference = make_service(script, testset, baseline)
        reference.repository.commit(models[0], message="m0")

        service = make_service(script, testset, baseline)
        service.persist_to(tmp_path / "state")
        service._journal.append(
            COMMIT_RECEIVED,
            {
                "sequence": 0,
                "author": "developer",
                "message": "m0",
                "model_pickle": encode_model(models[0]),
            },
        )
        restored = CIService.resume(tmp_path / "state")
        assert len(restored.builds) == 1
        assert restored.builds[0].result == reference.builds[0].result
        assert restored.builds[0].commit.status is reference.builds[0].commit.status

    def test_replay_suppresses_notifications(self, world, tmp_path):
        script, testset, baseline, models = world
        transport = InMemoryEmailTransport()
        service = make_service(script, testset, baseline, transport=transport)
        service.persist_to(tmp_path / "state")
        for model in models[:2]:
            service.repository.commit(model, message=model.name)
        fresh = InMemoryEmailTransport()
        restored = CIService.resume(tmp_path / "state", transport=fresh)
        assert restored.engine.commits_evaluated == 2
        assert fresh.messages == []  # replay recovers state, not side effects
        # ...but the transport is live again: two more commits exhaust the
        # steps=4 budget, and the alarm mail lands in the new transport.
        restored.repository.commit(models[2], message="m2")
        restored.repository.commit(models[3], message="m3")
        assert any("new testset required" in m.subject for m in fresh.messages)

    def test_auto_snapshot_cadence(self, world, tmp_path):
        script, testset, baseline, models = world
        service = make_service(script, testset, baseline)
        service.persist_to(tmp_path / "state", snapshot_every=2)
        for model in models[:4]:
            service.repository.commit(model, message=model.name)
        # initial snapshot + one per two builds
        assert service._store.sequences() == [1, 2, 3]
        snapshots = list(service._journal.records_of(SNAPSHOT))
        assert len(snapshots) == 3

    def test_snapshot_every_validated(self, world, tmp_path):
        script, testset, baseline, _ = world
        service = make_service(script, testset, baseline)
        with pytest.raises(PersistenceError, match="snapshot_every"):
            service.persist_to(tmp_path / "state", snapshot_every=0)

    def test_unsupported_service_format_raises(self, world):
        script, testset, baseline, _ = world
        service = make_service(script, testset, baseline)
        state = service.export_state()
        state["format"] = "repro.ci-service/v999"
        with pytest.raises(PersistenceError, match="unsupported service state"):
            CIService.from_state(state)

    def test_service_pickle_round_trip(self, world):
        script, testset, baseline, models = world
        service = make_service(script, testset, baseline)
        for model in models[:2]:
            service.repository.commit(model, message=model.name)
        clone = pickle.loads(pickle.dumps(service))
        assert [b.result for b in clone.builds] == [b.result for b in service.builds]
        # the clone's webhook drives the clone, not the original
        clone.repository.commit(models[2], message="m2")
        assert len(clone.builds) == 3
        assert len(service.builds) == 2
        assert clone.builds[2].result == (
            service.repository.commit(models[2], message="m2")
            and service.builds[2].result
        )


class TestColdProcessRestore:
    """Restore into a cold interpreter: caches cleared, plans re-derived.

    Cached plan objects are never serialized — snapshots carry a warm
    manifest of plan *requests* instead, and
    :func:`repro.stats.cache.warm_after_restore` replays them on restore.
    Clearing every process-wide cache before restoring therefore
    simulates a genuinely fresh interpreter, and the re-derived plan must
    come back bit-identical (plans are pure functions of condition, spec
    and estimator config).
    """

    def test_engine_pickle_round_trip_survives_cache_clear(self, world):
        from repro.core.engine import CIEngine
        from repro.stats.cache import clear_all_caches

        script, testset, baseline, models = world
        engine = CIEngine(script, testset, baseline)
        reference_results = [engine.submit(model) for model in models[:2]]
        payload = pickle.dumps(engine)

        clear_all_caches()
        clone = pickle.loads(payload)
        assert clone.plan == engine.plan
        assert clone.manager.uses == engine.manager.uses
        # the restored engine continues exactly where the original was
        assert clone.submit(models[2]) == engine.submit(models[2])
        assert clone.results[:2] == reference_results

    def test_snapshot_store_round_trip_rewarms_plan_cache(self, world, tmp_path):
        from repro.core.engine import CIEngine
        from repro.stats.cache import clear_all_caches

        script, testset, baseline, models = world
        engine = CIEngine(script, testset, baseline)
        engine.submit(models[0])
        store = SnapshotStore(tmp_path / "snaps")
        store.save(engine.export_state())

        clear_all_caches()
        assert SampleSizeEstimator.plan_cache_info().currsize == 0
        state, _ = store.load_latest()
        restored = CIEngine.from_state(state)

        # the warm manifest re-derived the plan into the shared cache...
        info = SampleSizeEstimator.plan_cache_info()
        assert info.currsize >= 1
        # ...bit-identically (dataclass equality covers every field)...
        assert restored.plan == engine.plan
        # ...and a fresh estimator's identical request is served warm.
        hits_before = SampleSizeEstimator.plan_cache_info().hits
        replanned = SampleSizeEstimator().plan(
            script.condition,
            delta=script.delta,
            adaptivity=script.adaptivity,
            steps=script.steps,
            known_variance_bound=script.variance_bound,
        )
        assert SampleSizeEstimator.plan_cache_info().hits == hits_before + 1
        assert replanned is restored.plan

    def test_service_snapshot_restore_survives_cache_clear(self, world, tmp_path):
        from repro.stats.cache import clear_all_caches

        script, testset, baseline, models = world
        reference = make_service(script, testset, baseline)
        service = make_service(script, testset, baseline)
        service.persist_to(tmp_path / "state")
        for model in models[:3]:
            reference.repository.commit(model, message=model.name)
            service.repository.commit(model, message=model.name)

        clear_all_caches()
        restored = CIService.resume(tmp_path / "state")
        assert restored.plan == service.plan
        assert [b.result for b in restored.builds] == [
            b.result for b in reference.builds
        ]
        restored.repository.commit(models[3], message="m3")
        reference.repository.commit(models[3], message="m3")
        assert restored.builds[-1].result == reference.builds[-1].result


class TestOperationsReport:
    def test_fields_without_persistence(self, world):
        script, testset, baseline, models = world
        service = make_service(script, testset, baseline)
        service.repository.commit(models[0], message="m0")
        report = service.operations()
        assert report.builds_total == 1
        assert report.persistence_attached is False
        assert report.journal_lag is None
        assert report.pool_attached is False
        assert report.generation_budget == script.steps
        assert report.generation_uses == 1
        assert report.generation_remaining == script.steps - 1
        assert "operations report" in report.describe()

    def test_journal_lag_counts_events_since_snapshot(self, world, tmp_path):
        script, testset, baseline, models = world
        service = make_service(script, testset, baseline)
        service.persist_to(tmp_path / "state")
        assert service.operations().journal_lag == 1  # the snapshot marker
        service.repository.commit(models[0], message="m0")
        lag_after = service.operations().journal_lag
        assert lag_after > 1
        service.snapshot()
        assert service.operations().journal_lag == 1  # fresh marker only

    def test_describe_with_store_but_no_journal(self, world, tmp_path):
        script, testset, baseline, _ = world
        service = make_service(script, testset, baseline)
        service.attach_persistence(SnapshotStore(tmp_path / "snaps"))
        service.snapshot()
        report = service.operations()
        assert report.journal_lag is None
        assert "(no journal attached)" in report.describe()
        assert "None" not in report.describe()

    def test_latest_info_is_served_from_metadata_cache(self, world, tmp_path):
        # The operations surface reads snapshot metadata per report; for
        # snapshots this process saved, that must not re-unpickle the
        # whole engine state from disk.
        script, testset, baseline, _ = world
        service = make_service(script, testset, baseline)
        info = service.persist_to(tmp_path / "state")
        store = service._store
        info.path.write_bytes(b"unreadable")  # a disk read would explode
        assert store.latest_info() == info
        assert service.operations().snapshot_sequence == info.sequence

    def test_report_is_jsonable(self, world):
        from repro.utils.serialization import dumps, loads

        script, testset, baseline, _ = world
        service = make_service(script, testset, baseline)
        payload = loads(dumps(service.operations()))
        assert payload["repository"] == "ml-repo"
        assert "planning_cache" in payload
