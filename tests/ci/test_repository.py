"""Tests for the model repository and commits."""

import pytest

from repro.ci.commit import Commit, CommitStatus
from repro.ci.repository import ModelRepository
from repro.exceptions import EngineStateError


class Dummy:
    def predict(self, features):  # pragma: no cover - never called here
        return features


class TestCommit:
    def test_commit_id_stable(self):
        a = Commit(sequence=0, model=Dummy(), message="m", author="a")
        b = Commit(sequence=0, model=Dummy(), message="m", author="a")
        assert a.commit_id == b.commit_id

    def test_commit_id_varies_with_sequence(self):
        a = Commit(sequence=0, model=Dummy(), message="m")
        b = Commit(sequence=1, model=Dummy(), message="m")
        assert a.commit_id != b.commit_id

    def test_initial_status_pending(self):
        assert Commit(sequence=0, model=Dummy()).status is CommitStatus.PENDING

    def test_commit_id_varies_with_repo_nonce(self):
        # Regression: the id once hashed only sequence:author:message, so
        # two repositories minted identical shas for their first commits.
        a = Commit(sequence=0, model=Dummy(), message="m", repo_nonce="repo-a")
        b = Commit(sequence=0, model=Dummy(), message="m", repo_nonce="repo-b")
        assert a.commit_id != b.commit_id

    def test_commit_id_varies_with_parent(self):
        a = Commit(sequence=1, model=Dummy(), message="m", parent_sha="aaaa")
        b = Commit(sequence=1, model=Dummy(), message="m", parent_sha="bbbb")
        assert a.commit_id != b.commit_id

    def test_str_contains_id(self):
        commit = Commit(sequence=0, model=Dummy())
        assert commit.commit_id in str(commit)


class TestRepository:
    def test_commit_appends(self):
        repo = ModelRepository()
        repo.commit(Dummy(), message="first")
        repo.commit(Dummy(), message="second")
        assert len(repo) == 2
        assert repo.head.message == "second"

    def test_sequences_assigned(self):
        repo = ModelRepository()
        commits = [repo.commit(Dummy()) for _ in range(3)]
        assert [c.sequence for c in commits] == [0, 1, 2]

    def test_observer_called_per_commit(self):
        repo = ModelRepository()
        seen = []
        repo.on_commit(lambda c: seen.append(c.sequence))
        repo.commit(Dummy())
        repo.commit(Dummy())
        assert seen == [0, 1]

    def test_head_of_empty_raises(self):
        with pytest.raises(EngineStateError, match="no commits"):
            _ = ModelRepository().head

    def test_iteration_in_order(self):
        repo = ModelRepository()
        for i in range(3):
            repo.commit(Dummy(), message=str(i))
        assert [c.message for c in repo] == ["0", "1", "2"]

    def test_indexing(self):
        repo = ModelRepository()
        commit = repo.commit(Dummy())
        assert repo[0] is commit

    def test_log_newest_first(self):
        repo = ModelRepository()
        repo.commit(Dummy(), message="old")
        repo.commit(Dummy(), message="new")
        lines = repo.log().splitlines()
        assert "new" in lines[0] and "old" in lines[1]


class TestCommitShaCollisions:
    """Regression suite for the sequence:author:message collision."""

    def test_two_repositories_never_collide(self):
        repo_a, repo_b = ModelRepository(), ModelRepository()
        ids_a = [repo_a.commit(Dummy(), message="fix").commit_id for _ in range(3)]
        ids_b = [repo_b.commit(Dummy(), message="fix").commit_id for _ in range(3)]
        assert not set(ids_a) & set(ids_b)

    def test_same_name_distinct_nonce(self):
        # Name alone is not identity: a restored-then-diverged copy gets a
        # fresh nonce and mints non-colliding ids from then on.
        repo_a = ModelRepository(name="ml-repo")
        repo_b = ModelRepository(name="ml-repo")
        assert repo_a.nonce != repo_b.nonce
        assert (
            repo_a.commit(Dummy(), message="m").commit_id
            != repo_b.commit(Dummy(), message="m").commit_id
        )

    def test_explicit_nonce_reproducible(self):
        repo_a = ModelRepository(nonce="seed")
        repo_b = ModelRepository(nonce="seed")
        assert (
            repo_a.commit(Dummy(), message="m").commit_id
            == repo_b.commit(Dummy(), message="m").commit_id
        )

    def test_parent_chaining_diverges_history(self):
        # Same nonce, histories diverge at commit 1 -> every later id
        # diverges too even when sequence/author/message realign.
        repo_a = ModelRepository(nonce="seed")
        repo_b = ModelRepository(nonce="seed")
        repo_a.commit(Dummy(), message="root")
        repo_b.commit(Dummy(), message="root")
        repo_a.commit(Dummy(), message="left")
        repo_b.commit(Dummy(), message="right")
        a_tail = repo_a.commit(Dummy(), message="same-again")
        b_tail = repo_b.commit(Dummy(), message="same-again")
        assert a_tail.commit_id != b_tail.commit_id

    def test_commits_chain_to_head(self):
        repo = ModelRepository(nonce="seed")
        first = repo.commit(Dummy(), message="a")
        second = repo.commit(Dummy(), message="b")
        assert first.parent_sha is None
        assert second.parent_sha == first.commit_id
        assert second.repo_nonce == "seed"

    def test_commit_many_chains_too(self):
        repo = ModelRepository(nonce="seed")
        commits = repo.commit_many([Dummy(), Dummy()], messages=["a", "b"])
        assert commits[1].parent_sha == commits[0].commit_id
