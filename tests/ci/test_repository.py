"""Tests for the model repository and commits."""

import pytest

from repro.ci.commit import Commit, CommitStatus
from repro.ci.repository import ModelRepository
from repro.exceptions import EngineStateError


class Dummy:
    def predict(self, features):  # pragma: no cover - never called here
        return features


class TestCommit:
    def test_commit_id_stable(self):
        a = Commit(sequence=0, model=Dummy(), message="m", author="a")
        b = Commit(sequence=0, model=Dummy(), message="m", author="a")
        assert a.commit_id == b.commit_id

    def test_commit_id_varies_with_sequence(self):
        a = Commit(sequence=0, model=Dummy(), message="m")
        b = Commit(sequence=1, model=Dummy(), message="m")
        assert a.commit_id != b.commit_id

    def test_initial_status_pending(self):
        assert Commit(sequence=0, model=Dummy()).status is CommitStatus.PENDING

    def test_str_contains_id(self):
        commit = Commit(sequence=0, model=Dummy())
        assert commit.commit_id in str(commit)


class TestRepository:
    def test_commit_appends(self):
        repo = ModelRepository()
        repo.commit(Dummy(), message="first")
        repo.commit(Dummy(), message="second")
        assert len(repo) == 2
        assert repo.head.message == "second"

    def test_sequences_assigned(self):
        repo = ModelRepository()
        commits = [repo.commit(Dummy()) for _ in range(3)]
        assert [c.sequence for c in commits] == [0, 1, 2]

    def test_observer_called_per_commit(self):
        repo = ModelRepository()
        seen = []
        repo.on_commit(lambda c: seen.append(c.sequence))
        repo.commit(Dummy())
        repo.commit(Dummy())
        assert seen == [0, 1]

    def test_head_of_empty_raises(self):
        with pytest.raises(EngineStateError, match="no commits"):
            _ = ModelRepository().head

    def test_iteration_in_order(self):
        repo = ModelRepository()
        for i in range(3):
            repo.commit(Dummy(), message=str(i))
        assert [c.message for c in repo] == ["0", "1", "2"]

    def test_indexing(self):
        repo = ModelRepository()
        commit = repo.commit(Dummy())
        assert repo[0] is commit

    def test_log_newest_first(self):
        repo = ModelRepository()
        repo.commit(Dummy(), message="old")
        repo.commit(Dummy(), message="new")
        lines = repo.log().splitlines()
        assert "new" in lines[0] and "old" in lines[1]
