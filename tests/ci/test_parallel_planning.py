"""Parallel-planned services: worker count never changes CI outcomes.

Satellite of the parallel-planning PR: a service configured with
``workers="auto"`` produces build records element-wise identical to the
serial service, and — the restart-parity angle — snapshots taken under
``workers="auto"`` restore element-wise identical on a serial-configured
process (plans are re-derived through the restore warmer, which always
derives serially, never through a pool).
"""

import pytest

from repro.ci.repository import ModelRepository
from repro.ci.service import CIService
from repro.core.testset import TestsetPool
from repro.stats.cache import clear_all_caches
from repro.stats.parallel import WORKERS_ENV

from tests.ci.test_restart_parity import (
    ADAPTIVITY_MODES,
    assert_parity,
    crash_copy,
    finish_queue,
    make_script,
    make_service,
    make_world,
)


def make_parallel_service(script, testsets, baseline):
    service = CIService(
        script,
        testsets[0],
        baseline,
        repository=ModelRepository(nonce="parity-nonce"),
        workers="auto",
    )
    service.install_testset_pool(TestsetPool(testsets[1:]))
    return service


@pytest.mark.parametrize("adaptivity", ADAPTIVITY_MODES)
def test_parallel_service_matches_serial(adaptivity):
    script = make_script(adaptivity)
    testsets, baseline, models = make_world(script)
    serial = make_service(script, testsets, baseline)
    parallel = make_parallel_service(script, testsets, baseline)
    for model in models:
        serial.repository.commit(model, message=model.name)
        parallel.repository.commit(model, message=model.name)
    assert_parity(serial, parallel)
    assert parallel.engine.estimator.workers == "auto"


def test_cold_two_worker_service_matches_serial():
    # "auto" degrades to serial on single-CPU hosts, so force a real
    # pool: the service's construction-time plan is derived cold in a
    # worker process and must still match the serial service exactly.
    script = make_script("full")
    testsets, baseline, models = make_world(script)
    serial = make_service(script, testsets, baseline)
    clear_all_caches()
    parallel = CIService(
        script,
        testsets[0],
        baseline,
        repository=ModelRepository(nonce="parity-nonce"),
        workers=2,
    )
    parallel.install_testset_pool(TestsetPool(testsets[1:]))
    for model in models:
        serial.repository.commit(model, message=model.name)
        parallel.repository.commit(model, message=model.name)
    assert_parity(serial, parallel)


def test_auto_snapshot_restores_identically_on_a_serial_process(
    tmp_path, monkeypatch
):
    monkeypatch.delenv(WORKERS_ENV, raising=False)
    script = make_script("full")
    testsets, baseline, models = make_world(script)
    reference = make_service(script, testsets, baseline)  # serial, uninterrupted
    for model in models:
        reference.repository.commit(model, message=model.name)

    persisted = make_parallel_service(script, testsets, baseline)
    persisted.persist_to(tmp_path / "state")
    for model in models:
        persisted.repository.commit(model, message=model.name)
    assert_parity(reference, persisted)

    total = persisted._journal.last_sequence
    for boundary in sorted({0, 1, total // 2, total - 1, total}):
        crash_dir = tmp_path / f"crash-{boundary:03d}"
        crash_copy(tmp_path / "state", crash_dir, boundary)
        # The restoring process is serial-configured: cold caches, no
        # workers env.  The restore warmer re-derives the plan serially
        # even though the snapshotted estimator carried workers="auto".
        clear_all_caches()
        restored = CIService.resume(crash_dir)
        finish_queue(restored, models)
        assert_parity(reference, restored)
