"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestPlanCommand:
    def test_basic_plan(self, capsys):
        code = main(
            [
                "plan",
                "--condition", "n > 0.8 +/- 0.05",
                "--reliability", "0.9999",
                "--adaptivity", "full",
                "--steps", "32",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "6,279" in out

    def test_pattern2_plan(self, capsys):
        code = main(
            [
                "plan",
                "--condition", "n - o > 0.02 +/- 0.02",
                "--reliability", "0.998",
                "--steps", "7",
                "--variance-bound", "0.1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "4,713" in out
        assert "pattern 2" in out

    def test_baseline_flag_disables_optimizations(self, capsys):
        args = [
            "plan",
            "--condition", "d < 0.1 +/- 0.01 /\\ n - o > 0.02 +/- 0.01",
            "--reliability", "0.9999",
            "--steps", "32",
        ]
        main(args)
        optimized = capsys.readouterr().out
        main(args + ["--baseline"])
        baseline = capsys.readouterr().out
        assert "bennett" in optimized and "bennett" not in baseline

    def test_delta_instead_of_reliability(self, capsys):
        code = main(
            ["plan", "--condition", "n > 0.8 +/- 0.05", "--delta", "0.0001"]
        )
        assert code == 0

    def test_invalid_condition_exits_2(self, capsys):
        code = main(
            ["plan", "--condition", "n >> 0.8", "--reliability", "0.99"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_reliability_and_delta_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "plan",
                    "--condition", "n > 0.8 +/- 0.05",
                    "--reliability", "0.99",
                    "--delta", "0.01",
                ]
            )


class TestValidateCommand:
    def test_valid_script(self, tmp_path, capsys):
        path = tmp_path / ".travis.yml"
        path.write_text(
            "ml:\n"
            "  - condition  : n - o > 0.02 +/- 0.02\n"
            "  - reliability: 0.998\n"
            "  - mode       : fp-free\n"
            "  - adaptivity : full\n"
            "  - steps      : 7\n"
        )
        code = main(["validate", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "script is valid" in out

    def test_invalid_script_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.yml"
        path.write_text("ml:\n  - condition: n >> 0.5\n")
        code = main(["validate", str(path)])
        assert code == 2

    def test_missing_file_exits_2(self, capsys):
        code = main(["validate", "/nonexistent/file.yml"])
        assert code == 2


class TestFigure2Command:
    def test_prints_table(self, capsys):
        code = main(["figure2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "404" in out and "156,956*" in out
