"""Tests for the command-line interface."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[1]


class TestPlanCommand:
    def test_basic_plan(self, capsys):
        code = main(
            [
                "plan",
                "--condition", "n > 0.8 +/- 0.05",
                "--reliability", "0.9999",
                "--adaptivity", "full",
                "--steps", "32",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "6,279" in out

    def test_pattern2_plan(self, capsys):
        code = main(
            [
                "plan",
                "--condition", "n - o > 0.02 +/- 0.02",
                "--reliability", "0.998",
                "--steps", "7",
                "--variance-bound", "0.1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "4,713" in out
        assert "pattern 2" in out

    def test_baseline_flag_disables_optimizations(self, capsys):
        args = [
            "plan",
            "--condition", "d < 0.1 +/- 0.01 /\\ n - o > 0.02 +/- 0.01",
            "--reliability", "0.9999",
            "--steps", "32",
        ]
        main(args)
        optimized = capsys.readouterr().out
        main(args + ["--baseline"])
        baseline = capsys.readouterr().out
        assert "bennett" in optimized and "bennett" not in baseline

    def test_delta_instead_of_reliability(self, capsys):
        code = main(
            ["plan", "--condition", "n > 0.8 +/- 0.05", "--delta", "0.0001"]
        )
        assert code == 0

    def test_invalid_condition_exits_2(self, capsys):
        code = main(
            ["plan", "--condition", "n >> 0.8", "--reliability", "0.99"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_plan_prints_cache_deltas(self, capsys):
        from repro.stats.cache import clear_all_caches

        clear_all_caches()
        code = main(
            ["plan", "--condition", "n > 0.8 +/- 0.05", "--delta", "0.0001"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "cache deltas (" in out  # worker count follows the env default
        assert "estimators.plan_cache" in out

    def test_plan_with_workers_prewarms_through_the_executor(self, capsys):
        from repro.stats.cache import clear_all_caches

        clear_all_caches()
        code = main(
            [
                "plan",
                "--condition", "n > 0.8 +/- 0.06",
                "--delta", "0.001",
                "--exact-binomial",
                "--workers", "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "cache deltas (2 worker process(es)):" in out
        assert "stats.tight_bounds.tight_sample_size" in out

    def test_plan_invalid_workers_exits_2(self, capsys):
        code = main(
            [
                "plan",
                "--condition", "n > 0.8 +/- 0.05",
                "--delta", "0.001",
                "--workers", "lots",
            ]
        )
        assert code == 2
        assert "workers" in capsys.readouterr().err

    def test_reliability_and_delta_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "plan",
                    "--condition", "n > 0.8 +/- 0.05",
                    "--reliability", "0.99",
                    "--delta", "0.01",
                ]
            )


class TestValidateCommand:
    def test_valid_script(self, tmp_path, capsys):
        path = tmp_path / ".travis.yml"
        path.write_text(
            "ml:\n"
            "  - condition  : n - o > 0.02 +/- 0.02\n"
            "  - reliability: 0.998\n"
            "  - mode       : fp-free\n"
            "  - adaptivity : full\n"
            "  - steps      : 7\n"
        )
        code = main(["validate", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "script is valid" in out

    def test_invalid_script_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.yml"
        path.write_text("ml:\n  - condition: n >> 0.5\n")
        code = main(["validate", str(path)])
        assert code == 2

    def test_missing_file_exits_2(self, capsys):
        code = main(["validate", "/nonexistent/file.yml"])
        assert code == 2


class TestFigure2Command:
    def test_prints_table(self, capsys):
        code = main(["figure2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "404" in out and "156,956*" in out


@pytest.fixture()
def state_dir(tmp_path):
    """A persisted CI service with one evaluated commit."""
    from repro.ci.repository import ModelRepository
    from repro.ci.service import CIService
    from repro.core.estimators.api import SampleSizeEstimator
    from repro.core.script.config import CIScript
    from repro.core.testset import Testset
    from repro.ml.models.simulated import ModelPairSpec, simulate_model_pair

    script = CIScript.from_dict(
        {
            "script": "./test_model.py",
            "condition": "d < 0.25 +/- 0.1 /\\ n - o > 0.05 +/- 0.1",
            "reliability": 0.999,
            "mode": "fp-free",
            "adaptivity": "full",
            "steps": 4,
        }
    )
    plan = SampleSizeEstimator().plan(
        script.condition,
        delta=script.delta,
        adaptivity=script.adaptivity,
        steps=script.steps,
        known_variance_bound=script.variance_bound,
    )
    pair = simulate_model_pair(
        ModelPairSpec(old_accuracy=0.80, new_accuracy=0.82, difference=0.1),
        n_examples=plan.pool_size,
        seed=0,
    )
    service = CIService(
        script,
        Testset(labels=pair.labels, name="gen-0"),
        pair.old_model,
        repository=ModelRepository(nonce="cli-nonce"),
    )
    directory = tmp_path / "state"
    service.persist_to(directory)
    service.repository.commit(pair.new_model, message="candidate")
    return directory


class TestOpsCommand:
    def test_prints_report_table(self, state_dir, capsys):
        code = main(["ops", str(state_dir)])
        out = capsys.readouterr().out
        assert code == 0
        assert "operations report" in out
        assert "durable state" in out
        assert "1 total, 1 ran" in out

    def test_json_output_is_machine_readable(self, state_dir, capsys):
        code = main(["ops", str(state_dir), "--json"])
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out)
        assert payload["builds_total"] == 1
        assert payload["commits_evaluated"] == 1
        assert payload["persistence_attached"] is True
        assert payload["journal_lag"] >= 1

    def test_inspection_does_not_mutate_journal(self, state_dir):
        from repro.ci.persistence import EventJournal

        journal = state_dir / "journal.jsonl"
        before = EventJournal(journal).last_sequence
        assert main(["ops", str(state_dir)]) == 0
        assert EventJournal(journal).last_sequence == before

    def test_missing_state_dir_exits_2(self, tmp_path, capsys):
        code = main(["ops", str(tmp_path / "nope")])
        assert code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_empty_state_dir_exits_2(self, tmp_path, capsys):
        empty = tmp_path / "state"
        empty.mkdir()
        code = main(["ops", str(empty)])
        assert code == 2
        assert "no snapshot" in capsys.readouterr().err


class TestOpsFsckExitCodes:
    def test_healthy_state_dir_exits_0(self, state_dir, capsys):
        code = main(["ops", str(state_dir), "--fsck"])
        out = capsys.readouterr().out
        assert code == 0
        assert "restore" in out and "snapshot #1" in out

    def test_healthy_json_is_parseable(self, state_dir, capsys):
        code = main(["ops", str(state_dir), "--fsck", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["restorable"] is True
        assert payload["journal"]["records"] >= 1

    def test_unrestorable_state_dir_exits_2(self, state_dir, capsys):
        for snapshot in (state_dir / "snapshots").glob("*"):
            snapshot.write_bytes(b"garbage")
        code = main(["ops", str(state_dir), "--fsck"])
        capsys.readouterr()
        assert code == 2

    def test_unrestorable_json_is_parseable(self, state_dir, capsys):
        for snapshot in (state_dir / "snapshots").glob("*"):
            snapshot.write_bytes(b"garbage")
        code = main(["ops", str(state_dir), "--fsck", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 2
        assert payload["restorable"] is False

    def test_fsck_is_read_only(self, state_dir):
        before = {
            path: path.read_bytes()
            for path in state_dir.rglob("*")
            if path.is_file()
        }
        assert main(["ops", str(state_dir), "--fsck"]) == 0
        after = {
            path: path.read_bytes()
            for path in state_dir.rglob("*")
            if path.is_file()
        }
        assert after == before


@pytest.fixture()
def fleet_root(tmp_path):
    """A two-tenant fleet with one processed build and one pending entry."""
    from repro.ci.repository import ModelRepository
    from repro.core.estimators.api import SampleSizeEstimator
    from repro.core.script.config import CIScript
    from repro.core.testset import Testset
    from repro.fleet import CIFleet
    from repro.ml.models.simulated import ModelPairSpec, simulate_model_pair

    script = CIScript.from_dict(
        {
            "script": "./test_model.py",
            "condition": "n - o > 0.05 +/- 0.1",
            "reliability": 0.99,
            "mode": "fp-free",
            "adaptivity": "full",
            "steps": 4,
        }
    )
    plan = SampleSizeEstimator().plan(
        script.condition,
        delta=script.delta,
        adaptivity=script.adaptivity,
        steps=script.steps,
        known_variance_bound=script.variance_bound,
    )
    pair = simulate_model_pair(
        ModelPairSpec(old_accuracy=0.80, new_accuracy=0.82, difference=0.1),
        n_examples=plan.pool_size,
        seed=0,
    )
    testset = Testset(labels=pair.labels, name="gen-0")
    root = tmp_path / "fleet"
    with CIFleet(root, sync=False) as fleet:
        for tenant_id in ("alpha", "beta"):
            fleet.register(
                tenant_id,
                script,
                testset,
                pair.old_model,
                repository=ModelRepository(nonce=f"cli-{tenant_id}"),
            )
        fleet.submit("alpha", pair.new_model, message="candidate")
        fleet.enqueue("beta", pair.new_model, message="queued")
    return root


class TestFleetCommand:
    def test_prints_fleet_table(self, fleet_root, capsys):
        code = main(["fleet", str(fleet_root)])
        out = capsys.readouterr().out
        assert code == 0
        assert "fleet report" in out
        assert "2 registered" in out
        assert "1 pending" in out
        assert "alpha" in out and "beta" in out

    def test_json_output_is_machine_readable(self, fleet_root, capsys):
        code = main(["fleet", str(fleet_root), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["tenants_registered"] == 2
        assert payload["pending_total"] == 1
        tenants = {t["tenant_id"]: t for t in payload["tenant_status"]}
        assert tenants["beta"]["pending"] == 1

    def test_report_does_not_mutate_tenant_state(self, fleet_root):
        before = {
            path: path.read_bytes()
            for path in fleet_root.rglob("*")
            if path.is_file()
        }
        assert main(["fleet", str(fleet_root)]) == 0
        after = {
            path: path.read_bytes()
            for path in fleet_root.rglob("*")
            if path.is_file()
        }
        assert after == before

    def test_single_tenant_report(self, fleet_root, capsys):
        code = main(["fleet", str(fleet_root), "--tenant", "alpha"])
        out = capsys.readouterr().out
        assert code == 0
        assert "operations report" in out
        assert "1 total, 1 ran" in out

    def test_unknown_tenant_exits_2(self, fleet_root, capsys):
        code = main(["fleet", str(fleet_root), "--tenant", "ghost"])
        assert code == 2
        assert "no tenant" in capsys.readouterr().err

    def test_fsck_healthy_exits_0(self, fleet_root, capsys):
        code = main(["fleet", str(fleet_root), "--fsck"])
        out = capsys.readouterr().out
        assert code == 0
        assert "HEALTHY" in out

    def test_fsck_damaged_exits_2_and_localizes(self, fleet_root, capsys):
        for snapshot in (fleet_root / "tenants" / "beta" / "snapshots").glob("*"):
            snapshot.write_bytes(b"garbage")
        code = main(["fleet", str(fleet_root), "--fsck"])
        out = capsys.readouterr().out
        assert code == 2
        assert "UNRESTORABLE" in out and "beta" in out

    def test_fsck_json_both_cases(self, fleet_root, capsys):
        assert main(["fleet", str(fleet_root), "--fsck", "--json"]) == 0
        healthy = json.loads(capsys.readouterr().out)
        assert healthy["exists"] is True
        for snapshot in (fleet_root / "tenants" / "beta" / "snapshots").glob("*"):
            snapshot.write_bytes(b"garbage")
        assert main(["fleet", str(fleet_root), "--fsck", "--json"]) == 2
        damaged = json.loads(capsys.readouterr().out)
        tenants = {t["tenant_id"]: t for t in damaged["tenants"]}
        assert tenants["beta"]["state"]["restorable"] is False
        assert tenants["alpha"]["state"]["restorable"] is True

    def test_missing_root_exits_2(self, tmp_path, capsys):
        code = main(["fleet", str(tmp_path / "nowhere")])
        assert code == 2
        assert "no fleet root" in capsys.readouterr().err

    def test_missing_root_fsck_exits_2(self, tmp_path, capsys):
        code = main(["fleet", str(tmp_path / "nowhere"), "--fsck"])
        out = capsys.readouterr().out
        assert code == 2
        assert "does not exist" in out

    def test_cli_never_creates_directories(self, tmp_path):
        target = tmp_path / "nowhere"
        main(["fleet", str(target)])
        assert not target.exists()


class TestModuleEntryPoint:
    """`python -m repro` wires argparse to the same main()."""

    def _run(self, *argv):
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env=env,
        )

    def test_help_lists_subcommands(self):
        proc = self._run("--help")
        assert proc.returncode == 0
        for command in ("plan", "validate", "figure2", "ops", "experiments"):
            assert command in proc.stdout

    def test_no_arguments_exits_2(self):
        proc = self._run()
        assert proc.returncode == 2
        assert "usage" in proc.stderr.lower()

    def test_plan_subcommand_round_trips(self):
        proc = self._run(
            "plan", "--condition", "n > 0.8 +/- 0.05",
            "--reliability", "0.9999", "--adaptivity", "full", "--steps", "32",
        )
        assert proc.returncode == 0
        assert "6,279" in proc.stdout

    def test_ops_subcommand_round_trips(self, state_dir):
        proc = self._run("ops", str(state_dir))
        assert proc.returncode == 0
        assert "operations report" in proc.stdout
