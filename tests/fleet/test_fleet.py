"""The fleet gateway: LRU residency, admission, isolation, operations.

The headline invariant (the fleet parity gate, scaled down for the unit
suite; ``benchmarks/bench_fleet.py`` runs it at 100+ tenants): routing N
tenants' traffic through one gateway — with an LRU small enough to force
eviction churn — produces build records element-wise identical to N
isolated ``CIService`` runs, in all three adaptivity modes.
"""

import sys

import pytest

sys.path.insert(0, "tests/ci")
from test_restart_parity import ADAPTIVITY_MODES, assert_parity  # noqa: E402

from tests.fleet.conftest import reference_service, register_tenant  # noqa: E402

from repro.exceptions import (  # noqa: E402
    FleetOverloadedError,
    PersistenceError,
    TenantQuarantinedError,
    TenantQuotaExceededError,
    UnknownTenantError,
)
from repro.fleet import AdmissionPolicy, CIFleet  # noqa: E402
from repro.reliability.events import reliability_events  # noqa: E402
from repro.reliability.faults import (  # noqa: E402
    FaultRule,
    InjectedFault,
    injected_faults,
)


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestRegistration:
    def test_register_creates_tenant_layout(self, make_fleet, small_world):
        fleet = make_fleet()
        register_tenant(fleet, "t-0", small_world(commits=2))
        directory = fleet.tenant_dir("t-0")
        assert (directory / "snapshots").is_dir()
        assert (directory / "journal.jsonl").exists()
        assert (directory / "intake.jsonl").exists()
        assert fleet.tenants() == ["t-0"]
        assert fleet.resident_tenants == ["t-0"]

    def test_register_twice_raises(self, make_fleet, small_world):
        fleet = make_fleet()
        world = small_world(commits=2)
        register_tenant(fleet, "t-0", world)
        with pytest.raises(PersistenceError, match="already exists"):
            register_tenant(fleet, "t-0", world)

    @pytest.mark.parametrize("bad", ["", ".hidden", "a b", "x/y", "a" * 65])
    def test_invalid_tenant_ids_rejected(self, make_fleet, bad):
        fleet = make_fleet()
        with pytest.raises(UnknownTenantError, match="invalid tenant id"):
            fleet.tenant_dir(bad)

    def test_unknown_tenant_raises(self, make_fleet):
        fleet = make_fleet()
        with pytest.raises(UnknownTenantError, match="no tenant"):
            fleet.service("ghost")
        with pytest.raises(UnknownTenantError, match="no tenant"):
            fleet.enqueue("ghost", object())


class TestParityUnderChurn:
    @pytest.mark.parametrize("adaptivity", ADAPTIVITY_MODES)
    def test_interleaved_tenants_match_isolated_services(
        self, make_fleet, small_world, adaptivity
    ):
        """The fleet parity gate at unit scale.

        max_resident=1 over 3 tenants means every interleaved submission
        evicts someone and rehydrates someone else — the worst-case
        churn schedule.
        """
        worlds = {
            f"t-{i}": small_world(adaptivity=adaptivity, commits=4, seed=i)
            for i in range(3)
        }
        fleet = make_fleet(max_resident=1)
        for tenant_id, world in worlds.items():
            register_tenant(fleet, tenant_id, world)
        rounds = max(len(w[3]) for w in worlds.values())
        for index in range(rounds):
            for tenant_id, world in worlds.items():
                models = world[3]
                if index < len(models):
                    build = fleet.submit(
                        tenant_id, models[index], message=f"c{index}"
                    )
                    assert build.commit.sequence == index
        assert fleet.evictions > 0
        for tenant_id, world in worlds.items():
            assert_parity(reference_service(tenant_id, world), fleet.service(tenant_id))

    def test_capacity_bound_is_enforced(self, make_fleet, small_world):
        fleet = make_fleet(max_resident=2)
        for i in range(5):
            register_tenant(fleet, f"t-{i}", small_world(commits=2, seed=i))
        assert len(fleet.resident_tenants) == 2
        fleet.service("t-0")
        assert "t-0" in fleet.resident_tenants
        assert len(fleet.resident_tenants) == 2
        assert fleet.hydrations == 1


class TestDurableIntake:
    def test_enqueue_survives_fleet_restart(self, make_fleet, small_world):
        world = small_world(commits=3)
        fleet = make_fleet()
        register_tenant(fleet, "t-0", world)
        for index, model in enumerate(world[3]):
            fleet.enqueue("t-0", model, message=f"c{index}")
        fleet.close()

        resumed = make_fleet()  # same root, fresh process state
        report = resumed.drain("t-0")
        builds = report.builds["t-0"]
        assert [b.commit.sequence for b in builds] == [0, 1, 2]
        assert_parity(reference_service("t-0", world), resumed.service("t-0"))

    def test_drain_is_idempotent(self, make_fleet, small_world):
        world = small_world(commits=2)
        fleet = make_fleet()
        register_tenant(fleet, "t-0", world)
        for index, model in enumerate(world[3]):
            fleet.enqueue("t-0", model, message=f"c{index}")
        first = fleet.drain("t-0").builds["t-0"]
        assert len(first) == 2
        assert fleet.drain("t-0").builds["t-0"] == []
        assert len(fleet.service("t-0").builds) == 2

    def test_submit_returns_the_matching_build(self, make_fleet, small_world):
        world = small_world(commits=2)
        fleet = make_fleet()
        register_tenant(fleet, "t-0", world)
        # A backlog entry sits in front of the submitted one.
        fleet.enqueue("t-0", world[3][0], message="c0")
        build = fleet.submit("t-0", world[3][1], message="c1")
        assert build.commit.sequence == 1
        assert len(fleet.service("t-0").builds) == 2


class TestAdmission:
    def test_tenant_quota_rejects_at_the_door(self, make_fleet, small_world):
        world = small_world(commits=4)
        fleet = make_fleet(
            admission=AdmissionPolicy(
                max_pending_per_tenant=2, retry_after_seconds=5.0
            )
        )
        register_tenant(fleet, "t-0", world)
        fleet.enqueue("t-0", world[3][0])
        fleet.enqueue("t-0", world[3][1])
        with pytest.raises(TenantQuotaExceededError) as excinfo:
            fleet.enqueue("t-0", world[3][2])
        assert excinfo.value.tenant == "t-0"
        assert excinfo.value.retry_after_seconds == 5.0
        # Nothing was durably written for the rejected submission.
        assert fleet._intake("t-0").pending_count == 2
        assert fleet.rejections["tenant-quota"] == 1

    def test_fleet_overload_rejects_globally(self, make_fleet, small_world):
        fleet = make_fleet(admission=AdmissionPolicy(max_pending_total=3))
        worlds = {
            f"t-{i}": small_world(commits=4, seed=i) for i in range(2)
        }
        for tenant_id, world in worlds.items():
            register_tenant(fleet, tenant_id, world)
        fleet.enqueue("t-0", worlds["t-0"][3][0])
        fleet.enqueue("t-0", worlds["t-0"][3][1])
        fleet.enqueue("t-1", worlds["t-1"][3][0])
        with pytest.raises(FleetOverloadedError):
            fleet.enqueue("t-1", worlds["t-1"][3][1])
        assert fleet.rejections["fleet-overloaded"] == 1
        # Draining the backlog reopens the door.
        fleet.drain()
        fleet.enqueue("t-1", worlds["t-1"][3][1])


class TestBreakerIsolation:
    def test_failing_tenant_is_quarantined_others_serve(
        self, make_fleet, small_world
    ):
        clock = FakeClock()
        worlds = {
            "t-bad": small_world(commits=4, seed=1),
            "t-good": small_world(commits=4, seed=2),
        }
        fleet = make_fleet(
            failure_threshold=2, cooldown_seconds=60.0, clock=clock
        )
        for tenant_id, world in worlds.items():
            register_tenant(fleet, tenant_id, world)
        rule = FaultRule(
            site="fleet.process.t-bad",
            action="raise",
            probability=1.0,
            times=None,
        )
        with injected_faults([rule]):
            for index in range(2):
                # Each submission is durably accepted before its
                # processing fails — nothing is lost, only deferred.
                with pytest.raises(InjectedFault):
                    fleet.submit(
                        "t-bad", worlds["t-bad"][3][index], message=f"c{index}"
                    )
            # Threshold reached: the door is now closed for t-bad...
            with pytest.raises(TenantQuarantinedError) as excinfo:
                fleet.enqueue("t-bad", worlds["t-bad"][3][2])
            assert excinfo.value.retry_after_seconds == pytest.approx(60.0)
            # ...while the healthy tenant is completely unaffected.
            for index, model in enumerate(worlds["t-good"][3]):
                fleet.submit("t-good", model, message=f"c{index}")
        assert_parity(
            reference_service("t-good", worlds["t-good"]),
            fleet.service("t-good"),
        )
        # Cooldown elapses, the fault is gone: the half-open drain probes,
        # succeeds, closes the breaker, and the durable backlog completes.
        clock.advance(61.0)
        builds = fleet.drain("t-bad").builds["t-bad"]
        assert [b.commit.sequence for b in builds] == [0, 1]
        fleet.enqueue("t-bad", worlds["t-bad"][3][2], message="c2")
        assert fleet.drain("t-bad").builds["t-bad"][0].commit.sequence == 2

    def test_fleet_drain_skips_open_breakers(self, make_fleet, small_world):
        clock = FakeClock()
        world = small_world(commits=2)
        fleet = make_fleet(failure_threshold=1, clock=clock)
        register_tenant(fleet, "t-0", world)
        rule = FaultRule(
            site="fleet.process.t-0", action="raise", probability=1.0, times=1
        )
        with injected_faults([rule]):
            with pytest.raises(InjectedFault):
                fleet.submit("t-0", world[3][0], message="c0")
        report = fleet.drain()
        assert report.skipped == ("t-0",)
        assert report.builds == {}

    def test_hydration_failure_counts_against_breaker(
        self, make_fleet, small_world
    ):
        world = small_world(commits=2)
        fleet = make_fleet()
        register_tenant(fleet, "t-0", world)
        fleet.close()
        with injected_faults(
            [FaultRule(site="fleet.hydrate", action="raise", at=1)]
        ):
            with pytest.raises(InjectedFault):
                fleet.service("t-0")
        assert fleet._breaker("t-0").consecutive_failures == 1
        assert any(
            e.kind == "tenant-hydrate-failed" for e in reliability_events()
        )
        # The next hydration (fault exhausted) succeeds.
        assert fleet.service("t-0") is not None

    def test_eviction_failure_keeps_tenant_resident(
        self, make_fleet, small_world
    ):
        fleet = make_fleet(max_resident=1)
        register_tenant(fleet, "t-0", small_world(commits=2, seed=0))
        with injected_faults(
            [FaultRule(site="fleet.evict", action="raise", at=1)]
        ):
            register_tenant(fleet, "t-1", small_world(commits=2, seed=1))
        # The failed eviction was absorbed: both tenants stayed resident
        # (over capacity beats refusing traffic), and the event is logged.
        assert set(fleet.resident_tenants) == {"t-0", "t-1"}
        assert any(e.kind == "evict-failed" for e in reliability_events())
        # With the fault gone, the next capacity pass evicts normally.
        fleet._enforce_capacity()
        assert fleet.resident_tenants == ["t-1"]
        fleet.close()
        assert fleet.resident_tenants == []


class TestOperationsAndFsck:
    def test_fleet_report_aggregates(self, make_fleet, small_world):
        worlds = {
            f"t-{i}": small_world(commits=2, seed=i) for i in range(3)
        }
        fleet = make_fleet(max_resident=2)
        for tenant_id, world in worlds.items():
            register_tenant(fleet, tenant_id, world)
        fleet.submit("t-0", worlds["t-0"][3][0], message="c0")
        fleet.enqueue("t-1", worlds["t-1"][3][0])
        report = fleet.operations()
        assert report.tenants_registered == 3
        assert report.tenants_resident == 2
        assert report.pending_total == 1
        assert report.accepted == 2
        assert report.processed == 1
        by_id = {s.tenant_id: s for s in report.tenant_status}
        assert by_id["t-1"].pending == 1
        assert by_id["t-0"].breaker == "closed"
        text = report.describe()
        assert "3 registered" in text and "1 pending" in text

    def test_tenant_operations_cold_is_read_only(self, make_fleet, small_world):
        world = small_world(commits=2)
        fleet = make_fleet()
        register_tenant(fleet, "t-0", world)
        fleet.submit("t-0", world[3][0], message="c0")
        fleet.close()
        journal = (fleet.tenant_dir("t-0") / "journal.jsonl").read_bytes()
        report = fleet.tenant_operations("t-0")
        assert report.builds_total == 1
        assert (fleet.tenant_dir("t-0") / "journal.jsonl").read_bytes() == journal
        assert fleet.resident_tenants == []

    def test_fsck_healthy_and_damaged(self, make_fleet, small_world):
        fleet = make_fleet()
        for i in range(2):
            register_tenant(fleet, f"t-{i}", small_world(commits=2, seed=i))
        fleet.submit("t-0", small_world(commits=2, seed=0)[3][0], message="c0")
        fleet.close()
        assert fleet.fsck().healthy
        # Destroy one tenant's snapshots: the sweep localizes the damage.
        for snapshot in (fleet.tenant_dir("t-1") / "snapshots").glob("*"):
            snapshot.write_bytes(b"garbage")
        report = fleet.fsck()
        assert not report.healthy
        by_id = {t.tenant_id: t for t in report.tenants}
        assert by_id["t-0"].state.restorable
        assert not by_id["t-1"].state.restorable
        assert "UNRESTORABLE" in report.describe()

    def test_fsck_missing_root(self, tmp_path):
        fleet = CIFleet(tmp_path / "nowhere", create=False)
        report = fleet.fsck()
        assert not report.exists
        assert not report.healthy

    def test_context_manager_evicts_on_exit(self, make_fleet, small_world):
        with make_fleet() as fleet:
            register_tenant(fleet, "t-0", small_world(commits=2))
            assert fleet.resident_tenants == ["t-0"]
        assert fleet.resident_tenants == []
        assert len(fleet) == 1
        assert list(fleet) == ["t-0"]
