"""The durable intake queue: accept-then-never-lose, byte for byte.

Mirrors the event-journal contract tests: CRC'd records, torn-tail
healing with a quarantined sidecar, strict corruption on non-trailing
damage, and idempotent state across reopen and compaction.
"""

import json

import pytest

from repro.exceptions import PersistenceError
from repro.fleet import IntakeQueue, scan_intake
from repro.ml.models.base import FixedPredictionModel
from repro.reliability.events import reliability_events
from repro.reliability.faults import FaultRule, InjectedFault, injected_faults

import numpy as np


def model(tag):
    return FixedPredictionModel(np.array([0, 1, 1, 0]), name=tag)


@pytest.fixture
def queue(tmp_path):
    return IntakeQueue.create(tmp_path / "intake.jsonl", sync=False)


class TestLifecycle:
    def test_create_writes_genesis_cursor(self, tmp_path):
        queue = IntakeQueue.create(
            tmp_path / "intake.jsonl", base_repo_sequence=7, sync=False
        )
        assert queue.next_repo_sequence == 7
        assert queue.pending_count == 0
        records = list(queue.records())
        assert [r.kind for r in records] == ["cursor"]
        assert records[0].repo_sequence == 7

    def test_create_refuses_existing_file(self, queue):
        with pytest.raises(PersistenceError, match="already exists"):
            IntakeQueue.create(queue.path)

    def test_open_requires_existing_file(self, tmp_path):
        with pytest.raises(PersistenceError, match="does not exist"):
            IntakeQueue(tmp_path / "missing.jsonl")

    def test_append_assigns_consecutive_repo_sequences(self, queue):
        first = queue.append(model("a"), message="one", author="dev")
        second = queue.append(model("b"))
        assert (first.repo_sequence, second.repo_sequence) == (0, 1)
        assert queue.next_repo_sequence == 2
        assert [r.repo_sequence for r in queue.pending()] == [0, 1]
        restored = first.model()
        assert restored.name == "a"
        assert first.payload["message"] == "one"
        assert first.payload["author"] == "dev"

    def test_ack_retires_pending(self, queue):
        queue.append(model("a"))
        queue.append(model("b"))
        queue.ack(0)
        assert [r.repo_sequence for r in queue.pending()] == [1]
        assert queue.acked_count == 1

    def test_reopen_restores_exact_state(self, queue):
        queue.append(model("a"), message="m0")
        queue.append(model("b"), message="m1")
        queue.ack(0)
        reopened = IntakeQueue(queue.path, sync=False)
        assert reopened.next_repo_sequence == queue.next_repo_sequence
        assert reopened.pending_count == 1
        entry = reopened.pending()[0]
        assert entry.repo_sequence == 1
        assert entry.payload["message"] == "m1"
        assert entry.model().name == "b"


class TestCompaction:
    def test_compact_drops_acked_keeps_pending(self, queue):
        for tag in "abcd":
            queue.append(model(tag))
        queue.ack(0)
        queue.ack(1)
        dropped = queue.compact()
        assert dropped == 2
        assert queue.pending_count == 2
        assert queue.next_repo_sequence == 4
        # On disk: one fresh cursor anchored past the acked entries, then
        # the pending submissions with their original identities.
        records = list(queue.records())
        assert [r.kind for r in records] == ["cursor", "submission", "submission"]
        assert records[0].repo_sequence == 2
        assert [r.repo_sequence for r in records[1:]] == [2, 3]

    def test_reopen_after_compact_is_identical(self, queue):
        for tag in "abc":
            queue.append(model(tag))
        queue.ack(0)
        queue.compact()
        reopened = IntakeQueue(queue.path, sync=False)
        assert reopened.next_repo_sequence == 3
        assert [r.repo_sequence for r in reopened.pending()] == [1, 2]
        # Appending after reopen continues the sequence without collision.
        assert reopened.append(model("d")).repo_sequence == 3

    def test_compact_empty_queue_leaves_cursor_only(self, queue):
        queue.append(model("a"))
        queue.ack(0)
        queue.compact()
        assert [r.kind for r in queue.records()] == ["cursor"]
        assert IntakeQueue(queue.path, sync=False).next_repo_sequence == 1


class TestCrashArtifacts:
    def test_torn_tail_is_quarantined_and_truncated(self, queue):
        queue.append(model("a"))
        with open(queue.path, "ab") as handle:
            handle.write(b'{"kind": "submission", "torn...')
        reopened = IntakeQueue(queue.path, sync=False)
        assert reopened.pending_count == 1  # the torn append never happened
        sidecars = list(queue.path.parent.glob("*.quarantined"))
        assert len(sidecars) == 1
        assert sidecars[0].read_bytes() == b'{"kind": "submission", "torn...'
        assert any(
            e.kind == "intake-torn-tail" for e in reliability_events()
        )

    def test_injected_append_tear_is_not_accepted(self, queue):
        queue.append(model("a"))
        with injected_faults(
            [FaultRule(site="intake.append", action="tear", at=1, tear_at=10)]
        ):
            with pytest.raises(InjectedFault):
                queue.append(model("b"))
        reopened = IntakeQueue(queue.path, sync=False)
        assert reopened.pending_count == 1
        assert reopened.next_repo_sequence == 1
        assert reopened.append(model("b2")).repo_sequence == 1

    def test_midfile_corruption_raises_on_read(self, queue):
        queue.append(model("a"))
        queue.append(model("b"))
        lines = queue.path.read_text(encoding="utf-8").splitlines()
        lines[1] = lines[1][:-5] + "XXXXX"  # damage a non-trailing record
        queue.path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        fresh = IntakeQueue(queue.path, sync=False)
        with pytest.raises(PersistenceError, match="non-trailing"):
            list(fresh.records())

    def test_crc_rejects_bitflip(self, queue):
        queue.append(model("a"))
        raw = queue.path.read_text(encoding="utf-8").splitlines()
        record = json.loads(raw[-1])
        record["repo_sequence"] = 99  # tamper without recomputing the CRC
        raw[-1] = json.dumps(record, sort_keys=True)
        queue.path.write_text("\n".join(raw) + "\n", encoding="utf-8")
        # The tampered line is trailing, so it heals as a torn tail.
        reopened = IntakeQueue(queue.path, sync=False)
        assert reopened.pending_count == 0


class TestScan:
    def test_scan_missing_file(self, tmp_path):
        scan = scan_intake(tmp_path / "nope.jsonl")
        assert not scan.exists
        assert scan.records == 0

    def test_scan_classifies_without_mutating(self, queue):
        for tag in "abc":
            queue.append(model(tag))
        queue.ack(0)
        with open(queue.path, "ab") as handle:
            handle.write(b"torn-garbage")
        before = queue.path.read_bytes()
        scan = scan_intake(queue.path)
        assert queue.path.read_bytes() == before  # strictly read-only
        assert (scan.records, scan.pending, scan.acked) == (5, 2, 1)
        assert scan.torn_tail_bytes == len(b"torn-garbage")
        assert scan.corrupt_lines == ()

    def test_scan_reports_midfile_corruption(self, queue):
        queue.append(model("a"))
        queue.append(model("b"))
        lines = queue.path.read_text(encoding="utf-8").splitlines()
        lines[1] = "garbage-line"
        queue.path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        scan = scan_intake(queue.path)
        assert scan.corrupt_lines == (2,)
