"""Shared fixtures for the fleet suite.

The fleet exercises process-wide reliability state (fault injection, the
event log) just like the chaos suite, so every test gets the same
isolation guarantees as ``tests/reliability/conftest.py``.  World
building reuses the restart-parity helpers — fleet parity is defined
against exactly the single-service runs those helpers produce.
"""

import sys

import pytest

sys.path.insert(0, "tests/ci")
from test_restart_parity import make_script, make_world  # noqa: E402

import repro.reliability.faults as faults  # noqa: E402
from repro.ci.repository import ModelRepository  # noqa: E402
from repro.ci.service import CIService  # noqa: E402
from repro.core.testset import TestsetPool  # noqa: E402
from repro.fleet import CIFleet  # noqa: E402
from repro.reliability.events import clear_events  # noqa: E402
from repro.stats.parallel import shutdown_executors  # noqa: E402


@pytest.fixture(autouse=True)
def reliability_isolation():
    faults.uninstall_injector()
    clear_events()
    worker_flag = faults._IS_WORKER
    env_checked = faults._ENV_CHECKED
    yield
    faults.uninstall_injector()
    faults._IS_WORKER = worker_flag
    faults._ENV_CHECKED = env_checked
    clear_events()
    shutdown_executors()


@pytest.fixture
def make_fleet(tmp_path):
    """Factory for fleets rooted in this test's tmp dir.

    ``sync=False`` by default: durability-through-fsync is covered by
    the dedicated crash tests, and everything else just wants speed.
    """

    def build(**kwargs):
        kwargs.setdefault("sync", False)
        return CIFleet(tmp_path / "fleet", **kwargs)

    return build


@pytest.fixture
def small_world():
    """Factory for one tenant's world: (script, testsets, baseline, models)."""

    def build(adaptivity="full", commits=4, seed=0, steps=4):
        script = make_script(adaptivity, steps=steps)
        testsets, baseline, models = make_world(
            script, commits=commits, seed=seed
        )
        return script, testsets, baseline, models

    return build


def register_tenant(fleet, tenant_id, world):
    """Register ``tenant_id`` from a ``small_world`` tuple (fixed nonce)."""
    script, testsets, baseline, _ = world
    return fleet.register(
        tenant_id,
        script,
        testsets[0],
        baseline,
        repository=ModelRepository(nonce=f"nonce-{tenant_id}"),
        pool=TestsetPool(testsets[1:]),
    )


def reference_service(tenant_id, world):
    """The isolated single-service run fleet results must match."""
    script, testsets, baseline, models = world
    service = CIService(
        script,
        testsets[0],
        baseline,
        repository=ModelRepository(nonce=f"nonce-{tenant_id}"),
    )
    service.install_testset_pool(TestsetPool(testsets[1:]))
    for index, model in enumerate(models):
        service.repository.commit(model, message=f"c{index}")
    return service
