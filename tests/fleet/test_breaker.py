"""The per-tenant circuit breaker: open at threshold, probe, recover.

All transitions are driven through an injected fake clock, so the tests
are deterministic and instantaneous.
"""

import pytest

from repro.fleet import BreakerState, CircuitBreaker
from repro.reliability.events import reliability_events


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def breaker(clock):
    return CircuitBreaker(
        "t-0", failure_threshold=3, cooldown_seconds=30.0, clock=clock
    )


class TestTransitions:
    def test_starts_closed_and_allows(self, breaker):
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allows()
        assert breaker.retry_after() == 0.0

    def test_below_threshold_stays_closed(self, breaker):
        breaker.record_failure(RuntimeError("x"))
        breaker.record_failure(RuntimeError("x"))
        assert breaker.state is BreakerState.CLOSED
        assert breaker.consecutive_failures == 2
        breaker.record_success()
        assert breaker.consecutive_failures == 0

    def test_threshold_trips_open(self, breaker):
        for _ in range(3):
            breaker.record_failure(RuntimeError("boom"))
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allows()
        assert breaker.times_opened == 1
        assert breaker.retry_after() == pytest.approx(30.0)

    def test_retry_after_counts_down(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(12.0)
        assert breaker.retry_after() == pytest.approx(18.0)

    def test_cooldown_reaches_half_open(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(30.0)
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.retry_after() == 0.0

    def test_half_open_allows_single_probe(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(31.0)
        assert breaker.allows()  # the probe
        assert not breaker.allows()  # outcome not yet recorded

    def test_probe_success_closes(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(31.0)
        assert breaker.allows()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allows() and breaker.allows()  # no probe limit now

    def test_probe_failure_reopens_full_cooldown(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(31.0)
        assert breaker.allows()
        breaker.record_failure(RuntimeError("still broken"))
        assert breaker.state is BreakerState.OPEN
        assert breaker.retry_after() == pytest.approx(30.0)
        clock.advance(30.0)
        assert breaker.state is BreakerState.HALF_OPEN


class TestEventsAndValidation:
    def test_lifecycle_events_recorded(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(31.0)
        breaker.allows()
        breaker.record_failure()
        clock.advance(31.0)
        breaker.allows()
        breaker.record_success()
        kinds = [e.kind for e in reliability_events() if e.site == "fleet.breaker"]
        assert kinds == [
            "breaker-open",
            "breaker-half-open",
            "breaker-reopen",
            "breaker-half-open",
            "breaker-close",
        ]

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker("t", failure_threshold=0)
        with pytest.raises(ValueError, match="cooldown_seconds"):
            CircuitBreaker("t", cooldown_seconds=0)
