"""Tests for the dataset generators (synthetic, MNIST-like, emotion, zoo)."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.ml.datasets.emotion import (
    EMOTION_CLASSES,
    EmotionDatasetGenerator,
    make_semeval_history,
)
from repro.ml.datasets.mnist_like import InfiniteDigitStream
from repro.ml.datasets.model_zoo import ImageNetZoo
from repro.ml.datasets.synthetic import make_blobs_classification
from repro.ml.models.linear import SoftmaxRegression


class TestBlobs:
    def test_shapes(self):
        X, y = make_blobs_classification(100, n_classes=3, n_features=5, seed=0)
        assert X.shape == (100, 5) and y.shape == (100,)

    def test_labels_in_range(self):
        _, y = make_blobs_classification(200, n_classes=4, seed=0)
        assert set(np.unique(y)) <= set(range(4))

    def test_separation_improves_learnability(self):
        def accuracy(separation):
            X, y = make_blobs_classification(
                800, n_classes=3, separation=separation, seed=1
            )
            model = SoftmaxRegression(n_classes=3, n_epochs=80, seed=0).fit(
                X[:500], y[:500]
            )
            return float(np.mean(model.predict(X[500:]) == y[500:]))

        assert accuracy(4.0) > accuracy(0.5)

    def test_deterministic(self):
        a = make_blobs_classification(50, seed=3)[0]
        b = make_blobs_classification(50, seed=3)[0]
        np.testing.assert_array_equal(a, b)


class TestInfiniteDigits:
    def test_unbounded_sampling(self):
        stream = InfiniteDigitStream(seed=0)
        X1, y1 = stream.sample(500, seed=1)
        X2, y2 = stream.sample(700, seed=2)
        assert X1.shape == (500, stream.n_features)
        assert X2.shape == (700, stream.n_features)

    def test_learnable_to_high_accuracy(self):
        stream = InfiniteDigitStream(noise=0.3, seed=0)
        X, y = stream.sample(3000, seed=1)
        model = SoftmaxRegression(n_classes=10, n_epochs=150, seed=0).fit(
            X[:2000], y[:2000]
        )
        accuracy = np.mean(model.predict(X[2000:]) == y[2000:])
        assert accuracy > 0.9  # the "GoogLeNet at ~98%" regime is reachable

    def test_noise_hurts(self):
        def accuracy(noise):
            stream = InfiniteDigitStream(noise=noise, seed=0)
            X, y = stream.sample(2000, seed=1)
            model = SoftmaxRegression(n_classes=10, n_epochs=80, seed=0).fit(
                X[:1500], y[:1500]
            )
            return float(np.mean(model.predict(X[1500:]) == y[1500:]))

        assert accuracy(0.2) > accuracy(2.0)

    def test_draws_differ_across_seeds(self):
        stream = InfiniteDigitStream(seed=0)
        X1, _ = stream.sample(10, seed=1)
        X2, _ = stream.sample(10, seed=2)
        assert not np.allclose(X1, X2)


class TestEmotionGenerator:
    def test_count_features(self):
        generator = EmotionDatasetGenerator(seed=0)
        X, y = generator.sample(300, seed=1)
        assert X.shape == (300, generator.vocabulary_size)
        assert X.dtype == np.int64 and (X >= 0).all()

    def test_class_priors_respected(self):
        generator = EmotionDatasetGenerator(seed=0)
        _, y = generator.sample(20_000, seed=1)
        others_rate = float(np.mean(y == 0))
        assert others_rate == pytest.approx(0.5, abs=0.02)

    def test_bad_priors_rejected(self):
        with pytest.raises(SimulationError):
            EmotionDatasetGenerator(class_priors=(0.5, 0.5, 0.1, 0.1))

    def test_classes_are_separable(self):
        from repro.ml.models.naive_bayes import MultinomialNaiveBayes

        generator = EmotionDatasetGenerator(seed=0)
        X, y = generator.sample(3000, seed=1)
        model = MultinomialNaiveBayes(n_classes=len(EMOTION_CLASSES)).fit(
            X[:2000], y[:2000]
        )
        assert np.mean(model.predict(X[2000:]) == y[2000:]) > 0.7


class TestSemEvalHistory:
    def test_testset_size_matches_paper(self, semeval_history):
        assert semeval_history.testset_size == 5509

    def test_eight_iterations(self, semeval_history):
        assert len(semeval_history) == 8

    def test_accuracy_trajectory_realized(self, semeval_history):
        for model, iteration in zip(
            semeval_history.models, semeval_history.iterations
        ):
            measured = float(np.mean(model.predictions == semeval_history.labels))
            assert measured == pytest.approx(iteration.test_accuracy, abs=2e-4)

    def test_pairwise_difference_bounded(self, semeval_history):
        assert semeval_history.max_pairwise_difference() <= 0.1

    def test_dev_accuracy_monotone(self, semeval_history):
        dev = [it.dev_accuracy for it in semeval_history.iterations]
        assert dev == sorted(dev)

    def test_test_accuracy_peaks_second_to_last(self, semeval_history):
        test = [it.test_accuracy for it in semeval_history.iterations]
        assert int(np.argmax(test)) == len(test) - 2

    def test_infeasible_trajectory_rejected(self):
        with pytest.raises(SimulationError):
            make_semeval_history(
                test_accuracies=(0.5, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9),
                dev_accuracies=(0.5,) * 8,
            )


class TestImageNetZoo:
    @pytest.fixture(scope="class")
    def zoo(self):
        return ImageNetZoo(n_examples=8000, seed=0)

    def test_five_members(self, zoo):
        assert len(zoo) == 5

    def test_accuracies_near_historical(self, zoo):
        assert zoo.accuracy_of("AlexNet") == pytest.approx(0.57, abs=2e-3)
        assert zoo.accuracy_of("ResNet") == pytest.approx(0.76, abs=2e-3)

    def test_paper_disagreement_envelope(self, zoo):
        # "only produce up to 25% different answers for top-1"
        assert zoo.max_pairwise_disagreement() <= 0.25

    def test_disagreement_symmetric(self, zoo):
        assert zoo.disagreement("VGG", "ResNet") == zoo.disagreement(
            "ResNet", "VGG"
        )

    def test_unknown_member(self, zoo):
        with pytest.raises(KeyError):
            zoo.accuracy_of("Transformer")
