"""Tests for labeling cost models, oracles and metrics."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError, LabelBudgetExceededError
from repro.ml.labeling import LabelingCostModel, LabelOracle
from repro.ml.metrics import (
    accuracy,
    confusion_matrix,
    disagreement,
    disagreement_matrix,
    f1_scores,
    macro_f1,
)


class TestCostModel:
    def test_paper_30_to_60k_window(self):
        # §2.3: 2-4 engineers, 8h, 2 s/label.
        assert LabelingCostModel(2.0, team_size=2).labels_per_day() == 28_800
        assert LabelingCostModel(2.0, team_size=4).labels_per_day() == 57_600

    def test_active_labeling_3_hours(self):
        # §4.1.2: 2,188 labels at 5 s/label ~ 3 hours.
        effort = LabelingCostModel(5.0).effort(2188)
        assert effort.person_hours == pytest.approx(3.04, abs=0.01)

    def test_team_days_parallelism(self):
        effort = LabelingCostModel(2.0, team_size=4).effort(57_600)
        assert effort.team_days == pytest.approx(1.0)

    def test_negative_labels_rejected(self):
        with pytest.raises(LabelBudgetExceededError):
            LabelingCostModel().effort(-1)


class TestOracle:
    def test_serves_true_labels(self):
        labels = np.array([3, 1, 4, 1, 5])
        oracle = LabelOracle(labels)
        np.testing.assert_array_equal(oracle(np.array([0, 2])), [3, 4])

    def test_metering(self):
        oracle = LabelOracle(np.arange(10))
        oracle(np.array([1, 2]))
        oracle(np.array([3]))
        assert oracle.labels_served == 3
        assert oracle.request_sizes == [2, 1]

    def test_budget_enforced(self):
        oracle = LabelOracle(np.arange(10), budget=2)
        oracle(np.array([0, 1]))
        with pytest.raises(LabelBudgetExceededError):
            oracle(np.array([2]))

    def test_effort_accounting(self):
        oracle = LabelOracle(
            np.arange(100), cost_model=LabelingCostModel(seconds_per_label=10)
        )
        oracle(np.arange(36))
        assert oracle.total_effort().person_hours == pytest.approx(0.1)


class TestMetrics:
    def test_accuracy(self):
        assert accuracy(np.array([1, 2, 3]), np.array([1, 2, 4])) == pytest.approx(2 / 3)

    def test_disagreement(self):
        assert disagreement(np.array([1, 1, 1]), np.array([1, 2, 3])) == pytest.approx(2 / 3)

    def test_disagreement_matrix_symmetric_zero_diag(self):
        preds = [np.array([1, 2]), np.array([1, 1]), np.array([2, 2])]
        matrix = disagreement_matrix(preds)
        assert matrix[0, 0] == 0.0
        np.testing.assert_allclose(matrix, matrix.T)
        assert matrix[0, 1] == pytest.approx(0.5)

    def test_confusion_matrix(self):
        cm = confusion_matrix(np.array([0, 1, 1]), np.array([0, 1, 0]))
        assert cm[0, 0] == 1 and cm[0, 1] == 1 and cm[1, 1] == 1

    def test_f1_perfect(self):
        preds = np.array([0, 1, 2])
        np.testing.assert_allclose(f1_scores(preds, preds), [1.0, 1.0, 1.0])

    def test_f1_absent_class_zero(self):
        scores = f1_scores(np.array([0, 0]), np.array([0, 0]), n_classes=2)
        assert scores[1] == 0.0

    def test_macro_f1_averages(self):
        preds = np.array([0, 1, 1, 0])
        labels = np.array([0, 1, 0, 0])
        per_class = f1_scores(preds, labels)
        assert macro_f1(preds, labels) == pytest.approx(per_class.mean())

    def test_length_mismatch(self):
        with pytest.raises(InvalidParameterError):
            accuracy(np.array([1]), np.array([1, 2]))
