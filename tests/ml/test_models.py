"""Tests for the trained-model implementations."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.ml.datasets.synthetic import make_blobs_classification
from repro.ml.models.base import FixedPredictionModel
from repro.ml.models.knn import KNearestNeighbors
from repro.ml.models.linear import SoftmaxRegression
from repro.ml.models.majority import MajorityClassModel
from repro.ml.models.naive_bayes import MultinomialNaiveBayes


@pytest.fixture(scope="module")
def blobs():
    X, y = make_blobs_classification(
        1200, n_classes=3, n_features=8, separation=3.0, seed=0
    )
    return X[:800], y[:800], X[800:], y[800:]


class TestFixedPredictionModel:
    def test_gathers_by_index(self):
        model = FixedPredictionModel(np.array([5, 6, 7]))
        np.testing.assert_array_equal(model.predict(np.array([2, 0])), [7, 5])

    def test_rejects_2d_predictions(self):
        with pytest.raises(InvalidParameterError):
            FixedPredictionModel(np.zeros((2, 2)))

    def test_rejects_float_indices(self):
        model = FixedPredictionModel(np.array([1, 2]))
        with pytest.raises(InvalidParameterError, match="integer"):
            model.predict(np.array([0.5]))

    def test_len_and_repr(self):
        model = FixedPredictionModel(np.array([1, 2, 3]), name="m")
        assert len(model) == 3 and "m" in repr(model)


class TestSoftmaxRegression:
    def test_learns_separable_blobs(self, blobs):
        train_x, train_y, test_x, test_y = blobs
        model = SoftmaxRegression(n_classes=3, n_epochs=150, seed=0).fit(
            train_x, train_y
        )
        accuracy = np.mean(model.predict(test_x) == test_y)
        assert accuracy > 0.9

    def test_loss_decreases(self, blobs):
        train_x, train_y, _, _ = blobs
        model = SoftmaxRegression(n_classes=3, n_epochs=60, seed=0).fit(
            train_x, train_y
        )
        assert model.loss_history[-1] < model.loss_history[0]

    def test_probabilities_normalized(self, blobs):
        train_x, train_y, test_x, _ = blobs
        model = SoftmaxRegression(n_classes=3, n_epochs=30, seed=0).fit(
            train_x, train_y
        )
        probs = model.predict_proba(test_x[:10])
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-9)

    def test_unfitted_predict_raises(self):
        with pytest.raises(InvalidParameterError, match="not fitted"):
            SoftmaxRegression(n_classes=2).predict(np.zeros((1, 3)))

    def test_label_range_checked(self):
        with pytest.raises(InvalidParameterError, match="labels"):
            SoftmaxRegression(n_classes=2).fit(np.zeros((2, 2)), np.array([0, 5]))

    def test_mismatched_lengths(self):
        with pytest.raises(InvalidParameterError):
            SoftmaxRegression(n_classes=2).fit(np.zeros((3, 2)), np.array([0, 1]))


class TestNaiveBayes:
    def test_separates_count_data(self, rng):
        # Two classes with disjoint dominant tokens.
        n = 400
        labels = rng.integers(0, 2, n)
        counts = np.zeros((n, 6), dtype=int)
        for i, label in enumerate(labels):
            block = slice(0, 3) if label == 0 else slice(3, 6)
            counts[i, block] = rng.poisson(5, 3)
            counts[i, :] += rng.poisson(0.3, 6)
        model = MultinomialNaiveBayes(n_classes=2).fit(counts[:300], labels[:300])
        accuracy = np.mean(model.predict(counts[300:]) == labels[300:])
        assert accuracy > 0.95

    def test_negative_counts_rejected(self):
        with pytest.raises(InvalidParameterError, match="non-negative"):
            MultinomialNaiveBayes(n_classes=2).fit(
                np.array([[-1.0, 2.0]]), np.array([0])
            )

    def test_unseen_class_smoothed(self):
        # Class 1 absent from training: prior smoothed, not -inf.
        model = MultinomialNaiveBayes(n_classes=2).fit(
            np.array([[1.0, 0.0], [2.0, 1.0]]), np.array([0, 0])
        )
        scores = model.predict_log_proba(np.array([[1.0, 1.0]]))
        assert np.isfinite(scores).all()

    def test_unfitted_raises(self):
        with pytest.raises(InvalidParameterError, match="not fitted"):
            MultinomialNaiveBayes(n_classes=2).predict(np.zeros((1, 2)))


class TestKNN:
    def test_classifies_blobs(self, blobs):
        train_x, train_y, test_x, test_y = blobs
        model = KNearestNeighbors(k=7).fit(train_x, train_y)
        assert np.mean(model.predict(test_x) == test_y) > 0.9

    def test_k_larger_than_train_rejected(self):
        with pytest.raises(InvalidParameterError, match="exceeds"):
            KNearestNeighbors(k=10).fit(np.zeros((3, 2)), np.array([0, 1, 0]))

    def test_chunking_matches_single_pass(self, blobs):
        train_x, train_y, test_x, _ = blobs
        small = KNearestNeighbors(k=5, chunk_size=16).fit(train_x, train_y)
        big = KNearestNeighbors(k=5, chunk_size=4096).fit(train_x, train_y)
        np.testing.assert_array_equal(
            small.predict(test_x[:100]), big.predict(test_x[:100])
        )

    def test_memorizes_training_points(self, blobs):
        train_x, train_y, _, _ = blobs
        model = KNearestNeighbors(k=1).fit(train_x, train_y)
        np.testing.assert_array_equal(model.predict(train_x[:50]), train_y[:50])


class TestMajority:
    def test_predicts_mode(self):
        model = MajorityClassModel().fit(np.zeros((5, 1)), np.array([1, 1, 1, 0, 2]))
        np.testing.assert_array_equal(model.predict(np.zeros((3, 1))), [1, 1, 1])

    def test_empty_labels_rejected(self):
        with pytest.raises(InvalidParameterError):
            MajorityClassModel().fit(np.zeros((0, 1)), np.array([]))

    def test_unfitted_raises(self):
        with pytest.raises(InvalidParameterError):
            MajorityClassModel().predict(np.zeros((1, 1)))
