"""Tests for the incremental-training helper."""

import numpy as np
import pytest

from repro.ml.datasets.synthetic import make_blobs_classification
from repro.ml.metrics import accuracy
from repro.ml.training import train_incremental_history


@pytest.fixture(scope="module")
def history_and_data():
    X, y = make_blobs_classification(
        3000, n_classes=3, n_features=10, separation=2.0, noise=1.2, seed=0
    )
    history = train_incremental_history(
        X[:2000], y[:2000],
        n_classes=3,
        train_sizes=(100, 500, 2000),
        n_epochs=80,
        seed=0,
    )
    return history, X[2000:], y[2000:]


class TestIncrementalHistory:
    def test_one_iteration_per_size(self, history_and_data):
        history, _, _ = history_and_data
        assert [it.index for it in history] == [1, 2, 3]
        assert [it.train_size for it in history] == [100, 500, 2000]

    def test_more_data_generally_helps(self, history_and_data):
        history, test_x, test_y = history_and_data
        accs = [accuracy(it.model.predict(test_x), test_y) for it in history]
        assert accs[-1] > accs[0]

    def test_train_accuracy_recorded(self, history_and_data):
        history, _, _ = history_and_data
        for it in history:
            assert 0.0 <= it.train_accuracy <= 1.0

    def test_sizes_clamped_to_data(self):
        X, y = make_blobs_classification(200, n_classes=2, seed=1)
        history = train_incremental_history(
            X, y, n_classes=2, train_sizes=(500,), n_epochs=10
        )
        assert history[0].train_size == 200

    def test_consecutive_models_highly_correlated(self, history_and_data):
        """The Pattern 2 regime: successive iterations agree on most
        predictions even as accuracy improves."""
        history, test_x, _ = history_and_data
        a = history[1].model.predict(test_x)
        b = history[2].model.predict(test_x)
        assert np.mean(a != b) < 0.35
