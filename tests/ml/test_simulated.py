"""Tests for the calibrated model-pair simulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SimulationError
from repro.ml.models.simulated import (
    ModelPairSpec,
    evolve_predictions,
    simulate_accuracy_model,
    simulate_model_pair,
)


class TestSpecSolver:
    def test_basic_solution(self):
        buckets = ModelPairSpec(0.8, 0.85, 0.1, disagree_wrong=0.02).solve()
        assert buckets.old_accuracy == pytest.approx(0.8)
        assert buckets.new_accuracy == pytest.approx(0.85)
        assert buckets.difference == pytest.approx(0.1)
        assert buckets.as_array().sum() == pytest.approx(1.0)

    def test_gain_exceeding_difference_infeasible(self):
        with pytest.raises(SimulationError, match="cannot exceed"):
            ModelPairSpec(0.8, 0.95, 0.1).solve()

    def test_disagree_wrong_exceeding_difference(self):
        with pytest.raises(SimulationError):
            ModelPairSpec(0.8, 0.8, 0.1, disagree_wrong=0.2).solve()

    def test_perfect_models_zero_difference(self):
        buckets = ModelPairSpec(1.0, 1.0, 0.0).solve()
        assert buckets.agree_correct == pytest.approx(1.0)

    def test_negative_bucket_detected(self):
        # old accuracy too low to supply old-only-correct mass.
        with pytest.raises(SimulationError, match="infeasible"):
            ModelPairSpec(0.05, 0.0, 0.5).solve()

    @given(
        o=st.floats(min_value=0.3, max_value=0.95),
        gain=st.floats(min_value=-0.05, max_value=0.05),
        d=st.floats(min_value=0.06, max_value=0.3),
    )
    @settings(max_examples=60)
    def test_feasible_region_always_solves(self, o, gain, d):
        from hypothesis import assume

        n = min(1.0, o + gain)
        gain = n - o
        # Feasibility with disagree_wrong=0 needs enough wrong mass on both
        # sides: q_nm <= 1 - o and q_om <= 1 - n, i.e. d <= 2(1 - max) - |gain|.
        assume(d <= 2 * (1 - max(o, n)) - abs(gain) - 1e-6)
        buckets = ModelPairSpec(o, n, d).solve()
        assert buckets.as_array().min() >= -1e-12


class TestMaterialization:
    def test_exact_mode_hits_targets(self):
        spec = ModelPairSpec(0.82, 0.85, 0.08, disagree_wrong=0.02)
        pair = simulate_model_pair(spec, n_examples=5000, exact=True, seed=0)
        old_acc = np.mean(pair.old_model.predictions == pair.labels)
        new_acc = np.mean(pair.new_model.predictions == pair.labels)
        diff = np.mean(pair.old_model.predictions != pair.new_model.predictions)
        assert old_acc == pytest.approx(0.82, abs=2e-4)
        assert new_acc == pytest.approx(0.85, abs=2e-4)
        assert diff == pytest.approx(0.08, abs=2e-4)

    def test_iid_mode_close_to_targets(self):
        spec = ModelPairSpec(0.82, 0.85, 0.08, disagree_wrong=0.02)
        pair = simulate_model_pair(spec, n_examples=50_000, exact=False, seed=1)
        assert np.mean(pair.old_model.predictions == pair.labels) == pytest.approx(
            0.82, abs=0.01
        )

    def test_disagree_wrong_needs_three_classes(self):
        spec = ModelPairSpec(0.6, 0.6, 0.2, disagree_wrong=0.1)
        with pytest.raises(SimulationError, match="3 classes"):
            simulate_model_pair(spec, n_examples=1000, n_classes=2, seed=0)

    def test_binary_world_works_without_disagree_wrong(self):
        spec = ModelPairSpec(0.7, 0.75, 0.1)
        pair = simulate_model_pair(spec, n_examples=2000, n_classes=2, seed=0)
        assert set(np.unique(pair.labels)) <= {0, 1}

    def test_deterministic_given_seed(self):
        spec = ModelPairSpec(0.8, 0.82, 0.05)
        a = simulate_model_pair(spec, 1000, seed=7)
        b = simulate_model_pair(spec, 1000, seed=7)
        np.testing.assert_array_equal(
            a.new_model.predictions, b.new_model.predictions
        )

    def test_disagreement_structure(self):
        # Disagreeing predictions really differ; agreeing ones really match.
        spec = ModelPairSpec(0.8, 0.83, 0.1, disagree_wrong=0.03)
        pair = simulate_model_pair(spec, 5000, seed=3)
        old, new = pair.old_model.predictions, pair.new_model.predictions
        disagree = old != new
        assert disagree.mean() == pytest.approx(0.1, abs=2e-4)
        # On disagree-wrong examples, neither matches the label.
        both_wrong = disagree & (old != pair.labels) & (new != pair.labels)
        assert both_wrong.mean() == pytest.approx(0.03, abs=2e-3)


class TestAccuracyModel:
    def test_exact_accuracy(self):
        model, labels = simulate_accuracy_model(0.98, 5000, exact=True, seed=0)
        assert np.mean(model.predictions == labels) == pytest.approx(0.98, abs=1e-4)

    def test_iid_accuracy(self):
        model, labels = simulate_accuracy_model(0.9, 100_000, seed=1)
        assert np.mean(model.predictions == labels) == pytest.approx(0.9, abs=0.01)

    def test_wrong_predictions_differ_from_labels(self):
        model, labels = simulate_accuracy_model(0.5, 1000, seed=2)
        wrong = model.predictions != labels
        assert wrong.any()


class TestEvolvePredictions:
    @pytest.fixture
    def world(self):
        return simulate_model_pair(
            ModelPairSpec(0.85, 0.85, 0.0), n_examples=10_000, seed=0
        )

    def test_hits_accuracy_and_difference(self, world):
        new = evolve_predictions(
            world.old_model.predictions,
            world.labels,
            target_accuracy=0.88,
            difference=0.07,
            seed=1,
        )
        assert np.mean(new == world.labels) == pytest.approx(0.88, abs=2e-4)
        assert np.mean(new != world.old_model.predictions) == pytest.approx(
            0.07, abs=2e-4
        )

    def test_regression_supported(self, world):
        new = evolve_predictions(
            world.old_model.predictions, world.labels,
            target_accuracy=0.80, difference=0.08, seed=2,
        )
        assert np.mean(new == world.labels) == pytest.approx(0.80, abs=2e-4)

    def test_move_exceeding_budget_rejected(self, world):
        with pytest.raises(SimulationError, match="exceeds"):
            evolve_predictions(
                world.old_model.predictions, world.labels,
                target_accuracy=0.95, difference=0.05, seed=3,
            )

    def test_infeasible_churn_rejected(self, world):
        # 50% churn from 85% accuracy cannot keep accuracy at 85%.
        with pytest.raises(SimulationError, match="infeasible"):
            evolve_predictions(
                world.old_model.predictions, world.labels,
                target_accuracy=0.85, difference=0.5, seed=4,
            )

    def test_binary_world_evolution(self):
        world = simulate_model_pair(
            ModelPairSpec(0.8, 0.8, 0.0), n_examples=5000, n_classes=2, seed=5
        )
        new = evolve_predictions(
            world.old_model.predictions, world.labels,
            target_accuracy=0.84, difference=0.06, n_classes=2, seed=6,
        )
        assert np.mean(new == world.labels) == pytest.approx(0.84, abs=1e-3)
