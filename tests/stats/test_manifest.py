"""The cache-manifest contract: export, idempotent + commutative merge.

Three invariants the parallel planning executor leans on (asserted here
exactly as the ISSUE's satellite demands):

1. ``merge_manifest(export_manifest())`` is a no-op — folding a cache's
   own export back in changes neither contents, ordering, nor hit/miss
   statistics;
2. merges commute — two worker manifests folded in either order leave
   identical registry contents;
3. a cold process restored from a donor's manifest serves
   ``tight_sample_size`` (and the epsilon sweeps) bit-identical to the
   donor, from cache, without recomputing.
"""

import pickle

import numpy as np
import pytest

from repro.core.estimators.api import SampleSizeEstimator
from repro.stats.cache import (
    LRUCache,
    all_caches,
    canonical_bytes,
    clear_all_caches,
    export_manifest,
    merge_manifest,
)
from repro.stats.tight_bounds import tight_epsilon_many, tight_sample_size


def fingerprint():
    """Order-insensitive contents of every exported cache."""
    out = {}
    for name, payload in export_manifest()["caches"].items():
        if isinstance(payload, list):
            out[name] = {canonical_bytes(k): canonical_bytes(v) for k, v in payload}
        else:
            out[name] = canonical_bytes(payload)
    return out


def warm_state_a():
    tight_sample_size(0.07, 1e-2)
    tight_epsilon_many(np.array([300, 500]), 1e-2, tol=1e-5)


def warm_state_b():
    tight_sample_size(0.09, 1e-2)
    tight_epsilon_many(np.array([700, 900]), 1e-2, tol=1e-5)
    SampleSizeEstimator().plan("n > 0.7 +/- 0.1", delta=1e-2, steps=2)


class TestExport:
    def test_manifest_covers_the_registered_caches(self):
        clear_all_caches()
        warm_state_a()
        payload = export_manifest()["caches"]
        assert set(payload) <= set(all_caches())
        # Every cache with entries is shipped, proxies included.
        for name in (
            "stats.tight_bounds.tight_sample_size",
            "stats.tight_bounds.tight_epsilon_many",
            "stats.tight_bounds.epsilon_anchors",
            "stats.batch.pairs_layout",
            "stats.batch.log_factorial_table",
        ):
            assert name in payload

    def test_manifest_is_picklable(self):
        clear_all_caches()
        warm_state_b()
        blob = pickle.dumps(export_manifest())
        assert pickle.loads(blob)["format"] == "repro.cache-manifest/v1"

    def test_unknown_format_is_rejected(self):
        with pytest.raises(ValueError):
            merge_manifest({"format": "repro.cache-manifest/v999", "caches": {}})

    def test_none_and_empty_manifests_are_noops(self):
        merge_manifest(None)
        merge_manifest({})


class TestIdempotence:
    def test_merging_own_export_changes_nothing(self):
        clear_all_caches()
        warm_state_a()
        warm_state_b()
        before_fp = fingerprint()
        before_items = {
            name: cache.items()
            for name, cache in all_caches().items()
            if isinstance(cache, LRUCache)
        }
        before_info = {
            name: cache.info() for name, cache in all_caches().items()
        }
        merge_manifest(export_manifest())
        assert fingerprint() == before_fp
        for name, cache in all_caches().items():
            if isinstance(cache, LRUCache):
                after = cache.items()
                assert [k for k, _ in after] == [k for k, _ in before_items[name]]
            assert cache.info() == before_info[name]


class TestCommutativity:
    def build_manifests(self):
        clear_all_caches()
        warm_state_a()
        manifest_a = pickle.dumps(export_manifest())
        clear_all_caches()
        warm_state_b()
        manifest_b = pickle.dumps(export_manifest())
        clear_all_caches()
        return manifest_a, manifest_b

    def test_merge_order_is_irrelevant(self):
        manifest_a, manifest_b = self.build_manifests()
        merge_manifest(pickle.loads(manifest_a))
        merge_manifest(pickle.loads(manifest_b))
        ab = fingerprint()
        clear_all_caches()
        merge_manifest(pickle.loads(manifest_b))
        merge_manifest(pickle.loads(manifest_a))
        ba = fingerprint()
        assert ab == ba

    def test_merge_into_a_warm_base_commutes_too(self):
        manifest_a, manifest_b = self.build_manifests()
        tight_sample_size(0.05, 1e-2)  # the base state both runs share
        merge_manifest(pickle.loads(manifest_a))
        merge_manifest(pickle.loads(manifest_b))
        ab = fingerprint()
        clear_all_caches()
        tight_sample_size(0.05, 1e-2)
        merge_manifest(pickle.loads(manifest_b))
        merge_manifest(pickle.loads(manifest_a))
        assert fingerprint() == ab


class TestColdRestore:
    def test_cold_process_serves_tight_sample_size_bit_identical(self):
        clear_all_caches()
        donor_n = tight_sample_size(0.06, 1e-3)
        blob = pickle.dumps(export_manifest())
        clear_all_caches()  # the "cold process"
        merge_manifest(pickle.loads(blob))
        cache = all_caches()["stats.tight_bounds.tight_sample_size"]
        hits, misses = cache.info().hits, cache.info().misses
        assert tight_sample_size(0.06, 1e-3) == donor_n
        assert cache.info().hits == hits + 1  # served from the manifest,
        assert cache.info().misses == misses  # not recomputed

    def test_cold_process_serves_epsilon_sweep_bit_identical(self):
        clear_all_caches()
        sizes = np.array([400, 650, 900])
        donor = tight_epsilon_many(sizes, 1e-2, tol=1e-5)
        blob = pickle.dumps(export_manifest())
        clear_all_caches()
        merge_manifest(pickle.loads(blob))
        cache = all_caches()["stats.tight_bounds.tight_epsilon_many"]
        hits = cache.info().hits
        restored = tight_epsilon_many(sizes, 1e-2, tol=1e-5)
        assert np.array_equal(restored, donor)
        assert cache.info().hits == hits + 1

    def test_restored_plan_cache_serves_the_donor_plan(self):
        clear_all_caches()
        estimator = SampleSizeEstimator(use_exact_binomial=True)
        donor = estimator.plan("n > 0.8 +/- 0.08", delta=1e-3, steps=2)
        blob = pickle.dumps(export_manifest())
        clear_all_caches()
        merge_manifest(pickle.loads(blob))
        restored = estimator.plan("n > 0.8 +/- 0.08", delta=1e-3, steps=2)
        assert restored == donor

    def test_anchor_merge_unions_across_donors(self):
        clear_all_caches()
        tight_epsilon_many(np.array([300, 500]), 1e-2, tol=1e-5)
        manifest_a = pickle.dumps(export_manifest())
        clear_all_caches()
        tight_epsilon_many(np.array([700, 900]), 1e-2, tol=1e-5)
        manifest_b = pickle.dumps(export_manifest())
        clear_all_caches()
        merge_manifest(pickle.loads(manifest_a))
        merge_manifest(pickle.loads(manifest_b))
        anchors = all_caches()["stats.tight_bounds.epsilon_anchors"]
        (entries,) = [value for _, value in anchors.items()]
        assert {n for n, _ in entries} == {300, 500, 700, 900}
