"""Seeded property tests for the two load-bearing composition contracts.

Plain stdlib ``random`` drives the generation (no new dependencies); every
trial is wrapped so a failure names its seed — rerun with that seed to
reproduce exactly.

1. **Pairs-kernel batch-composition invariance** — the docstring promise
   of :func:`~repro.stats.batch.exact_coverage_failure_probability_pairs`
   that every element's value is a pure function of its own
   ``(n, p, epsilon, sigmas, slack)``: fuse a random batch, split it at
   random boundaries, permute it — bit-identical results however the
   surrounding batch is composed.  This is the property the parallel
   planning executor stands on when it shards sweeps across processes.

2. **Cache-manifest merge algebra** — :func:`repro.stats.cache.merge_manifest`
   must be idempotent (a cache's own export folds back in as a no-op)
   and commutative at the contents level (random worker manifests merged
   in any interleaving converge on identical entries).
"""

from __future__ import annotations

import random

import numpy as np

import repro.stats.cache as cache_mod
from repro.stats.batch import exact_coverage_failure_probability_pairs
from repro.stats.cache import (
    MANIFEST_FORMAT,
    LRUCache,
    all_cache_info,
    export_manifest,
    merge_manifest,
    register_cache,
)

TRIAL_SEEDS = range(10)


def _seeded(trial, seed: int) -> None:
    """Run ``trial(rng)``; on failure, re-raise with the seed attached."""
    try:
        trial(random.Random(seed))
    except AssertionError as err:
        raise AssertionError(f"[reproduce with seed={seed}] {err}") from err


# ---------------------------------------------------------------------------
# 1. Pairs-kernel batch-composition invariance
# ---------------------------------------------------------------------------


def _random_triples(rng: random.Random, size: int):
    ns, ps, epss = [], [], []
    for _ in range(size):
        ns.append(rng.randrange(1, 2000))
        roll = rng.random()
        if roll < 0.05:
            ps.append(0.0)  # boundary: probability mass collapses to zero
        elif roll < 0.10:
            ps.append(1.0)
        else:
            ps.append(rng.random())
        epss.append(rng.uniform(1e-4, 0.5))
    return np.asarray(ns), np.asarray(ps), np.asarray(epss)


def _random_window(rng: random.Random):
    """Either the default window or a random-but-shared (sigmas, slack)."""
    if rng.random() < 0.5:
        return {}
    return {
        "window_sigmas": rng.uniform(3.0, 10.0),
        "window_slack": rng.randrange(1, 8),
    }


def _random_partition(rng: random.Random, size: int) -> list[slice]:
    cuts = sorted(rng.sample(range(1, size), k=min(rng.randrange(1, 6), size - 1)))
    bounds = [0, *cuts, size]
    return [slice(a, b) for a, b in zip(bounds, bounds[1:])]


def test_pairs_kernel_is_invariant_under_batch_splits():
    def trial(rng: random.Random) -> None:
        size = rng.randrange(8, 64)
        ns, ps, epss = _random_triples(rng, size)
        window = _random_window(rng)
        fused = exact_coverage_failure_probability_pairs(ns, ps, epss, **window)
        pieces = [
            exact_coverage_failure_probability_pairs(
                ns[part], ps[part], epss[part], **window
            )
            for part in _random_partition(rng, size)
        ]
        chunked = np.concatenate(pieces)
        assert np.array_equal(fused, chunked), (
            f"split changed {np.sum(fused != chunked)} of {size} elements "
            f"(max delta {np.max(np.abs(fused - chunked)):.3e}, window={window})"
        )

    for seed in TRIAL_SEEDS:
        _seeded(trial, seed)


def test_pairs_kernel_is_invariant_under_permutation():
    def trial(rng: random.Random) -> None:
        size = rng.randrange(8, 64)
        ns, ps, epss = _random_triples(rng, size)
        window = _random_window(rng)
        fused = exact_coverage_failure_probability_pairs(ns, ps, epss, **window)
        order = list(range(size))
        rng.shuffle(order)
        idx = np.asarray(order)
        shuffled = exact_coverage_failure_probability_pairs(
            ns[idx], ps[idx], epss[idx], **window
        )
        unshuffled = np.empty_like(shuffled)
        unshuffled[idx] = shuffled
        assert np.array_equal(fused, unshuffled), (
            f"permutation changed {np.sum(fused != unshuffled)} of {size} elements"
        )

    for seed in TRIAL_SEEDS:
        _seeded(trial, seed)


def test_pairs_kernel_singletons_match_fused_batch():
    """The extreme split: every element alone equals its fused value."""

    def trial(rng: random.Random) -> None:
        size = rng.randrange(4, 16)
        ns, ps, epss = _random_triples(rng, size)
        fused = exact_coverage_failure_probability_pairs(ns, ps, epss)
        for i in range(size):
            alone = exact_coverage_failure_probability_pairs(
                ns[i : i + 1], ps[i : i + 1], epss[i : i + 1]
            )
            assert alone[0] == fused[i], (
                f"element {i} (n={ns[i]}, p={ps[i]:.6f}, eps={epss[i]:.6f}): "
                f"alone={alone[0]!r} fused={fused[i]!r}"
            )

    for seed in TRIAL_SEEDS:
        _seeded(trial, seed)


# ---------------------------------------------------------------------------
# 2. Cache-manifest merge algebra
# ---------------------------------------------------------------------------

_TEMP_PREFIX = "tests.properties."


def _with_temp_caches(count: int):
    names = [f"{_TEMP_PREFIX}cache{i}" for i in range(count)]
    caches = {name: register_cache(name, LRUCache(maxsize=256)) for name in names}
    return names, caches


def _drop_temp_caches(names) -> None:
    with cache_mod._REGISTRY_LOCK:
        for name in names:
            cache_mod._REGISTRY.pop(name, None)


def _random_worker_manifest(rng: random.Random, names) -> dict:
    """A plausible worker export: per-cache entry lists, overlapping keys."""
    payload = {}
    for name in names:
        entries = []
        for _ in range(rng.randrange(0, 12)):
            key = (rng.randrange(40), rng.choice("abc"))
            if rng.random() < 0.8:
                value = round(rng.uniform(0.0, 1.0), 6)
            else:
                value = [rng.randrange(10)] * rng.randrange(1, 4)
            entries.append((key, value))
        payload[name] = entries
    return {"format": MANIFEST_FORMAT, "caches": payload}


def _contents(caches) -> dict:
    return {name: dict(cache.items()) for name, cache in caches.items()}


def test_manifest_merge_is_commutative_under_random_interleavings():
    def trial(rng: random.Random) -> None:
        names, caches = _with_temp_caches(3)
        try:
            manifests = [
                _random_worker_manifest(rng, names)
                for _ in range(rng.randrange(2, 6))
            ]
            for manifest in manifests:
                merge_manifest(manifest)
            forward = _contents(caches)

            for cache in caches.values():
                cache.clear()
            shuffled = list(manifests)
            rng.shuffle(shuffled)
            for manifest in shuffled:
                merge_manifest(manifest)
            assert _contents(caches) == forward, (
                f"{len(manifests)} worker manifests merged in two orders "
                "left different registry contents"
            )
        finally:
            _drop_temp_caches(names)

    for seed in TRIAL_SEEDS:
        _seeded(trial, seed)


def test_manifest_merge_is_idempotent():
    def trial(rng: random.Random) -> None:
        names, caches = _with_temp_caches(2)
        try:
            for manifest in (
                _random_worker_manifest(rng, names),
                _random_worker_manifest(rng, names),
            ):
                merge_manifest(manifest)
            before = _contents(caches)
            stats_before = {name: caches[name].info() for name in names}

            exported = export_manifest()
            merge_manifest(exported)
            merge_manifest(exported)  # twice: still a no-op

            assert _contents(caches) == before, "self-merge changed entries"
            assert {name: caches[name].info() for name in names} == stats_before, (
                "self-merge disturbed hit/miss statistics"
            )
        finally:
            _drop_temp_caches(names)

    for seed in TRIAL_SEEDS:
        _seeded(trial, seed)


def test_full_registry_manifest_self_merge_is_a_no_op():
    """The real registry (plan cache, layout/table codecs) obeys the law too."""
    # Warm the kernel-layer caches with real work first.
    exact_coverage_failure_probability_pairs(
        np.asarray([50, 200, 1000]),
        np.asarray([0.3, 0.5, 0.9]),
        np.asarray([0.05, 0.02, 0.01]),
    )
    exported = export_manifest()
    before = all_cache_info()
    merge_manifest(exported)
    assert all_cache_info() == before
