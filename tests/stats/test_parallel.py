"""Worker-count invariance: the parallel executor never changes results.

The acceptance contract of the parallel-planning PR, asserted (not just
benchmarked): ``workers=`` produces results identical to serial for
``tight_sample_size``, ``tight_epsilon_many`` (element-wise, with the
probe certificates re-checked) and full ``SampleSizeEstimator.plan``
across all three adaptivity modes — and the parent process's caches end
up warm exactly as a serial run would leave them.
"""

import numpy as np
import pytest

from repro.core.engine import CIEngine
from repro.core.estimators.api import SampleSizeEstimator
from repro.exceptions import InvalidParameterError
from repro.stats.batch import log_factorial_table, shared_table_descriptor
from repro.stats.cache import all_caches, clear_all_caches
from repro.stats.parallel import (
    WORKERS_ENV,
    PlanningExecutor,
    get_executor,
    resolve_workers,
    shutdown_executors,
)
from repro.stats.tight_bounds import (
    epsilon_sweep_shards,
    estimate_probe_cost,
    exceeds_delta_many,
    tight_epsilon_many,
    tight_sample_size,
)

SIZES = np.unique(np.linspace(300, 1600, 10).astype(int))
DELTA, TOL = 1e-2, 1e-5


class TestResolveWorkers:
    def test_serial_spellings(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        for value in (None, 0, 1, "serial", "none", "0", "1", ""):
            assert resolve_workers(value) == 1

    def test_auto_uses_the_cpu_count(self):
        import os

        assert resolve_workers("auto") == max(1, os.cpu_count() or 1)

    def test_explicit_counts(self):
        assert resolve_workers(3) == 3
        assert resolve_workers("4") == 4

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "2")
        assert resolve_workers(None) == 2
        assert resolve_workers("serial") == 1  # explicit beats env
        monkeypatch.setenv(WORKERS_ENV, "serial")
        assert resolve_workers(None) == 1

    def test_invalid_values_raise(self):
        for value in ("bogus", -1, 2.5, True):
            with pytest.raises(InvalidParameterError):
                resolve_workers(value)


class TestShardPlanning:
    def test_shards_partition_the_unique_sizes(self):
        shards = epsilon_sweep_shards(SIZES, 4)
        assert 1 <= len(shards) <= 4
        assert all(len(s) for s in shards)
        assert np.array_equal(np.concatenate(shards), np.unique(SIZES))

    def test_shards_balance_estimated_cost(self):
        sizes = np.arange(100, 5000, 37)
        shards = epsilon_sweep_shards(sizes, 4)
        costs = [estimate_probe_cost(s).sum() for s in shards]
        assert max(costs) < 2.0 * min(costs)

    def test_more_shards_than_sizes_degrades_gracefully(self):
        shards = epsilon_sweep_shards(np.array([500, 700]), 8)
        assert len(shards) == 2

    def test_invalid_shard_count_raises(self):
        with pytest.raises(InvalidParameterError):
            epsilon_sweep_shards(SIZES, 0)


class TestExecutorParity:
    def test_epsilon_sweep_identical_and_certified(self):
        clear_all_caches()
        serial = tight_epsilon_many(SIZES, DELTA, tol=TOL)
        clear_all_caches()
        with PlanningExecutor(2) as executor:
            sharded = executor.tight_epsilon_many(SIZES, DELTA, tol=TOL)
        assert np.array_equal(serial, sharded)
        # The probe certificates hold on the sharded result too.
        assert not exceeds_delta_many(SIZES, sharded, DELTA).any()
        assert exceeds_delta_many(SIZES, sharded - TOL, DELTA).all()

    def test_float32_epsilon_sweep_identical_and_certified(self):
        clear_all_caches()
        serial = tight_epsilon_many(SIZES, DELTA, tol=TOL, precision="float32")
        clear_all_caches()
        with PlanningExecutor(2) as executor:
            sharded = executor.tight_epsilon_many(
                SIZES, DELTA, tol=TOL, precision="float32"
            )
        assert np.array_equal(serial, sharded)
        # Certified against full-fidelity float64 probes either way.
        assert not exceeds_delta_many(SIZES, sharded, DELTA).any()
        assert exceeds_delta_many(SIZES, sharded - TOL, DELTA).all()
        # And within one bracket width of the float64 tier's answer.
        float64 = tight_epsilon_many(SIZES, DELTA, tol=TOL)
        assert np.all(np.abs(sharded - float64) <= 2 * TOL)

    def test_pool_lifecycle_publishes_and_releases_the_shared_table(self):
        clear_all_caches()
        log_factorial_table(4096)  # a table worth publishing
        with PlanningExecutor(2) as executor:
            executor.tight_epsilon_many(SIZES, DELTA, tol=TOL)
            name, limit = shared_table_descriptor()
            assert name is not None and limit >= 4096
        shutdown_executors()  # owns the unlink side of the lifecycle
        assert shared_table_descriptor() == (None, -1)

    def test_sharded_sweep_leaves_the_parent_warm(self):
        clear_all_caches()
        with PlanningExecutor(2) as executor:
            sharded = executor.tight_epsilon_many(SIZES, DELTA, tol=TOL)
        cache = all_caches()["stats.tight_bounds.tight_epsilon_many"]
        hits = cache.info().hits
        assert np.array_equal(tight_epsilon_many(SIZES, DELTA, tol=TOL), sharded)
        assert cache.info().hits == hits + 1
        anchors = all_caches()["stats.tight_bounds.epsilon_anchors"]
        (entries,) = [value for _, value in anchors.items()]
        assert {n for n, _ in entries} == set(np.unique(SIZES).tolist())

    def test_executor_serves_the_memoized_sweep_without_a_pool(self):
        clear_all_caches()
        serial = tight_epsilon_many(SIZES, DELTA, tol=TOL)
        executor = PlanningExecutor(2)
        try:
            assert np.array_equal(
                executor.tight_epsilon_many(SIZES, DELTA, tol=TOL), serial
            )
            assert executor._pool is None  # cache hit — no pool was spawned
        finally:
            executor.close()

    def test_tight_sample_size_identical(self):
        clear_all_caches()
        serial = [tight_sample_size(0.06, 1e-3), tight_sample_size(0.08, 1e-3)]
        clear_all_caches()
        with PlanningExecutor(2) as executor:
            sharded = executor.tight_sample_size_many([(0.06, 1e-3), (0.08, 1e-3)])
            assert sharded == serial
            assert executor.tight_sample_size(0.06, 1e-3) == serial[0]
        cache = all_caches()["stats.tight_bounds.tight_sample_size"]
        hits, misses = cache.info().hits, cache.info().misses
        assert tight_sample_size(0.08, 1e-3) == serial[1]  # warm parent
        assert (cache.info().hits, cache.info().misses) == (hits + 1, misses)

    def test_serial_executor_never_spawns(self):
        executor = PlanningExecutor("serial")
        result = executor.tight_epsilon_many(SIZES, DELTA, tol=TOL)
        assert executor._pool is None
        assert np.array_equal(result, tight_epsilon_many(SIZES, DELTA, tol=TOL))

    def test_spawn_start_method_parity(self):
        clear_all_caches()
        serial = tight_epsilon_many(SIZES[:4], DELTA, tol=TOL)
        clear_all_caches()
        with PlanningExecutor(2, start_method="spawn") as executor:
            sharded = executor.tight_epsilon_many(SIZES[:4], DELTA, tol=TOL)
        assert np.array_equal(serial, sharded)


PLAN_CASES = [
    ("none", "n > 0.8 +/- 0.08 /\\ d < 0.3 +/- 0.1"),
    ("full", "n > 0.8 +/- 0.08 /\\ d < 0.3 +/- 0.1"),
    ("firstChange", "n - o > 0.02 +/- 0.1 /\\ d < 0.25 +/- 0.1"),
]


class TestEstimatorWorkers:
    @pytest.mark.parametrize("adaptivity,condition", PLAN_CASES)
    def test_plan_identical_to_serial(self, adaptivity, condition):
        clear_all_caches()
        serial = SampleSizeEstimator(use_exact_binomial=True).plan(
            condition, delta=1e-3, adaptivity=adaptivity, steps=4
        )
        clear_all_caches()
        parallel = SampleSizeEstimator(use_exact_binomial=True, workers=2).plan(
            condition, delta=1e-3, adaptivity=adaptivity, steps=4
        )
        assert parallel == serial

    def test_workers_is_not_part_of_the_plan_cache_key(self):
        clear_all_caches()
        serial_plan = SampleSizeEstimator(use_exact_binomial=True).plan(
            "n > 0.8 +/- 0.08", delta=1e-3, steps=2
        )
        parallel_plan = SampleSizeEstimator(use_exact_binomial=True, workers=2).plan(
            "n > 0.8 +/- 0.08", delta=1e-3, steps=2
        )
        assert parallel_plan is serial_plan  # cache hit, no pool engaged

    def test_export_config_round_trips_workers(self):
        estimator = SampleSizeEstimator(workers="auto")
        config = estimator.export_config()
        assert config["workers"] == "auto"
        assert SampleSizeEstimator(**config).workers == "auto"

    def test_invalid_workers_rejected_eagerly(self):
        with pytest.raises(InvalidParameterError):
            SampleSizeEstimator(workers="many")

    def test_env_configures_the_default(self, monkeypatch):
        clear_all_caches()
        serial = SampleSizeEstimator(use_exact_binomial=True).plan(
            "n > 0.75 +/- 0.09", delta=1e-3, steps=2
        )
        clear_all_caches()
        monkeypatch.setenv(WORKERS_ENV, "2")
        parallel = SampleSizeEstimator(use_exact_binomial=True).plan(
            "n > 0.75 +/- 0.09", delta=1e-3, steps=2
        )
        assert parallel == serial


class TestEngineWiring:
    def make_world(self, workers=None):
        from repro.core.script.config import CIScript
        from repro.core.testset import Testset
        from repro.ml.models.simulated import ModelPairSpec, simulate_model_pair

        script = CIScript.from_dict(
            {
                "script": "./test_model.py",
                "condition": "d < 0.25 +/- 0.1 /\\ n - o > 0.05 +/- 0.1",
                "reliability": 0.999,
                "mode": "fp-free",
                "adaptivity": "full",
                "steps": 4,
            }
        )
        plan = SampleSizeEstimator().plan(
            script.condition, delta=script.delta,
            adaptivity=script.adaptivity, steps=script.steps,
        )
        pair = simulate_model_pair(
            ModelPairSpec(old_accuracy=0.80, new_accuracy=0.84, difference=0.1),
            n_examples=plan.pool_size,
            seed=3,
        )
        engine = CIEngine(
            script, Testset(labels=pair.labels), pair.old_model, workers=workers
        )
        return engine, pair

    def test_engine_workers_reach_the_estimator(self):
        engine, _ = self.make_world(workers=2)
        assert engine.estimator.workers == 2

    def test_custom_estimator_is_rebuilt_with_workers(self):
        from repro.core.script.config import CIScript
        from repro.core.testset import Testset
        from repro.ml.models.simulated import ModelPairSpec, simulate_model_pair

        script = CIScript.from_dict(
            {
                "script": "./test_model.py",
                "condition": "n > 0.6 +/- 0.1",
                "reliability": 0.999,
                "mode": "fp-free",
                "adaptivity": "full",
                "steps": 2,
            }
        )
        estimator = SampleSizeEstimator(use_exact_binomial=True)
        plan = estimator.plan(
            script.condition, delta=script.delta,
            adaptivity=script.adaptivity, steps=script.steps,
        )
        pair = simulate_model_pair(
            ModelPairSpec(old_accuracy=0.80, new_accuracy=0.80, difference=0.0),
            n_examples=plan.pool_size,
            seed=3,
        )
        engine = CIEngine(
            script,
            Testset(labels=pair.labels),
            pair.old_model,
            estimator=estimator,
            workers=2,
        )
        assert engine.estimator.workers == 2
        assert engine.estimator.use_exact_binomial is True

    def test_parallel_engine_results_match_serial(self):
        serial_engine, pair = self.make_world()
        parallel_engine, _ = self.make_world(workers=2)
        assert parallel_engine.submit(pair.new_model) == serial_engine.submit(
            pair.new_model
        )


class TestSharedExecutors:
    def test_get_executor_is_shared_per_count(self):
        assert get_executor(2) is get_executor(2)
        assert get_executor(2) is not get_executor(3)
