"""Tests for the Monte-Carlo coverage harness."""

import pytest

from repro.exceptions import SimulationError
from repro.stats.inequalities import BennettInequality, HoeffdingInequality
from repro.stats.simulation import coverage_experiment, paired_coverage_experiment


class TestCoverageExperiment:
    def test_hoeffding_bound_is_valid(self):
        ineq = HoeffdingInequality(two_sided=True)
        n, delta = 2000, 0.01
        report = coverage_experiment(
            true_accuracy=0.9,
            n_samples=n,
            predicted_epsilon=ineq.epsilon(n, delta),
            delta=delta,
            n_replicates=20_000,
            seed=0,
        )
        assert report.bound_is_valid
        assert report.observed_failure_rate <= delta

    def test_report_fields_consistent(self):
        report = coverage_experiment(0.8, 500, 0.05, 0.01, 1000, seed=1)
        assert report.n_samples == 500
        assert report.n_replicates == 1000
        assert report.mean_abs_error <= report.empirical_quantile_error

    def test_slack_factor_above_one_for_valid_bound(self):
        ineq = HoeffdingInequality(two_sided=True)
        report = coverage_experiment(
            0.9, 1000, ineq.epsilon(1000, 0.01), 0.01, 5000, seed=2
        )
        assert report.slack_factor >= 1.0

    def test_tiny_epsilon_fails_coverage(self):
        report = coverage_experiment(0.5, 100, 1e-4, 0.01, 2000, seed=3)
        assert not report.bound_is_valid
        assert report.observed_failure_rate > 0.5

    def test_deterministic_given_seed(self):
        a = coverage_experiment(0.7, 200, 0.05, 0.05, 500, seed=4)
        b = coverage_experiment(0.7, 200, 0.05, 0.05, 500, seed=4)
        assert a == b


class TestPairedCoverage:
    def test_bennett_bound_is_valid_in_its_regime(self):
        p, delta = 0.1, 0.01
        bennett = BennettInequality(variance_bound=p, two_sided=True)
        n = int(bennett.sample_size(0.02, delta)) + 1
        report = paired_coverage_experiment(
            true_gain=0.01,
            disagreement_rate=p,
            n_samples=n,
            predicted_epsilon=0.02,
            delta=delta,
            n_replicates=20_000,
            seed=5,
        )
        assert report.bound_is_valid
        assert report.observed_failure_rate <= delta

    def test_gain_exceeding_disagreement_rejected(self):
        with pytest.raises(SimulationError, match="exceeds"):
            paired_coverage_experiment(0.2, 0.1, 100, 0.01, 0.01, 100)

    def test_low_variance_concentrates_harder(self):
        common = dict(
            true_gain=0.0, n_samples=2000, predicted_epsilon=0.02,
            delta=0.01, n_replicates=10_000, seed=6,
        )
        low = paired_coverage_experiment(disagreement_rate=0.05, **common)
        high = paired_coverage_experiment(disagreement_rate=0.5, **common)
        assert low.empirical_quantile_error < high.empirical_quantile_error

    def test_zero_disagreement_zero_error(self):
        report = paired_coverage_experiment(
            0.0, 0.0, 100, 0.01, 0.01, 500, seed=7
        )
        assert report.empirical_quantile_error == 0.0
