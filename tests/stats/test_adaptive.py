"""Tests for the Ladder mechanism and the adaptive attacker."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.stats.adaptive import AdaptiveAttacker, Ladder, ThresholdAttacker


class TestLadder:
    def test_first_submission_sets_best(self):
        ladder = Ladder(step_size=0.01)
        assert ladder.submit(0.5) == pytest.approx(0.5)

    def test_small_improvement_not_released(self):
        ladder = Ladder(step_size=0.01)
        ladder.submit(0.5)
        assert ladder.submit(0.505) == pytest.approx(0.5)

    def test_large_improvement_released_rounded(self):
        ladder = Ladder(step_size=0.01)
        ladder.submit(0.5)
        assert ladder.submit(0.523) == pytest.approx(0.52)

    def test_history_records_every_submission(self):
        ladder = Ladder(step_size=0.05)
        for score in (0.4, 0.41, 0.5):
            ladder.submit(score)
        assert len(ladder.history) == 3

    def test_best_monotone(self):
        ladder = Ladder(step_size=0.02)
        rng = np.random.default_rng(0)
        history = [ladder.submit(s) for s in rng.random(50)]
        assert all(b >= a for a, b in zip(history, history[1:]))


class TestThresholdAttacker:
    def test_initial_accuracy_near_base(self):
        attacker = ThresholdAttacker(n_testset=20_000, base_accuracy=0.5, seed=0)
        assert attacker.empirical_accuracy == pytest.approx(0.5, abs=0.02)

    def test_invalid_base_accuracy(self):
        with pytest.raises(SimulationError):
            ThresholdAttacker(n_testset=100, base_accuracy=1.0)

    def test_proposal_size(self):
        attacker = ThresholdAttacker(
            n_testset=1000, block_fraction=0.05, seed=0
        )
        indices, candidate = attacker.propose()
        assert len(indices) == 50 and len(candidate) == 50

    def test_rejected_proposal_leaves_state(self):
        attacker = ThresholdAttacker(n_testset=1000, seed=0)
        before = attacker.correct.copy()
        indices, candidate = attacker.propose()
        attacker.apply(indices, candidate, accept=False)
        np.testing.assert_array_equal(attacker.correct, before)


class TestAdaptiveAttack:
    def test_attack_overfits_small_testset(self):
        attacker = ThresholdAttacker(n_testset=500, base_accuracy=0.5, seed=1)
        trace = AdaptiveAttacker(attacker).run(100)
        # True accuracy never moves; empirical ratchets upward.
        assert trace.true_scores[-1] == 0.5
        assert trace.final_overfit_gap > 0.05

    def test_empirical_ratchet_is_monotone(self):
        attacker = ThresholdAttacker(n_testset=500, base_accuracy=0.5, seed=2)
        trace = AdaptiveAttacker(attacker).run(50)
        scores = trace.empirical_scores
        assert all(b >= a - 1e-12 for a, b in zip(scores, scores[1:]))

    def test_bigger_testset_resists_better(self):
        small_gap = AdaptiveAttacker(
            ThresholdAttacker(n_testset=400, seed=3)
        ).run(64).final_overfit_gap
        large_gap = AdaptiveAttacker(
            ThresholdAttacker(n_testset=40_000, seed=3)
        ).run(64).final_overfit_gap
        assert large_gap < small_gap

    def test_trace_counts_queries(self):
        attacker = ThresholdAttacker(n_testset=200, seed=0)
        trace = AdaptiveAttacker(attacker).run(17)
        assert trace.queries == 17
        assert len(trace.empirical_scores) == 17

    def test_max_gap_at_least_final_gap(self):
        attacker = ThresholdAttacker(n_testset=300, seed=5)
        trace = AdaptiveAttacker(attacker).run(40)
        assert trace.max_overfit_gap >= trace.final_overfit_gap - 1e-12
