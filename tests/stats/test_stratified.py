"""Tests for stratified accuracy estimation."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.stats.stratified import (
    StratumSpec,
    plan_stratified,
    stratified_estimate,
)
from repro.utils.rng import ensure_rng

SKEWED = [StratumSpec("common", 0.9), StratumSpec("rare", 0.1)]
BALANCED = [StratumSpec("a", 0.5), StratumSpec("b", 0.5)]


class TestPlanning:
    def test_weights_must_sum_to_one(self):
        with pytest.raises(InvalidParameterError, match="sum to 1"):
            plan_stratified([StratumSpec("a", 0.5)], 100, 0.01)

    def test_budget_fully_allocated(self):
        plan = plan_stratified(SKEWED, 1000, 0.01)
        assert plan.total_samples == 1000

    def test_optimized_oversamples_rare_strata(self):
        optimized = plan_stratified(SKEWED, 10_000, 0.01, allocation="optimized")
        proportional = plan_stratified(SKEWED, 10_000, 0.01, allocation="proportional")
        # rare stratum (index 1) gets more than its proportional share.
        assert optimized.samples[1] > proportional.samples[1]

    def test_optimized_combined_tolerance_never_worse(self):
        for strata in (SKEWED, BALANCED, [StratumSpec("x", 0.98), StratumSpec("y", 0.02)]):
            optimized = plan_stratified(strata, 5000, 0.01, allocation="optimized")
            proportional = plan_stratified(strata, 5000, 0.01, allocation="proportional")
            assert optimized.combined_tolerance <= proportional.combined_tolerance + 1e-12

    def test_balanced_allocations_agree(self):
        optimized = plan_stratified(BALANCED, 1000, 0.01, allocation="optimized")
        proportional = plan_stratified(BALANCED, 1000, 0.01, allocation="proportional")
        assert optimized.samples == proportional.samples

    def test_invalid_allocation_name(self):
        with pytest.raises(InvalidParameterError):
            plan_stratified(BALANCED, 100, 0.01, allocation="magic")


class TestEstimation:
    def test_weighted_combination(self):
        plan = plan_stratified(SKEWED, 2000, 0.01)
        samples = [
            np.ones(plan.samples[0]),            # common stratum: 100% correct
            np.zeros(plan.samples[1]),           # rare stratum: 0% correct
        ]
        estimate, interval = stratified_estimate(plan, samples)
        assert estimate == pytest.approx(0.9)
        assert interval.contains(0.9)
        assert interval.width == pytest.approx(2 * plan.combined_tolerance)

    def test_undersized_stratum_rejected(self):
        plan = plan_stratified(SKEWED, 2000, 0.01)
        with pytest.raises(InvalidParameterError, match="rare"):
            stratified_estimate(plan, [np.ones(plan.samples[0]), np.ones(1)])

    def test_wrong_stratum_count(self):
        plan = plan_stratified(SKEWED, 2000, 0.01)
        with pytest.raises(InvalidParameterError, match="expected 2"):
            stratified_estimate(plan, [np.ones(plan.samples[0])])

    def test_coverage_monte_carlo(self):
        """The combined interval covers the true weighted accuracy."""
        plan = plan_stratified(SKEWED, 3000, 0.05)
        true = {"common": 0.92, "rare": 0.55}
        true_weighted = 0.9 * 0.92 + 0.1 * 0.55
        rng = ensure_rng(0)
        misses = 0
        trials = 400
        for _ in range(trials):
            samples = [
                rng.random(n) < true[spec.name]
                for spec, n in zip(plan.strata, plan.samples)
            ]
            _, interval = stratified_estimate(plan, samples)
            misses += not interval.contains(true_weighted)
        assert misses / trials <= 0.05 + 0.03  # delta plus MC slack


class TestTargetWeights:
    def test_macro_target_big_win_on_skew(self):
        """Macro-averaged targets over skewed populations are where
        stratification matters (the paper's F1 remark)."""
        strata = [StratumSpec("common", 0.99), StratumSpec("rare", 0.01)]
        macro = (0.5, 0.5)
        proportional = plan_stratified(
            strata, 10_000, 0.01, allocation="proportional", target_weights=macro
        )
        optimized = plan_stratified(
            strata, 10_000, 0.01, allocation="optimized", target_weights=macro
        )
        assert (
            proportional.combined_tolerance / optimized.combined_tolerance > 3.0
        )

    def test_target_weights_validated(self):
        with pytest.raises(InvalidParameterError, match="target_weights"):
            plan_stratified(
                SKEWED, 100, 0.01, target_weights=(0.5, 0.2, 0.3)
            )
        with pytest.raises(InvalidParameterError, match="sum to 1"):
            plan_stratified(SKEWED, 100, 0.01, target_weights=(0.9, 0.2))

    def test_estimate_uses_target_weights(self):
        strata = [StratumSpec("common", 0.9), StratumSpec("rare", 0.1)]
        plan = plan_stratified(
            strata, 2000, 0.01, target_weights=(0.5, 0.5)
        )
        samples = [np.ones(plan.samples[0]), np.zeros(plan.samples[1])]
        estimate, _ = stratified_estimate(plan, samples)
        assert estimate == pytest.approx(0.5)
