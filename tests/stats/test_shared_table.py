"""Shared log-factorial table: lifecycle, certification, fault fallback.

The table is the hottest read-only structure in the planning process;
PR-sized sweeps made every worker materialize its own copy.  The shared
segment changes the manifest join from "regrow to the max" to "attach
and extend": the owner publishes one read-only mmap, workers attach it
through the ``shm.attach`` fault point, spot-check it against
``math.lgamma`` (shared state is adopted certified, not trusted), and
extend privately past the shared prefix when they need more.  Every
failure path — injected fault, dead segment, corrupt contents — must
fall back to the plain private regrow with identical results.
"""

from __future__ import annotations

import math
from multiprocessing import shared_memory

import numpy as np
import pytest

import repro.stats.batch as batch
from repro.reliability.faults import FaultRule, injected_faults
from repro.stats.batch import (
    attach_shared_table,
    log_factorial_table,
    publish_shared_table,
    release_shared_table,
    shared_table_descriptor,
)
from repro.stats.cache import (
    all_cache_info,
    clear_all_caches,
    export_manifest,
    merge_manifest,
)

TABLE_CACHE = "stats.batch.log_factorial_table"


@pytest.fixture(autouse=True)
def _isolated_table():
    """Start and end with a fresh table and no shared segment."""
    clear_all_caches()
    release_shared_table()
    yield
    clear_all_caches()
    release_shared_table()


def _forget_private_table():
    """Play the worker role in-process: drop the private table.

    Returns the owner's segment bookkeeping so the test can restore it
    (the autouse fixture then unlinks the segment through the owner).
    """
    saved = dict(batch._SHARED_TABLE)
    batch._SHARED_TABLE.update(
        {"shm": None, "name": None, "owner": False, "limit": -1}
    )
    batch._LOG_FACTORIAL = np.zeros(1, dtype=np.float64)
    return saved


def _restore_owner(saved):
    """Put the owner's bookkeeping back (and re-register with the tracker).

    In production the attacher is a *different* process, so its tracker
    unregistration never collides with the owner's unlink.  The in-process
    role-play here unregisters the owner's own segment; re-register it so
    the eventual unlink doesn't trip the tracker daemon.
    """
    if saved.get("owner") and saved.get("shm") is not None:
        try:
            from multiprocessing import resource_tracker

            resource_tracker.register(saved["shm"]._name, "shared_memory")
        except Exception:
            pass
    batch._SHARED_TABLE.update(saved)


def test_publish_attach_extend_roundtrip():
    log_factorial_table(4096)
    name, limit = publish_shared_table()
    assert name is not None and limit >= 4096
    # Republishing while the segment still covers the table reuses it.
    assert publish_shared_table() == (name, limit)
    # A process whose table already covers the limit declines to attach.
    assert attach_shared_table(name, limit) is False

    saved = _forget_private_table()
    try:
        assert attach_shared_table(name, limit) is True
        assert shared_table_descriptor() == (name, limit)
        table = log_factorial_table(limit)  # served straight off the mmap
        assert not table.flags.writeable
        assert table[0] == 0.0
        assert table[limit] == math.lgamma(limit + 1.0)
        # Extending past the shared prefix regrows privately and keeps
        # every shared entry bit-identical.
        bigger = log_factorial_table(limit + 10)
        assert bigger.flags.writeable
        assert np.array_equal(bigger[: limit + 1], table)
        assert bigger[limit + 10] == math.lgamma(limit + 11.0)
        release_shared_table()
        assert shared_table_descriptor() == (None, -1)
    finally:
        _restore_owner(saved)


def test_manifest_merge_attaches_the_published_segment():
    log_factorial_table(2048)
    name, limit = publish_shared_table()
    manifest = export_manifest()

    saved = _forget_private_table()
    try:
        merge_manifest(manifest)
        attached_name, attached_limit = shared_table_descriptor()
        assert attached_name == name and attached_limit >= limit
        assert len(batch._LOG_FACTORIAL) - 1 >= limit
        release_shared_table()
    finally:
        _restore_owner(saved)


def test_injected_attach_fault_falls_back_to_private_regrow():
    """The ``shm.attach`` chaos site: a failed attach never changes results."""
    log_factorial_table(2048)
    _, limit = publish_shared_table()
    manifest = export_manifest()
    expected = np.array(batch._LOG_FACTORIAL)

    saved = _forget_private_table()
    try:
        with injected_faults([FaultRule(site="shm.attach", action="raise", at=1)]):
            merge_manifest(manifest)
        # No mapping was installed ...
        assert shared_table_descriptor() == (None, -1)
        # ... yet the join still covered the manifest's limit, privately,
        # with entries bit-identical to the owner's.
        table = batch._LOG_FACTORIAL
        assert len(table) - 1 >= limit
        assert np.array_equal(table[: limit + 1], expected[: limit + 1])
    finally:
        _restore_owner(saved)


def test_attach_rejects_a_corrupt_segment():
    """The lgamma spot-check: garbage shared state is refused, not adopted."""
    limit = 512
    segment = shared_memory.SharedMemory(create=True, size=(limit + 1) * 8)
    try:
        np.ndarray((limit + 1,), dtype=np.float64, buffer=segment.buf)[:] = 1.0
        with pytest.raises(OSError, match="spot-check"):
            attach_shared_table(segment.name, limit)
        assert shared_table_descriptor() == (None, -1)
    finally:
        try:
            # The refused attach already unregistered the name (see
            # _restore_owner); re-register so our unlink is tracked.
            from multiprocessing import resource_tracker

            resource_tracker.register(segment._name, "shared_memory")
        except Exception:
            pass
        segment.close()
        segment.unlink()


def test_attach_to_a_dead_segment_raises_cleanly():
    log_factorial_table(256)
    name, limit = publish_shared_table()
    release_shared_table()  # owner unlinks: the name is now dangling

    saved = _forget_private_table()
    try:
        with pytest.raises((OSError, FileNotFoundError, ValueError)):
            attach_shared_table(name, limit)
    finally:
        _restore_owner(saved)


def test_table_counters_are_real():
    """``repro ops`` reports genuine serve/grow traffic, not placeholders."""
    info = all_cache_info()[TABLE_CACHE]
    assert (info.hits, info.misses) == (0, 0)
    log_factorial_table(100)  # grow
    log_factorial_table(50)  # served by the existing table
    log_factorial_table(80)  # served
    log_factorial_table(200)  # grow again
    info = all_cache_info()[TABLE_CACHE]
    assert info.misses == 2
    assert info.hits == 2
    assert info.currsize == len(batch._LOG_FACTORIAL)
    clear_all_caches()
    info = all_cache_info()[TABLE_CACHE]
    assert (info.hits, info.misses) == (0, 0)
