"""Seeded property tests for the precision tiers and kernel impls.

Plain stdlib ``random`` drives the generation (no new dependencies);
every trial is wrapped so a failure names its seed — rerun with that
seed to reproduce exactly.

The contracts under test, in guarantee order:

1. **Fused float64 is the float64** — the cache-blocked fused kernel is
   bit-identical to the pre-fusion reference loop on every random batch,
   so turning the optimization on is unobservable.
2. **Float32 is certified, not trusted** — the float32 tier's returned
   absolute error bound really contains ``|value32 - value64|`` for
   every element of every random batch (including the deep-tail rows
   where float32 ``exp`` underflows to exact zero).
3. **Every tier composes** — batch-composition invariance (split,
   permute) holds element-wise in the float32 tier and its bounds too,
   which is what lets the parallel executor shard float32 sweeps.
4. **The tiers agree where it matters** — ``tight_sample_size`` and
   ``tight_epsilon_many`` under ``precision="float32"`` return answers
   certified against float64 probes, so adopted plans match the default
   tier exactly (sizes) or within the bracket tolerance (epsilons).
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.engine import CIEngine
from repro.core.estimators.api import SampleSizeEstimator
from repro.exceptions import InvalidParameterError
from repro.stats.batch import exact_coverage_failure_probability_pairs
from repro.stats.cache import clear_all_caches
from repro.stats.jit import NUMBA_AVAILABLE, jit_window_sums
from repro.stats.tight_bounds import (
    exceeds_delta_many,
    tight_epsilon_many,
    tight_sample_size,
)

TRIAL_SEEDS = range(8)

# (precision, impl) pairs every composition property must hold for; the
# jit impl joins the matrix only where numba is importable.
TIERS = [("float64", None), ("float64", "reference"), ("float32", None)]
if NUMBA_AVAILABLE:  # pragma: no cover - exercised only with numba
    TIERS.append(("float64", "jit"))


def _seeded(trial, seed: int) -> None:
    """Run ``trial(rng)``; on failure, re-raise with the seed attached."""
    try:
        trial(random.Random(seed))
    except AssertionError as err:
        raise AssertionError(f"[reproduce with seed={seed}] {err}") from err


def _random_triples(rng: random.Random, size: int):
    """Heterogeneous (n, p, eps) including boundary p and large-n rows."""
    ns, ps, epss = [], [], []
    for _ in range(size):
        if rng.random() < 0.25:
            ns.append(rng.randrange(10_000, 60_000))  # bandwidth-tier rows
        else:
            ns.append(rng.randrange(1, 3000))
        roll = rng.random()
        if roll < 0.05:
            ps.append(0.0)
        elif roll < 0.10:
            ps.append(1.0)
        else:
            ps.append(rng.random())
        epss.append(rng.uniform(1e-4, 0.5))
    return np.asarray(ns), np.asarray(ps), np.asarray(epss)


def _random_partition(rng: random.Random, size: int) -> list[slice]:
    cuts = sorted(rng.sample(range(1, size), k=min(rng.randrange(1, 6), size - 1)))
    bounds = [0, *cuts, size]
    return [slice(a, b) for a, b in zip(bounds, bounds[1:])]


# ---------------------------------------------------------------------------
# 1. Fused float64 == reference, bit for bit
# ---------------------------------------------------------------------------


def test_fused_float64_is_bit_identical_to_reference():
    def trial(rng: random.Random) -> None:
        size = rng.randrange(8, 64)
        ns, ps, epss = _random_triples(rng, size)
        fused = exact_coverage_failure_probability_pairs(ns, ps, epss)
        reference = exact_coverage_failure_probability_pairs(
            ns, ps, epss, impl="reference"
        )
        assert np.array_equal(fused, reference), (
            f"fused diverged on {np.sum(fused != reference)} of {size} elements "
            f"(max delta {np.max(np.abs(fused - reference)):.3e})"
        )

    for seed in TRIAL_SEEDS:
        _seeded(trial, seed)


# ---------------------------------------------------------------------------
# 2. Float32 stays inside its certified absolute bound
# ---------------------------------------------------------------------------


def test_float32_errors_stay_within_certified_bound():
    def trial(rng: random.Random) -> None:
        size = rng.randrange(8, 64)
        ns, ps, epss = _random_triples(rng, size)
        reference = exact_coverage_failure_probability_pairs(ns, ps, epss)
        values, bounds = exact_coverage_failure_probability_pairs(
            ns, ps, epss, precision="float32", return_error_bound=True
        )
        errors = np.abs(values - reference)
        assert np.all(np.isfinite(bounds)) and np.all(bounds >= 0.0)
        assert np.all(values >= 0.0) and np.all(values <= 1.0)
        assert np.all(errors <= bounds), (
            f"{np.sum(errors > bounds)} of {size} elements escaped the bound "
            f"(worst error {errors.max():.3e} vs bound "
            f"{bounds[np.argmax(errors - bounds)]:.3e})"
        )

    for seed in TRIAL_SEEDS:
        _seeded(trial, seed)


# ---------------------------------------------------------------------------
# 3. Composition invariance in every tier (values AND float32 bounds)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("precision,impl", TIERS)
def test_every_tier_is_invariant_under_batch_splits(precision, impl):
    def trial(rng: random.Random) -> None:
        size = rng.randrange(8, 48)
        ns, ps, epss = _random_triples(rng, size)
        kwargs = {"precision": precision, "impl": impl}
        fused = exact_coverage_failure_probability_pairs(ns, ps, epss, **kwargs)
        pieces = [
            exact_coverage_failure_probability_pairs(
                ns[part], ps[part], epss[part], **kwargs
            )
            for part in _random_partition(rng, size)
        ]
        chunked = np.concatenate(pieces)
        assert np.array_equal(fused, chunked), (
            f"[{precision}/{impl}] split changed "
            f"{np.sum(fused != chunked)} of {size} elements"
        )

    for seed in TRIAL_SEEDS:
        _seeded(trial, seed)


@pytest.mark.parametrize("precision,impl", TIERS)
def test_every_tier_is_invariant_under_permutation(precision, impl):
    def trial(rng: random.Random) -> None:
        size = rng.randrange(8, 48)
        ns, ps, epss = _random_triples(rng, size)
        kwargs = {"precision": precision, "impl": impl}
        fused = exact_coverage_failure_probability_pairs(ns, ps, epss, **kwargs)
        order = list(range(size))
        rng.shuffle(order)
        idx = np.asarray(order)
        shuffled = exact_coverage_failure_probability_pairs(
            ns[idx], ps[idx], epss[idx], **kwargs
        )
        unshuffled = np.empty_like(shuffled)
        unshuffled[idx] = shuffled
        assert np.array_equal(fused, unshuffled), (
            f"[{precision}/{impl}] permutation changed "
            f"{np.sum(fused != unshuffled)} of {size} elements"
        )

    for seed in TRIAL_SEEDS:
        _seeded(trial, seed)


def test_float32_bounds_are_invariant_under_batch_splits():
    """The certificate itself composes: a row's bound is its own."""

    def trial(rng: random.Random) -> None:
        size = rng.randrange(8, 48)
        ns, ps, epss = _random_triples(rng, size)
        _, bounds = exact_coverage_failure_probability_pairs(
            ns, ps, epss, precision="float32", return_error_bound=True
        )
        pieces = [
            exact_coverage_failure_probability_pairs(
                ns[part],
                ps[part],
                epss[part],
                precision="float32",
                return_error_bound=True,
            )[1]
            for part in _random_partition(rng, size)
        ]
        assert np.array_equal(bounds, np.concatenate(pieces)), (
            "splitting the batch changed per-element float32 error bounds"
        )

    for seed in TRIAL_SEEDS:
        _seeded(trial, seed)


# ---------------------------------------------------------------------------
# 4. Parameter validation and the numba-less degradation path
# ---------------------------------------------------------------------------


def test_invalid_tier_parameters_are_rejected():
    ns, ps, epss = np.asarray([100]), np.asarray([0.5]), np.asarray([0.05])
    with pytest.raises(InvalidParameterError):
        exact_coverage_failure_probability_pairs(ns, ps, epss, precision="float16")
    with pytest.raises(InvalidParameterError):
        exact_coverage_failure_probability_pairs(ns, ps, epss, impl="blas")
    # Non-fused impls are float64-only: the reference loop is the oracle,
    # the jit loop a float64 scan — neither carries the float32 bound.
    with pytest.raises(InvalidParameterError):
        exact_coverage_failure_probability_pairs(
            ns, ps, epss, impl="reference", precision="float32"
        )
    with pytest.raises(InvalidParameterError):
        tight_sample_size(0.05, 1e-3, precision="float16")
    with pytest.raises(InvalidParameterError):
        tight_sample_size(0.05, 1e-3, kernel="cuda")
    # The scalar backend has no tiered kernels to route through.
    with pytest.raises(InvalidParameterError):
        tight_sample_size(0.05, 1e-3, backend="scalar", precision="float32")


@pytest.mark.skipif(NUMBA_AVAILABLE, reason="numba importable: jit tier is live")
def test_jit_degrades_to_an_accurate_error_without_numba():
    with pytest.raises(RuntimeError, match="numba"):
        jit_window_sums(
            np.zeros(8), np.zeros(1, dtype=np.int64), np.zeros(1), np.zeros(1), 4
        )
    with pytest.raises(InvalidParameterError, match="numba"):
        SampleSizeEstimator(kernel="jit")
    from repro.core.kernel import available_backends

    assert "jit" not in available_backends()


@pytest.mark.skipif(not NUMBA_AVAILABLE, reason="numba not importable")
def test_jit_impl_matches_reference_closely():  # pragma: no cover
    def trial(rng: random.Random) -> None:
        size = rng.randrange(8, 48)
        ns, ps, epss = _random_triples(rng, size)
        reference = exact_coverage_failure_probability_pairs(ns, ps, epss)
        jit = exact_coverage_failure_probability_pairs(ns, ps, epss, impl="jit")
        np.testing.assert_allclose(jit, reference, rtol=1e-9, atol=0.0)

    for seed in TRIAL_SEEDS:
        _seeded(trial, seed)


# ---------------------------------------------------------------------------
# 5. Certified agreement through the planning stack
# ---------------------------------------------------------------------------

SIZE_SPECS = [
    (0.05, 1e-3),
    (0.04, 1e-2),
    (0.03, 1e-3),
    # Regression: at this spec the discrete distribution ripples right at
    # the boundary (exceeds at 148,949 but not at 148,948), so any probe
    # tier that merely finds *a* certified local boundary can land two
    # sizes away from the default tier's answer.
    (0.01, 1e-4 / 2**33),
]


@pytest.mark.parametrize("epsilon,delta", SIZE_SPECS)
def test_tight_sample_size_float32_equals_float64(epsilon, delta):
    """Every tier's minimal-n probes answer the float64 question exactly."""
    expected = tight_sample_size(epsilon, delta)
    assert tight_sample_size(epsilon, delta, precision="float32") == expected


def test_tight_epsilon_many_float32_is_certified_within_tolerance():
    sizes = np.unique(np.linspace(300, 1500, 5).astype(int))
    delta, tol = 1e-2, 1e-5
    eps64 = tight_epsilon_many(sizes, delta, tol=tol)
    eps32 = tight_epsilon_many(sizes, delta, tol=tol, precision="float32")
    # Both tiers certify the same float64 bracket around the true
    # crossing, so they agree to within one bracket width.
    assert np.all(np.abs(eps32 - eps64) <= 2 * tol)
    # Re-check the certificates at full fidelity.
    assert not exceeds_delta_many(sizes, eps32, delta).any()
    assert exceeds_delta_many(sizes, eps32 - tol, delta).all()


def test_estimator_float32_plans_match_float64():
    condition = "n - o > 0.02 +/- 0.02 /\\ n > 0.8 +/- 0.05"
    kwargs = {"reliability": 0.999, "adaptivity": "full", "steps": 8}
    clear_all_caches()
    plan64 = SampleSizeEstimator(use_exact_binomial=True).plan(condition, **kwargs)
    estimator32 = SampleSizeEstimator(use_exact_binomial=True, precision="float32")
    plan32 = estimator32.plan(condition, **kwargs)
    assert plan32 == plan64

    config = estimator32.export_config()
    assert config["precision"] == "float32"
    assert config["kernel"] == "numpy"
    rebuilt = SampleSizeEstimator(**config)
    assert rebuilt.plan(condition, **kwargs) == plan64


def test_estimator_rejects_invalid_tiers():
    with pytest.raises(InvalidParameterError):
        SampleSizeEstimator(precision="float16")
    with pytest.raises(InvalidParameterError):
        SampleSizeEstimator(kernel="cuda")


def test_engine_precision_parameter_rebuilds_the_estimator(parity_world_cache):
    script, testsets, baseline, _ = parity_world_cache("full")
    engine = CIEngine(script, testsets[0], baseline, precision="float32")
    assert engine.estimator.precision == "float32"
    # A float64 estimator handed in alongside precision="float32" is
    # rebuilt onto the requested tier rather than silently kept.
    engine = CIEngine(
        script,
        testsets[0],
        baseline,
        estimator=SampleSizeEstimator(use_exact_binomial=True),
        precision="float32",
    )
    assert engine.estimator.precision == "float32"
    assert engine.estimator.use_exact_binomial
    with pytest.raises(InvalidParameterError):
        CIEngine(script, testsets[0], baseline, precision="float16")


def test_cli_plan_accepts_precision_tier(capsys):
    from repro.cli import main

    argv = [
        "plan",
        "--condition",
        "n > 0.8 +/- 0.05",
        "--reliability",
        "0.999",
        "--adaptivity",
        "full",
        "--steps",
        "8",
        "--exact-binomial",
    ]
    assert main([*argv, "--precision", "float32"]) == 0
    out32 = capsys.readouterr().out
    assert main(argv) == 0
    out64 = capsys.readouterr().out
    # Same plan either way — the float32 tier is certified against the
    # float64 reference before adoption.
    assert out32.splitlines()[0] == out64.splitlines()[0]
