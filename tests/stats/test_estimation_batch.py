"""PairedSampleBatch agrees bit-for-bit with per-row PairedSample."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.stats.estimation import PairedSample, PairedSampleBatch


def make_batch(size=5, m=200, labeled=True, seed=0):
    rng = np.random.default_rng(seed)
    old = rng.integers(0, 4, size=m)
    matrix = rng.integers(0, 4, size=(size, m))
    labels = rng.integers(0, 4, size=m) if labeled else None
    return PairedSampleBatch(
        old_predictions=old, new_prediction_matrix=matrix, labels=labels
    )


class TestBatchAgreement:
    def test_estimates_match_per_row_samples_exactly(self):
        batch = make_batch()
        gains = batch.accuracy_gains()
        diffs = batch.differences()
        accs = batch.new_accuracies()
        for i in range(batch.batch_size):
            sample = batch.sample(i)
            assert gains[i] == sample.accuracy_gain
            assert diffs[i] == sample.difference
            assert accs[i] == sample.new_accuracy
            assert batch.old_accuracy == sample.old_accuracy

    def test_single_candidate_batch(self):
        batch = make_batch(size=1)
        sample = batch.sample(0)
        assert batch.accuracy_gains()[0] == sample.accuracy_gain

    def test_differences_need_no_labels(self):
        batch = make_batch(labeled=False)
        assert len(batch.differences()) == batch.batch_size
        with pytest.raises(InvalidParameterError):
            batch.new_accuracies()

    def test_row_view_batches_share_memory(self):
        # the engine re-batches after promotions via matrix row views
        batch = make_batch(size=6)
        tail = PairedSampleBatch(
            old_predictions=batch.old_predictions,
            new_prediction_matrix=batch.new_prediction_matrix[2:],
            labels=batch.labels,
        )
        assert tail.batch_size == 4
        assert np.array_equal(tail.accuracy_gains(), batch.accuracy_gains()[2:])
        assert tail.new_prediction_matrix.base is not None  # no copy

    def test_disagreement_mask_is_read_only(self):
        batch = make_batch(size=2)
        sample = batch.sample(0)
        mask = sample.disagreement_mask
        with pytest.raises(ValueError):
            mask[0] = True

    def test_shapes_validated(self):
        with pytest.raises(InvalidParameterError):
            PairedSampleBatch(
                old_predictions=np.arange(5),
                new_prediction_matrix=np.zeros((2, 4), dtype=int),
            )
        with pytest.raises(InvalidParameterError):
            PairedSampleBatch(
                old_predictions=np.arange(5),
                new_prediction_matrix=np.zeros(5, dtype=int),
            )
        with pytest.raises(InvalidParameterError):
            PairedSampleBatch(
                old_predictions=np.zeros(0, dtype=int),
                new_prediction_matrix=np.zeros((2, 0), dtype=int),
            )


class TestPairedSampleCaching:
    def test_estimates_cached_per_instance(self):
        rng = np.random.default_rng(1)
        sample = PairedSample(
            old_predictions=rng.integers(0, 3, 100),
            new_predictions=rng.integers(0, 3, 100),
            labels=rng.integers(0, 3, 100),
        )
        first = sample.accuracy_gain
        assert sample._cache["accuracy_gain"] == first
        assert sample.accuracy_gain == first
        mask = sample.disagreement_mask
        assert sample.disagreement_mask is mask  # same cached array

    def test_cached_values_match_fresh_instance(self):
        rng = np.random.default_rng(2)
        old = rng.integers(0, 3, 50)
        new = rng.integers(0, 3, 50)
        labels = rng.integers(0, 3, 50)
        a = PairedSample(old, new, labels)
        warm = (a.accuracy_gain, a.difference, a.new_accuracy, a.old_accuracy)
        b = PairedSample(old, new, labels)
        assert warm == (b.accuracy_gain, b.difference, b.new_accuracy, b.old_accuracy)
