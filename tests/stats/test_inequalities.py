"""Tests for the concentration-inequality layer.

Covers the closed-form inversions, the sidedness conventions the paper's
numbers pin down, cross-inequality dominance relations, and
hypothesis-driven round-trip properties.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidParameterError
from repro.stats.inequalities import (
    BennettInequality,
    BernsteinInequality,
    HoeffdingInequality,
    McDiarmidInequality,
    bennett_h,
    bennett_h_inverse,
)


class TestBennettH:
    def test_h_zero(self):
        assert bennett_h(0.0) == 0.0

    def test_h_one(self):
        assert bennett_h(1.0) == pytest.approx(2 * math.log(2) - 1)

    def test_small_u_quadratic(self):
        u = 1e-5
        assert bennett_h(u) == pytest.approx(u * u / 2, rel=1e-3)

    def test_domain_error(self):
        with pytest.raises(InvalidParameterError):
            bennett_h(-1.0)

    @given(st.floats(min_value=1e-9, max_value=1e3))
    def test_inverse_round_trip(self, u):
        assert bennett_h_inverse(bennett_h(u)) == pytest.approx(u, rel=1e-9)

    def test_inverse_zero(self):
        assert bennett_h_inverse(0.0) == 0.0

    def test_inverse_negative_raises(self):
        with pytest.raises(InvalidParameterError):
            bennett_h_inverse(-1.0)


class TestHoeffding:
    def test_paper_single_model_46k(self):
        # §1: eps=0.01, delta=1e-4 (one-sided) -> ~46,052.
        n = HoeffdingInequality().sample_size(0.01, 1e-4, exact=True)
        assert n == 46052

    def test_two_sided_doubles_log_term(self):
        one = HoeffdingInequality(two_sided=False).sample_size(0.1, 0.01)
        two = HoeffdingInequality(two_sided=True).sample_size(0.1, 0.01)
        assert two == pytest.approx(
            one * math.log(200) / math.log(100), rel=1e-12
        )

    def test_range_scales_quadratically(self):
        r1 = HoeffdingInequality(value_range=1.0).sample_size(0.1, 0.01)
        r2 = HoeffdingInequality(value_range=2.0).sample_size(0.1, 0.01)
        assert r2 == pytest.approx(4 * r1)

    def test_tail_at_sample_size_equals_delta(self):
        ineq = HoeffdingInequality()
        n = ineq.sample_size(0.05, 0.001)
        assert ineq.tail_probability(n, 0.05) == pytest.approx(0.001, rel=1e-9)

    def test_epsilon_inverts_sample_size(self):
        ineq = HoeffdingInequality(two_sided=True)
        n = ineq.sample_size(0.03, 0.01)
        assert ineq.epsilon(n, 0.01) == pytest.approx(0.03, rel=1e-12)

    def test_exact_rounds_up(self):
        ineq = HoeffdingInequality()
        real = ineq.sample_size(0.1, 0.01)
        assert ineq.sample_size(0.1, 0.01, exact=True) == math.ceil(real - 1e-12)

    @pytest.mark.parametrize("bad", [0.0, -0.1])
    def test_invalid_epsilon(self, bad):
        with pytest.raises(InvalidParameterError):
            HoeffdingInequality().sample_size(bad, 0.01)

    def test_invalid_delta(self):
        with pytest.raises(InvalidParameterError):
            HoeffdingInequality().sample_size(0.1, 0.0)

    def test_invalid_range(self):
        with pytest.raises(InvalidParameterError):
            HoeffdingInequality(value_range=0.0)


class TestBennett:
    def test_paper_figure5_4713(self):
        bennett = BennettInequality(variance_bound=0.1, two_sided=True)
        assert bennett.sample_size(0.02, 0.002 / 7, exact=True) == 4713

    def test_paper_29k(self):
        bennett = BennettInequality(variance_bound=0.1, two_sided=True)
        # delta/4 split: ln(4H/delta) with H=32, delta=1e-4.
        n = bennett.sample_size(0.01, (1e-4 / 32) / 2)
        assert n == pytest.approx(29047.3, abs=0.5)

    def test_beats_hoeffding_at_low_variance(self):
        hoeffding = HoeffdingInequality(two_sided=True)
        bennett = BennettInequality(variance_bound=0.1, two_sided=True)
        # ~2.4x for a range-1 variable; the paper's ~10x adds the 4x of
        # the baseline's range-2 difference estimation (see figure3 bench).
        assert bennett.sample_size(0.01, 1e-4) < hoeffding.sample_size(0.01, 1e-4) / 2

    def test_epsilon_round_trip(self):
        bennett = BennettInequality(variance_bound=0.07, two_sided=True)
        n = bennett.sample_size(0.013, 1e-3)
        assert bennett.epsilon(n, 1e-3) == pytest.approx(0.013, rel=1e-9)

    def test_variance_above_magnitude_squared_rejected(self):
        with pytest.raises(InvalidParameterError):
            BennettInequality(variance_bound=1.5, magnitude_bound=1.0)

    def test_scaled_magnitude(self):
        # a*(n-o) with a=2: v = 4p, b = 2 must equal p-scaled with eps/2... the
        # physics: n(eps; v=4p, b=2) == n(eps/2; v=p, b=1) / ... verify the
        # identity n(a*X, a*eps) == n(X, eps).
        p, eps = 0.1, 0.02
        base = BennettInequality(variance_bound=p, magnitude_bound=1.0)
        scaled = BennettInequality(variance_bound=4 * p, magnitude_bound=2.0)
        assert scaled.sample_size(2 * eps, 1e-3) == pytest.approx(
            base.sample_size(eps, 1e-3)
        )

    @given(
        st.floats(min_value=0.01, max_value=0.5),
        st.floats(min_value=0.001, max_value=0.2),
    )
    @settings(max_examples=50)
    def test_tail_at_inverted_n_matches_delta(self, p, eps):
        bennett = BennettInequality(variance_bound=p, two_sided=True)
        n = bennett.sample_size(eps, 0.01)
        assert bennett.tail_probability(n, eps) == pytest.approx(0.01, rel=1e-6)


class TestBernstein:
    def test_never_tighter_than_bennett(self):
        for p in (0.02, 0.1, 0.3):
            for eps in (0.005, 0.01, 0.05):
                bennett = BennettInequality(variance_bound=p, two_sided=True)
                bernstein = BernsteinInequality(variance_bound=p, two_sided=True)
                assert (
                    bennett.sample_size(eps, 1e-4)
                    <= bernstein.sample_size(eps, 1e-4) + 1e-9
                )

    def test_epsilon_quadratic_inversion(self):
        bernstein = BernsteinInequality(variance_bound=0.1, two_sided=True)
        n = bernstein.sample_size(0.02, 1e-3)
        assert bernstein.epsilon(n, 1e-3) == pytest.approx(0.02, rel=1e-9)

    def test_closed_form_sample_size(self):
        bernstein = BernsteinInequality(variance_bound=0.1, magnitude_bound=1.0)
        n = bernstein.sample_size(0.01, 0.01)
        expected = math.log(2 / 0.01) * 2 * (0.1 + 0.01 / 3) / 0.01**2  # two-sided
        assert n == pytest.approx(expected)


class TestMcDiarmid:
    def test_reduces_to_hoeffding_at_unit_sensitivity(self):
        h = HoeffdingInequality().sample_size(0.05, 0.01)
        m = McDiarmidInequality(sensitivity=1.0).sample_size(0.05, 0.01)
        assert m == pytest.approx(h)

    def test_sensitivity_scales_quadratically(self):
        base = McDiarmidInequality(sensitivity=1.0).sample_size(0.05, 0.01)
        double = McDiarmidInequality(sensitivity=2.0).sample_size(0.05, 0.01)
        assert double == pytest.approx(4 * base)

    def test_f1_style_sensitivity(self):
        # A metric with per-sample sensitivity 2/n (e.g. a pessimistic F1
        # bound) needs 4x the labels of plain accuracy.
        f1 = McDiarmidInequality(sensitivity=2.0)
        acc = McDiarmidInequality(sensitivity=1.0)
        assert f1.sample_size(0.02, 1e-3) == pytest.approx(
            4 * acc.sample_size(0.02, 1e-3)
        )


class TestCommonInterface:
    @pytest.mark.parametrize(
        "ineq",
        [
            HoeffdingInequality(),
            BennettInequality(variance_bound=0.1),
            BernsteinInequality(variance_bound=0.1),
            McDiarmidInequality(),
        ],
    )
    def test_sample_size_decreasing_in_epsilon(self, ineq):
        assert ineq.sample_size(0.02, 0.01) > ineq.sample_size(0.04, 0.01)

    @pytest.mark.parametrize(
        "ineq",
        [
            HoeffdingInequality(),
            BennettInequality(variance_bound=0.1),
            BernsteinInequality(variance_bound=0.1),
        ],
    )
    def test_sample_size_decreasing_in_delta(self, ineq):
        assert ineq.sample_size(0.02, 1e-5) > ineq.sample_size(0.02, 1e-2)

    def test_tail_probability_capped_at_one(self):
        assert HoeffdingInequality().tail_probability(1, 1e-6) <= 1.0
        assert HoeffdingInequality().tail_probability(1, 1e-6) > 0.999
