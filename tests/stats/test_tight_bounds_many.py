"""Multi-n probe API, the batched epsilon planner, and anchor warm-starts.

A note on tolerances: the grid-scan trajectory's exceedance probe is not
perfectly monotone in epsilon (refinement windows move with the coarse
argmax), so the bisection's fixed point is a narrow *band* rather than a
single value — two bisections with different brackets can legitimately
return values more than ``tol`` apart while both being correct.  The
well-defined contract, asserted here, is the scalar bisection's bracket
certificate: the returned epsilon does not exceed ``delta`` under the
trajectory probe, while ``tol`` below it does.
"""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.stats.batch import exact_coverage_failure_probability_pairs
from repro.stats.cache import all_caches, clear_all_caches
from repro.stats.tight_bounds import (
    _scan_scalar,
    exact_coverage_failure_probability,
    exceeds_delta_many,
    tight_epsilon,
    tight_epsilon_many,
)

DELTA = 1e-2
TOL = 1e-5


class TestPairsKernel:
    def test_matches_scalar_on_random_triples(self):
        rng = np.random.default_rng(0)
        ns = rng.integers(1, 1500, size=60)
        ps = rng.random(60)
        ps[:3] = [0.0, 1.0, 0.5]
        eps = rng.uniform(0.01, 0.5, size=60)
        got = exact_coverage_failure_probability_pairs(ns, ps, eps)
        want = np.array(
            [
                exact_coverage_failure_probability(int(n), float(p), float(e))
                for n, p, e in zip(ns, ps, eps)
            ]
        )
        assert np.max(np.abs(got - want)) <= 1e-10

    def test_trimmed_windows_only_underestimate_the_exact_value(self):
        rng = np.random.default_rng(1)
        ns = rng.integers(50, 2000, size=40)
        ps = rng.uniform(0.2, 0.8, size=40)
        eps = rng.uniform(0.01, 0.2, size=40)
        exact = np.array(
            [
                exact_coverage_failure_probability(int(n), float(p), float(e))
                for n, p, e in zip(ns, ps, eps)
            ]
        )
        trimmed = exact_coverage_failure_probability_pairs(
            ns, ps, eps, window_sigmas=5.0, window_slack=16
        )
        # windowed tail sums can only omit mass, never invent it — the
        # property that makes trimmed-window exceedance certificates sound
        assert np.all(trimmed <= exact + 1e-12)
        assert np.max(exact - trimmed) <= 1e-5

    def test_invalid_inputs(self):
        with pytest.raises(InvalidParameterError):
            exact_coverage_failure_probability_pairs([0], [0.5], [0.1])
        with pytest.raises(InvalidParameterError):
            exact_coverage_failure_probability_pairs([10], [1.5], [0.1])
        with pytest.raises(InvalidParameterError):
            exact_coverage_failure_probability_pairs([10], [0.5], [0.0])


class TestExceedsDeltaMany:
    def test_matches_scalar_scan_booleans(self):
        ns = np.array([60, 150, 400, 150])
        eps = np.array([0.05, 0.08, 0.2, 0.11])
        got = exceeds_delta_many(ns, eps, DELTA)
        want = np.array(
            [
                _scan_scalar(int(n), float(e), 256, 2)[0] > DELTA
                for n, e in zip(ns, eps)
            ]
        )
        assert np.array_equal(got, want)

    def test_empty_probe_vector(self):
        assert exceeds_delta_many([], [], DELTA).shape == (0,)

    def test_monotone_in_epsilon_per_probe(self):
        ns = np.array([200, 200, 200])
        eps = np.array([0.02, 0.1, 0.4])
        got = exceeds_delta_many(ns, eps, DELTA)
        assert got[0] and not got[2]


class TestTightEpsilonMany:
    def test_bracket_certificate_per_size(self):
        ns = np.array([80, 150, 310, 640, 950])
        clear_all_caches()
        eps = tight_epsilon_many(ns, DELTA, tol=TOL)
        assert not exceeds_delta_many(ns, eps, DELTA).any()
        assert exceeds_delta_many(ns, eps - TOL, DELTA).all()

    def test_close_to_per_call_reference(self):
        ns = np.array([80, 150, 310, 640])
        clear_all_caches()
        many = tight_epsilon_many(ns, DELTA, tol=TOL)
        for n, e in zip(ns, many):
            clear_all_caches()
            reference = tight_epsilon(int(n), DELTA, tol=TOL)
            # same crossing band; see the module docstring
            assert abs(reference - e) <= max(5 * TOL, 0.01 * reference)

    def test_agrees_with_scalar_backend_probe_certificate(self):
        clear_all_caches()
        ns = np.array([60, 120])
        eps = tight_epsilon_many(ns, DELTA, tol=TOL)
        for n, e in zip(ns, eps):
            assert _scan_scalar(int(n), float(e), 256, 2)[0] <= DELTA
            assert _scan_scalar(int(n), float(e) - TOL, 256, 2)[0] > DELTA

    def test_decreasing_in_n(self):
        ns = np.array([50, 200, 800])
        eps = tight_epsilon_many(ns, DELTA, tol=TOL)
        assert eps[0] > eps[1] > eps[2]

    def test_duplicates_and_order_preserved(self):
        ns = np.array([300, 100, 300, 100])
        eps = tight_epsilon_many(ns, DELTA, tol=TOL)
        assert eps[0] == eps[2] and eps[1] == eps[3]
        assert eps[1] > eps[0]

    def test_memoized(self):
        clear_all_caches()
        ns = np.array([90, 220])
        first = tight_epsilon_many(ns, DELTA, tol=TOL)
        info_before = all_caches()["stats.tight_bounds.tight_epsilon_many"].info()
        second = tight_epsilon_many(ns, DELTA, tol=TOL)
        info_after = all_caches()["stats.tight_bounds.tight_epsilon_many"].info()
        assert np.array_equal(first, second)
        assert info_after.hits == info_before.hits + 1
        second[0] = 0.0  # the returned array is a private copy
        assert tight_epsilon_many(ns, DELTA, tol=TOL)[0] == first[0]

    def test_invalid_inputs(self):
        with pytest.raises(InvalidParameterError):
            tight_epsilon_many([0, 10], DELTA)
        with pytest.raises(InvalidParameterError):
            tight_epsilon_many([10], 0.0)
        assert tight_epsilon_many([], DELTA).shape == (0,)


class TestAnchorWarmStart:
    def test_neighbor_warm_start_stays_in_the_crossing_band(self):
        clear_all_caches()
        cold = tight_epsilon(500, DELTA, tol=TOL)
        clear_all_caches()
        tight_epsilon(450, DELTA, tol=TOL)  # plants the neighbor anchor
        warm = tight_epsilon(500, DELTA, tol=TOL)
        assert _scan_scalar(500, warm, 256, 2)[0] <= DELTA
        assert _scan_scalar(500, warm - TOL, 256, 2)[0] > DELTA
        assert abs(warm - cold) <= max(5 * TOL, 0.01 * cold)

    def test_same_n_never_warm_starts_itself(self):
        clear_all_caches()
        batch = tight_epsilon(140, DELTA, tol=TOL, backend="batch")
        scalar = tight_epsilon(140, DELTA, tol=TOL, backend="scalar")
        # backend cross-check stays an independent cold computation
        assert batch == pytest.approx(scalar, abs=1e-9)

    def test_many_call_plants_anchors_for_per_call(self):
        clear_all_caches()
        tight_epsilon_many(np.array([200, 260]), DELTA, tol=TOL)
        anchors = all_caches()["stats.tight_bounds.epsilon_anchors"]
        assert len(anchors) >= 1
        warm = tight_epsilon(230, DELTA, tol=TOL)
        assert _scan_scalar(230, warm, 256, 2)[0] <= DELTA
