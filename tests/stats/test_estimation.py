"""Tests for repro.stats.estimation (variable estimators, PairedSample)."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.stats.estimation import (
    PairedSample,
    estimate_accuracy,
    estimate_accuracy_gain,
    estimate_difference,
)


@pytest.fixture
def sample() -> PairedSample:
    labels = np.array([0, 1, 2, 0, 1, 2, 0, 1])
    old = np.array([0, 1, 2, 0, 0, 0, 0, 1])  # 6 correct
    new = np.array([0, 1, 2, 0, 1, 0, 1, 1])  # 6 correct, differs on 2
    return PairedSample(old_predictions=old, new_predictions=new, labels=labels)


class TestFunctions:
    def test_accuracy(self):
        assert estimate_accuracy(np.array([1, 2, 3]), np.array([1, 2, 0])) == pytest.approx(2 / 3)

    def test_difference_no_labels_needed(self):
        assert estimate_difference(np.array([1, 1]), np.array([1, 2])) == 0.5

    def test_gain_matches_accuracy_difference(self, rng):
        labels = rng.integers(0, 3, 500)
        old = rng.integers(0, 3, 500)
        new = rng.integers(0, 3, 500)
        gain = estimate_accuracy_gain(old, new, labels)
        assert gain == pytest.approx(
            estimate_accuracy(new, labels) - estimate_accuracy(old, labels)
        )

    def test_length_mismatch_raises(self):
        with pytest.raises(InvalidParameterError, match="mismatch"):
            estimate_accuracy(np.array([1]), np.array([1, 2]))

    def test_empty_raises(self):
        with pytest.raises(InvalidParameterError, match="empty"):
            estimate_accuracy(np.array([]), np.array([]))


class TestPairedSample:
    def test_basic_stats(self, sample):
        assert sample.old_accuracy == pytest.approx(6 / 8)
        assert sample.new_accuracy == pytest.approx(6 / 8)
        assert sample.difference == pytest.approx(2 / 8)
        assert sample.accuracy_gain == pytest.approx(0.0)

    def test_len(self, sample):
        assert len(sample) == 8

    def test_disagreement_mask(self, sample):
        np.testing.assert_array_equal(
            sample.disagreement_indices(), np.array([4, 6])
        )

    def test_unlabeled_difference_ok(self):
        s = PairedSample(
            old_predictions=np.array([0, 1]), new_predictions=np.array([1, 1])
        )
        assert s.difference == 0.5
        assert not s.has_labels

    def test_unlabeled_accuracy_raises(self):
        s = PairedSample(
            old_predictions=np.array([0, 1]), new_predictions=np.array([1, 1])
        )
        with pytest.raises(InvalidParameterError, match="unlabeled"):
            _ = s.new_accuracy

    def test_with_labels(self):
        s = PairedSample(
            old_predictions=np.array([0, 1]), new_predictions=np.array([1, 1])
        ).with_labels(np.array([1, 1]))
        assert s.new_accuracy == 1.0

    def test_subsample(self, sample):
        sub = sample.subsample(np.array([0, 4]))
        assert len(sub) == 2
        assert sub.difference == 0.5

    def test_gain_only_from_disagreements(self, sample):
        # Zeroing out agreement labels cannot change the paired gain.
        disagree = sample.disagreement_mask
        labels2 = sample.labels.copy()
        labels2[~disagree] = 99  # nonsense labels on agreements
        s2 = PairedSample(
            old_predictions=sample.old_predictions,
            new_predictions=sample.new_predictions,
            labels=labels2,
        )
        assert s2.accuracy_gain == pytest.approx(sample.accuracy_gain)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(InvalidParameterError):
            PairedSample(
                old_predictions=np.array([1, 2]),
                new_predictions=np.array([1]),
            )
