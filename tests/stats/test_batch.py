"""Batch kernels agree with the scalar binomial machinery to <= 1e-10."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidParameterError
from repro.stats.batch import (
    binom_cdf_vec,
    binom_logpmf_vec,
    binom_pmf_vec,
    binom_sf_vec,
    binomial_tail_inversion_lower_vec,
    binomial_tail_inversion_upper_vec,
    clopper_pearson_interval_vec,
    exact_coverage_failure_probability_vec,
    log_factorial_table,
)
from repro.stats.binomial import (
    binom_cdf,
    binom_logpmf,
    binom_sf,
    binomial_tail_inversion_lower,
    binomial_tail_inversion_upper,
    clopper_pearson_interval,
)
from repro.stats.cache import all_cache_info, clear_all_caches
from repro.stats.tight_bounds import (
    exact_coverage_failure_probability,
    tight_epsilon,
    tight_sample_size,
    worst_case_failure_probability,
)

TOL = 1e-10

# Boundary-heavy probability strategy: interior values plus the exact
# endpoints the scalar code special-cases.
probabilities = st.one_of(
    st.sampled_from([0.0, 1.0]),
    st.floats(min_value=1e-9, max_value=1.0 - 1e-9),
)


def _random_knp(data, m=12, max_n=2000):
    ns = data.draw(
        st.lists(st.integers(min_value=1, max_value=max_n), min_size=m, max_size=m)
    )
    ks = [data.draw(st.integers(min_value=0, max_value=n)) for n in ns]
    ps = data.draw(st.lists(probabilities, min_size=m, max_size=m))
    # Force the k in {0, n} boundaries into every batch.
    ks[0], ks[1] = 0, ns[1]
    return np.array(ks), np.array(ns), np.array(ps)


class TestElementwiseAgreement:
    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_logpmf(self, data):
        k, n, p = _random_knp(data)
        vec = binom_logpmf_vec(k, n, p)
        scalar = np.array(
            [binom_logpmf(int(ki), int(ni), float(pi)) for ki, ni, pi in zip(k, n, p)]
        )
        finite = np.isfinite(scalar)
        assert np.array_equal(np.isfinite(vec), finite)
        assert np.max(np.abs(vec[finite] - scalar[finite]), initial=0.0) <= TOL

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_pmf_cdf_sf(self, data):
        k, n, p = _random_knp(data)
        cdf = binom_cdf_vec(k, n, p)
        sf = binom_sf_vec(k, n, p)
        for i in range(len(k)):
            ki, ni, pi = int(k[i]), int(n[i]), float(p[i])
            assert cdf[i] == pytest.approx(binom_cdf(ki, ni, pi), abs=TOL)
            assert sf[i] == pytest.approx(binom_sf(ki, ni, pi), abs=TOL)
            assert cdf[i] + sf[i] == pytest.approx(1.0, abs=1e-9)

    def test_scalar_inputs_return_floats(self):
        assert binom_cdf_vec(3, 10, 0.5) == pytest.approx(binom_cdf(3, 10, 0.5), abs=TOL)
        assert isinstance(binom_pmf_vec(3, 10, 0.5), float)

    def test_invalid_inputs_raise(self):
        with pytest.raises(InvalidParameterError):
            binom_cdf_vec([1], [0], [0.5])
        with pytest.raises(InvalidParameterError):
            binom_cdf_vec([5], [4], [0.5])
        with pytest.raises(InvalidParameterError):
            binom_cdf_vec([1], [4], [1.5])


class TestCoverageKernel:
    @given(
        st.integers(min_value=1, max_value=3000),
        st.floats(min_value=0.005, max_value=0.5),
    )
    @settings(max_examples=25, deadline=None)
    def test_matches_scalar_on_grid(self, n, epsilon):
        grid = np.linspace(0.0, 1.0, 101)
        vec = exact_coverage_failure_probability_vec(n, grid, epsilon)
        scalar = np.array(
            [exact_coverage_failure_probability(n, float(p), epsilon) for p in grid]
        )
        assert np.max(np.abs(vec - scalar)) <= TOL

    def test_boundary_points_are_zero(self):
        vec = exact_coverage_failure_probability_vec(50, [0.0, 1.0], 0.1)
        assert vec[0] == 0.0 and vec[1] == 0.0


class TestConfidenceAgreement:
    @given(st.data())
    @settings(max_examples=15, deadline=None)
    def test_tail_inversions(self, data):
        k, n, _ = _random_knp(data, m=6, max_n=400)
        delta = data.draw(st.floats(min_value=1e-6, max_value=0.4))
        upper = binomial_tail_inversion_upper_vec(k, n, delta)
        lower = binomial_tail_inversion_lower_vec(k, n, delta)
        for i in range(len(k)):
            ki, ni = int(k[i]), int(n[i])
            assert upper[i] == pytest.approx(
                binomial_tail_inversion_upper(ki, ni, delta), abs=1e-9
            )
            assert lower[i] == pytest.approx(
                binomial_tail_inversion_lower(ki, ni, delta), abs=1e-9
            )

    @given(st.data())
    @settings(max_examples=10, deadline=None)
    def test_clopper_pearson(self, data):
        k, n, _ = _random_knp(data, m=4, max_n=300)
        delta = data.draw(st.floats(min_value=1e-5, max_value=0.2))
        lo, hi = clopper_pearson_interval_vec(k, n, delta)
        for i in range(len(k)):
            slo, shi = clopper_pearson_interval(int(k[i]), int(n[i]), delta)
            assert lo[i] == pytest.approx(slo, abs=1e-9)
            assert hi[i] == pytest.approx(shi, abs=1e-9)


class TestBackendsAgree:
    @pytest.mark.parametrize(
        "epsilon,delta",
        [(0.05, 1e-3), (0.1, 1e-2), (0.2, 1e-4), (0.15, 1e-3)],
    )
    def test_tight_sample_size_backends_equal(self, epsilon, delta):
        clear_all_caches()
        batch = tight_sample_size(epsilon, delta, backend="batch")
        scalar = tight_sample_size(epsilon, delta, backend="scalar")
        assert batch == scalar

    @pytest.mark.parametrize("n,epsilon", [(170, 0.1), (1090, 0.05), (37, 0.2)])
    def test_worst_case_backends_close(self, n, epsilon):
        clear_all_caches()
        batch = worst_case_failure_probability(n, epsilon, backend="batch")
        scalar = worst_case_failure_probability(n, epsilon, backend="scalar")
        assert batch == pytest.approx(scalar, abs=TOL)

    def test_tight_epsilon_backends_equal(self):
        clear_all_caches()
        batch = tight_epsilon(500, 1e-3, backend="batch")
        scalar = tight_epsilon(500, 1e-3, backend="scalar")
        assert batch == pytest.approx(scalar, abs=1e-9)

    def test_invalid_backend_rejected(self):
        with pytest.raises(InvalidParameterError):
            tight_sample_size(0.1, 1e-3, backend="numpy")


class TestCaching:
    def test_memoized_tight_sample_size_hits(self):
        clear_all_caches()
        first = tight_sample_size(0.1, 1e-2)
        before = all_cache_info()["stats.tight_bounds.tight_sample_size"]
        second = tight_sample_size(0.1, 1e-2)
        after = all_cache_info()["stats.tight_bounds.tight_sample_size"]
        assert first == second
        assert after.hits == before.hits + 1

    def test_hint_does_not_pollute_cache(self):
        clear_all_caches()
        hinted = tight_sample_size(0.1, 1e-2, n_hint=123)
        unhinted = tight_sample_size(0.1, 1e-2)
        assert hinted == unhinted

    def test_clear_all_caches_resets(self):
        tight_sample_size(0.1, 1e-2)
        clear_all_caches()
        info = all_cache_info()["stats.tight_bounds.tight_sample_size"]
        assert info.currsize == 0 and info.hits == 0

    def test_log_factorial_table_prefix_consistent(self):
        clear_all_caches()
        small = log_factorial_table(10).copy()
        large = log_factorial_table(1000)
        assert np.array_equal(small[:11], large[:11])
