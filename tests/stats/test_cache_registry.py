"""Every process-wide cache self-registers so clear_all_caches covers it."""

import numpy as np

from repro.core.estimators.api import SampleSizeEstimator
from repro.stats.cache import all_cache_info, all_caches, clear_all_caches
from repro.stats.tight_bounds import tight_epsilon, tight_epsilon_many

# The full set of registered caches; a new memoized layer must add itself
# here (and thereby to the clear_all_caches() contract) to land.
EXPECTED_CACHES = {
    "estimators.plan_cache",
    "stats.batch.log_factorial_table",
    "stats.batch.pairs_layout",
    "stats.tight_bounds.worst_case",
    "stats.tight_bounds.exceeds_delta",
    "stats.tight_bounds.tight_sample_size",
    "stats.tight_bounds.tight_epsilon",
    "stats.tight_bounds.tight_epsilon_many",
    "stats.tight_bounds.epsilon_anchors",
}


def test_registry_is_complete():
    assert EXPECTED_CACHES == set(all_caches())


def test_clear_all_caches_reaches_every_registry_entry():
    # Warm every layer the batched-evaluation stack touches.
    SampleSizeEstimator().plan("n > 0.7 +/- 0.1", delta=1e-2, steps=2)
    tight_epsilon(120, 1e-2, tol=1e-5)
    tight_epsilon_many(np.array([90, 160]), 1e-2, tol=1e-5)
    warmed = {
        name
        for name, info in all_cache_info().items()
        if info.currsize > 0
    }
    assert "estimators.plan_cache" in warmed
    assert "stats.tight_bounds.tight_epsilon_many" in warmed
    assert "stats.tight_bounds.epsilon_anchors" in warmed
    clear_all_caches()
    for name, info in all_cache_info().items():
        assert info.currsize <= 1, f"cache {name!r} not cleared"


def test_cleared_caches_recompute_identically():
    eps_warm = tight_epsilon_many(np.array([110, 330]), 1e-2, tol=1e-5)
    clear_all_caches()
    eps_cold = tight_epsilon_many(np.array([110, 330]), 1e-2, tol=1e-5)
    assert np.array_equal(eps_warm, eps_cold)
