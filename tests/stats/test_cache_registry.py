"""Every process-wide cache self-registers so clear_all_caches covers it.

The completeness check is *introspective*: it walks every module under
:mod:`repro.stats` and :mod:`repro.core.estimators` and discovers
module-level :class:`LRUCache` instances — both bare attributes (the
estimator plan cache) and the ``.cache`` attribute :func:`memoize` hangs
on its wrappers (the tight-bound layers).  A new memoized layer is
caught automatically: create a cache without registering it and the
discovered-but-unregistered assertion names the exact module attribute.
"""

import importlib
import pkgutil
import types

import numpy as np

import repro.core.estimators
import repro.stats
from repro.core.estimators.api import SampleSizeEstimator
from repro.stats.cache import LRUCache, all_cache_info, all_caches, clear_all_caches
from repro.stats.tight_bounds import tight_epsilon, tight_epsilon_many

# Registered through custom registry adapters rather than plain LRUCache
# instances (the shared lgamma table and the concatenated pairs layout);
# they opt into clear/info/manifest duties with proxy objects.
KNOWN_NON_LRU_ENTRIES = {
    "stats.batch.log_factorial_table",
    "stats.batch.pairs_layout",
}

_SCANNED_PACKAGES = (repro.stats, repro.core.estimators)


def _walk_modules():
    for package in _SCANNED_PACKAGES:
        yield package
        for info in pkgutil.walk_packages(
            package.__path__, prefix=package.__name__ + "."
        ):
            yield importlib.import_module(info.name)


def _discovered_caches() -> dict[int, tuple[str, LRUCache]]:
    """``id(cache) -> (dotted attribute path, cache)`` over the scan."""
    found: dict[int, tuple[str, LRUCache]] = {}
    for module in _walk_modules():
        for attr_name, value in vars(module).items():
            where = f"{module.__name__}.{attr_name}"
            if isinstance(value, LRUCache):
                found.setdefault(id(value), (where, value))
            elif isinstance(value, types.FunctionType):
                wrapped = getattr(value, "cache", None)  # memoize() wrappers
                if isinstance(wrapped, LRUCache):
                    found.setdefault(id(wrapped), (f"{where}.cache", wrapped))
    return found


def test_every_discovered_cache_is_registered():
    registered_ids = {id(cache): name for name, cache in all_caches().items()}
    discovered = _discovered_caches()
    # The scan must actually see the known layers — guard against the
    # walk silently going blind after a refactor.
    assert len(discovered) >= 7, sorted(path for path, _ in discovered.values())
    unregistered = [
        path for path, cache in discovered.values() if id(cache) not in registered_ids
    ]
    assert not unregistered, (
        f"module-level caches outside the registry (clear_all_caches would "
        f"miss them): {sorted(unregistered)}"
    )


def test_every_registered_lru_cache_is_discoverable():
    discovered = _discovered_caches()
    stranded = []
    for name, cache in all_caches().items():
        if not isinstance(cache, LRUCache):
            continue
        if id(cache) not in discovered:
            stranded.append(name)
    assert not stranded, (
        f"registered caches the module scan cannot see: {sorted(stranded)} "
        f"(moved outside {[p.__name__ for p in _SCANNED_PACKAGES]}?)"
    )


def test_non_lru_registry_entries_are_the_known_proxies():
    non_lru = {
        name for name, cache in all_caches().items() if not isinstance(cache, LRUCache)
    }
    assert non_lru == KNOWN_NON_LRU_ENTRIES


def test_clear_all_caches_reaches_every_registry_entry():
    # Warm every layer the batched-evaluation stack touches.
    SampleSizeEstimator().plan("n > 0.7 +/- 0.1", delta=1e-2, steps=2)
    tight_epsilon(120, 1e-2, tol=1e-5)
    tight_epsilon_many(np.array([90, 160]), 1e-2, tol=1e-5)
    warmed = {
        name
        for name, info in all_cache_info().items()
        if info.currsize > 0
    }
    assert "estimators.plan_cache" in warmed
    assert "stats.tight_bounds.tight_epsilon_many" in warmed
    assert "stats.tight_bounds.epsilon_anchors" in warmed
    clear_all_caches()
    for name, info in all_cache_info().items():
        assert info.currsize <= 1, f"cache {name!r} not cleared"


def test_cleared_caches_recompute_identically():
    eps_warm = tight_epsilon_many(np.array([110, 330]), 1e-2, tol=1e-5)
    clear_all_caches()
    eps_cold = tight_epsilon_many(np.array([110, 330]), 1e-2, tol=1e-5)
    assert np.array_equal(eps_warm, eps_cold)
