"""Tests for the §4.3 exact-binomial sample-size machinery."""

import math

import pytest

from repro.exceptions import InvalidParameterError
from repro.stats.tight_bounds import (
    exact_coverage_failure_probability,
    tight_epsilon,
    tight_sample_size,
    worst_case_failure_probability,
)


class TestExactCoverage:
    def test_zero_when_tolerance_covers_everything(self):
        assert exact_coverage_failure_probability(10, 0.5, 1.0) == 0.0

    def test_symmetric_at_half(self):
        a = exact_coverage_failure_probability(100, 0.5, 0.07)
        assert 0.0 < a < 1.0

    def test_monotone_in_epsilon(self):
        wide = exact_coverage_failure_probability(200, 0.3, 0.1)
        narrow = exact_coverage_failure_probability(200, 0.3, 0.02)
        assert narrow > wide

    def test_monotone_in_n(self):
        small = exact_coverage_failure_probability(50, 0.4, 0.05)
        large = exact_coverage_failure_probability(5000, 0.4, 0.05)
        assert large < small

    def test_invalid_p_raises(self):
        with pytest.raises(InvalidParameterError):
            exact_coverage_failure_probability(10, 1.5, 0.1)

    def test_matches_direct_enumeration(self):
        # Brute-force check on a tiny case.
        import scipy.stats as st

        n, p, eps = 30, 0.37, 0.1
        direct = sum(
            st.binom.pmf(k, n, p)
            for k in range(n + 1)
            if abs(k / n - p) > eps
        )
        ours = exact_coverage_failure_probability(n, p, eps)
        assert ours == pytest.approx(float(direct), abs=1e-10)


class TestWorstCase:
    def test_worst_case_at_least_midpoint(self):
        mid = exact_coverage_failure_probability(150, 0.5, 0.05)
        worst = worst_case_failure_probability(150, 0.05)
        assert worst >= mid - 1e-12

    def test_bounded_by_one(self):
        assert worst_case_failure_probability(5, 0.01) <= 1.0


class TestTightSampleSize:
    def test_never_exceeds_two_sided_hoeffding(self):
        for eps, delta in [(0.1, 0.01), (0.05, 0.001), (0.05, 0.05)]:
            hoeffding = math.ceil(math.log(2 / delta) / (2 * eps * eps))
            assert tight_sample_size(eps, delta) <= hoeffding

    def test_actual_coverage_holds(self):
        eps, delta = 0.08, 0.01
        n = tight_sample_size(eps, delta)
        assert worst_case_failure_probability(n, eps) <= delta

    def test_minimality(self):
        eps, delta = 0.08, 0.01
        n = tight_sample_size(eps, delta)
        assert worst_case_failure_probability(n - 1, eps) > delta

    def test_huge_epsilon_trivial(self):
        assert tight_sample_size(1.0, 0.01) == 1

    def test_known_value_regression(self):
        # Pinned: the exact size for (0.05, 0.01) is ~37% below Hoeffding's
        # 1060.  Guards against regressions in the search.
        assert tight_sample_size(0.05, 0.01) == 670


class TestTightEpsilon:
    def test_inverse_of_sample_size(self):
        eps, delta = 0.07, 0.01
        n = tight_sample_size(eps, delta)
        achieved = tight_epsilon(n, delta)
        assert achieved <= eps + 1e-3

    def test_decreasing_in_n(self):
        assert tight_epsilon(4000, 0.01) < tight_epsilon(400, 0.01)
