"""Tests for the from-scratch binomial machinery (cross-checked vs scipy)."""

import math

import pytest
import scipy.stats as st_scipy
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidParameterError
from repro.stats.binomial import (
    binom_cdf,
    binom_logpmf,
    binom_pmf,
    binom_sf,
    binomial_tail_inversion_lower,
    binomial_tail_inversion_upper,
    clopper_pearson_interval,
)


class TestPmf:
    @given(
        st.integers(min_value=1, max_value=500),
        st.floats(min_value=0.01, max_value=0.99),
        st.data(),
    )
    @settings(max_examples=80)
    def test_matches_scipy(self, n, p, data):
        k = data.draw(st.integers(min_value=0, max_value=n))
        ours = binom_pmf(k, n, p)
        theirs = float(st_scipy.binom.pmf(k, n, p))
        assert ours == pytest.approx(theirs, rel=1e-9, abs=1e-300)

    def test_degenerate_p_zero(self):
        assert binom_pmf(0, 10, 0.0) == 1.0
        assert binom_pmf(1, 10, 0.0) == 0.0

    def test_degenerate_p_one(self):
        assert binom_pmf(10, 10, 1.0) == 1.0
        assert binom_pmf(9, 10, 1.0) == 0.0

    def test_logpmf_impossible_is_neg_inf(self):
        assert binom_logpmf(3, 10, 0.0) == -math.inf

    def test_k_out_of_range_raises(self):
        with pytest.raises(InvalidParameterError):
            binom_pmf(11, 10, 0.5)

    def test_negative_k_raises(self):
        with pytest.raises(InvalidParameterError):
            binom_pmf(-1, 10, 0.5)

    def test_pmf_sums_to_one(self):
        total = sum(binom_pmf(k, 40, 0.37) for k in range(41))
        assert total == pytest.approx(1.0, rel=1e-12)


class TestCdfSf:
    @given(
        st.integers(min_value=1, max_value=300),
        st.floats(min_value=0.01, max_value=0.99),
        st.data(),
    )
    @settings(max_examples=80)
    def test_cdf_matches_scipy(self, n, p, data):
        k = data.draw(st.integers(min_value=0, max_value=n))
        assert binom_cdf(k, n, p) == pytest.approx(
            float(st_scipy.binom.cdf(k, n, p)), rel=1e-9, abs=1e-12
        )

    @given(
        st.integers(min_value=1, max_value=300),
        st.floats(min_value=0.01, max_value=0.99),
        st.data(),
    )
    @settings(max_examples=80)
    def test_cdf_plus_sf_is_one(self, n, p, data):
        k = data.draw(st.integers(min_value=0, max_value=n))
        assert binom_cdf(k, n, p) + binom_sf(k, n, p) == pytest.approx(1.0, abs=1e-10)

    def test_cdf_full_support(self):
        assert binom_cdf(10, 10, 0.3) == 1.0

    def test_sf_at_n(self):
        assert binom_sf(10, 10, 0.3) == 0.0

    def test_large_n_stability(self):
        # 100k trials: stays finite, monotone, matches scipy closely.
        ours = binom_cdf(49_800, 100_000, 0.5)
        theirs = float(st_scipy.binom.cdf(49_800, 100_000, 0.5))
        assert ours == pytest.approx(theirs, rel=1e-6)


class TestTailInversion:
    def test_upper_bound_covers_k_over_n(self):
        upper = binomial_tail_inversion_upper(80, 100, 0.05)
        assert upper > 0.8

    def test_lower_bound_below_k_over_n(self):
        lower = binomial_tail_inversion_lower(80, 100, 0.05)
        assert lower < 0.8

    def test_upper_at_k_equals_n(self):
        assert binomial_tail_inversion_upper(100, 100, 0.05) == 1.0

    def test_lower_at_k_zero(self):
        assert binomial_tail_inversion_lower(0, 100, 0.05) == 0.0

    def test_upper_bound_definition(self):
        # cdf(k; n, upper) ~= delta at the returned bound.
        k, n, delta = 42, 200, 0.01
        upper = binomial_tail_inversion_upper(k, n, delta)
        assert binom_cdf(k, n, upper) == pytest.approx(delta, rel=1e-5)

    def test_lower_bound_definition(self):
        k, n, delta = 42, 200, 0.01
        lower = binomial_tail_inversion_lower(k, n, delta)
        assert binom_sf(k - 1, n, lower) == pytest.approx(delta, rel=1e-5)

    def test_tighter_delta_widens_bounds(self):
        loose = binomial_tail_inversion_upper(50, 100, 0.1)
        tight = binomial_tail_inversion_upper(50, 100, 0.001)
        assert tight > loose


class TestClopperPearson:
    def test_matches_scipy_interval(self):
        lower, upper = clopper_pearson_interval(98, 100, 0.05)
        theirs = st_scipy.binomtest(98, 100).proportion_ci(0.95, method="exact")
        assert lower == pytest.approx(theirs.low, abs=1e-9)
        assert upper == pytest.approx(theirs.high, abs=1e-9)

    def test_contains_mle(self):
        lower, upper = clopper_pearson_interval(30, 100, 0.05)
        assert lower < 0.3 < upper

    def test_extreme_counts(self):
        lo0, hi0 = clopper_pearson_interval(0, 50, 0.05)
        assert lo0 == 0.0 and hi0 > 0.0
        lo1, hi1 = clopper_pearson_interval(50, 50, 0.05)
        assert hi1 == 1.0 and lo1 < 1.0

    @given(st.integers(min_value=1, max_value=200), st.data())
    @settings(max_examples=40)
    def test_interval_ordering(self, n, data):
        k = data.draw(st.integers(min_value=0, max_value=n))
        lower, upper = clopper_pearson_interval(k, n, 0.1)
        assert 0.0 <= lower <= k / n <= upper <= 1.0
