"""Shape tests for the figure experiments (E2–E5, E7, E8)."""

import pytest

from repro.experiments.ablations import (
    run_allocation_ablation,
    run_filter_false_reject,
    run_reusable_vs_disposable,
)
from repro.experiments.figure3 import sweep_epsilon, sweep_variance_bound
from repro.experiments.figure4 import run_figure4
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure6 import run_figure6
from repro.experiments.practicality import (
    run_active_labeling_effort,
    run_budget_analysis,
    run_cheap_mode,
)


class TestFigure3Shapes:
    def test_ten_x_at_headline_point(self):
        point = sweep_epsilon(epsilons=(0.01,))[0]
        assert 8.0 <= point.improvement <= 12.0
        assert point.optimized_labels == 29_048

    def test_improvement_monotone_in_variance_bound(self):
        points = sweep_variance_bound()
        improvements = [p.improvement for p in points]
        assert improvements == sorted(improvements, reverse=True)


class TestFigure4Shapes:
    @pytest.fixture(scope="class")
    def points(self):
        return run_figure4(
            sample_sizes=(1000, 5000), n_replicates=5000, seed=0
        )

    def test_bounds_dominate(self, points):
        for pt in points:
            assert pt.hoeffding_valid and pt.bennett_valid

    def test_bennett_tighter(self, points):
        for pt in points:
            assert pt.bennett_epsilon < pt.hoeffding_epsilon


class TestFigure5Shapes:
    @pytest.fixture(scope="class")
    def traces(self, semeval_history):
        return run_figure5(semeval_history)

    def test_sample_sizes(self, traces):
        assert [t.planned_samples for t in traces] == [4713, 4713, 5204]

    def test_all_leave_iteration_7_active(self, traces):
        assert all(t.active_iteration == 7 for t in traces)

    def test_fn_free_passes_superset(self, traces):
        fp, fn, _ = traces
        for a, b in zip(fp.signals, fn.signals):
            assert (not a) or b

    def test_seven_evaluations_each(self, traces):
        assert all(len(t.signals) == 7 for t in traces)


class TestFigure6Shapes:
    def test_series(self, semeval_history):
        evolution = run_figure6(semeval_history)
        assert evolution.dev_monotone
        assert evolution.best_test_iteration == 7
        assert len(evolution.test_accuracy) == 8


class TestPracticality:
    def test_budget_window(self):
        budgets = {b.team_size: b.labels_per_day for b in run_budget_analysis()}
        assert budgets[2] == 28_800 and budgets[4] == 57_600

    def test_cheap_mode_reaches_10x(self):
        rows = run_cheap_mode()
        assert rows[-1].reduction_vs_strict >= 8.0

    def test_three_hours(self):
        assert run_active_labeling_effort().hours_per_day == pytest.approx(
            3.04, abs=0.01
        )


class TestAblationShapes:
    def test_reusable_always_wins(self):
        assert all(r.reusable_wins for r in run_reusable_vs_disposable())

    def test_allocation_never_worse(self):
        for row in run_allocation_ablation():
            assert row.optimal_samples <= row.even_split_samples + 1e-9

    def test_filter_false_reject_within_budget(self):
        outcome = run_filter_false_reject(n_replicates=1000, seed=3)
        assert outcome.observed_false_reject_rate <= outcome.delta_budget + 0.02

    def test_filter_rejects_bad_commits(self):
        # A commit truly above threshold + 2*tolerance gets rejected often.
        outcome = run_filter_false_reject(
            true_difference=0.14, n_replicates=500, seed=4
        )
        assert outcome.observed_false_reject_rate > 0.9
