"""Tests for the experiment runner and its CLI hook."""

import json

import pytest

from repro.cli import main
from repro.experiments.runner import run_all


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    output = tmp_path_factory.mktemp("results")
    records = run_all(output, quick=True)
    return output, records


class TestRunAll:
    def test_nine_experiments(self, artifacts):
        _, records = artifacts
        assert len(records) == 9
        ids = [r.experiment_id for r in records]
        assert ids[0] == "E1-figure2" and ids[-1] == "E9-extensions"

    def test_artifacts_are_valid_json(self, artifacts):
        output, records = artifacts
        for record in records:
            data = json.loads(record.path.read_text())
            assert data  # non-empty

    def test_summary_checks(self, artifacts):
        output, _ = artifacts
        summary = json.loads((output / "summary.json").read_text())
        checks = summary["checks"]
        assert checks["figure2_all_cells_exact"] is True
        assert checks["intext_claims_matching"] == checks["intext_claims_total"]

    def test_figure2_artifact_shape(self, artifacts):
        output, _ = artifacts
        rows = json.loads((output / "E1-figure2.json").read_text())
        assert len(rows) == 16
        assert {"reliability", "tolerance", "f1_none"} <= set(rows[0])


class TestCliHook:
    def test_experiments_command(self, tmp_path, capsys):
        code = main(
            ["experiments", "--output", str(tmp_path / "out"), "--quick"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "wrote 9 artifacts" in out
        assert (tmp_path / "out" / "summary.json").exists()
