"""The reproduction scorecard: every published number, asserted exactly.

This file is the contract between the library and the paper: if any of
these fail, the reproduction has drifted.
"""

import pytest

from repro.experiments.figure2 import PAPER_FIGURE2, run_figure2
from repro.experiments.intext import run_intext


class TestFigure2Exact:
    @pytest.fixture(scope="class")
    def rows(self):
        return {(r.reliability, r.tolerance): r for r in run_figure2()}

    @pytest.mark.parametrize("key", sorted(PAPER_FIGURE2))
    def test_cell(self, rows, key):
        row = rows[key]
        assert (
            row.f1_none,
            row.f1_full,
            row.f2_none,
            row.f2_full,
        ) == PAPER_FIGURE2[key]

    def test_full_grid_covered(self, rows):
        assert len(rows) == 16

    def test_impractical_flags_at_one_point(self, rows):
        # §3.6: "none of the adaptive strategies is practical up to 1
        # accuracy point" at high reliability.
        row = rows[(0.9999, 0.01)]
        flags = row.impractical()
        assert flags["f1_none"] and flags["f1_full"]
        assert flags["f2_none"] and flags["f2_full"]

    def test_practical_at_coarse_tolerance(self, rows):
        row = rows[(0.9999, 0.1)]
        assert not any(row.impractical().values())


class TestInTextExact:
    @pytest.fixture(scope="class")
    def claims(self):
        return run_intext()

    def test_every_claim_matches(self, claims):
        for claim in claims:
            assert claim.matches, (
                f"{claim.source}: paper {claim.paper_value} vs "
                f"computed {claim.computed_value}"
            )

    def test_coverage_of_sections(self, claims):
        sources = {c.source for c in claims}
        assert {"§1", "§3.3", "§4.1.1", "§4.1.2", "§5.2", "Fig. 5"} <= sources

    def test_at_least_thirteen_claims(self, claims):
        assert len(claims) >= 13
