"""Unit tests for the E9 extension studies and the paired Figure 4."""

import pytest

from repro.experiments.extensions import (
    run_drift_budget,
    run_metric_tax,
    run_stratified_ablation,
)
from repro.experiments.figure4 import run_figure4_paired


class TestStratifiedAblation:
    def test_balanced_no_gain(self):
        rows = run_stratified_ablation(rare_weights=(0.5,))
        assert rows[0].improvement == pytest.approx(1.0)

    def test_skew_brings_gain(self):
        rows = run_stratified_ablation(rare_weights=(0.01,))
        assert rows[0].improvement > 3.0

    def test_monotone_in_skew(self):
        rows = run_stratified_ablation()
        improvements = [r.improvement for r in rows]
        assert improvements == sorted(improvements)


class TestMetricTax:
    def test_f1_always_costs_more(self):
        for row in run_metric_tax():
            assert row.f1_samples > row.accuracy_samples

    def test_tax_grows_with_skew(self):
        rows = run_metric_tax()
        taxes = [r.tax for r in rows]
        assert taxes == sorted(taxes)

    def test_balanced_tax_is_sensitivity_squared(self):
        # c = 4/(K*alpha) = 4 at K=4, alpha=0.25 -> 16x samples.
        row = run_metric_tax(min_class_fractions=(0.25,))[0]
        assert row.tax == pytest.approx(16.0, rel=0.01)


class TestDriftBudget:
    def test_total_grows_per_period_logarithmic(self):
        rows = run_drift_budget()
        per_period = [r.samples_per_period for r in rows]
        totals = [r.total_samples for r in rows]
        assert per_period == sorted(per_period)  # more periods -> tighter split
        assert totals == sorted(totals)
        # Logarithmic: ~91x more periods, <2x per-period labels.
        assert per_period[-1] < 2 * per_period[0]


class TestPairedFigure4:
    def test_bennett_valid_and_tighter(self):
        points = run_figure4_paired(
            sample_sizes=(3000, 10_000), n_replicates=4000, seed=1
        )
        for pt in points:
            assert pt.bennett_valid
            assert pt.bennett_epsilon < pt.hoeffding_epsilon / 2
