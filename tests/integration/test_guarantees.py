"""Statistical-guarantee integration tests.

The system's core promise: with probability ``1 - delta``, the pass/fail
signal is free of the configured error kind.  These tests verify the
promise *empirically* by Monte Carlo over full plan->evaluate pipelines —
the strongest end-to-end check the library has.
"""

import numpy as np
import pytest

from repro.core.estimators.api import SampleSizeEstimator
from repro.core.evaluation import ConditionEvaluator
from repro.ml.models.simulated import ModelPairSpec, simulate_model_pair
from repro.stats.estimation import PairedSample
from repro.utils.rng import spawn_rngs


def run_replicates(plan, mode, spec, n_replicates, seed):
    """Evaluate a plan on fresh i.i.d. worlds; return pass decisions."""
    decisions = []
    evaluator = ConditionEvaluator(plan, mode, enforce_sample_size=False)
    for rng in spawn_rngs(seed, n_replicates):
        pair = simulate_model_pair(
            spec, n_examples=plan.pool_size, exact=False, seed=rng
        )
        sample = PairedSample(
            old_predictions=pair.old_model.predictions,
            new_predictions=pair.new_model.predictions,
            labels=pair.labels,
        )
        decisions.append(evaluator.evaluate(sample).passed)
    return np.asarray(decisions)


class TestFpFreeGuarantee:
    """fp-free: when the condition is truly false, (almost) never pass."""

    def test_no_false_positives_below_threshold(self):
        # True gain 0.01 < threshold 0.02: passing would be a false positive.
        plan = SampleSizeEstimator().plan(
            "n - o > 0.02 +/- 0.02",
            delta=0.01,
            adaptivity="none",
            steps=1,
            known_variance_bound=0.1,
        )
        spec = ModelPairSpec(
            old_accuracy=0.85, new_accuracy=0.86, difference=0.08,
            disagree_wrong=0.035,
        )
        decisions = run_replicates(plan, "fp-free", spec, 300, seed=0)
        # delta = 0.01; allow Monte-Carlo slack (99.9% binomial band).
        assert decisions.mean() <= 0.03

    def test_clear_truth_still_passes(self):
        # True gain 0.06 > threshold + tolerance: should essentially always pass.
        plan = SampleSizeEstimator().plan(
            "n - o > 0.02 +/- 0.02",
            delta=0.01,
            adaptivity="none",
            steps=1,
            known_variance_bound=0.1,
        )
        spec = ModelPairSpec(
            old_accuracy=0.85, new_accuracy=0.91, difference=0.08,
            disagree_wrong=0.005,
        )
        decisions = run_replicates(plan, "fp-free", spec, 300, seed=1)
        assert decisions.mean() >= 0.97


class TestFnFreeGuarantee:
    """fn-free: when the condition is truly true, (almost) never fail."""

    def test_no_false_negatives_above_threshold(self):
        # True d = 0.05 < 0.1: failing the d-clause would be a false negative.
        plan = SampleSizeEstimator(optimizations="none").plan(
            "d < 0.1 +/- 0.02", delta=0.01, adaptivity="none", steps=1
        )
        spec = ModelPairSpec(
            old_accuracy=0.9, new_accuracy=0.9, difference=0.05,
            disagree_wrong=0.02,
        )
        decisions = run_replicates(plan, "fn-free", spec, 300, seed=2)
        assert decisions.mean() >= 0.97

    def test_clear_violation_still_fails(self):
        # True d = 0.2 >> 0.1 + 0.02: should essentially always fail.
        plan = SampleSizeEstimator(optimizations="none").plan(
            "d < 0.1 +/- 0.02", delta=0.01, adaptivity="none", steps=1
        )
        spec = ModelPairSpec(
            old_accuracy=0.75, new_accuracy=0.75, difference=0.2,
            disagree_wrong=0.1,
        )
        decisions = run_replicates(plan, "fn-free", spec, 300, seed=3)
        assert decisions.mean() <= 0.03


class TestUnionBoundAcrossSteps:
    """The delta/H budget keeps the *whole trajectory* valid."""

    def test_h_step_trajectory_error_rate(self):
        steps = 8
        plan = SampleSizeEstimator().plan(
            "n - o > 0.02 +/- 0.02",
            delta=0.05,
            adaptivity="none",
            steps=steps,
            known_variance_bound=0.1,
        )
        evaluator = ConditionEvaluator(plan, "fp-free", enforce_sample_size=False)
        spec = ModelPairSpec(
            old_accuracy=0.85, new_accuracy=0.86, difference=0.08,
            disagree_wrong=0.035,
        )  # truly below the bar everywhere
        bad_trajectories = 0
        n_trajectories = 60
        for rng in spawn_rngs(17, n_trajectories):
            any_false_positive = False
            for _ in range(steps):
                pair = simulate_model_pair(
                    spec, n_examples=plan.pool_size, exact=False, seed=rng
                )
                sample = PairedSample(
                    old_predictions=pair.old_model.predictions,
                    new_predictions=pair.new_model.predictions,
                    labels=pair.labels,
                )
                if evaluator.evaluate(sample).passed:
                    any_false_positive = True
            bad_trajectories += any_false_positive
        # delta = 0.05 for the whole trajectory; generous MC slack.
        assert bad_trajectories / n_trajectories <= 0.15
