"""Property-based tests on system-level invariants (hypothesis-driven).

These are the invariants DESIGN.md commits to; they must hold for *any*
valid input, not just the paper's parameter points.
"""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.dsl.nodes import Clause, Formula, Variable
from repro.core.dsl.parser import parse_condition
from repro.core.estimators.api import SampleSizeEstimator
from repro.core.evaluation import ConditionEvaluator
from repro.core.logic import TernaryResult
from repro.ml.models.simulated import ModelPairSpec, simulate_model_pair
from repro.stats.estimation import PairedSample

# -- strategies ---------------------------------------------------------------

variables = st.sampled_from(["n", "o", "d"])
tolerances = st.floats(min_value=0.005, max_value=0.3).map(lambda x: round(x, 4))
thresholds = st.floats(min_value=0.0, max_value=1.0).map(lambda x: round(x, 4))
comparators = st.sampled_from([">", "<"])
deltas = st.floats(min_value=1e-6, max_value=0.2)
steps = st.integers(min_value=1, max_value=64)


@st.composite
def clauses(draw):
    return Clause(
        expression=Variable(draw(variables)),
        comparator=draw(comparators),
        threshold=draw(thresholds),
        tolerance=draw(tolerances),
    )


@st.composite
def formulas(draw):
    n_clauses = draw(st.integers(min_value=1, max_value=3))
    return Formula(tuple(draw(clauses()) for _ in range(n_clauses)))


# -- estimator invariants ------------------------------------------------------


class TestEstimatorInvariants:
    @given(formula=formulas(), delta=deltas, h=steps)
    @settings(max_examples=60, deadline=None)
    def test_adaptivity_ordering(self, formula, delta, h):
        """full >= firstChange == none, for every formula and budget."""
        estimator = SampleSizeEstimator(optimizations="none")
        none = estimator.plan(formula, delta=delta, adaptivity="none", steps=h)
        full = estimator.plan(formula, delta=delta, adaptivity="full", steps=h)
        hybrid = estimator.plan(
            formula, delta=delta, adaptivity="firstChange", steps=h
        )
        assert full.samples >= none.samples
        assert hybrid.samples == none.samples

    @given(formula=formulas(), delta=deltas, h=steps)
    @settings(max_examples=40, deadline=None)
    def test_optimizations_never_hurt_label_cost(self, formula, delta, h):
        baseline = SampleSizeEstimator(optimizations="none").plan(
            formula, delta=delta, adaptivity="none", steps=h
        )
        optimized = SampleSizeEstimator().plan(
            formula, delta=delta, adaptivity="none", steps=h
        )
        assert optimized.samples <= baseline.samples

    @given(clause=clauses(), delta=deltas)
    @settings(max_examples=40, deadline=None)
    def test_samples_decrease_with_delta(self, clause, delta):
        estimator = SampleSizeEstimator(optimizations="none")
        formula = Formula((clause,))
        tight = estimator.plan(formula, delta=delta / 10, adaptivity="none", steps=1)
        loose = estimator.plan(formula, delta=delta, adaptivity="none", steps=1)
        assert tight.samples >= loose.samples

    @given(clause=clauses(), h=steps)
    @settings(max_examples=40, deadline=None)
    def test_samples_increase_with_steps(self, clause, h):
        estimator = SampleSizeEstimator(optimizations="none")
        formula = Formula((clause,))
        short = estimator.plan(formula, delta=0.01, adaptivity="none", steps=1)
        long = estimator.plan(formula, delta=0.01, adaptivity="none", steps=h)
        assert long.samples >= short.samples

    @given(formula=formulas())
    @settings(max_examples=40, deadline=None)
    def test_clause_tolerances_respected(self, formula):
        """Each clause's term tolerances sum to its declared tolerance."""
        plan = SampleSizeEstimator(optimizations="none").plan(
            formula, delta=0.01, adaptivity="none", steps=2
        )
        for clause_plan in plan.clause_plans:
            assert clause_plan.expression_tolerance == pytest.approx(
                clause_plan.clause.tolerance, rel=1e-9
            )


class TestDslRoundTrip:
    @given(formula=formulas())
    @settings(max_examples=60, deadline=None)
    def test_source_round_trip(self, formula):
        assert parse_condition(formula.to_source()) == formula


class TestEvaluationInvariants:
    @given(
        gain=st.floats(min_value=-0.04, max_value=0.04),
        diff=st.floats(min_value=0.05, max_value=0.12),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_fp_free_pass_implies_fn_free_pass(self, gain, diff, seed):
        """fp-free is strictly more conservative than fn-free."""
        assume(abs(gain) <= diff)
        plan = SampleSizeEstimator().plan(
            "n - o > 0.02 +/- 0.02",
            delta=0.01,
            adaptivity="none",
            steps=1,
            known_variance_bound=0.15,
        )
        pair = simulate_model_pair(
            ModelPairSpec(
                old_accuracy=0.8,
                new_accuracy=min(1.0, 0.8 + gain),
                difference=diff,
                disagree_wrong=max(0.0, (diff - abs(gain)) / 2),
            ),
            n_examples=plan.pool_size,
            seed=seed,
        )
        sample = PairedSample(
            old_predictions=pair.old_model.predictions,
            new_predictions=pair.new_model.predictions,
            labels=pair.labels,
        )
        fp = ConditionEvaluator(plan, "fp-free").evaluate(sample)
        fn = ConditionEvaluator(plan, "fn-free").evaluate(sample)
        assert (not fp.passed) or fn.passed
        # And the ternary values agree (modes only differ on Unknown).
        assert fp.ternary == fn.ternary

    @given(
        margin=st.floats(min_value=0.045, max_value=0.1),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=20, deadline=None)
    def test_clear_margin_is_determinate(self, margin, seed):
        """A gain exceeding threshold + tolerance by a clear margin always
        evaluates to a determinate True (exact-count world)."""
        plan = SampleSizeEstimator().plan(
            "n - o > 0.02 +/- 0.02",
            delta=0.01,
            adaptivity="none",
            steps=1,
            known_variance_bound=0.25,
        )
        gain = 0.04 + margin
        pair = simulate_model_pair(
            ModelPairSpec(
                old_accuracy=0.75,
                new_accuracy=0.75 + gain,
                difference=gain + 0.02,
                disagree_wrong=0.01,
            ),
            n_examples=plan.pool_size,
            exact=True,
            seed=seed,
        )
        sample = PairedSample(
            old_predictions=pair.old_model.predictions,
            new_predictions=pair.new_model.predictions,
            labels=pair.labels,
        )
        result = ConditionEvaluator(plan, "fp-free").evaluate(sample)
        assert result.ternary is TernaryResult.TRUE
