"""Integration tests: the full four-step workflow across subsystems."""

import numpy as np
import pytest

from repro.ci.notifications import InMemoryEmailTransport
from repro.ci.repository import ModelRepository
from repro.ci.service import CIService
from repro.core.script.config import CIScript
from repro.core.testset import Testset
from repro.ml.datasets.emotion import EMOTION_CLASSES, EmotionDatasetGenerator
from repro.ml.models.naive_bayes import MultinomialNaiveBayes
from repro.ml.models.simulated import (
    ModelPairSpec,
    evolve_predictions,
    simulate_model_pair,
)
from repro.ml.models.base import FixedPredictionModel


class TestScriptToSignalPipeline:
    """YAML text in, pass/fail signals and alarms out."""

    SCRIPT = """
ml:
  - script     : ./test_model.py
  - condition  : n - o > 0.02 +/- 0.04 /\\ d < 0.2 +/- 0.04
  - reliability: 0.99
  - mode       : fp-free
  - adaptivity : firstChange
  - steps      : 5
"""

    def test_first_change_lifecycle(self):
        script = CIScript.from_yaml(self.SCRIPT)
        from repro.core.estimators.api import SampleSizeEstimator

        pool = SampleSizeEstimator().plan(
            script.condition, delta=script.delta,
            adaptivity=script.adaptivity, steps=script.steps,
        ).pool_size
        world = simulate_model_pair(
            ModelPairSpec(old_accuracy=0.8, new_accuracy=0.8, difference=0.0),
            n_examples=pool,
            seed=0,
        )
        transport = InMemoryEmailTransport()
        service = CIService(
            script,
            Testset(labels=world.labels, name="gen1"),
            world.old_model,
            transport=transport,
        )
        # Two failing attempts, then a clear pass that retires the testset.
        for i, (acc, diff) in enumerate([(0.81, 0.05), (0.82, 0.06), (0.9, 0.12)]):
            model = FixedPredictionModel(
                evolve_predictions(
                    service.active_model.predictions,
                    world.labels,
                    target_accuracy=acc,
                    difference=diff,
                    seed=i,
                ),
                name=f"m{i}",
            )
            service.repository.commit(model)
        statuses = [b.commit.status.value for b in service.builds]
        assert statuses == ["failed", "failed", "passed"]
        # The pass fired the firstChange alarm and retired the testset.
        assert service.engine.manager.is_exhausted
        assert any("new testset" in m.subject for m in transport.messages)
        # Old testset is now a dev set.
        assert len(service.engine.manager.released_testsets) == 1

    def test_plan_enforced_against_undersized_testset(self):
        script = CIScript.from_yaml(self.SCRIPT)
        world = simulate_model_pair(
            ModelPairSpec(old_accuracy=0.8, new_accuracy=0.8, difference=0.0),
            n_examples=50,
            seed=0,
        )
        from repro.exceptions import TestsetSizeError

        with pytest.raises(TestsetSizeError):
            CIService(
                script, Testset(labels=world.labels), world.old_model
            )


class TestRealModelsThroughEngine:
    """Genuinely trained models, no simulation in the signal path."""

    def test_naive_bayes_improvement_detected(self):
        generator = EmotionDatasetGenerator(seed=1)
        train_x, train_y = generator.sample(4000, seed=2)
        test_x, test_y = generator.sample(6000, seed=3)
        script = CIScript.from_dict(
            {
                "condition": "n - o > 0.01 +/- 0.05",
                "reliability": 0.99,
                "mode": "fn-free",
                "adaptivity": "full",
                "steps": 2,
            }
        )
        weak = MultinomialNaiveBayes(len(EMOTION_CLASSES)).fit(
            train_x[:150], train_y[:150]
        )
        strong = MultinomialNaiveBayes(len(EMOTION_CLASSES)).fit(train_x, train_y)
        from repro.core.engine import CIEngine

        engine = CIEngine(
            script, Testset(labels=test_y, features=test_x), weak
        )
        result = engine.submit(strong)
        weak_acc = np.mean(weak.predict(test_x) == test_y)
        strong_acc = np.mean(strong.predict(test_x) == test_y)
        assert strong_acc > weak_acc  # training on more data helps
        assert result.truly_passed
        assert engine.active_model is strong


class TestRepositoryServiceEngineConsistency:
    def test_every_commit_has_exactly_one_build(self):
        script = CIScript.from_dict(
            {
                "condition": "n > 0.5 +/- 0.1",
                "reliability": 0.99,
                "mode": "fn-free",
                "adaptivity": "full",
                "steps": 10,
            }
        )
        world = simulate_model_pair(
            ModelPairSpec(old_accuracy=0.8, new_accuracy=0.8, difference=0.0),
            n_examples=1000,
            seed=0,
        )
        service = CIService(
            script,
            Testset(labels=world.labels),
            world.old_model,
            repository=ModelRepository(),
        )
        for _ in range(5):
            service.repository.commit(world.old_model)
        assert len(service.builds) == len(service.repository) == 5
        assert [b.commit.sequence for b in service.builds] == list(range(5))
