"""Smoke tests: every example script runs to completion.

Each example is executed in-process (import + main()) with stdout
captured, asserting on a signature line so a silently broken example
cannot pass.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, capsys) -> str:
    spec = importlib.util.spec_from_file_location(name, EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(name, None)
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart", capsys)
    assert "parsed script" in out
    assert "PASS" in out and "FAIL" in out
    assert "active model: better-regularizer" in out


def test_semeval_workflow(capsys):
    out = run_example("semeval_workflow", capsys)
    assert "4,713" in out and "5,204" in out
    assert "active model = iteration 7" in out


def test_active_labeling_workflow(capsys):
    out = run_example("active_labeling_workflow", capsys)
    assert "fresh" in out
    assert "labels are reused across commits" in out
    # act 2: the pool lifecycle replaces catching TestsetExhaustedError
    assert "Label a new testset now" in out
    assert "zero skipped builds" in out
    assert "generations [1, 2, 3]" in out


def test_adaptive_attack_demo(capsys):
    out = run_example("adaptive_attack_demo", capsys)
    assert "NO" in out  # naive sizing broken
    assert "yes" in out  # 2^H sizing holds


@pytest.mark.slow
def test_real_training_pipeline(capsys):
    out = run_example("real_training_pipeline", capsys)
    assert "active model test accuracy" in out
    assert "mail received by the integration team" in out


def test_model_zoo_pattern2(capsys):
    out = run_example("model_zoo_pattern2", capsys)
    assert "max pairwise top-1 disagreement" in out
    assert "TRUE (PASS)" in out and "FALSE (FAIL)" in out
