"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import settings

from repro.core.script.config import CIScript
from repro.ml.datasets.emotion import SemEvalHistory, make_semeval_history

# Derandomize hypothesis so the suite is bit-for-bit reproducible across
# runs (examples are still diverse, just derived deterministically).
settings.register_profile("repro", derandomize=True)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for ad-hoc draws."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def semeval_history() -> SemEvalHistory:
    """The scripted 8-model history (expensive-ish; shared per session)."""
    return make_semeval_history()


@pytest.fixture
def basic_script() -> CIScript:
    """A small, valid CI script used across engine tests."""
    return CIScript.from_dict(
        {
            "script": "./test_model.py",
            "condition": "n - o > 0.02 +/- 0.05",
            "reliability": 0.99,
            "mode": "fp-free",
            "adaptivity": "full",
            "steps": 4,
        }
    )
