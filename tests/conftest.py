"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import settings

from repro.core.script.config import CIScript
from repro.ml.datasets.emotion import SemEvalHistory, make_semeval_history

# Derandomize hypothesis so the suite is bit-for-bit reproducible across
# runs (examples are still diverse, just derived deterministically).
settings.register_profile("repro", derandomize=True)
settings.load_profile("repro")


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--engine-backend",
        action="store",
        default="default",
        help=(
            "kernel backend name the conformance suite certifies "
            "(tests/conformance/): 'default' for the stock components, "
            "'naive' for the reference backend, or any name registered "
            "via repro.core.kernel.register_backend"
        ),
    )


@pytest.fixture(scope="session")
def parity_world_cache():
    """Session-cached parity worlds: ``(script, testsets, baseline, models)``.

    ``make_world`` simulates predictions for a plan-sized testset per
    (adaptivity, steps, ...) combination — rebuilding it per test is the
    single biggest fixed cost of the parity-style suites.  The returned
    getter derives each world once per session; everything in it is
    read-only in engine use (tests build their own ``TestsetPool`` /
    services around it), so sharing is safe.
    """
    from tests.ci.test_restart_parity import make_script, make_world

    cache: dict[tuple, tuple] = {}

    def get(
        adaptivity: str,
        *,
        steps: int = 4,
        commits: int = 10,
        promote_at: tuple[int, ...] = (2, 6),
        generations: int = 3,
        seed: int = 0,
    ) -> tuple:
        key = (adaptivity, steps, commits, tuple(promote_at), generations, seed)
        if key not in cache:
            script = make_script(adaptivity, steps=steps)
            testsets, baseline, models = make_world(
                script,
                commits=commits,
                promote_at=promote_at,
                generations=generations,
                seed=seed,
            )
            cache[key] = (script, testsets, baseline, models)
        return cache[key]

    return get


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for ad-hoc draws."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def semeval_history() -> SemEvalHistory:
    """The scripted 8-model history (expensive-ish; shared per session)."""
    return make_semeval_history()


@pytest.fixture
def basic_script() -> CIScript:
    """A small, valid CI script used across engine tests."""
    return CIScript.from_dict(
        {
            "script": "./test_model.py",
            "condition": "n - o > 0.02 +/- 0.05",
            "reliability": 0.99,
            "mode": "fp-free",
            "adaptivity": "full",
            "steps": 4,
        }
    )
