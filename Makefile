# One-command entry points for the pipeline.
#
#   make verify           - tier-1 test run (what CI gates on)
#   make verify-fast      - tier-1 without the slow end-to-end examples
#   make bench-perf       - scalar-vs-batch perf kernels benchmark
#                           (writes BENCH_perf_kernels.json)
#   make bench-throughput - batched commit-evaluation + epsilon planning
#                           benchmark (writes BENCH_commit_throughput.json)
#   make bench            - full pytest-benchmark suite over the paper
#                           artifacts, plus the perf benchmarks above

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: verify verify-fast bench bench-perf bench-throughput

verify:
	$(PYTHON) -m pytest -x -q

verify-fast:
	$(PYTHON) -m pytest -x -q -m "not slow"

bench-perf:
	$(PYTHON) benchmarks/bench_perf_kernels.py

bench-throughput:
	$(PYTHON) benchmarks/bench_commit_throughput.py

bench: bench-perf bench-throughput
	$(PYTHON) -m pytest -q benchmarks -s
