# One-command entry points for the pipeline.
#
#   make verify           - tier-1 test run + doc doctests (what CI gates on)
#   make verify-fast      - tier-1 without the slow end-to-end examples
#   make ci               - what .github/workflows/ci.yml runs: verify +
#                           --quick benchmark smoke runs + BENCH_*.json
#                           schema validation
#   make bench-smoke      - the --quick benchmark runs + schema check alone
#   make test-faults      - the chaos suite: fault injection, supervised
#                           executor, corruption restore, chaos parity
#   make conformance      - the backend conformance kit against the stock
#                           and naive backends (pass BACKEND=name for one)
#   make coverage         - line coverage (pytest-cov when installed,
#                           stdlib settrace fallback offline) + the
#                           ratchet-only floor gate
#   make docs             - doctests over README.md and docs/*.md code blocks
#   make bench-perf       - scalar-vs-batch perf kernels benchmark
#                           (writes BENCH_perf_kernels.json); pass
#                           WORKERS=N to set the epsilon-sweep shard
#                           width (default 4)
#   make bench-throughput - batched commit-evaluation + epsilon planning
#                           benchmark (writes BENCH_commit_throughput.json)
#   make bench-fleet      - multi-tenant fleet parity + overload gate
#                           (writes BENCH_fleet.json)
#   make bench-storage    - journal compaction + disk-budget gates
#                           (writes BENCH_storage.json)
#   make bench            - full pytest-benchmark suite over the paper
#                           artifacts, plus the perf benchmarks above

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: verify verify-fast ci bench-smoke test-faults conformance coverage docs bench bench-perf bench-throughput bench-fleet bench-storage

verify:
	$(PYTHON) -m pytest -x -q
	$(PYTHON) -m pytest -q --doctest-glob="*.md" README.md docs

verify-fast:
	$(PYTHON) -m pytest -x -q -m "not slow"

ci: verify bench-smoke

bench-smoke:
	$(PYTHON) benchmarks/bench_perf_kernels.py --quick
	$(PYTHON) benchmarks/bench_commit_throughput.py --quick
	$(PYTHON) benchmarks/bench_fault_recovery.py --quick
	$(PYTHON) benchmarks/bench_fleet.py --quick
	$(PYTHON) benchmarks/bench_storage.py --quick
	$(PYTHON) benchmarks/check_bench_schema.py

test-faults:
	$(PYTHON) -m pytest -q tests/reliability

conformance:
ifdef BACKEND
	$(PYTHON) -m pytest -q tests/conformance --engine-backend $(BACKEND)
else
	$(PYTHON) -m pytest -q tests/conformance --engine-backend default
	$(PYTHON) -m pytest -q tests/conformance --engine-backend naive
endif

coverage:
	$(PYTHON) tools/run_coverage.py
	$(PYTHON) tools/check_coverage.py

docs:
	$(PYTHON) -m pytest -q --doctest-glob="*.md" README.md docs

bench-perf:
	$(PYTHON) benchmarks/bench_perf_kernels.py $(if $(WORKERS),--workers $(WORKERS),)

bench-throughput:
	$(PYTHON) benchmarks/bench_commit_throughput.py

bench-fleet:
	$(PYTHON) benchmarks/bench_fleet.py

bench-storage:
	$(PYTHON) benchmarks/bench_storage.py

bench: bench-perf bench-throughput
	$(PYTHON) -m pytest -q benchmarks -s
