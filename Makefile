# One-command entry points for the pipeline.
#
#   make verify        - tier-1 test run (what CI gates on)
#   make verify-fast   - tier-1 without the slow end-to-end examples
#   make bench-perf    - scalar-vs-batch perf kernels benchmark
#                        (writes BENCH_perf_kernels.json)
#   make bench         - full pytest-benchmark suite over the paper artifacts

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: verify verify-fast bench bench-perf

verify:
	$(PYTHON) -m pytest -x -q

verify-fast:
	$(PYTHON) -m pytest -x -q -m "not slow"

bench-perf:
	$(PYTHON) benchmarks/bench_perf_kernels.py

bench:
	$(PYTHON) -m pytest -q benchmarks -s
