#!/usr/bin/env python
"""Run the test suite under line coverage and write ``coverage.xml``.

Two engines, picked automatically:

* **pytest-cov** when importable (CI installs it): the standard
  ``--cov=repro --cov-report=term --cov-report=xml`` run.
* A **stdlib fallback** otherwise (the offline dev container has no
  coverage packages and installing them is not an option): a
  ``sys.settrace`` line tracer scoped to ``src/repro`` frames runs
  pytest in-process, then executable lines are recovered from compiled
  code objects (``co_lines``) and the result is written as a minimal
  Cobertura-style XML whose root ``line-rate`` is what
  ``tools/check_coverage.py`` gates on.

The two engines agree closely but not bit-for-bit (pytest-cov counts a
few arc/line cases the fallback does not), which is why the floor in
``tools/coverage_floor.txt`` ratchets just *below* measured values.

Usage: ``python tools/run_coverage.py [pytest args...]`` (defaults to
the full tier-1 selection).
"""

from __future__ import annotations

import importlib.util
import os
import subprocess
import sys
import threading
import types
from pathlib import Path
from xml.etree import ElementTree

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"
PACKAGE_ROOT = SRC_ROOT / "repro"
XML_PATH = REPO_ROOT / "coverage.xml"


def _run_pytest_cov(pytest_args: list[str]) -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{SRC_ROOT}{os.pathsep}{env['PYTHONPATH']}" if env.get(
        "PYTHONPATH"
    ) else str(SRC_ROOT)
    return subprocess.call(
        [
            sys.executable,
            "-m",
            "pytest",
            "--cov=repro",
            "--cov-report=term",
            f"--cov-report=xml:{XML_PATH}",
            *pytest_args,
        ],
        cwd=REPO_ROOT,
        env=env,
    )


# ---------------------------------------------------------------------------
# Stdlib fallback
# ---------------------------------------------------------------------------


class _LineCollector:
    """Records executed (filename, lineno) pairs for frames under src/repro."""

    def __init__(self, root: str):
        self._root = root
        self.hits: dict[str, set[int]] = {}

    def _local(self, frame, event, arg):
        if event == "line":
            self.hits.setdefault(frame.f_code.co_filename, set()).add(frame.f_lineno)
        return self._local

    def global_trace(self, frame, event, arg):
        # Only frames whose code lives in the package are traced; every
        # other frame (pytest, numpy, stdlib) returns None and runs at
        # full speed.
        if frame.f_code.co_filename.startswith(self._root):
            return self._local
        return None


def _executable_lines(path: Path) -> set[int]:
    """Line numbers that carry bytecode, from the compiled code objects."""
    try:
        code = compile(path.read_text(encoding="utf-8"), str(path), "exec")
    except SyntaxError:
        return set()
    lines: set[int] = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        for _, _, lineno in obj.co_lines():
            if lineno is not None:
                lines.add(lineno)
        stack.extend(c for c in obj.co_consts if isinstance(c, types.CodeType))
    # The compiler attributes module docstrings/headers to line ranges
    # that always execute on import; RESUME pseudo-lines at 0 are gone
    # via the None filter above.
    return lines


def _write_xml(per_file: list[tuple[str, int, int]], covered: int, valid: int) -> None:
    rate = covered / valid if valid else 1.0
    root = ElementTree.Element(
        "coverage",
        {
            "line-rate": f"{rate:.4f}",
            "branch-rate": "0",
            "lines-covered": str(covered),
            "lines-valid": str(valid),
            "version": "repro-fallback-1",
            "timestamp": "0",
        },
    )
    packages = ElementTree.SubElement(root, "packages")
    package = ElementTree.SubElement(
        packages, "package", {"name": "repro", "line-rate": f"{rate:.4f}"}
    )
    classes = ElementTree.SubElement(package, "classes")
    for rel, hit, total in per_file:
        ElementTree.SubElement(
            classes,
            "class",
            {
                "name": rel.replace("/", "."),
                "filename": rel,
                "line-rate": f"{(hit / total) if total else 1.0:.4f}",
                "lines-covered": str(hit),
                "lines-valid": str(total),
            },
        )
    ElementTree.ElementTree(root).write(XML_PATH, encoding="utf-8")


def _run_fallback(pytest_args: list[str]) -> int:
    sys.path.insert(0, str(SRC_ROOT))
    import pytest

    collector = _LineCollector(str(PACKAGE_ROOT))
    threading.settrace(collector.global_trace)
    sys.settrace(collector.global_trace)
    try:
        exit_code = pytest.main(["-q", *pytest_args])
    finally:
        sys.settrace(None)
        threading.settrace(None)  # type: ignore[arg-type]

    per_file: list[tuple[str, int, int]] = []
    covered = valid = 0
    for path in sorted(PACKAGE_ROOT.rglob("*.py")):
        executable = _executable_lines(path)
        hit = len(executable & collector.hits.get(str(path), set()))
        per_file.append((str(path.relative_to(SRC_ROOT)), hit, len(executable)))
        covered += hit
        valid += len(executable)

    print(f"\n{'file':60s} {'lines':>7s} {'hit':>7s} {'cover':>7s}")
    for rel, hit, total in per_file:
        pct = (hit / total * 100.0) if total else 100.0
        print(f"{rel:60s} {total:7d} {hit:7d} {pct:6.1f}%")
    rate = covered / valid if valid else 1.0
    print(f"{'TOTAL':60s} {valid:7d} {covered:7d} {rate * 100.0:6.1f}%")
    print(f"wrote {XML_PATH} (line-rate {rate:.4f}, stdlib settrace engine)")

    _write_xml(per_file, covered, valid)
    return int(exit_code)


def main(argv: list[str]) -> int:
    pytest_args = argv or []
    if importlib.util.find_spec("pytest_cov") is not None:
        return _run_pytest_cov(pytest_args)
    print("pytest-cov not importable; using the stdlib settrace fallback", flush=True)
    return _run_fallback(pytest_args)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
