#!/usr/bin/env python
"""Gate ``coverage.xml`` against the ratchet-only line-coverage floor.

The floor lives in ``tools/coverage_floor.txt`` and only ever moves up:
CI fails when measured line-rate drops below it, and ``--update``
refuses to lower it (it writes ``measured - margin`` when that beats the
current floor, leaving slack for engine drift between pytest-cov and the
stdlib fallback in ``tools/run_coverage.py``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from xml.etree import ElementTree

FLOOR_FILE = Path(__file__).resolve().with_name("coverage_floor.txt")
UPDATE_MARGIN = 0.01


def read_rate(xml_path: Path) -> float:
    root = ElementTree.parse(xml_path).getroot()
    return float(root.attrib["line-rate"])


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--xml", type=Path, default=Path("coverage.xml"))
    parser.add_argument("--floor-file", type=Path, default=FLOOR_FILE)
    parser.add_argument(
        "--update",
        action="store_true",
        help="ratchet the floor up to (measured - margin); never lowers it",
    )
    args = parser.parse_args(argv)

    if not args.xml.exists():
        print(f"error: {args.xml} not found — run tools/run_coverage.py first")
        return 2
    rate = read_rate(args.xml)
    floor = float(args.floor_file.read_text().strip())
    print(f"line coverage {rate:.2%} (floor {floor:.2%})")

    if args.update:
        candidate = round(rate - UPDATE_MARGIN, 4)
        if candidate > floor:
            args.floor_file.write_text(f"{candidate}\n")
            print(f"floor ratcheted {floor:.2%} -> {candidate:.2%}")
        else:
            print("floor unchanged (ratchet only moves up)")
        return 0

    if rate < floor:
        print(
            f"FAIL: line coverage {rate:.2%} fell below the ratchet floor "
            f"{floor:.2%} ({args.floor_file})"
        )
        return 1
    print("coverage floor satisfied")
    return 0


if __name__ == "__main__":
    sys.exit(main())
