"""Optional Numba-jit windowed-tail scan (the ``"jit"`` kernel tier).

The pairs kernel's inner loop — gather a window of log-binomial
coefficients, add the per-row affine term, exponentiate, reduce — is a
natural single-pass scalar loop; when :mod:`numba` is importable it
compiles to machine code that fuses all four passes per element instead
of per array.  This module is a *graceful no-op* without numba: it
imports cleanly everywhere, :data:`NUMBA_AVAILABLE` is ``False``, and
:func:`jit_window_sums` raises — the ``"jit"`` kernel backend
(:mod:`repro.core.kernel.jit`) only registers when numba is present, so
nothing reaches the raise in a numba-less process.

The jit loop accumulates each row left-to-right, so a row's value is a
pure function of its own inputs and width — batch-composition invariance
holds exactly as in the NumPy tiers — but the summation *order* differs
from NumPy's pairwise reduction, so jit results are close to, not
bit-identical with, the default tier.  That is why the jit tier is a
separate kernel backend certified by ``tests/conformance/`` (and why its
results join the planning memo caches under their own key), never a
silent drop-in.  The scalar and batch implementations serve as its
oracles in ``tests/stats/test_precision_tiers.py``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["NUMBA_AVAILABLE", "jit_window_sums"]

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    NUMBA_AVAILABLE = True
except Exception:  # pragma: no cover - the common, numba-less case
    numba = None
    NUMBA_AVAILABLE = False


if NUMBA_AVAILABLE:  # pragma: no cover - exercised only where numba is installed

    @numba.njit(cache=True, fastmath=False)
    def _window_sums_loop(src, starts, logit, const, width, out):
        for r in range(starts.shape[0]):
            base = starts[r]
            lg = logit[r]
            c = const[r]
            acc = 0.0
            for j in range(width):
                acc += np.exp(src[base + j] + lg * j + c)
            out[r] = acc

    def jit_window_sums(
        src: np.ndarray,
        starts: np.ndarray,
        logit: np.ndarray,
        const: np.ndarray,
        width: int,
    ) -> np.ndarray:
        """Per-row window sums ``sum_j exp(src[s+j] + logit*j + const)``."""
        out = np.empty(len(starts), dtype=np.float64)
        _window_sums_loop(
            np.ascontiguousarray(src, dtype=np.float64),
            np.ascontiguousarray(starts, dtype=np.int64),
            np.ascontiguousarray(logit, dtype=np.float64),
            np.ascontiguousarray(const, dtype=np.float64),
            int(width),
            out,
        )
        return out

else:

    def jit_window_sums(src, starts, logit, const, width):  # noqa: D103
        raise RuntimeError(
            "the jit kernel tier requires numba, which is not importable; "
            "use the default kernel (impl='fused') instead"
        )
