"""Process-wide memoization for the planning hot path.

The sample-size machinery is pure: every result is a deterministic function
of its (hashable) arguments.  A CI service fielding heavy commit traffic
therefore re-derives the same plans, the same tight bounds, and the same
worst-case scans over and over — this module gives every layer of the stack
a shared, inspectable, invalidatable cache:

* :class:`LRUCache` — a small thread-safe least-recently-used mapping used
  directly by the estimator's plan cache and wrapped by :func:`memoize`;
* :func:`memoize` — a decorator building a keyed cache over a function of
  hashable positional arguments (the tight-bound entry points use it);
* a **registry**: every cache created through this module self-registers
  under a dotted name, so operators can inspect hit rates
  (:func:`all_cache_info`) and invalidate everything in one call
  (:func:`clear_all_caches`) — e.g. after hot-reloading the statistics
  code, or in benchmarks that need cold-start timings.

Invalidation contract
---------------------
Caches key on *every* input that can affect the result (including
estimator configuration), so entries never go stale under normal use; the
only reasons to clear are benchmarking cold paths and reclaiming memory.
``clear_all_caches()`` is the single entry point; individual caches can be
cleared through ``all_caches()[name].clear()``.

Restore-warm contract
---------------------
Cached objects are never serialized: a snapshot of engine/service state
(:mod:`repro.ci.persistence`) carries a *warm manifest* — the plan
requests behind the state — instead of the plan objects themselves.  On
restore, :func:`warm_after_restore` hands that manifest to every
registered *restore warmer* (:func:`register_restore_warmer`); the
estimator layer registers one that re-derives each requested plan, which
transitively repopulates the tight-bound and layout caches underneath.
A restored engine therefore re-plans through a warm cache and ends up
holding a plan bit-identical to the one it was snapshotted with, even in
a cold interpreter.

Cache-manifest contract
-----------------------
The parallel planning executor (:mod:`repro.stats.parallel`) ships warm
state *between processes* rather than across restarts:

* :func:`export_manifest` captures every registered cache's entries as
  one picklable mapping (``repro.cache-manifest/v1``).  A cache can
  install a :func:`register_manifest_codec` to customize what it exports
  (the batch-kernel layout and anchor caches do); plain
  :class:`LRUCache` instances export their items directly, and caches
  with neither are skipped.
* :func:`merge_manifest` folds a manifest into the live registry.  The
  merge is **idempotent** (folding a cache's own export back in is a
  no-op) and **commutative at the contents level** (worker manifests
  merged in either order leave identical entries): entries absent
  locally are adopted, and a key present on both sides deterministically
  keeps the value whose canonical pickle is smallest — a join rule that
  is order-independent however many manifests are folded in.  (Since
  cache keys cover every result-affecting input and the kernels are
  batch-composition invariant, conflicting values only ever differ when
  two processes legitimately landed on different points of an epsilon
  crossing band; the join just picks one deterministically.)  The only
  caveat: merging more entries than a cache's ``maxsize`` evicts by LRU
  order, which is insertion-order dependent — executors keep manifests
  well under capacity.

A worker spawned with the parent's manifest therefore plans against the
parent's warm state, and the parent folding worker manifests back in
serves subsequent single-process calls warm.

Registry contents
-----------------
Every memoized layer registers here (asserted complete in
``tests/stats/test_cache_registry.py``):

* ``estimators.plan_cache`` — the process-wide :class:`SampleSizePlan`
  cache shared by every estimator instance;
* ``stats.batch.log_factorial_table`` — the shared ``lgamma`` table (and
  the per-``n`` log-binomial rows derived from it);
* ``stats.batch.pairs_layout`` — concatenated padded log-binomial
  segments reused across the heterogeneous multi-``(n, p, eps)`` kernel
  dispatches of a planning sweep;
* ``stats.tight_bounds.worst_case`` / ``exceeds_delta`` /
  ``tight_sample_size`` / ``tight_epsilon`` — the memoized §4.3 scans and
  searches;
* ``stats.tight_bounds.tight_epsilon_many`` — whole batched epsilon
  sweeps, keyed on the full testset-size vector;
* ``stats.tight_bounds.epsilon_anchors`` — recent ``(n, epsilon)``
  results per reliability spec, used to warm-start the bisection bracket
  of nearby testset sizes.
"""

from __future__ import annotations

import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass
from functools import wraps
from typing import Any, Callable, Hashable, Iterator, Mapping

__all__ = [
    "CacheInfo",
    "LRUCache",
    "memoize",
    "register_cache",
    "all_caches",
    "all_cache_info",
    "clear_all_caches",
    "register_restore_warmer",
    "restore_warmers",
    "warm_after_restore",
    "MANIFEST_FORMAT",
    "canonical_bytes",
    "register_manifest_codec",
    "export_manifest",
    "merge_manifest",
]


@dataclass(frozen=True)
class CacheInfo:
    """Point-in-time statistics for one cache."""

    hits: int
    misses: int
    maxsize: int
    currsize: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LRUCache:
    """A thread-safe least-recently-used mapping.

    Kept deliberately tiny (``OrderedDict`` + a lock): the cached values —
    plans, sample sizes — are immutable, so sharing the stored object with
    every caller is safe.
    """

    def __init__(self, maxsize: int = 1024):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, refreshing its recency on a hit."""
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self._misses += 1
                return default
            self._data.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert ``key`` (evicting the least recently used on overflow)."""
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key`` without touching recency or hit/miss statistics.

        The manifest merge uses this so that folding a cache's own export
        back in is a true no-op on the cache's observable state.
        """
        with self._lock:
            return self._data.get(key, default)

    def items(self) -> list[tuple[Hashable, Any]]:
        """Snapshot of every entry, least- to most-recently used."""
        with self._lock:
            return list(self._data.items())

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def clear(self) -> None:
        """Drop every entry (statistics are reset too)."""
        with self._lock:
            self._data.clear()
            self._hits = 0
            self._misses = 0

    def info(self) -> CacheInfo:
        """Current :class:`CacheInfo` snapshot."""
        with self._lock:
            return CacheInfo(
                hits=self._hits,
                misses=self._misses,
                maxsize=self.maxsize,
                currsize=len(self._data),
            )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, LRUCache] = {}
_REGISTRY_LOCK = threading.Lock()


def register_cache(name: str, cache: LRUCache) -> LRUCache:
    """Register ``cache`` under ``name``.

    Re-registering a name replaces the previous entry (latest wins): the
    registration sites are module-level, so a hot-reload of a statistics
    module re-runs them, and the reloaded module's fresh caches are the
    live ones from then on.
    """
    with _REGISTRY_LOCK:
        _REGISTRY[name] = cache
    return cache


def all_caches() -> Mapping[str, LRUCache]:
    """Snapshot of every registered cache, by name."""
    with _REGISTRY_LOCK:
        return dict(_REGISTRY)


def all_cache_info() -> dict[str, CacheInfo]:
    """Hit/miss statistics for every registered cache."""
    return {name: cache.info() for name, cache in all_caches().items()}


def clear_all_caches() -> None:
    """Invalidate every registered cache (plans, tight bounds, tables)."""
    for cache in all_caches().values():
        cache.clear()


# ---------------------------------------------------------------------------
# Restore warmers
# ---------------------------------------------------------------------------

_WARMERS: dict[str, Callable[[Mapping[str, Any]], None]] = {}
_WARMERS_LOCK = threading.Lock()


def register_restore_warmer(
    name: str, warmer: Callable[[Mapping[str, Any]], None]
) -> Callable[[Mapping[str, Any]], None]:
    """Register a callable that re-derives cached state after a restore.

    A warmer receives the *warm manifest* a snapshot carried (a plain
    mapping; the keys each layer consumes are its own contract — the
    estimator layer reads ``manifest["plans"]``) and repopulates whatever
    caches it owns.  Registration is latest-wins under a repeated name,
    mirroring :func:`register_cache`.
    """
    with _WARMERS_LOCK:
        _WARMERS[name] = warmer
    return warmer


def restore_warmers() -> Mapping[str, Callable[[Mapping[str, Any]], None]]:
    """Snapshot of every registered restore warmer, by name."""
    with _WARMERS_LOCK:
        return dict(_WARMERS)


def warm_after_restore(manifest: Mapping[str, Any] | None) -> None:
    """Run every registered restore warmer against ``manifest``.

    Called by the persistence layer before a restored engine re-derives
    its plan, so the derivation is served from warm caches.  A ``None``
    (or empty) manifest is a no-op; warmer exceptions propagate — a
    restore would rather fail loudly than come back with silently cold
    caches and a plan of unknown provenance.
    """
    if not manifest:
        return
    for warmer in restore_warmers().values():
        warmer(manifest)


# ---------------------------------------------------------------------------
# Cache manifests (the parallel-executor warm-state contract)
# ---------------------------------------------------------------------------

#: Version tag of the cross-process cache-manifest contract.
MANIFEST_FORMAT = "repro.cache-manifest/v1"

_CODECS: dict[str, tuple[Callable[[], Any], Callable[[Any], None]]] = {}
_CODECS_LOCK = threading.Lock()


def canonical_bytes(value: Any) -> bytes:
    """A deterministic byte encoding used as the merge tie-break order.

    Two structurally identical values (same floats, same array contents)
    pickle to the same bytes within one interpreter version, so "keep the
    canonically smallest value" is a commutative, associative and
    idempotent join rule — the registry converges to the same contents
    whatever order worker manifests are folded in.
    """
    return pickle.dumps(value, protocol=4)


def register_manifest_codec(
    name: str,
    export: Callable[[], Any],
    merge: Callable[[Any], None],
) -> None:
    """Install a custom (export, merge) pair for the cache named ``name``.

    Used by caches whose registry adapter is not a plain
    :class:`LRUCache` (the batch-kernel layout and log-factorial tables)
    or whose values need union semantics rather than pick-one (the
    epsilon anchor registry).  ``export()`` must return a picklable
    payload; ``merge(payload)`` must be idempotent and commutative.
    Registration is latest-wins, mirroring :func:`register_cache`.
    """
    with _CODECS_LOCK:
        _CODECS[name] = (export, merge)


def _codec_for(name: str) -> tuple[Callable[[], Any], Callable[[Any], None]] | None:
    with _CODECS_LOCK:
        return _CODECS.get(name)


def export_manifest() -> dict[str, Any]:
    """Capture every registered cache's warm state as one picklable mapping.

    The payload maps cache names to either the cache's custom codec
    export or, for plain :class:`LRUCache` entries, its ``(key, value)``
    items in LRU order.  Registered adapters with no codec (and no item
    storage) are skipped — they rebuild from scratch cheaply.
    """
    payload: dict[str, Any] = {}
    for name, cache in all_caches().items():
        codec = _codec_for(name)
        if codec is not None:
            payload[name] = codec[0]()
        elif isinstance(cache, LRUCache):
            payload[name] = cache.items()
    return {"format": MANIFEST_FORMAT, "caches": payload}


def merge_manifest(manifest: Mapping[str, Any] | None) -> None:
    """Fold a manifest produced by :func:`export_manifest` into the registry.

    Unknown cache names are ignored (forward compatibility with
    manifests from newer builds); known names are merged through their
    codec, or — for plain :class:`LRUCache` entries — with the default
    join rule: adopt entries absent locally, and on a key conflict keep
    the value whose :func:`canonical_bytes` encoding is smallest.  The
    merge never touches hit/miss statistics, and folding a cache's own
    export back in leaves it observably unchanged.
    """
    if not manifest:
        return
    fmt = manifest.get("format")
    if fmt != MANIFEST_FORMAT:
        raise ValueError(
            f"unsupported cache-manifest format {fmt!r} "
            f"(this build reads {MANIFEST_FORMAT!r})"
        )
    caches = all_caches()
    for name in sorted(manifest["caches"]):
        entries = manifest["caches"][name]
        codec = _codec_for(name)
        if codec is not None:
            codec[1](entries)
            continue
        cache = caches.get(name)
        if isinstance(cache, LRUCache):
            _default_merge(cache, entries)


def _default_merge(cache: LRUCache, entries: Any) -> None:
    sentinel = object()
    for key, value in entries:
        existing = cache.peek(key, sentinel)
        if existing is sentinel:
            cache.put(key, value)
            continue
        if existing is value:
            continue
        if canonical_bytes(value) < canonical_bytes(existing):
            cache.put(key, value)


def _iter_key(args: tuple) -> Iterator[Hashable]:
    yield from args


def memoize(
    name: str, maxsize: int = 1024
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Memoize a pure function of hashable positional arguments.

    The wrapper exposes the underlying :class:`LRUCache` as ``.cache`` and
    registers it under ``name``.  Unlike :func:`functools.lru_cache` the
    cache participates in the module registry, so ``clear_all_caches()``
    reaches it, and ``None`` results are cached like any other value.
    """

    def decorator(func: Callable[..., Any]) -> Callable[..., Any]:
        cache = register_cache(name, LRUCache(maxsize=maxsize))
        sentinel = object()

        @wraps(func)
        def wrapper(*args: Hashable) -> Any:
            key = tuple(_iter_key(args))
            value = cache.get(key, sentinel)
            if value is sentinel:
                value = func(*args)
                cache.put(key, value)
            return value

        wrapper.cache = cache  # type: ignore[attr-defined]
        return wrapper

    return decorator
