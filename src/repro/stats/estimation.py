"""Empirical estimation of the DSL variables ``n``, ``o`` and ``d``.

Given the predictions of the old and new models on a testset (and labels,
where available), these helpers compute the point estimates used by the CI
engine:

* ``n`` — accuracy of the new model,
* ``o`` — accuracy of the old model,
* ``d`` — fraction of examples where the two models' predictions differ
  (computable *without labels*, the linchpin of the Section 4 savings),
* ``n - o`` — estimated directly from the paired per-example differences,
  whose variance is bounded by ``d`` (Technical Observation 1).

All inputs are numpy arrays of shape ``(m,)``; predictions may be any dtype
supporting ``==`` comparison (integers for class ids, strings for labels).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import InvalidParameterError

__all__ = [
    "PairedSample",
    "estimate_accuracy",
    "estimate_difference",
    "estimate_accuracy_gain",
]


def _validate_same_length(**arrays: np.ndarray) -> int:
    lengths = {name: len(arr) for name, arr in arrays.items()}
    unique = set(lengths.values())
    if len(unique) != 1:
        raise InvalidParameterError(f"array length mismatch: {lengths}")
    (m,) = unique
    if m == 0:
        raise InvalidParameterError("empty arrays: need at least one test example")
    return m


def estimate_accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Empirical accuracy: fraction of predictions equal to labels."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    _validate_same_length(predictions=predictions, labels=labels)
    return float(np.mean(predictions == labels))


def estimate_difference(old_predictions: np.ndarray, new_predictions: np.ndarray) -> float:
    """Empirical prediction-difference rate ``d`` (labels not required)."""
    old_predictions = np.asarray(old_predictions)
    new_predictions = np.asarray(new_predictions)
    _validate_same_length(old=old_predictions, new=new_predictions)
    return float(np.mean(old_predictions != new_predictions))


def estimate_accuracy_gain(
    old_predictions: np.ndarray,
    new_predictions: np.ndarray,
    labels: np.ndarray,
) -> float:
    """Paired estimate of ``n - o`` from per-example correctness differences.

    Mathematically equal to ``accuracy(new) - accuracy(old)`` on the same
    testset, but computed as the mean of ``1[new_i correct] - 1[old_i
    correct] ∈ {-1, 0, 1}``, making explicit that only examples where the
    models disagree contribute — the variance-bound argument of Section 4.
    """
    old_predictions = np.asarray(old_predictions)
    new_predictions = np.asarray(new_predictions)
    labels = np.asarray(labels)
    _validate_same_length(old=old_predictions, new=new_predictions, labels=labels)
    diff = (new_predictions == labels).astype(np.int8) - (
        old_predictions == labels
    ).astype(np.int8)
    return float(np.mean(diff))


@dataclass(frozen=True)
class PairedSample:
    """Predictions of an (old, new) model pair on a shared testset.

    A convenience bundle produced by the CI engine when it evaluates a
    commit: it exposes the three DSL variables and the disagreement
    bookkeeping needed by the pattern optimizations.

    Parameters
    ----------
    old_predictions, new_predictions:
        Class predictions of each model, aligned by example.
    labels:
        Ground-truth labels, or ``None`` when operating on an unlabeled
        pool (then only ``d``-related quantities are available).
    """

    old_predictions: np.ndarray
    new_predictions: np.ndarray
    labels: np.ndarray | None = None

    def __post_init__(self) -> None:
        arrays = {
            "old": np.asarray(self.old_predictions),
            "new": np.asarray(self.new_predictions),
        }
        if self.labels is not None:
            arrays["labels"] = np.asarray(self.labels)
        _validate_same_length(**arrays)
        object.__setattr__(self, "old_predictions", arrays["old"])
        object.__setattr__(self, "new_predictions", arrays["new"])
        if self.labels is not None:
            object.__setattr__(self, "labels", arrays["labels"])

    def __len__(self) -> int:
        return len(self.old_predictions)

    @property
    def has_labels(self) -> bool:
        """Whether ground truth is attached."""
        return self.labels is not None

    def _require_labels(self) -> np.ndarray:
        if self.labels is None:
            raise InvalidParameterError(
                "this PairedSample is unlabeled; accuracy statistics need labels"
            )
        return self.labels

    @property
    def old_accuracy(self) -> float:
        """Point estimate of ``o``."""
        return estimate_accuracy(self.old_predictions, self._require_labels())

    @property
    def new_accuracy(self) -> float:
        """Point estimate of ``n``."""
        return estimate_accuracy(self.new_predictions, self._require_labels())

    @property
    def difference(self) -> float:
        """Point estimate of ``d`` — never needs labels."""
        return estimate_difference(self.old_predictions, self.new_predictions)

    @property
    def accuracy_gain(self) -> float:
        """Paired point estimate of ``n - o``."""
        return estimate_accuracy_gain(
            self.old_predictions, self.new_predictions, self._require_labels()
        )

    @property
    def disagreement_mask(self) -> np.ndarray:
        """Boolean mask of examples where the two models disagree.

        Active labeling (Section 4.1.2) labels exactly these examples.
        """
        return np.asarray(self.old_predictions != self.new_predictions)

    def disagreement_indices(self) -> np.ndarray:
        """Indices of disagreeing examples, ascending."""
        return np.flatnonzero(self.disagreement_mask)

    def subsample(self, indices: np.ndarray) -> "PairedSample":
        """A new :class:`PairedSample` restricted to ``indices``."""
        idx = np.asarray(indices)
        return PairedSample(
            old_predictions=self.old_predictions[idx],
            new_predictions=self.new_predictions[idx],
            labels=None if self.labels is None else self.labels[idx],
        )

    def with_labels(self, labels: np.ndarray) -> "PairedSample":
        """Attach labels, returning a new labeled sample."""
        return PairedSample(
            old_predictions=self.old_predictions,
            new_predictions=self.new_predictions,
            labels=np.asarray(labels),
        )
