"""Empirical estimation of the DSL variables ``n``, ``o`` and ``d``.

Given the predictions of the old and new models on a testset (and labels,
where available), these helpers compute the point estimates used by the CI
engine:

* ``n`` — accuracy of the new model,
* ``o`` — accuracy of the old model,
* ``d`` — fraction of examples where the two models' predictions differ
  (computable *without labels*, the linchpin of the Section 4 savings),
* ``n - o`` — estimated directly from the paired per-example differences,
  whose variance is bounded by ``d`` (Technical Observation 1).

All inputs are numpy arrays of shape ``(m,)``; predictions may be any dtype
supporting ``==`` comparison (integers for class ids, strings for labels).

Two evaluation granularities are provided:

* :class:`PairedSample` — one (old, new) pair.  Correctness masks and the
  four point estimates are computed lazily and cached, so a clause walk
  that touches ``n``, ``o``, ``d`` and ``n - o`` runs each comparison over
  the testset exactly once per sample.
* :class:`PairedSampleBatch` — ``B`` candidate models against *one*
  baseline, holding a ``(B, m)`` prediction matrix.  Correctness masks are
  computed in single broadcast comparisons and the per-candidate estimates
  come out of one NumPy reduction each — the statistical core of the
  batched commit-evaluation pipeline.  Because every estimate is a mean of
  integer-valued indicators (partial sums stay exact in float64), the
  batched estimates are bit-identical to the scalar ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import InvalidParameterError

__all__ = [
    "PairedSample",
    "PairedSampleBatch",
    "estimate_accuracy",
    "estimate_difference",
    "estimate_accuracy_gain",
]


def _validate_same_length(**arrays: np.ndarray) -> int:
    lengths = {name: len(arr) for name, arr in arrays.items()}
    unique = set(lengths.values())
    if len(unique) != 1:
        raise InvalidParameterError(f"array length mismatch: {lengths}")
    (m,) = unique
    if m == 0:
        raise InvalidParameterError("empty arrays: need at least one test example")
    return m


def estimate_accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Empirical accuracy: fraction of predictions equal to labels."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    _validate_same_length(predictions=predictions, labels=labels)
    return float(np.mean(predictions == labels))


def estimate_difference(old_predictions: np.ndarray, new_predictions: np.ndarray) -> float:
    """Empirical prediction-difference rate ``d`` (labels not required)."""
    old_predictions = np.asarray(old_predictions)
    new_predictions = np.asarray(new_predictions)
    _validate_same_length(old=old_predictions, new=new_predictions)
    return float(np.mean(old_predictions != new_predictions))


def estimate_accuracy_gain(
    old_predictions: np.ndarray,
    new_predictions: np.ndarray,
    labels: np.ndarray,
) -> float:
    """Paired estimate of ``n - o`` from per-example correctness differences.

    Mathematically equal to ``accuracy(new) - accuracy(old)`` on the same
    testset, but computed as the mean of ``1[new_i correct] - 1[old_i
    correct] ∈ {-1, 0, 1}``, making explicit that only examples where the
    models disagree contribute — the variance-bound argument of Section 4.
    """
    old_predictions = np.asarray(old_predictions)
    new_predictions = np.asarray(new_predictions)
    labels = np.asarray(labels)
    _validate_same_length(old=old_predictions, new=new_predictions, labels=labels)
    diff = (new_predictions == labels).astype(np.int8) - (
        old_predictions == labels
    ).astype(np.int8)
    return float(np.mean(diff))


@dataclass(frozen=True)
class PairedSample:
    """Predictions of an (old, new) model pair on a shared testset.

    A convenience bundle produced by the CI engine when it evaluates a
    commit: it exposes the three DSL variables and the disagreement
    bookkeeping needed by the pattern optimizations.

    Parameters
    ----------
    old_predictions, new_predictions:
        Class predictions of each model, aligned by example.
    labels:
        Ground-truth labels, or ``None`` when operating on an unlabeled
        pool (then only ``d``-related quantities are available).
    """

    old_predictions: np.ndarray
    new_predictions: np.ndarray
    labels: np.ndarray | None = None

    def __post_init__(self) -> None:
        arrays = {
            "old": np.asarray(self.old_predictions),
            "new": np.asarray(self.new_predictions),
        }
        if self.labels is not None:
            arrays["labels"] = np.asarray(self.labels)
        _validate_same_length(**arrays)
        object.__setattr__(self, "old_predictions", arrays["old"])
        object.__setattr__(self, "new_predictions", arrays["new"])
        if self.labels is not None:
            object.__setattr__(self, "labels", arrays["labels"])
        # Lazy per-sample cache for correctness masks and point estimates.
        # A clause walk touches the same estimate through several clauses;
        # without the cache every property access re-runs an O(m)
        # comparison over the testset.
        object.__setattr__(self, "_cache", {})

    def _cached(self, key: str, compute):
        cache = self._cache
        try:
            return cache[key]
        except KeyError:
            value = cache[key] = compute()
            return value

    def __len__(self) -> int:
        return len(self.old_predictions)

    @property
    def has_labels(self) -> bool:
        """Whether ground truth is attached."""
        return self.labels is not None

    def _require_labels(self) -> np.ndarray:
        if self.labels is None:
            raise InvalidParameterError(
                "this PairedSample is unlabeled; accuracy statistics need labels"
            )
        return self.labels

    def _old_correct(self) -> np.ndarray:
        return self._cached(
            "old_correct", lambda: self.old_predictions == self._require_labels()
        )

    def _new_correct(self) -> np.ndarray:
        return self._cached(
            "new_correct", lambda: self.new_predictions == self._require_labels()
        )

    @property
    def old_accuracy(self) -> float:
        """Point estimate of ``o`` (cached after the first access)."""
        return self._cached(
            "old_accuracy", lambda: float(np.mean(self._old_correct()))
        )

    @property
    def new_accuracy(self) -> float:
        """Point estimate of ``n`` (cached after the first access)."""
        return self._cached(
            "new_accuracy", lambda: float(np.mean(self._new_correct()))
        )

    @property
    def difference(self) -> float:
        """Point estimate of ``d`` — never needs labels (cached)."""
        return self._cached(
            "difference", lambda: float(np.mean(self.disagreement_mask))
        )

    @property
    def accuracy_gain(self) -> float:
        """Paired point estimate of ``n - o`` (cached)."""

        def compute() -> float:
            diff = self._new_correct().astype(np.int8) - self._old_correct().astype(
                np.int8
            )
            return float(np.mean(diff))

        return self._cached("accuracy_gain", compute)

    @property
    def disagreement_mask(self) -> np.ndarray:
        """Boolean mask of examples where the two models disagree.

        Active labeling (Section 4.1.2) labels exactly these examples.
        The mask is computed once, cached, and marked read-only (mutating
        it would silently corrupt the cached ``d`` estimates).
        """

        def compute() -> np.ndarray:
            mask = np.asarray(self.old_predictions != self.new_predictions)
            mask.flags.writeable = False
            return mask

        return self._cached("disagreement", compute)

    def disagreement_indices(self) -> np.ndarray:
        """Indices of disagreeing examples, ascending."""
        return np.flatnonzero(self.disagreement_mask)

    def subsample(self, indices: np.ndarray) -> "PairedSample":
        """A new :class:`PairedSample` restricted to ``indices``."""
        idx = np.asarray(indices)
        return PairedSample(
            old_predictions=self.old_predictions[idx],
            new_predictions=self.new_predictions[idx],
            labels=None if self.labels is None else self.labels[idx],
        )

    def with_labels(self, labels: np.ndarray) -> "PairedSample":
        """Attach labels, returning a new labeled sample."""
        return PairedSample(
            old_predictions=self.old_predictions,
            new_predictions=self.new_predictions,
            labels=np.asarray(labels),
        )


@dataclass(frozen=True)
class PairedSampleBatch:
    """Predictions of ``B`` candidate models against one baseline.

    The batched counterpart of :class:`PairedSample`: one ``(B, m)``
    prediction matrix, one baseline prediction vector, one (optional)
    label vector.  Correctness masks are computed once in broadcast
    comparisons; every per-candidate estimate is a single ``axis=1``
    reduction.  All estimates are means of integer-valued indicators, so
    they agree bit-for-bit with the corresponding :class:`PairedSample`
    property on each row.

    Parameters
    ----------
    old_predictions:
        Baseline predictions, shape ``(m,)``.
    new_prediction_matrix:
        Candidate predictions, shape ``(B, m)`` — one row per candidate.
    labels:
        Ground-truth labels, or ``None`` for an unlabeled pool.
    """

    old_predictions: np.ndarray
    new_prediction_matrix: np.ndarray
    labels: np.ndarray | None = None

    def __post_init__(self) -> None:
        old = np.asarray(self.old_predictions)
        matrix = np.asarray(self.new_prediction_matrix)
        if old.ndim != 1:
            raise InvalidParameterError(
                f"old_predictions must be 1-D, got shape {old.shape}"
            )
        if matrix.ndim != 2:
            raise InvalidParameterError(
                f"new_prediction_matrix must be 2-D (B, m), got shape {matrix.shape}"
            )
        if matrix.shape[1] != len(old):
            raise InvalidParameterError(
                f"prediction matrix has {matrix.shape[1]} columns but the "
                f"baseline has {len(old)} predictions"
            )
        if len(old) == 0:
            raise InvalidParameterError("empty arrays: need at least one test example")
        object.__setattr__(self, "old_predictions", old)
        object.__setattr__(self, "new_prediction_matrix", matrix)
        if self.labels is not None:
            labels = np.asarray(self.labels)
            if labels.shape != old.shape:
                raise InvalidParameterError(
                    f"labels have shape {labels.shape} but predictions have "
                    f"shape {old.shape}"
                )
            object.__setattr__(self, "labels", labels)
        object.__setattr__(self, "_cache", {})

    def _cached(self, key: str, compute):
        cache = self._cache
        try:
            return cache[key]
        except KeyError:
            value = cache[key] = compute()
            return value

    def __len__(self) -> int:
        """Testset size ``m`` (matching :class:`PairedSample` semantics)."""
        return len(self.old_predictions)

    @property
    def batch_size(self) -> int:
        """Number of candidate models ``B``."""
        return len(self.new_prediction_matrix)

    @property
    def has_labels(self) -> bool:
        """Whether ground truth is attached."""
        return self.labels is not None

    def _require_labels(self) -> np.ndarray:
        if self.labels is None:
            raise InvalidParameterError(
                "this PairedSampleBatch is unlabeled; accuracy statistics "
                "need labels"
            )
        return self.labels

    def _old_correct(self) -> np.ndarray:
        return self._cached(
            "old_correct", lambda: self.old_predictions == self._require_labels()
        )

    def _new_correct(self) -> np.ndarray:
        """``(B, m)`` correctness mask — one broadcast comparison."""
        return self._cached(
            "new_correct",
            lambda: self.new_prediction_matrix == self._require_labels()[None, :],
        )

    @property
    def old_accuracy(self) -> float:
        """Point estimate of ``o`` (shared by every candidate)."""
        return self._cached(
            "old_accuracy", lambda: float(np.mean(self._old_correct()))
        )

    def new_accuracies(self) -> np.ndarray:
        """Point estimates of ``n``, shape ``(B,)`` — one reduction."""
        return self._cached(
            "new_accuracies", lambda: np.mean(self._new_correct(), axis=1)
        )

    def differences(self) -> np.ndarray:
        """Point estimates of ``d``, shape ``(B,)`` — label-free."""
        return self._cached(
            "differences",
            lambda: np.mean(
                self.new_prediction_matrix != self.old_predictions[None, :], axis=1
            ),
        )

    def accuracy_gains(self) -> np.ndarray:
        """Paired point estimates of ``n - o``, shape ``(B,)``."""

        def compute() -> np.ndarray:
            diff = self._new_correct().astype(np.int8) - self._old_correct().astype(
                np.int8
            )[None, :]
            return np.mean(diff, axis=1)

        return self._cached("accuracy_gains", compute)

    def sample(self, index: int) -> PairedSample:
        """Row ``index`` as a :class:`PairedSample` (shares the arrays)."""
        return PairedSample(
            old_predictions=self.old_predictions,
            new_predictions=self.new_prediction_matrix[index],
            labels=self.labels,
        )
