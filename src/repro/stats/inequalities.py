"""Concentration inequalities used by the ease.ml/ci sample-size estimators.

The paper builds every guarantee out of two bounds:

* **Hoeffding's inequality** for variables with a bounded range (the
  baseline implementation, Section 3), and
* **Bennett's inequality** for variables with a known variance bound (the
  Pattern 1 / Pattern 2 optimizations, Section 4), which is exponentially
  tighter when the variance ``p`` is small relative to the tolerance.

We additionally provide Bernstein's inequality (a closed-form relaxation of
Bennett, handy for sanity checks because it admits an explicit sample-size
formula) and McDiarmid's inequality (the extension hook the paper names for
supporting F1/AUC metrics via bounded-differences sensitivity).

Each inequality is a class exposing a uniform interface:

``tail_probability(n, epsilon)``
    An upper bound on ``Pr[ |mean - E[mean]| > epsilon ]`` (two-sided) or
    ``Pr[ mean - E[mean] > epsilon ]`` (one-sided).
``epsilon(n, delta)``
    The tolerance achievable with ``n`` samples at failure probability
    ``delta`` (the inverse of ``tail_probability`` in ``epsilon``).
``sample_size(epsilon, delta)``
    The minimal integer ``n`` with ``tail_probability(n, epsilon) <= delta``.

Sidedness convention
--------------------
The paper's Figure 2 numbers follow the **one-sided** form of Hoeffding
(``ln(1/delta)`` in the numerator) for single variables, while the
Bennett-based numbers (Figure 5, Section 4.1) use the **two-sided** form
(``ln(2/delta)``).  Both are supported through the ``two_sided`` flag; the
estimator layer chooses the paper-faithful convention per rule and the
choice is unit-tested against every published number.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.exceptions import InvalidParameterError
from repro.utils.validation import check_positive, check_probability

__all__ = [
    "ConcentrationInequality",
    "HoeffdingInequality",
    "BennettInequality",
    "BernsteinInequality",
    "McDiarmidInequality",
    "bennett_h",
    "bennett_h_inverse",
]


def bennett_h(u: float) -> float:
    """Bennett's ``h`` function, ``h(u) = (1 + u) ln(1 + u) - u``.

    Defined for ``u > -1``; strictly convex, increasing on ``u >= 0`` with
    ``h(0) = 0``.  For small ``u``, ``h(u) ≈ u²/2`` (recovering a
    Hoeffding-like regime); for large ``u`` it grows like ``u ln u``, which
    is where Bennett beats Hoeffding for low-variance variables.
    """
    if u <= -1.0:
        raise InvalidParameterError(f"bennett_h requires u > -1, got {u}")
    if u == 0.0:
        return 0.0
    # log1p keeps precision for small u where (1+u)ln(1+u) - u ~ u^2/2.
    return (1.0 + u) * math.log1p(u) - u


def bennett_h_inverse(y: float, *, tol: float = 1e-15, max_iter: int = 200) -> float:
    """Inverse of :func:`bennett_h` on ``u >= 0``: the ``u`` with ``h(u) = y``.

    Solved by Newton iteration with a bisection fallback; ``h`` has no
    elementary inverse.  Accurate to relative tolerance ``tol``.
    """
    if y < 0:
        raise InvalidParameterError(f"bennett_h_inverse requires y >= 0, got {y}")
    if y == 0.0:
        return 0.0
    # Initial guess: for small y, h(u) ~ u^2/2 -> u ~ sqrt(2y); for large y,
    # h(u) ~ u ln u -> u ~ y / log(y) (crudely).  sqrt(2y) is a safe start
    # because h(sqrt(2y)) <= y, so Newton (convex function) converges
    # monotonically from below.
    u = math.sqrt(2.0 * y)
    for _ in range(max_iter):
        f = bennett_h(u) - y
        df = math.log1p(u)  # h'(u) = ln(1 + u)
        if df <= 0:
            break
        step = f / df
        u_next = u - step
        if u_next <= 0:
            u_next = u / 2.0
        if abs(u_next - u) <= tol * max(1.0, u):
            return u_next
        u = u_next
    return u


class ConcentrationInequality(ABC):
    """Common interface for the inequality family.

    Subclasses are immutable value objects parameterized by the structural
    properties of the random variables (range, variance bound, bounded
    differences) but **not** by ``n``, ``epsilon`` or ``delta`` — those are
    method arguments, which lets the estimator layer reuse one instance
    across a parameter sweep.

    Parameters
    ----------
    two_sided:
        When ``True``, bounds refer to ``|deviation| > epsilon`` and carry
        the standard factor-of-two; when ``False`` they refer to the
        one-sided event ``deviation > epsilon``.
    """

    def __init__(self, *, two_sided: bool = False):
        self.two_sided = bool(two_sided)

    @property
    def _side_factor(self) -> float:
        return 2.0 if self.two_sided else 1.0

    # -- core quantity -----------------------------------------------------
    @abstractmethod
    def log_tail_probability(self, n: float, epsilon: float) -> float:
        """Natural log of the tail bound, **excluding** the sidedness factor."""

    # -- derived API -------------------------------------------------------
    def tail_probability(self, n: float, epsilon: float) -> float:
        """Upper bound on the deviation probability with ``n`` samples."""
        check_positive(n, "n")
        check_positive(epsilon, "epsilon")
        return min(1.0, self._side_factor * math.exp(self.log_tail_probability(n, epsilon)))

    def sample_size(self, epsilon: float, delta: float, *, exact: bool = False) -> float:
        """Samples needed so the tail bound is at most ``delta``.

        Parameters
        ----------
        epsilon:
            Error tolerance (half-width of the implied confidence interval).
        delta:
            Failure probability budget.
        exact:
            When ``False`` (default) the *real-valued* solution of the bound
            equation is returned, matching how the paper reports sample
            sizes (e.g. "404" is ``ceil`` of 403.5 — callers round).  When
            ``True`` the minimal integer ``n`` is returned.
        """
        check_positive(epsilon, "epsilon")
        check_probability(delta, "delta")
        n = self._sample_size_real(epsilon, delta / self._side_factor)
        if exact:
            return int(math.ceil(n - 1e-12))
        return n

    def epsilon(self, n: float, delta: float) -> float:
        """The tolerance achievable with ``n`` samples at failure prob ``delta``."""
        check_positive(n, "n")
        check_probability(delta, "delta")
        return self._epsilon_real(n, delta / self._side_factor)

    # -- hooks ---------------------------------------------------------------
    @abstractmethod
    def _sample_size_real(self, epsilon: float, delta_eff: float) -> float:
        """Real-valued n with ``exp(log_tail(n, epsilon)) = delta_eff``."""

    @abstractmethod
    def _epsilon_real(self, n: float, delta_eff: float) -> float:
        """Epsilon with ``exp(log_tail(n, epsilon)) = delta_eff``."""

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        side = "two-sided" if self.two_sided else "one-sided"
        return f"{type(self).__name__}({side})"


class HoeffdingInequality(ConcentrationInequality):
    """Hoeffding's inequality for means of variables with range ``r``.

    For i.i.d. ``X_i`` taking values in an interval of length ``r``,

    .. math:: \\Pr[\\bar X - E \\bar X > \\epsilon]
              \\le \\exp(-2 n \\epsilon^2 / r^2).

    The paper's baseline single-variable estimator (Section 3.1) is the
    one-sided inversion ``n = r^2 ln(1/delta) / (2 epsilon^2)``.

    Parameters
    ----------
    value_range:
        Length ``r`` of the interval containing each sample.  Accuracy
        variables have ``r = 1``; a difference of two accuracies has
        ``r = 2`` when measured on independent estimates.
    """

    def __init__(self, value_range: float = 1.0, *, two_sided: bool = False):
        super().__init__(two_sided=two_sided)
        self.value_range = check_positive(value_range, "value_range")

    def log_tail_probability(self, n: float, epsilon: float) -> float:
        r = self.value_range
        return -2.0 * n * epsilon * epsilon / (r * r)

    def _sample_size_real(self, epsilon: float, delta_eff: float) -> float:
        r = self.value_range
        return -(r * r) * math.log(delta_eff) / (2.0 * epsilon * epsilon)

    def _epsilon_real(self, n: float, delta_eff: float) -> float:
        r = self.value_range
        return r * math.sqrt(-math.log(delta_eff) / (2.0 * n))


class BennettInequality(ConcentrationInequality):
    """Bennett's inequality for means of variables with a variance bound.

    For independent ``X_i`` with ``|X_i| <= b`` and
    ``sum_i E[X_i^2] <= n * variance_bound`` (Proposition 1 of the paper),

    .. math:: \\Pr\\Big[\\Big|\\frac{\\sum_i X_i - E[X_i]}{n}\\Big| >
              \\epsilon\\Big] \\le 2\\exp\\Big(-\\frac{n v}{b^2}
              h\\big(\\frac{b\\epsilon}{v}\\big)\\Big),

    with ``h(u) = (1+u) ln(1+u) - u`` and ``v = variance_bound``.

    The key use in the paper: when the new and old model disagree on at most
    a fraction ``p`` of predictions, the per-example difference
    ``n_i - o_i ∈ {-1, 0, 1}`` has ``E[(n_i - o_i)^2] <= p``, so
    ``variance_bound = p`` and ``b = 1``, giving the Section 4.1 sample size
    ``n = ln(1/delta_eff) / (p h(epsilon/p))``.

    Parameters
    ----------
    variance_bound:
        Upper bound ``v`` on the per-sample second moment ``E[X_i^2]``.
    magnitude_bound:
        Almost-sure bound ``b`` on ``|X_i|`` (default 1, the right value for
        correctness differences).
    """

    def __init__(
        self,
        variance_bound: float,
        magnitude_bound: float = 1.0,
        *,
        two_sided: bool = True,
    ):
        super().__init__(two_sided=two_sided)
        self.variance_bound = check_positive(variance_bound, "variance_bound")
        self.magnitude_bound = check_positive(magnitude_bound, "magnitude_bound")
        if self.variance_bound > self.magnitude_bound**2:
            raise InvalidParameterError(
                "variance_bound cannot exceed magnitude_bound**2 "
                f"({self.variance_bound} > {self.magnitude_bound**2})"
            )

    def log_tail_probability(self, n: float, epsilon: float) -> float:
        v, b = self.variance_bound, self.magnitude_bound
        return -(n * v / (b * b)) * bennett_h(b * epsilon / v)

    def _sample_size_real(self, epsilon: float, delta_eff: float) -> float:
        v, b = self.variance_bound, self.magnitude_bound
        return -math.log(delta_eff) * (b * b) / (v * bennett_h(b * epsilon / v))

    def _epsilon_real(self, n: float, delta_eff: float) -> float:
        v, b = self.variance_bound, self.magnitude_bound
        y = -math.log(delta_eff) * (b * b) / (n * v)
        return v * bennett_h_inverse(y) / b


class BernsteinInequality(ConcentrationInequality):
    """Bernstein's inequality — a closed-form relaxation of Bennett.

    .. math:: \\Pr[\\bar X - E\\bar X > \\epsilon] \\le
              \\exp\\Big(-\\frac{n\\epsilon^2}{2(v + b\\epsilon/3)}\\Big).

    Always at least as loose as Bennett for the same ``(v, b)`` (it follows
    from ``h(u) >= u^2 / (2 + 2u/3)``), but its inversions are closed-form,
    which makes it a convenient cross-check in tests: Bennett's sample size
    must never exceed Bernstein's.
    """

    def __init__(
        self,
        variance_bound: float,
        magnitude_bound: float = 1.0,
        *,
        two_sided: bool = True,
    ):
        super().__init__(two_sided=two_sided)
        self.variance_bound = check_positive(variance_bound, "variance_bound")
        self.magnitude_bound = check_positive(magnitude_bound, "magnitude_bound")

    def log_tail_probability(self, n: float, epsilon: float) -> float:
        v, b = self.variance_bound, self.magnitude_bound
        return -n * epsilon * epsilon / (2.0 * (v + b * epsilon / 3.0))

    def _sample_size_real(self, epsilon: float, delta_eff: float) -> float:
        v, b = self.variance_bound, self.magnitude_bound
        return -math.log(delta_eff) * 2.0 * (v + b * epsilon / 3.0) / (epsilon * epsilon)

    def _epsilon_real(self, n: float, delta_eff: float) -> float:
        # Solve n eps^2 / (2(v + b eps / 3)) = log(1/delta): a quadratic in eps.
        v, b = self.variance_bound, self.magnitude_bound
        L = -math.log(delta_eff)
        # n eps^2 - (2 b L / 3) eps - 2 v L = 0
        a = float(n)
        bb = -2.0 * b * L / 3.0
        c = -2.0 * v * L
        disc = bb * bb - 4.0 * a * c
        return (-bb + math.sqrt(disc)) / (2.0 * a)


class McDiarmidInequality(ConcentrationInequality):
    """McDiarmid's bounded-differences inequality.

    For a function ``f`` of ``n`` independent samples such that changing
    sample ``i`` changes ``f`` by at most ``c_i = sensitivity / n``,

    .. math:: \\Pr[f - E f > \\epsilon] \\le
              \\exp\\Big(-\\frac{2\\epsilon^2}{\\sum_i c_i^2}\\Big)
              = \\exp\\Big(-\\frac{2 n \\epsilon^2}{s^2}\\Big),

    where ``s`` is the total sensitivity.  The paper names this as the
    extension hook for metrics beyond accuracy (F1-score, AUC), whose
    per-sample sensitivity is ``O(1/n)`` times a metric-dependent constant.

    Parameters
    ----------
    sensitivity:
        Total sensitivity ``s`` such that each sample changes the statistic
        by at most ``s / n``.  For the empirical mean of ``[0, 1]`` values,
        ``s = 1`` and McDiarmid coincides with one-sided Hoeffding.
    """

    def __init__(self, sensitivity: float = 1.0, *, two_sided: bool = False):
        super().__init__(two_sided=two_sided)
        self.sensitivity = check_positive(sensitivity, "sensitivity")

    def log_tail_probability(self, n: float, epsilon: float) -> float:
        s = self.sensitivity
        return -2.0 * n * epsilon * epsilon / (s * s)

    def _sample_size_real(self, epsilon: float, delta_eff: float) -> float:
        s = self.sensitivity
        return -(s * s) * math.log(delta_eff) / (2.0 * epsilon * epsilon)

    def _epsilon_real(self, n: float, delta_eff: float) -> float:
        s = self.sensitivity
        return s * math.sqrt(-math.log(delta_eff) / (2.0 * n))
