"""Monte-Carlo coverage experiments for the sample-size machinery.

The empirical half of Figure 4: draw many testsets of a given size from a
known population, measure how often the estimation error exceeds the
tolerance the bound promised, and compare the bound-predicted tolerance to
the observed error quantiles.

Three experiment shapes are provided:

* :func:`coverage_experiment` — for a single Bernoulli mean (accuracy of
  one model), validating Hoeffding / tight-binomial sample sizes;
* :func:`coverage_experiment_grid` — the same experiment over a whole
  grid of testset sizes, drawing **every replicate of every configuration
  as one RNG batch** (a single ``rng.binomial`` call over an
  ``(configs, replicates)`` matrix) — the shape the figure-4 sweeps use;
* :func:`paired_coverage_experiment` — for the paired difference
  ``n - o`` with disagreement rate ``p``, validating the Bennett-based
  Pattern 1/2 sample sizes.

Both return a :class:`CoverageReport` that the test suite asserts on
(``observed_failure_rate <= delta`` with slack for MC noise, and
``empirical_quantile_error <= predicted_epsilon``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import SimulationError
from repro.utils.rng import ensure_rng
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_positive_int,
    check_probability,
)

__all__ = [
    "CoverageReport",
    "coverage_experiment",
    "coverage_experiment_grid",
    "paired_coverage_experiment",
]


@dataclass(frozen=True)
class CoverageReport:
    """Result of a Monte-Carlo coverage experiment.

    Attributes
    ----------
    n_samples:
        Testset size used in every replicate.
    n_replicates:
        Number of independent testsets drawn.
    predicted_epsilon:
        The tolerance the bound promises at the experiment's ``delta``.
    observed_failure_rate:
        Fraction of replicates whose estimation error exceeded
        ``predicted_epsilon`` — must be ``<= delta`` (up to MC noise) for
        the bound to be *valid*.
    empirical_quantile_error:
        The ``1 - delta`` quantile of the absolute estimation error — the
        figure-4 "empirical error"; the bound is *tight* when this is close
        to ``predicted_epsilon`` from below.
    mean_abs_error:
        Mean absolute estimation error across replicates.
    """

    n_samples: int
    n_replicates: int
    predicted_epsilon: float
    observed_failure_rate: float
    empirical_quantile_error: float
    mean_abs_error: float

    @property
    def bound_is_valid(self) -> bool:
        """Whether the empirical ``1-delta`` error stayed within the bound."""
        return self.empirical_quantile_error <= self.predicted_epsilon + 1e-12

    @property
    def slack_factor(self) -> float:
        """How conservative the bound is (``predicted / empirical``, >= 1
        when valid). Large slack means labels are being wasted."""
        if self.empirical_quantile_error == 0.0:
            return float("inf")
        return self.predicted_epsilon / self.empirical_quantile_error


def _make_report(
    errors: np.ndarray, n_samples: int, predicted_epsilon: float, delta: float
) -> CoverageReport:
    abs_err = np.abs(errors)
    return CoverageReport(
        n_samples=int(n_samples),
        n_replicates=len(errors),
        predicted_epsilon=float(predicted_epsilon),
        observed_failure_rate=float(np.mean(abs_err > predicted_epsilon)),
        empirical_quantile_error=float(np.quantile(abs_err, 1.0 - delta)),
        mean_abs_error=float(np.mean(abs_err)),
    )


def coverage_experiment(
    true_accuracy: float,
    n_samples: int,
    predicted_epsilon: float,
    delta: float,
    n_replicates: int = 10_000,
    seed=None,
) -> CoverageReport:
    """Validate a single-mean bound by repeated sampling.

    Draws ``n_replicates`` testsets of ``n_samples`` Bernoulli(``true_accuracy``)
    correctness indicators, estimates the accuracy on each, and reports how
    the estimation errors compare to ``predicted_epsilon``.
    """
    check_fraction(true_accuracy, "true_accuracy")
    n_samples = check_positive_int(n_samples, "n_samples")
    check_positive(predicted_epsilon, "predicted_epsilon")
    check_probability(delta, "delta")
    n_replicates = check_positive_int(n_replicates, "n_replicates")
    rng = ensure_rng(seed)
    correct_counts = rng.binomial(n_samples, true_accuracy, size=n_replicates)
    errors = correct_counts / n_samples - true_accuracy
    return _make_report(errors, n_samples, predicted_epsilon, delta)


def coverage_experiment_grid(
    true_accuracy: float,
    sample_sizes,
    predicted_epsilons,
    delta: float,
    n_replicates: int = 10_000,
    seed=None,
) -> list[CoverageReport]:
    """Run :func:`coverage_experiment` for a grid of sizes in one RNG batch.

    ``sample_sizes`` and ``predicted_epsilons`` must have equal length;
    entry ``i`` of the result validates ``predicted_epsilons[i]`` at
    ``sample_sizes[i]``.  All ``len(sample_sizes) * n_replicates``
    correct-count draws come from a single vectorized ``rng.binomial``
    call, so a figure-4-style sweep costs one pass through the generator
    instead of one RNG stream per configuration.
    """
    check_fraction(true_accuracy, "true_accuracy")
    check_probability(delta, "delta")
    n_replicates = check_positive_int(n_replicates, "n_replicates")
    sizes_raw = np.asarray(sample_sizes)
    if not np.issubdtype(sizes_raw.dtype, np.integer):
        if not np.all(sizes_raw == np.floor(sizes_raw)):
            raise SimulationError("sample_sizes must contain integers")
    sizes = sizes_raw.astype(np.int64)
    epsilons = np.asarray(predicted_epsilons, dtype=np.float64)
    if sizes.ndim != 1 or sizes.shape != epsilons.shape:
        raise SimulationError(
            "sample_sizes and predicted_epsilons must be equal-length 1-D sequences"
        )
    if np.any(sizes < 1):
        raise SimulationError("sample_sizes must be positive")
    if np.any(epsilons <= 0.0):
        raise SimulationError("predicted_epsilons must be positive")
    rng = ensure_rng(seed)
    counts = rng.binomial(sizes[:, None], true_accuracy, size=(len(sizes), n_replicates))
    errors = counts / sizes[:, None] - true_accuracy
    return [
        _make_report(errors[i], int(sizes[i]), float(epsilons[i]), delta)
        for i in range(len(sizes))
    ]


def paired_coverage_experiment(
    true_gain: float,
    disagreement_rate: float,
    n_samples: int,
    predicted_epsilon: float,
    delta: float,
    n_replicates: int = 10_000,
    seed=None,
) -> CoverageReport:
    """Validate a paired-difference bound (the Bennett regime).

    Population model: each example independently falls into one of three
    buckets — "new right / old wrong" (probability ``q_plus``), "new wrong /
    old right" (``q_minus``), "no difference" (the rest) — so the
    per-example difference is ``+1 / -1 / 0`` with
    ``q_plus + q_minus = disagreement_rate`` (the mass that can contribute
    variance) and ``q_plus - q_minus = true_gain``.

    Raises
    ------
    SimulationError
        If ``|true_gain| > disagreement_rate`` (no valid bucket masses).
    """
    check_fraction(disagreement_rate, "disagreement_rate")
    if abs(true_gain) > disagreement_rate + 1e-12:
        raise SimulationError(
            f"|true_gain|={abs(true_gain)} exceeds disagreement_rate={disagreement_rate}"
        )
    n_samples = check_positive_int(n_samples, "n_samples")
    check_positive(predicted_epsilon, "predicted_epsilon")
    check_probability(delta, "delta")
    n_replicates = check_positive_int(n_replicates, "n_replicates")
    rng = ensure_rng(seed)
    q_plus = (disagreement_rate + true_gain) / 2.0
    q_minus = (disagreement_rate - true_gain) / 2.0
    probs = np.array([q_plus, q_minus, 1.0 - q_plus - q_minus])
    counts = rng.multinomial(n_samples, probs, size=n_replicates)
    gains = (counts[:, 0] - counts[:, 1]) / n_samples
    errors = gains - true_gain
    return _make_report(errors, n_samples, predicted_epsilon, delta)
