"""Statistical substrate: concentration bounds, exact binomial machinery,
adaptive-analysis tools and Monte-Carlo validation harnesses.

This package is self-contained (numpy + scipy only) and has no knowledge of
the CI system built on top of it.  The estimator layer in
:mod:`repro.core.estimators` composes these primitives into the paper's
sample-size rules.
"""

from repro.stats.inequalities import (
    BennettInequality,
    BernsteinInequality,
    ConcentrationInequality,
    HoeffdingInequality,
    McDiarmidInequality,
    bennett_h,
)
from repro.stats.binomial import (
    binom_cdf,
    binom_logpmf,
    binom_pmf,
    binom_sf,
    clopper_pearson_interval,
    binomial_tail_inversion_upper,
    binomial_tail_inversion_lower,
)
from repro.stats.batch import (
    binom_cdf_vec,
    binom_logpmf_vec,
    binom_pmf_vec,
    binom_sf_vec,
    binomial_tail_inversion_lower_vec,
    binomial_tail_inversion_upper_vec,
    clopper_pearson_interval_vec,
    exact_coverage_failure_probability_pairs,
    exact_coverage_failure_probability_vec,
)
from repro.stats.cache import all_cache_info, clear_all_caches
from repro.stats.tight_bounds import (
    exact_coverage_failure_probability,
    exceeds_delta_many,
    tight_sample_size,
    tight_epsilon,
    tight_epsilon_many,
)
from repro.stats.estimation import (
    PairedSample,
    PairedSampleBatch,
    estimate_accuracy,
    estimate_difference,
    estimate_accuracy_gain,
)
from repro.stats.adaptive import Ladder, AdaptiveAttacker, ThresholdAttacker
from repro.stats.simulation import (
    CoverageReport,
    coverage_experiment,
    coverage_experiment_grid,
)

__all__ = [
    "ConcentrationInequality",
    "HoeffdingInequality",
    "BennettInequality",
    "BernsteinInequality",
    "McDiarmidInequality",
    "bennett_h",
    "binom_logpmf",
    "binom_pmf",
    "binom_cdf",
    "binom_sf",
    "clopper_pearson_interval",
    "binomial_tail_inversion_upper",
    "binomial_tail_inversion_lower",
    "binom_logpmf_vec",
    "binom_pmf_vec",
    "binom_cdf_vec",
    "binom_sf_vec",
    "clopper_pearson_interval_vec",
    "binomial_tail_inversion_upper_vec",
    "binomial_tail_inversion_lower_vec",
    "exact_coverage_failure_probability_vec",
    "exact_coverage_failure_probability_pairs",
    "all_cache_info",
    "clear_all_caches",
    "exact_coverage_failure_probability",
    "tight_sample_size",
    "tight_epsilon",
    "tight_epsilon_many",
    "exceeds_delta_many",
    "PairedSample",
    "PairedSampleBatch",
    "estimate_accuracy",
    "estimate_difference",
    "estimate_accuracy_gain",
    "Ladder",
    "AdaptiveAttacker",
    "ThresholdAttacker",
    "CoverageReport",
    "coverage_experiment",
    "coverage_experiment_grid",
]
