"""Process-pool planning executor: shard sweeps and cold derivations.

The planning kernels scale with vector width (:mod:`repro.stats.batch`)
but, until this module, ran on one core: an epsilon sweep over dozens of
testset sizes, or a batch of cold plan derivations, serialized behind the
GIL however many CPUs the host offered.  :class:`PlanningExecutor` moves
that work onto worker *processes* while keeping the process-wide caches
coherent through the cache-manifest contract of :mod:`repro.stats.cache`:

* at pool spawn, each worker is initialized with the parent's
  :func:`~repro.stats.cache.export_manifest` — workers plan against the
  parent's warm anchors, layouts and memoized bounds;
* each task returns its result *plus* the worker's manifest; the parent
  folds them back with :func:`~repro.stats.cache.merge_manifest` (a
  commutative, idempotent join, so completion order is irrelevant) and
  subsequent single-process calls stay warm.

Determinism
-----------
Worker count never changes results.  The sweep is sharded over the
*unique* testset sizes (:func:`~repro.stats.tight_bounds.epsilon_sweep_shards`)
and every planning kernel is batch-composition invariant (see
:func:`~repro.stats.batch.exact_coverage_failure_probability_pairs`), so
each shard's lockstep scan is bit-identical to its rows of the serial
scan; stitching shard results together reproduces the serial sweep
element-wise, probe certificates included.  ``tight_sample_size`` and
plan derivation are deterministic functions of their arguments, so
fanning them out is equally invisible to callers.

Configuration
-------------
``workers`` accepts ``None``/``"serial"``/``0``/``1`` (serial — the
default everywhere), ``"auto"`` (one worker per CPU), or a positive
integer.  When ``workers`` is ``None``, the ``REPRO_PLAN_WORKERS``
environment variable supplies the default — the CI matrix forces
``auto`` through it so the parallel path is exercised on every push.
:func:`get_executor` hands out process-wide shared executors (one per
worker count), shut down atexit; construct a :class:`PlanningExecutor`
directly for an isolated pool (benchmarks measuring cold spawns do).
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import threading
from typing import Any, Mapping, Sequence

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.stats.cache import export_manifest, merge_manifest, warm_after_restore
from repro.stats.tight_bounds import (
    _compute_epsilon_sweep,
    adopt_epsilon_sweep,
    cached_epsilon_sweep,
    epsilon_sweep_shards,
    tight_sample_size,
)

__all__ = [
    "resolve_workers",
    "PlanningExecutor",
    "get_executor",
    "shutdown_executors",
]

#: Environment variable supplying the default worker count when callers
#: pass ``workers=None`` (the CI workflow forces ``auto`` through it).
WORKERS_ENV = "REPRO_PLAN_WORKERS"

_SERIAL_NAMES = ("", "serial", "none", "0", "1")


def resolve_workers(workers: int | str | None = None) -> int:
    """Normalize a ``workers=`` setting to a concrete process count.

    ``None`` defers to ``$REPRO_PLAN_WORKERS`` (serial when unset);
    ``"serial"``/``"none"``/``0``/``1`` mean serial; ``"auto"`` means one
    worker per available CPU; a positive integer is taken literally.
    """
    if workers is None:
        workers = os.environ.get(WORKERS_ENV) or "serial"
    if isinstance(workers, str):
        name = workers.strip().lower()
        if name in _SERIAL_NAMES:
            return 1
        if name == "auto":
            return max(1, os.cpu_count() or 1)
        try:
            workers = int(name)
        except ValueError:
            raise InvalidParameterError(
                f"workers must be an integer, 'auto' or 'serial', got {workers!r}"
            ) from None
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise InvalidParameterError(
            f"workers must be an integer, 'auto' or 'serial', got {workers!r}"
        )
    if workers < 0:
        raise InvalidParameterError(f"workers must be >= 0, got {workers}")
    return max(1, workers)


# ---------------------------------------------------------------------------
# Worker-side task functions (module-level so spawn contexts can import them)
# ---------------------------------------------------------------------------

def _initialize_worker(manifest: Mapping[str, Any]) -> None:
    """Pool initializer: adopt the parent's warm state."""
    merge_manifest(manifest)


def _chunked(items: list, chunks: int) -> list[list]:
    """Split ``items`` into at most ``chunks`` contiguous non-empty runs.

    Every sharded entry point dispatches *one task per chunk* (not per
    item) and each task returns a single worker manifest, so the
    manifest shipping + merge cost per call is bounded by the worker
    count, never by the item count.
    """
    chunks = min(chunks, len(items))
    bounds = [len(items) * k // chunks for k in range(chunks + 1)]
    return [items[bounds[k] : bounds[k + 1]] for k in range(chunks)]


def _epsilon_chunk_task(payload: tuple) -> tuple[np.ndarray, dict[str, Any]]:
    """One shard of an epsilon sweep: serial scan + the worker's manifest."""
    ns, delta, tol, grid, refine = payload
    ns_arr = np.asarray(ns, dtype=np.int64)
    eps = cached_epsilon_sweep(ns_arr, delta, tol=tol, grid=grid, refine=refine)
    if eps is None:
        eps = _compute_epsilon_sweep(ns_arr, delta, tol, grid, refine)
    return np.asarray(eps, dtype=np.float64), export_manifest()


def _sample_size_chunk_task(payload: tuple) -> tuple[list[int], dict[str, Any]]:
    """A run of cold tight-bound derivations + one worker manifest."""
    specs, grid, refine = payload
    ns = [
        tight_sample_size(epsilon, delta, grid=grid, refine=refine)
        for epsilon, delta in specs
    ]
    return ns, export_manifest()


def _plan_chunk_task(requests: Sequence[Mapping[str, Any]]) -> dict[str, Any]:
    """Derive a run of plan requests in the worker; return its manifest.

    Requests use the warm-manifest shape of
    :meth:`repro.core.engine.CIEngine.warm_manifest`, and derivation goes
    through the registered restore warmers
    (:func:`repro.stats.cache.warm_after_restore`) — the same single copy
    of the replay logic snapshots use, which already forces the worker's
    estimator serial so it never spawns a nested pool.
    """
    # Imported for its side effect: registering the estimator layer's
    # restore warmer (spawn-context workers start with a bare registry).
    import repro.core.estimators.api  # noqa: F401

    warm_after_restore({"plans": list(requests)})
    return export_manifest()


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------

class PlanningExecutor:
    """Shards planning work across worker processes, manifests merged back.

    Parameters
    ----------
    workers:
        Anything :func:`resolve_workers` accepts.  A resolved count of 1
        short-circuits every method to the serial implementation — no
        pool is ever created, so ``workers="serial"`` costs nothing.
    start_method:
        Optional :mod:`multiprocessing` start method (``"fork"``,
        ``"spawn"``, ``"forkserver"``); the platform default when
        omitted.  The worker task functions are module-level, so spawn
        contexts work — they just pay interpreter start-up per worker.

    The pool is created lazily on the first sharded call; the parent's
    cache manifest is exported at that moment and shipped to every
    worker.  Usable as a context manager (:meth:`close` on exit).
    """

    def __init__(
        self,
        workers: int | str | None = "auto",
        *,
        start_method: str | None = None,
    ):
        self.processes = resolve_workers(workers)
        self._start_method = start_method
        self._pool = None
        self._lock = threading.Lock()

    # -- lifecycle ------------------------------------------------------------
    def _ensure_pool(self):
        with self._lock:
            if self._pool is None:
                context = multiprocessing.get_context(self._start_method)
                self._pool = context.Pool(
                    processes=self.processes,
                    initializer=_initialize_worker,
                    initargs=(export_manifest(),),
                )
            return self._pool

    def start(self) -> "PlanningExecutor":
        """Spawn the worker pool now instead of lazily on first use.

        Benchmarks (and latency-sensitive services) call this so the
        one-time fork cost is paid outside the serving path; the workers
        receive whatever manifest the parent holds at this moment.
        """
        if self.processes > 1:
            self._ensure_pool()
        return self

    def close(self) -> None:
        """Terminate the worker pool (idempotent)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            pool.join()

    def __enter__(self) -> "PlanningExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- sharded entry points -------------------------------------------------
    def tight_epsilon_many(
        self,
        ns,
        delta: float,
        *,
        tol: float = 1e-6,
        grid: int = 256,
        refine: int = 2,
    ) -> np.ndarray:
        """Sharded :func:`repro.stats.tight_bounds.tight_epsilon_many`.

        Element-wise identical to the serial sweep (same memo key, same
        anchors planted); the parent's caches end up warm exactly as if
        the sweep had run in-process.
        """
        cached = cached_epsilon_sweep(ns, delta, tol=tol, grid=grid, refine=refine)
        if cached is not None:
            return cached
        ns_arr = np.atleast_1d(np.asarray(ns)).astype(np.int64)
        shards = epsilon_sweep_shards(ns_arr, self.processes, grid=grid, refine=refine)
        if self.processes == 1 or len(shards) < 2:
            # The cached_epsilon_sweep miss above was this call's one
            # recorded lookup; compute probe-free so stats stay 1:1.
            return _compute_epsilon_sweep(ns_arr, delta, tol, grid, refine)
        payloads = [
            (shard.tolist(), delta, tol, grid, refine) for shard in shards
        ]
        outputs = self._ensure_pool().map(_epsilon_chunk_task, payloads, chunksize=1)
        for _, manifest in outputs:
            merge_manifest(manifest)
        eps_unique = np.concatenate([eps for eps, _ in outputs])
        unique = np.concatenate(shards)
        return adopt_epsilon_sweep(
            ns, delta, unique, eps_unique, tol=tol, grid=grid, refine=refine
        )

    def tight_sample_size_many(
        self,
        specs: Sequence[tuple[float, float]],
        *,
        grid: int = 256,
        refine: int = 2,
    ) -> list[int]:
        """Cold ``tight_sample_size`` for many ``(epsilon, delta)`` specs.

        The specs are split into at most one contiguous run per worker;
        results are identical to the serial loop (the search is a
        deterministic function of its arguments), with each worker's
        memoized probes folded back into the parent once per run.
        """
        specs = [(float(epsilon), float(delta)) for epsilon, delta in specs]
        if self.processes == 1 or len(specs) < 2:
            return [
                tight_sample_size(epsilon, delta, grid=grid, refine=refine)
                for epsilon, delta in specs
            ]
        payloads = [
            (chunk, grid, refine) for chunk in _chunked(specs, self.processes)
        ]
        outputs = self._ensure_pool().map(
            _sample_size_chunk_task, payloads, chunksize=1
        )
        for _, manifest in outputs:
            merge_manifest(manifest)
        return [n for ns, _ in outputs for n in ns]

    def tight_sample_size(
        self, epsilon: float, delta: float, *, grid: int = 256, refine: int = 2
    ) -> int:
        """Single-spec convenience over :meth:`tight_sample_size_many`."""
        return self.tight_sample_size_many(
            [(epsilon, delta)], grid=grid, refine=refine
        )[0]

    def warm_plans(self, requests: Sequence[Mapping[str, Any]]) -> int:
        """Derive plan requests in workers; fold their caches back.

        Each request uses the warm-manifest shape
        (``condition``/``delta``/``adaptivity``/``steps``/
        ``known_variance_bound``/``estimator``).  After the merge the
        parent's plan cache holds every requested plan, so re-planning
        in-process is a cache hit.  Returns the number of requests
        derived.  A single request still runs in a worker when a pool is
        configured — the parent thread only merges manifests, which is
        what lets a serving thread overlap rotation re-planning with
        traffic.
        """
        requests = list(requests)
        if not requests:
            return 0
        if self.processes == 1:
            _plan_chunk_task(requests)
            return len(requests)
        chunks = _chunked(requests, self.processes)
        manifests = self._ensure_pool().map(_plan_chunk_task, chunks, chunksize=1)
        for manifest in manifests:
            merge_manifest(manifest)
        return len(requests)


# ---------------------------------------------------------------------------
# Shared executors (one per worker count, shut down atexit)
# ---------------------------------------------------------------------------

_EXECUTORS: dict[int, PlanningExecutor] = {}
_EXECUTORS_LOCK = threading.Lock()


def get_executor(workers: int | str | None = "auto") -> PlanningExecutor:
    """The process-wide shared executor for this worker count.

    Estimators and services resolve their ``workers=`` setting through
    this, so every caller asking for the same count shares one pool
    (spawn cost is paid once per process).  Shared executors are closed
    by :func:`shutdown_executors`, registered atexit.
    """
    count = resolve_workers(workers)
    with _EXECUTORS_LOCK:
        executor = _EXECUTORS.get(count)
        if executor is None:
            executor = PlanningExecutor(count)
            _EXECUTORS[count] = executor
        return executor


def shutdown_executors() -> None:
    """Close every shared executor (safe to call repeatedly)."""
    with _EXECUTORS_LOCK:
        executors = list(_EXECUTORS.values())
        _EXECUTORS.clear()
    for executor in executors:
        executor.close()


atexit.register(shutdown_executors)
