"""Process-pool planning executor: shard sweeps and cold derivations.

The planning kernels scale with vector width (:mod:`repro.stats.batch`)
but, until this module, ran on one core: an epsilon sweep over dozens of
testset sizes, or a batch of cold plan derivations, serialized behind the
GIL however many CPUs the host offered.  :class:`PlanningExecutor` moves
that work onto worker *processes* while keeping the process-wide caches
coherent through the cache-manifest contract of :mod:`repro.stats.cache`:

* at pool spawn, each worker is initialized with the parent's
  :func:`~repro.stats.cache.export_manifest` — workers plan against the
  parent's warm anchors, layouts and memoized bounds;
* each task returns its result *plus* the worker's manifest; the parent
  folds them back with :func:`~repro.stats.cache.merge_manifest` (a
  commutative, idempotent join, so completion order is irrelevant) and
  subsequent single-process calls stay warm.

Determinism
-----------
Worker count never changes results.  The sweep is sharded over the
*unique* testset sizes (:func:`~repro.stats.tight_bounds.epsilon_sweep_shards`)
and every planning kernel is batch-composition invariant (see
:func:`~repro.stats.batch.exact_coverage_failure_probability_pairs`), so
each shard's lockstep scan is bit-identical to its rows of the serial
scan; stitching shard results together reproduces the serial sweep
element-wise, probe certificates included.  ``tight_sample_size`` and
plan derivation are deterministic functions of their arguments, so
fanning them out is equally invisible to callers.

Supervision
-----------
Worker processes die (OOM killers, segfaulting BLAS, operators), and a
planning request must not die with them.  Every sharded dispatch runs
under a supervisor: per-task timeouts (hung workers), bounded retries
with exponential backoff, automatic pool respawn when the process pool
breaks (:class:`~concurrent.futures.process.BrokenProcessPool`), and —
after the retry budget is spent — graceful *degradation to the serial
backend*: the remaining shards are computed in-process and the executor
stays serial from then on.  Degradation never changes results: the
manifest contract plus batch-composition invariance guarantee a retried
or serially-recomputed shard is bit-identical to the worker's answer (a
different worker count is all it is).  Respawns, retries and
degradations are recorded on the reliability event log
(:mod:`repro.reliability.events`) and surfaced by ``repro ops``.
The worker task functions traverse the ``executor.task`` fault-injection
point (:mod:`repro.reliability.faults`), which is how the chaos suite
kills, hangs and fails workers deterministically.

Configuration
-------------
``workers`` accepts ``None``/``"serial"``/``0``/``1`` (serial — the
default everywhere), ``"auto"`` (one worker per CPU), or a positive
integer.  When ``workers`` is ``None``, the ``REPRO_PLAN_WORKERS``
environment variable supplies the default — the CI matrix forces
``auto`` through it so the parallel path is exercised on every push.
``$REPRO_PLAN_TASK_TIMEOUT`` supplies a default per-task timeout in
seconds (none when unset).  :func:`get_executor` hands out process-wide
shared executors (one per worker count), shut down atexit; construct a
:class:`PlanningExecutor` directly for an isolated pool (benchmarks
measuring cold spawns do).
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.reliability.events import ReliabilityEvent, record_event
from repro.reliability.faults import (
    InjectedFault,
    fault_point,
    in_worker,
    mark_worker,
)
from repro.stats.batch import publish_shared_table, release_shared_table
from repro.stats.cache import export_manifest, merge_manifest, warm_after_restore
from repro.stats.tight_bounds import (
    _compute_epsilon_sweep,
    adopt_epsilon_sweep,
    cached_epsilon_sweep,
    epsilon_sweep_shards,
    tight_sample_size,
)

__all__ = [
    "resolve_workers",
    "PlanningExecutor",
    "get_executor",
    "shutdown_executors",
]

#: Environment variable supplying the default worker count when callers
#: pass ``workers=None`` (the CI workflow forces ``auto`` through it).
WORKERS_ENV = "REPRO_PLAN_WORKERS"

#: Environment variable supplying the default per-task timeout (seconds).
TASK_TIMEOUT_ENV = "REPRO_PLAN_TASK_TIMEOUT"

#: Failures the supervisor retries (then degrades on): a broken pool
#: (worker killed), a per-task timeout (worker hung), an injected fault
#: (the chaos suite's stand-in for any transient worker error), and the
#: connection errors a dying worker's pipe produces.  Anything else is a
#: real error in the task itself and propagates immediately.
_RETRYABLE = (BrokenProcessPool, TimeoutError, InjectedFault, EOFError, ConnectionError)

_SERIAL_NAMES = ("", "serial", "none", "0", "1")


def resolve_workers(workers: int | str | None = None) -> int:
    """Normalize a ``workers=`` setting to a concrete process count.

    ``None`` defers to ``$REPRO_PLAN_WORKERS`` (serial when unset);
    ``"serial"``/``"none"``/``0``/``1`` mean serial; ``"auto"`` means one
    worker per available CPU; a positive integer is taken literally.
    """
    if workers is None:
        workers = os.environ.get(WORKERS_ENV) or "serial"
    if isinstance(workers, str):
        name = workers.strip().lower()
        if name in _SERIAL_NAMES:
            return 1
        if name == "auto":
            return max(1, os.cpu_count() or 1)
        try:
            workers = int(name)
        except ValueError:
            raise InvalidParameterError(
                f"workers must be an integer, 'auto' or 'serial', got {workers!r}"
            ) from None
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise InvalidParameterError(
            f"workers must be an integer, 'auto' or 'serial', got {workers!r}"
        )
    if workers < 0:
        raise InvalidParameterError(f"workers must be >= 0, got {workers}")
    return max(1, workers)


# ---------------------------------------------------------------------------
# Worker-side task functions (module-level so spawn contexts can import them)
# ---------------------------------------------------------------------------

def _initialize_worker(manifest: Mapping[str, Any]) -> None:
    """Pool initializer: adopt the parent's warm state.

    Also marks the process as a worker so that worker-only fault actions
    (kill, hang) can fire here but never in the supervising parent.
    """
    mark_worker()
    merge_manifest(manifest)


def _worker_fault_point() -> None:
    """Traverse ``executor.task`` — but only inside a worker process.

    The site simulates worker failures (crashed, wedged, flaky); a
    degraded-to-serial pass re-running the task functions in the parent
    must be outside the injection surface entirely, or a persistent
    ``raise`` rule would crash the very fallback that exists to survive
    it.
    """
    if in_worker():
        fault_point("executor.task")


def _chunked(items: list, chunks: int) -> list[list]:
    """Split ``items`` into at most ``chunks`` contiguous non-empty runs.

    Every sharded entry point dispatches *one task per chunk* (not per
    item) and each task returns a single worker manifest, so the
    manifest shipping + merge cost per call is bounded by the worker
    count, never by the item count.
    """
    chunks = min(chunks, len(items))
    bounds = [len(items) * k // chunks for k in range(chunks + 1)]
    return [items[bounds[k] : bounds[k + 1]] for k in range(chunks)]


def _epsilon_chunk_task(payload: tuple) -> tuple[np.ndarray, dict[str, Any]]:
    """One shard of an epsilon sweep: serial scan + the worker's manifest."""
    _worker_fault_point()
    ns, delta, tol, grid, refine, precision = payload
    ns_arr = np.asarray(ns, dtype=np.int64)
    eps = cached_epsilon_sweep(
        ns_arr, delta, tol=tol, grid=grid, refine=refine, precision=precision
    )
    if eps is None:
        eps = _compute_epsilon_sweep(ns_arr, delta, tol, grid, refine, precision)
    return np.asarray(eps, dtype=np.float64), export_manifest()


def _sample_size_chunk_task(payload: tuple) -> tuple[list[int], dict[str, Any]]:
    """A run of cold tight-bound derivations + one worker manifest."""
    _worker_fault_point()
    specs, grid, refine = payload
    ns = [
        tight_sample_size(epsilon, delta, grid=grid, refine=refine)
        for epsilon, delta in specs
    ]
    return ns, export_manifest()


def _plan_chunk_task(requests: Sequence[Mapping[str, Any]]) -> dict[str, Any]:
    """Derive a run of plan requests in the worker; return its manifest.

    Requests use the warm-manifest shape of
    :meth:`repro.core.engine.CIEngine.warm_manifest`, and derivation goes
    through the registered restore warmers
    (:func:`repro.stats.cache.warm_after_restore`) — the same single copy
    of the replay logic snapshots use, which already forces the worker's
    estimator serial so it never spawns a nested pool.
    """
    _worker_fault_point()
    # Imported for its side effect: registering the estimator layer's
    # restore warmer (spawn-context workers start with a bare registry).
    import repro.core.estimators.api  # noqa: F401

    warm_after_restore({"plans": list(requests)})
    return export_manifest()


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------

class PlanningExecutor:
    """Shards planning work across worker processes, manifests merged back.

    Parameters
    ----------
    workers:
        Anything :func:`resolve_workers` accepts.  A resolved count of 1
        short-circuits every method to the serial implementation — no
        pool is ever created, so ``workers="serial"`` costs nothing.
    start_method:
        Optional :mod:`multiprocessing` start method (``"fork"``,
        ``"spawn"``, ``"forkserver"``); the platform default when
        omitted.  The worker task functions are module-level, so spawn
        contexts work — they just pay interpreter start-up per worker.
    task_timeout:
        Per-task supervision timeout in seconds; a task that has not
        produced a result within it is treated as a hung worker (the
        pool is killed, respawned and the shard retried).  ``None``
        (default) defers to ``$REPRO_PLAN_TASK_TIMEOUT``, unbounded when
        that is unset too.
    max_retries:
        How many times a failed dispatch round is retried (with the pool
        respawned and exponential backoff between rounds) before the
        executor degrades to the serial backend.
    backoff, max_backoff:
        Exponential-backoff base and cap in seconds.
    sleep:
        Injectable sleep for the backoff (tests pass a no-op).

    The pool is created lazily on the first sharded call; the parent's
    cache manifest is exported at that moment and shipped to every
    worker.  Usable as a context manager (:meth:`close` on exit).

    Supervision contract: a shard that fails with a retryable error (see
    ``_RETRYABLE``) is re-dispatched on a fresh pool; after
    ``max_retries`` failed rounds the executor records a
    ``planning-degraded`` event and computes the remaining shards — and
    every future call — serially in-process.  Results are bit-identical
    on every path; only :attr:`degraded` and the event log tell the
    difference.
    """

    def __init__(
        self,
        workers: int | str | None = "auto",
        *,
        start_method: str | None = None,
        task_timeout: float | None = None,
        max_retries: int = 2,
        backoff: float = 0.1,
        max_backoff: float = 2.0,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.processes = resolve_workers(workers)
        if task_timeout is None:
            raw = os.environ.get(TASK_TIMEOUT_ENV, "")
            task_timeout = float(raw) if raw else None
        if task_timeout is not None and task_timeout <= 0:
            raise InvalidParameterError(
                f"task_timeout must be positive, got {task_timeout}"
            )
        self.task_timeout = task_timeout
        self.max_retries = int(max_retries)
        self.backoff = float(backoff)
        self.max_backoff = float(max_backoff)
        self._sleep = sleep
        self._start_method = start_method
        self._pool = None
        self._lock = threading.Lock()
        self._degraded = False
        self._respawns = 0
        self._events: list[ReliabilityEvent] = []

    # -- supervision state ----------------------------------------------------
    @property
    def degraded(self) -> bool:
        """Whether repeated failures demoted this executor to serial."""
        return self._degraded

    @property
    def respawns(self) -> int:
        """How many times the worker pool was killed and respawned."""
        return self._respawns

    @property
    def events(self) -> list[ReliabilityEvent]:
        """Supervision events (retries, respawns, degradation), in order."""
        return list(self._events)

    def _record(self, kind: str, **detail: Any) -> None:
        self._events.append(record_event(kind, "stats.parallel", **detail))

    # -- lifecycle ------------------------------------------------------------
    def _ensure_pool(self):
        with self._lock:
            if self._pool is None:
                # Publish the log-factorial table as one read-only
                # shared-memory segment *before* exporting the manifest,
                # so the manifest names it and every spawned worker
                # attaches the single mmap instead of materializing a
                # private copy.  Failure to publish (e.g. exhausted /dev/shm)
                # degrades silently to the copy-per-worker regrow.
                try:
                    publish_shared_table()
                except OSError:  # pragma: no cover - depends on host limits
                    pass
                context = multiprocessing.get_context(self._start_method)
                self._pool = ProcessPoolExecutor(
                    max_workers=self.processes,
                    mp_context=context,
                    initializer=_initialize_worker,
                    initargs=(export_manifest(),),
                )
            return self._pool

    def start(self) -> "PlanningExecutor":
        """Spawn the worker pool now instead of lazily on first use.

        Benchmarks (and latency-sensitive services) call this so the
        one-time fork cost is paid outside the serving path; the workers
        receive whatever manifest the parent holds at this moment.
        """
        if self.processes > 1 and not self._degraded:
            self._ensure_pool()
        return self

    def close(self) -> None:
        """Terminate the worker pool.  Idempotent and signal-safe.

        Safe to call repeatedly, from ``atexit``, or after a
        ``KeyboardInterrupt`` landed mid-task: worker processes are
        terminated (then killed if they ignore it) rather than joined
        indefinitely, pending futures are cancelled, and a pool that
        already broke is reaped without hanging.
        """
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            _reap_pool(pool)

    def __enter__(self) -> "PlanningExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the supervisor -------------------------------------------------------
    def _respawn_pool(self, failure: BaseException) -> None:
        self._respawns += 1
        self._record(
            "pool-respawn",
            error=f"{type(failure).__name__}: {failure}",
            respawns=self._respawns,
        )
        self.close()

    def _degrade(self, failure: BaseException) -> None:
        self._degraded = True
        self._record(
            "planning-degraded",
            error=f"{type(failure).__name__}: {failure}",
            respawns=self._respawns,
            retries=self.max_retries,
        )
        self.close()

    def _run_tasks(self, task: Callable[[Any], Any], payloads: Sequence[Any]) -> list:
        """Dispatch one payload per worker task, supervised.

        Returns results in payload order.  Failed dispatch rounds are
        retried on a fresh pool with exponential backoff; after the
        retry budget the remaining payloads are computed serially
        in-process (and the executor stays degraded).  Completed shards
        are never recomputed across retries.
        """
        results: list[Any] = [None] * len(payloads)
        pending = list(range(len(payloads)))
        failures = 0
        while pending:
            if self.processes == 1 or self._degraded:
                for index in pending:
                    results[index] = task(payloads[index])
                return results
            failure: BaseException | None = None
            completed: list[int] = []
            try:
                pool = self._ensure_pool()
                futures = [
                    (index, pool.submit(task, payloads[index])) for index in pending
                ]
            except _RETRYABLE as exc:
                failure, futures = exc, []
            for index, future in futures:
                if failure is not None:
                    future.cancel()
                    continue
                try:
                    results[index] = future.result(timeout=self.task_timeout)
                    completed.append(index)
                except _RETRYABLE as exc:
                    failure = exc
            pending = [index for index in pending if index not in completed]
            if failure is None:
                continue
            failures += 1
            self._respawn_pool(failure)
            if failures > self.max_retries:
                self._degrade(failure)
            else:
                self._record(
                    "task-retry",
                    attempt=failures,
                    remaining_tasks=len(pending),
                    error=f"{type(failure).__name__}: {failure}",
                )
                self._sleep(
                    min(self.backoff * (2 ** (failures - 1)), self.max_backoff)
                )
        return results

    # -- sharded entry points -------------------------------------------------
    def tight_epsilon_many(
        self,
        ns,
        delta: float,
        *,
        tol: float = 1e-6,
        grid: int = 256,
        refine: int = 2,
        precision: str = "float64",
    ) -> np.ndarray:
        """Sharded :func:`repro.stats.tight_bounds.tight_epsilon_many`.

        Element-wise identical to the serial sweep (same memo key, same
        anchors planted); the parent's caches end up warm exactly as if
        the sweep had run in-process.  ``precision`` selects the advisory
        tier of the underlying sweep; certification stays float64 in the
        workers exactly as it does serially.
        """
        cached = cached_epsilon_sweep(
            ns, delta, tol=tol, grid=grid, refine=refine, precision=precision
        )
        if cached is not None:
            return cached
        ns_arr = np.atleast_1d(np.asarray(ns)).astype(np.int64)
        shards = epsilon_sweep_shards(ns_arr, self.processes, grid=grid, refine=refine)
        if self.processes == 1 or self._degraded or len(shards) < 2:
            # The cached_epsilon_sweep miss above was this call's one
            # recorded lookup; compute probe-free so stats stay 1:1.
            return _compute_epsilon_sweep(ns_arr, delta, tol, grid, refine, precision)
        payloads = [
            (shard.tolist(), delta, tol, grid, refine, precision) for shard in shards
        ]
        outputs = self._run_tasks(_epsilon_chunk_task, payloads)
        for _, manifest in outputs:
            merge_manifest(manifest)
        eps_unique = np.concatenate([eps for eps, _ in outputs])
        unique = np.concatenate(shards)
        return adopt_epsilon_sweep(
            ns,
            delta,
            unique,
            eps_unique,
            tol=tol,
            grid=grid,
            refine=refine,
            precision=precision,
        )

    def tight_sample_size_many(
        self,
        specs: Sequence[tuple[float, float]],
        *,
        grid: int = 256,
        refine: int = 2,
    ) -> list[int]:
        """Cold ``tight_sample_size`` for many ``(epsilon, delta)`` specs.

        The specs are split into at most one contiguous run per worker;
        results are identical to the serial loop (the search is a
        deterministic function of its arguments), with each worker's
        memoized probes folded back into the parent once per run.
        """
        specs = [(float(epsilon), float(delta)) for epsilon, delta in specs]
        if self.processes == 1 or self._degraded or len(specs) < 2:
            return [
                tight_sample_size(epsilon, delta, grid=grid, refine=refine)
                for epsilon, delta in specs
            ]
        payloads = [
            (chunk, grid, refine) for chunk in _chunked(specs, self.processes)
        ]
        outputs = self._run_tasks(_sample_size_chunk_task, payloads)
        for _, manifest in outputs:
            merge_manifest(manifest)
        return [n for ns, _ in outputs for n in ns]

    def tight_sample_size(
        self, epsilon: float, delta: float, *, grid: int = 256, refine: int = 2
    ) -> int:
        """Single-spec convenience over :meth:`tight_sample_size_many`."""
        return self.tight_sample_size_many(
            [(epsilon, delta)], grid=grid, refine=refine
        )[0]

    def warm_plans(self, requests: Sequence[Mapping[str, Any]]) -> int:
        """Derive plan requests in workers; fold their caches back.

        Each request uses the warm-manifest shape
        (``condition``/``delta``/``adaptivity``/``steps``/
        ``known_variance_bound``/``estimator``).  After the merge the
        parent's plan cache holds every requested plan, so re-planning
        in-process is a cache hit.  Returns the number of requests
        derived.  A single request still runs in a worker when a pool is
        configured — the parent thread only merges manifests, which is
        what lets a serving thread overlap rotation re-planning with
        traffic.
        """
        requests = list(requests)
        if not requests:
            return 0
        if self.processes == 1 or self._degraded:
            _plan_chunk_task(requests)
            return len(requests)
        chunks = _chunked(requests, self.processes)
        manifests = self._run_tasks(_plan_chunk_task, chunks)
        for manifest in manifests:
            merge_manifest(manifest)
        return len(requests)


def _reap_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a process pool down without ever hanging.

    Handles healthy, broken and interrupted pools alike: cancel what can
    be cancelled, terminate the workers (kill stragglers after a short
    grace), and swallow the secondary errors a broken pool's shutdown
    may raise — reaping must succeed even when the pool did not.
    """
    processes = []
    try:
        processes = list((pool._processes or {}).values())
    except Exception:
        pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass
    for process in processes:
        try:
            process.terminate()
        except Exception:
            pass
    for process in processes:
        try:
            process.join(timeout=1.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=1.0)
        except Exception:
            pass


# ---------------------------------------------------------------------------
# Shared executors (one per worker count, shut down atexit)
# ---------------------------------------------------------------------------

_EXECUTORS: dict[int, PlanningExecutor] = {}
_EXECUTORS_LOCK = threading.Lock()


def get_executor(workers: int | str | None = "auto") -> PlanningExecutor:
    """The process-wide shared executor for this worker count.

    Estimators and services resolve their ``workers=`` setting through
    this, so every caller asking for the same count shares one pool
    (spawn cost is paid once per process).  Shared executors are closed
    by :func:`shutdown_executors`, registered atexit.
    """
    count = resolve_workers(workers)
    with _EXECUTORS_LOCK:
        executor = _EXECUTORS.get(count)
        if executor is None:
            executor = PlanningExecutor(count)
            _EXECUTORS[count] = executor
        return executor


def shutdown_executors() -> None:
    """Close every shared executor (safe to call repeatedly).

    Reaps already-broken pools without hanging — :meth:`close` kills
    workers rather than joining them indefinitely — so an interrupt or
    atexit teardown after a worker crash always completes.  Also the
    test-suite reset point: a chaos test that degraded a shared executor
    calls this so the next :func:`get_executor` starts fresh.
    """
    with _EXECUTORS_LOCK:
        executors = list(_EXECUTORS.values())
        _EXECUTORS.clear()
    for executor in executors:
        try:
            executor.close()
        except Exception:
            # Reaping must never raise through atexit/interrupt paths.
            pass
    try:
        # Unlink the shared log-factorial segment (owner) or detach from
        # it (worker); the table itself stays valid either way.
        release_shared_table()
    except Exception:  # pragma: no cover - same never-raise contract
        pass


atexit.register(shutdown_executors)
