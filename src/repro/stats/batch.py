"""Vectorized batch counterparts of the exact binomial machinery.

:mod:`repro.stats.binomial` keeps a scalar interface — one ``(k, n, p)``
triple at a time, full float64 precision via ``math.lgamma``.  The
planning hot path, however, is intrinsically batched: the §4.3 tight
bound scans hundreds of candidate means ``p`` per refinement pass, for a
dozen bisection probes over ``n``, per clause, per plan.  This module
provides NumPy-native kernels for exactly those shapes:

* :func:`binom_logpmf_vec` / :func:`binom_pmf_vec` /
  :func:`binom_cdf_vec` / :func:`binom_sf_vec` — broadcasting versions of
  the scalar functions, sharing one process-wide log-factorial table (an
  ``lgamma`` table built with ``math.lgamma`` so the log-pmf values are
  bit-identical to the scalar path);
* :func:`exact_coverage_failure_probability_vec` — the tight-bound inner
  loop, evaluating ``Pr[|Binomial(n,p)/n - p| > eps]`` for an entire grid
  of ``p`` in one shot.  Each tail is summed over a window of
  ``O(sqrt(n))`` terms around its cutoff (the probability mass outside
  the window is below ~1.5e-14, far under the 1e-10 agreement the tests
  enforce; see ``_WINDOW_SIGMAS``), so a full grid scan costs one small
  matrix of ``exp`` calls instead of thousands of Python-level loops;
* :func:`exact_coverage_failure_probability_pairs` — the heterogeneous
  counterpart: element-wise ``(n, p, epsilon)`` triples, so a *vector of
  probes with different testset sizes* — the epsilon-side planning
  workload — evaluates in a single kernel dispatch.  The per-``n`` padded
  log-binomial rows are concatenated into one array and every tail window
  gathers from it, whatever its ``n``;
* vectorized exact-confidence counterparts:
  :func:`binomial_tail_inversion_upper_vec` /
  :func:`binomial_tail_inversion_lower_vec` /
  :func:`clopper_pearson_interval_vec` (element-wise bisections run in
  lockstep across the whole batch).

Every kernel is cross-checked against the scalar implementation in
``tests/stats/test_batch.py`` (agreement to ``<= 1e-10`` including the
``p in {0, 1}`` and ``k in {0, n}`` boundaries).

These are the *planning-side* kernels (sizing testsets, sweeping
epsilons); the *serving-side* batching — evaluating many committed models
against one baseline — lives in
:class:`repro.stats.estimation.PairedSampleBatch` and
:meth:`repro.core.evaluation.ConditionEvaluator.evaluate_batch`.  The
process-wide state this module keeps (the log-factorial table, the
pairs-kernel segment layout) self-registers in :mod:`repro.stats.cache`,
so :func:`repro.stats.cache.clear_all_caches` covers it.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from typing import Mapping

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.reliability.faults import InjectedFault, fault_point
from repro.stats.cache import register_cache, register_manifest_codec
from repro.utils.validation import check_positive, check_positive_int

__all__ = [
    "log_factorial_table",
    "publish_shared_table",
    "attach_shared_table",
    "release_shared_table",
    "shared_table_descriptor",
    "binom_logpmf_vec",
    "binom_pmf_vec",
    "binom_cdf_vec",
    "binom_sf_vec",
    "exact_coverage_failure_probability_vec",
    "exact_coverage_failure_probability_pairs",
    "binomial_tail_inversion_upper_vec",
    "binomial_tail_inversion_lower_vec",
    "clopper_pearson_interval_vec",
]

# How many rows x columns a pmf work matrix may hold before we chunk.
_MAX_MATRIX_CELLS = 4_000_000

# Accumulation tiers of the pairs kernel.  "float64" is the bit-exact
# default; "float32" halves the bytes the bandwidth-bound hot loop moves
# and carries a derived error bound (see _float32_row_bounds) — its
# consumers certify adopted results against the float64 reference.
_PRECISIONS = ("float64", "float32")

# Inner-loop implementations of the pairs kernel.  "fused" (default)
# streams gather + affine + exp + reduce over L2-sized blocks;
# "reference" materializes the full (rows, window) intermediate per
# chunk (the pre-fusion baseline, kept as the benchmark yardstick and
# oracle); "jit" dispatches to the optional Numba kernel.
_PAIRS_IMPLS = ("fused", "reference", "jit")

# Cache-block sizes (in cells) of the fused loops: the float64 work
# buffer plus its int64 index block stay within a typical L2 slice, and
# the float32 tier doubles the cells per block at the same byte budget.
_FUSED_BLOCK_CELLS = 1 << 15
_FUSED_BLOCK_CELLS_32 = 1 << 16

# float32 machine epsilon, the unit of the derived error bound.
_F32_EPS = float(np.finfo(np.float32).eps)

# Tail windows reach 8 standard deviations past the mean plus slack; by
# Bernstein the binomial mass beyond that is < 1.5e-14 for every n (the
# exponent tends to -(8 sigma)^2 / 2 sigma^2 = -32 from below), invisible
# at the 1e-10 tolerance the batch kernels promise.
_WINDOW_SIGMAS = 8.0
_WINDOW_SLACK = 40

# Log-pmf value planted in the padding cells outside [0, n]; exp() of it is
# exactly 0.0, so padded window positions never contribute to a tail sum.
_LOG_ZERO = -1e30


# ---------------------------------------------------------------------------
# Shared log-factorial table
# ---------------------------------------------------------------------------

_TABLE_LOCK = threading.Lock()
_LOG_FACTORIAL = np.zeros(1, dtype=np.float64)  # entry m holds lgamma(m + 1)

# Real serve/grow counters for the table (the hottest shared structure in
# the process): a "hit" is a call the existing table already covered, a
# "miss" is a call that had to grow it.  Surfaced by ``repro ops``.
_TABLE_STATS = {"hits": 0, "misses": 0}

# The shared-memory table segment this process owns or is attached to.
# ``owner`` processes hold a private _LOG_FACTORIAL and publish a copy;
# attached workers install the read-only shared mapping as their table
# (and "extend" past it with a private copy if they ever need more).
_SHARED_TABLE: dict = {"shm": None, "name": None, "owner": False, "limit": -1}


def log_factorial_table(limit: int) -> np.ndarray:
    """``lgamma(m + 1)`` for ``m = 0 .. limit`` as one shared array.

    Grown geometrically and never shrunk (except via
    :func:`repro.stats.cache.clear_all_caches`, which resets it).  Entries
    are produced by ``math.lgamma`` so that batch log-pmf values match the
    scalar implementation bit for bit.
    """
    global _LOG_FACTORIAL
    limit = check_positive_int(limit + 1, "limit") - 1  # allow limit = 0
    table = _LOG_FACTORIAL
    if len(table) <= limit:
        with _TABLE_LOCK:
            table = _LOG_FACTORIAL
            if len(table) <= limit:
                _TABLE_STATS["misses"] += 1
                new_size = max(limit + 1, 2 * len(table))
                grown = np.empty(new_size, dtype=np.float64)
                grown[: len(table)] = table
                for m in range(len(table), new_size):
                    grown[m] = math.lgamma(m + 1.0)
                _LOG_FACTORIAL = table = grown
            else:
                _TABLE_STATS["hits"] += 1
    else:
        _TABLE_STATS["hits"] += 1
    return table


def _ensure_table(limit: int) -> None:
    """Grow the table to cover ``limit`` without touching hit/miss stats.

    The manifest merge path uses this instead of
    :func:`log_factorial_table`: a join of two processes' coverage is not
    a lookup, and counting it would break merge idempotence (merging your
    own export must leave every observable counter unchanged).
    """
    global _LOG_FACTORIAL
    if len(_LOG_FACTORIAL) <= limit:
        with _TABLE_LOCK:
            table = _LOG_FACTORIAL
            if len(table) <= limit:
                new_size = max(limit + 1, 2 * len(table))
                grown = np.empty(new_size, dtype=np.float64)
                grown[: len(table)] = table
                for m in range(len(table), new_size):
                    grown[m] = math.lgamma(m + 1.0)
                _LOG_FACTORIAL = grown


def publish_shared_table() -> tuple[str | None, int]:
    """Copy the current table into a shared-memory segment; return its name.

    The owning process keeps its private table and publishes a read-only
    copy workers can attach instead of materializing their own.  Repeated
    calls reuse the existing segment while it still covers the table
    (recreating it only after growth); the segment is unlinked by
    :func:`release_shared_table` (wired into ``shutdown_executors``).
    Returns ``(name, limit)`` — ``(None, -1)`` when the table is too small
    to be worth publishing.
    """
    from multiprocessing import shared_memory

    with _TABLE_LOCK:
        table = _LOG_FACTORIAL
        limit = len(table) - 1
        if limit < 1:
            return _SHARED_TABLE["name"], _SHARED_TABLE["limit"]
        if (
            _SHARED_TABLE["owner"]
            and _SHARED_TABLE["shm"] is not None
            and _SHARED_TABLE["limit"] >= limit
        ):
            return _SHARED_TABLE["name"], _SHARED_TABLE["limit"]
        old = _SHARED_TABLE["shm"] if _SHARED_TABLE["owner"] else None
        shm = shared_memory.SharedMemory(create=True, size=table.nbytes)
        np.ndarray(table.shape, dtype=np.float64, buffer=shm.buf)[:] = table
        _SHARED_TABLE.update(
            {"shm": shm, "name": shm.name, "owner": True, "limit": limit}
        )
    if old is not None:
        # A stale, smaller segment: unlink now — workers already attached
        # keep their mapping alive until they close it.
        try:
            old.close()
            old.unlink()
        except OSError:  # pragma: no cover - platform-specific teardown
            pass
    return _SHARED_TABLE["name"], _SHARED_TABLE["limit"]


def attach_shared_table(name: str, limit: int) -> bool:
    """Attach a published log-factorial segment as this process's table.

    Worker-side counterpart of :func:`publish_shared_table`, traversing
    the ``shm.attach`` fault-injection point so the chaos suite can fail
    the attachment deterministically.  The mapping is installed read-only;
    the first two and last entries are spot-checked against ``math.lgamma``
    (shared state is adopted certified, not trusted).  Returns ``False``
    without side effects when the local table already covers ``limit``.
    Raises ``OSError``/``FileNotFoundError``/:class:`InjectedFault` on
    attachment failure — callers fall back to a private regrow.
    """
    global _LOG_FACTORIAL
    from multiprocessing import shared_memory

    limit = int(limit)
    if limit < 1:
        return False
    fault_point("shm.attach")
    with _TABLE_LOCK:
        if len(_LOG_FACTORIAL) - 1 >= limit:
            return False
        shm = shared_memory.SharedMemory(name=name)
        try:
            # Python's resource tracker would unlink the segment when any
            # attaching process exits; only the owner may unlink.
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
        except Exception:  # pragma: no cover - tracker internals shifted
            pass
        table = np.ndarray((limit + 1,), dtype=np.float64, buffer=shm.buf)
        if (
            table[0] != 0.0
            or table[1] != 0.0
            or table[limit] != math.lgamma(limit + 1.0)
        ):
            shm.close()
            raise OSError(f"shared table {name!r} failed the lgamma spot-check")
        table.flags.writeable = False
        _release_attachment_locked()
        _SHARED_TABLE.update({"shm": shm, "name": name, "owner": False, "limit": limit})
        _LOG_FACTORIAL = table
    return True


def _release_attachment_locked() -> None:
    """Drop this process's segment (close; unlink when owner).  Lock held."""
    global _LOG_FACTORIAL
    shm = _SHARED_TABLE["shm"]
    if shm is None:
        return
    if not _SHARED_TABLE["owner"] and _LOG_FACTORIAL.base is not None:
        # The active table may be backed by the mapping — privatize first.
        _LOG_FACTORIAL = np.array(_LOG_FACTORIAL, dtype=np.float64)
    try:
        shm.close()
        if _SHARED_TABLE["owner"]:
            shm.unlink()
    except (OSError, BufferError):  # pragma: no cover - teardown race
        pass
    _SHARED_TABLE.update({"shm": None, "name": None, "owner": False, "limit": -1})


def release_shared_table() -> None:
    """Close (and, when owner, unlink) the shared table segment."""
    with _TABLE_LOCK:
        _release_attachment_locked()


def shared_table_descriptor() -> tuple[str | None, int]:
    """``(segment name, covered limit)`` of the active segment, if any."""
    with _TABLE_LOCK:
        return _SHARED_TABLE["name"], _SHARED_TABLE["limit"]


class _TableResetProxy:
    """Adapter letting the registry clear the log-factorial table."""

    maxsize = 1

    def clear(self) -> None:
        global _LOG_FACTORIAL
        with _TABLE_LOCK:
            _release_attachment_locked()
            _LOG_FACTORIAL = np.zeros(1, dtype=np.float64)
            _LOG_COMB_CACHE.clear()
            _TABLE_STATS["hits"] = 0
            _TABLE_STATS["misses"] = 0

    def info(self):
        from repro.stats.cache import CacheInfo

        with _TABLE_LOCK:
            return CacheInfo(
                hits=_TABLE_STATS["hits"],
                misses=_TABLE_STATS["misses"],
                maxsize=1,
                currsize=len(_LOG_FACTORIAL),
            )


register_cache("stats.batch.log_factorial_table", _TableResetProxy())  # type: ignore[arg-type]


_LOG_COMB_CACHE: OrderedDict[int, np.ndarray] = OrderedDict()
_LOG_COMB_CACHE_SIZE = 48


def _log_comb_row(n: int) -> np.ndarray:
    """``log C(n, k)`` for ``k = 0 .. n`` (cached for the last few ``n``)."""
    with _TABLE_LOCK:
        row = _LOG_COMB_CACHE.get(n)
        if row is not None:
            _LOG_COMB_CACHE.move_to_end(n)
            return row
    table = log_factorial_table(n)
    row = table[n] - table[: n + 1] - table[n::-1]
    with _TABLE_LOCK:
        _LOG_COMB_CACHE[n] = row
        while len(_LOG_COMB_CACHE) > _LOG_COMB_CACHE_SIZE:
            _LOG_COMB_CACHE.popitem(last=False)
    return row


# ---------------------------------------------------------------------------
# Validation / broadcasting helpers
# ---------------------------------------------------------------------------

def _broadcast_knp(k, n, p) -> tuple[np.ndarray, np.ndarray, np.ndarray, tuple]:
    k = np.asarray(k)
    n = np.asarray(n)
    p = np.asarray(p, dtype=np.float64)
    if not np.issubdtype(k.dtype, np.integer):
        kf = np.asarray(k, dtype=np.float64)
        if not np.all(kf == np.floor(kf)):
            raise InvalidParameterError("k must contain integers")
        k = kf.astype(np.int64)
    if not np.issubdtype(n.dtype, np.integer):
        nf = np.asarray(n, dtype=np.float64)
        if not np.all(nf == np.floor(nf)):
            raise InvalidParameterError("n must contain integers")
        n = nf.astype(np.int64)
    k, n, p = np.broadcast_arrays(k, n, p)
    shape = k.shape
    k = np.atleast_1d(k).astype(np.int64).ravel()
    n = np.atleast_1d(n).astype(np.int64).ravel()
    p = np.atleast_1d(p).ravel()
    if np.any(n < 1):
        raise InvalidParameterError("n must contain positive integers")
    if np.any((k < 0) | (k > n)):
        raise InvalidParameterError("k must satisfy 0 <= k <= n")
    if np.any((p < 0.0) | (p > 1.0)) or not np.all(np.isfinite(p)):
        raise InvalidParameterError("p must lie in [0, 1]")
    return k, n, p, shape


def _restore(values: np.ndarray, shape: tuple):
    values = values.reshape(shape)
    if shape == ():
        return float(values)
    return values


# ---------------------------------------------------------------------------
# Elementwise pmf
# ---------------------------------------------------------------------------

def binom_logpmf_vec(k, n, p):
    """Vectorized ``log Pr[Binomial(n, p) = k]`` (broadcasts its arguments).

    Matches :func:`repro.stats.binomial.binom_logpmf` bit for bit on the
    interior and returns ``-inf`` for impossible boundary outcomes.
    """
    k, n, p, shape = _broadcast_knp(k, n, p)
    table = log_factorial_table(int(n.max()) if n.size else 0)
    out = np.full(k.shape, -np.inf, dtype=np.float64)
    interior = (p > 0.0) & (p < 1.0)
    if np.any(interior):
        ki, ni, pi = k[interior], n[interior], p[interior]
        log_comb = table[ni] - table[ki] - table[ni - ki]
        out[interior] = log_comb + ki * np.log(pi) + (ni - ki) * np.log1p(-pi)
    out[(p == 0.0) & (k == 0)] = 0.0
    out[(p == 1.0) & (k == n)] = 0.0
    return _restore(out, shape)


def binom_pmf_vec(k, n, p):
    """Vectorized ``Pr[Binomial(n, p) = k]``."""
    lp = np.asarray(binom_logpmf_vec(k, n, p))
    out = np.where(np.isneginf(lp), 0.0, np.exp(lp))
    return _restore(out, np.shape(lp))


# ---------------------------------------------------------------------------
# CDF / SF over batches
# ---------------------------------------------------------------------------

def _tail_sums_fixed_n(n: int, k: np.ndarray, p: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Lower (``sum_{0..k}``) and upper (``sum_{k+1..n}``) pmf sums.

    ``p`` must be interior (0 < p < 1).  Each tail is summed directly over
    its own terms (not via ``1 - other``), preserving relative precision
    for tiny tails; rows are chunked so the work matrix stays small.
    """
    log_comb = _log_comb_row(n)
    lower = np.empty(p.shape, dtype=np.float64)
    upper = np.empty(p.shape, dtype=np.float64)
    chunk = max(1, _MAX_MATRIX_CELLS // (n + 1))
    ks = np.arange(n + 1, dtype=np.float64)
    for start in range(0, len(p), chunk):
        sl = slice(start, start + chunk)
        pc, kc = p[sl], k[sl]
        logpmf = (
            log_comb[None, :]
            + ks[None, :] * np.log(pc)[:, None]
            + (n - ks)[None, :] * np.log1p(-pc)[:, None]
        )
        pmf = np.exp(logpmf)
        prefix = np.cumsum(pmf, axis=1)
        suffix = np.cumsum(pmf[:, ::-1], axis=1)[:, ::-1]
        rows = np.arange(len(pc))
        lower[sl] = prefix[rows, kc]
        upper[sl] = np.where(kc < n, suffix[rows, np.minimum(kc + 1, n)], 0.0)
    return lower, upper


def binom_cdf_vec(k, n, p):
    """Vectorized ``Pr[Binomial(n, p) <= k]`` (broadcasts its arguments).

    Mirrors the scalar branch selection: the smaller tail is summed
    directly and the larger obtained by complement, keeping agreement with
    :func:`repro.stats.binomial.binom_cdf` to ``<= 1e-10``.  Designed for
    the moderate ``n`` of planning workloads (work is chunked at a few
    million pmf terms per slab).
    """
    k, n, p, shape = _broadcast_knp(k, n, p)
    out = np.empty(k.shape, dtype=np.float64)
    out[p == 0.0] = 1.0
    out[p == 1.0] = np.where(k[p == 1.0] == n[p == 1.0], 1.0, 0.0)
    interior = (p > 0.0) & (p < 1.0)
    for nv in np.unique(n[interior]) if np.any(interior) else ():
        sel = interior & (n == nv)
        ki, pi = k[sel], p[sel]
        lower, upper = _tail_sums_fixed_n(int(nv), ki, pi)
        mean = nv * pi
        vals = np.where(ki >= mean, np.maximum(0.0, 1.0 - upper), np.minimum(1.0, lower))
        vals = np.where(ki == nv, 1.0, vals)
        out[sel] = vals
    return _restore(np.clip(out, 0.0, 1.0), shape)


def binom_sf_vec(k, n, p):
    """Vectorized survival function ``Pr[Binomial(n, p) > k]``."""
    k, n, p, shape = _broadcast_knp(k, n, p)
    out = np.empty(k.shape, dtype=np.float64)
    out[p == 0.0] = 0.0
    out[p == 1.0] = np.where(k[p == 1.0] == n[p == 1.0], 0.0, 1.0)
    interior = (p > 0.0) & (p < 1.0)
    for nv in np.unique(n[interior]) if np.any(interior) else ():
        sel = interior & (n == nv)
        ki, pi = k[sel], p[sel]
        lower, upper = _tail_sums_fixed_n(int(nv), ki, pi)
        mean = nv * pi
        vals = np.where(ki + 1 <= mean, np.maximum(0.0, 1.0 - lower), np.minimum(1.0, upper))
        vals = np.where(ki == nv, 0.0, vals)
        out[sel] = vals
    return _restore(np.clip(out, 0.0, 1.0), shape)


# ---------------------------------------------------------------------------
# The tight-bound inner loop
# ---------------------------------------------------------------------------

def exact_coverage_failure_probability_vec(n: int, p_grid, epsilon: float) -> np.ndarray:
    """Exact ``Pr[|Binomial(n, p)/n - p| > epsilon]`` for a vector of ``p``.

    The batch counterpart of
    :func:`repro.stats.tight_bounds.exact_coverage_failure_probability`,
    evaluating an entire worst-case-``p`` grid in one shot.  Cutoffs use
    the same guarded arithmetic as the scalar code.

    Each tail is summed over a window of terms adjacent to its cutoff.
    The window is sized so it reaches at least ``_WINDOW_SIGMAS`` standard
    deviations (plus slack) past the mean on the tail's side, where the
    remaining binomial mass is below ~1.5e-14 by Bernstein — far under
    the 1e-10 agreement the tests enforce.  The per-term log-pmf
    separates as
    ``log C(n,k) + k*logit(p) + n*log(1-p)``, so one shared
    ``log C(n, .)`` row, a sliding-window gather, and one rank-1 update
    produce the whole ``(grid, window)`` matrix with no per-element Python
    work; positions outside ``[0, n]`` hit padding cells whose ``exp`` is
    exactly zero.
    """
    n = check_positive_int(n, "n")
    check_positive(epsilon, "epsilon")
    p = np.atleast_1d(np.asarray(p_grid, dtype=np.float64))
    if np.any((p < 0.0) | (p > 1.0)) or not np.all(np.isfinite(p)):
        raise InvalidParameterError("p_grid must lie in [0, 1]")
    out = np.zeros(p.shape, dtype=np.float64)
    interior = (p > 0.0) & (p < 1.0)
    if not np.any(interior):
        return out
    pi = p[interior]
    # Identical cutoff arithmetic to the scalar implementation.
    lo_cut = (np.ceil(n * (pi - epsilon) - 1e-12) - 1).astype(np.int64)
    hi_cut = (np.floor(n * (pi + epsilon) + 1e-12) + 1).astype(np.int64)
    logp = np.log(pi)
    log1mp = np.log1p(-pi)
    logit = logp - log1mp

    # Window length: the cut sits ~ epsilon*n draws from the mean already,
    # so the window only needs to cover the remaining distance out to
    # 11 sigma + slack (and never more than the full support).
    sigma_max = math.sqrt(n * float(np.max(pi * (1.0 - pi))))
    depth = int(math.ceil(_WINDOW_SIGMAS * sigma_max)) + _WINDOW_SLACK
    length = int(min(n + 1, max(_WINDOW_SLACK, depth - math.floor(epsilon * n) + 2)))

    # Pad generously: lower windows can start near -(epsilon*n + length),
    # upper windows can end near n + epsilon*n + length.
    pad = length + int(math.ceil(epsilon * n)) + 2
    log_comb = _log_comb_row(n)
    padded = np.full(n + 1 + 2 * pad, _LOG_ZERO)
    padded[pad : pad + n + 1] = log_comb
    windows = np.lib.stride_tricks.sliding_window_view(padded, length)

    # Row layout: the lower tails (windows ending at lo_cut), then the
    # upper tails (windows starting at hi_cut).
    starts = np.concatenate([lo_cut - (length - 1), hi_cut])
    logit2 = np.concatenate([logit, logit])
    const = logit2 * starts + n * np.concatenate([log1mp, log1mp])
    # The pad is sized so every start index lands inside `windows`.
    work = windows[starts + pad]  # fresh (rows, length) copy — safe to mutate
    work += logit2[:, None] * np.arange(length)[None, :]
    work += const[:, None]
    np.exp(work, out=work)
    sums = work @ np.ones(length)  # BLAS row sums
    m = len(pi)
    out[interior] = np.minimum(1.0, sums[:m] + sums[m:])
    return out


_PAIRS_LAYOUT_CACHE: OrderedDict[tuple, tuple] = OrderedDict()
_PAIRS_LAYOUT_CACHE_SIZE = 8
_PAIRS_LAYOUT_STATS = {"hits": 0, "misses": 0}


class _PairsLayoutProxy:
    """Adapter letting the registry clear the pairs-kernel layout cache."""

    maxsize = _PAIRS_LAYOUT_CACHE_SIZE

    def clear(self) -> None:
        with _TABLE_LOCK:
            _PAIRS_LAYOUT_CACHE.clear()
            _PAIRS_LAYOUT_STATS["hits"] = 0
            _PAIRS_LAYOUT_STATS["misses"] = 0

    def info(self):
        from repro.stats.cache import CacheInfo

        with _TABLE_LOCK:
            return CacheInfo(
                hits=_PAIRS_LAYOUT_STATS["hits"],
                misses=_PAIRS_LAYOUT_STATS["misses"],
                maxsize=self.maxsize,
                currsize=len(_PAIRS_LAYOUT_CACHE),
            )


register_cache("stats.batch.pairs_layout", _PairsLayoutProxy())  # type: ignore[arg-type]


def _pairs_layout(unique_ns: tuple, pad: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Concatenated padded log-comb segments for a set of ``n`` (cached).

    Keys are ``(tuple_of_python_ints, int)`` — plain picklable scalars —
    so layout entries travel inside cross-process cache manifests.  Each
    entry is ``(concat, seg_bases, concat32)``: the float32 copy rides
    along so the float32 accumulation tier gathers at half the bytes
    without a per-dispatch cast.
    """
    key = (unique_ns, pad)
    with _TABLE_LOCK:
        entry = _PAIRS_LAYOUT_CACHE.get(key)
        if entry is not None:
            _PAIRS_LAYOUT_CACHE.move_to_end(key)
            _PAIRS_LAYOUT_STATS["hits"] += 1
            return entry
        _PAIRS_LAYOUT_STATS["misses"] += 1
    ns_arr = np.asarray(unique_ns, dtype=np.int64)
    seg_sizes = ns_arr + 1 + 2 * pad
    seg_offsets = np.concatenate([[0], np.cumsum(seg_sizes)[:-1]])
    seg_bases = seg_offsets + pad
    concat = np.full(int(seg_sizes.sum()), _LOG_ZERO)
    for g, nv in enumerate(unique_ns):
        base = int(seg_bases[g])
        concat[base : base + nv + 1] = _log_comb_row(nv)
    concat.flags.writeable = False
    concat32 = concat.astype(np.float32)
    concat32.flags.writeable = False
    with _TABLE_LOCK:
        _PAIRS_LAYOUT_CACHE[key] = (concat, seg_bases, concat32)
        while len(_PAIRS_LAYOUT_CACHE) > _PAIRS_LAYOUT_CACHE_SIZE:
            _PAIRS_LAYOUT_CACHE.popitem(last=False)
    return concat, seg_bases, concat32


def _export_pairs_layout() -> list[tuple[tuple, tuple[np.ndarray, np.ndarray]]]:
    """Manifest codec export: the layout entries, LRU order.

    Only ``(concat, seg_bases)`` ships — the float32 copy is recomputed
    on merge, halving the manifest payload.
    """
    with _TABLE_LOCK:
        return [
            (key, (concat, seg_bases))
            for key, (concat, seg_bases, _) in _PAIRS_LAYOUT_CACHE.items()
        ]


def _merge_pairs_layout(entries) -> None:
    """Manifest codec merge: adopt layouts absent locally.

    Layout values are pure functions of their ``(ns, pad)`` key (the
    log-comb rows underneath are bit-deterministic), so adopt-if-absent
    is idempotent and commutative — an entry present on both sides is
    already identical.
    """
    for key, value in entries:
        concat, seg_bases = value[0], value[1]
        key = (tuple(int(n) for n in key[0]), int(key[1]))
        concat = np.asarray(concat, dtype=np.float64)
        if concat.flags.writeable:
            concat.flags.writeable = False
        seg_bases = np.asarray(seg_bases, dtype=np.int64)
        concat32 = concat.astype(np.float32)
        concat32.flags.writeable = False
        with _TABLE_LOCK:
            if key not in _PAIRS_LAYOUT_CACHE:
                _PAIRS_LAYOUT_CACHE[key] = (concat, seg_bases, concat32)
                while len(_PAIRS_LAYOUT_CACHE) > _PAIRS_LAYOUT_CACHE_SIZE:
                    _PAIRS_LAYOUT_CACHE.popitem(last=False)


def _export_log_factorial():
    """Manifest codec export: the table's coverage, plus the shared segment.

    A bare int (the highest ``m`` covered) when no shared segment is
    published; otherwise a mapping also naming the segment so workers can
    attach the one mmap instead of materializing a private copy.
    """
    limit = len(_LOG_FACTORIAL) - 1
    name, shm_limit = shared_table_descriptor()
    if name is None:
        return limit
    return {"limit": limit, "shm": name, "shm_limit": shm_limit}


def _merge_log_factorial(payload) -> None:
    """Manifest codec merge: cover the manifest's limit — attach, then extend.

    The table contents are a pure function of the limit (``math.lgamma``
    is deterministic), so growing to the max of both sides is the join.
    When the manifest names a shared segment, the merge attaches it
    (through the ``shm.attach`` fault point) and only *extends* privately
    past the shared prefix; any attachment failure — injected, a dead
    segment, a torn-down owner — falls back to the plain private regrow,
    so the join's result is identical on every path.
    """
    shm_name, shm_limit = None, -1
    if isinstance(payload, Mapping):
        limit = int(payload.get("limit", -1))
        shm_name = payload.get("shm")
        shm_limit = int(payload.get("shm_limit", -1))
    else:
        limit = int(payload)
    if shm_name and shm_limit > 0:
        try:
            attach_shared_table(shm_name, shm_limit)
        except (InjectedFault, OSError, ValueError):
            pass  # fall back to the private regrow below
    if limit > 0:
        _ensure_table(limit)


register_manifest_codec(
    "stats.batch.pairs_layout", _export_pairs_layout, _merge_pairs_layout
)
register_manifest_codec(
    "stats.batch.log_factorial_table", _export_log_factorial, _merge_log_factorial
)


def _fused_window_sums(
    src: np.ndarray,
    starts: np.ndarray,
    logit: np.ndarray,
    const: np.ndarray,
    width: int,
    sums: np.ndarray,
    rows_index: np.ndarray,
) -> None:
    """Cache-blocked gather + affine + exp + reduce for one width bucket.

    Streams ``len(starts)`` windows of ``width`` cells from ``src`` in
    blocks sized to stay inside a typical L2 slice, so each block's work
    matrix is touched while hot instead of materializing the full
    ``(rows, width)`` intermediate.  A window is ``width`` *consecutive*
    cells of ``src``, so the gather is a per-row contiguous slice copy —
    no index matrix (whose int64 cells would cost more traffic than the
    float32 payload itself).  Element arithmetic and the per-row
    fixed-order reduction are identical to the reference loop, so the
    float64 tier is bit-identical to it; the float32 tier (``src`` of
    dtype float32) performs the same operations at half the bytes.
    """
    dtype = src.dtype
    cells = _FUSED_BLOCK_CELLS_32 if dtype == np.float32 else _FUSED_BLOCK_CELLS
    block = max(1, cells // width)
    offs_f = np.arange(width, dtype=dtype)
    logit = logit.astype(dtype, copy=False)
    const = const.astype(dtype, copy=False)
    work = np.empty((block, width), dtype=dtype)
    temp = np.empty((block, width), dtype=dtype)
    for begin in range(0, len(starts), block):
        rows = min(block, len(starts) - begin)
        sl = slice(begin, begin + rows)
        for r in range(rows):
            start = starts[begin + r]
            work[r, :] = src[start : start + width]
        view = work[:rows]
        np.multiply(logit[sl, None], offs_f[None, :], out=temp[:rows])
        view += temp[:rows]
        view += const[sl, None]
        np.exp(view, out=view)
        # Per-row pairwise reduction (not a BLAS matvec): the summation
        # order depends only on the row width, keeping each element's
        # value batch-composition invariant in every tier.
        sums[rows_index[sl]] = np.add.reduce(view, axis=1)


def _float32_row_bounds(
    nf: np.ndarray,
    logit: np.ndarray,
    const: np.ndarray,
    first_k: np.ndarray,
    width: int,
) -> np.ndarray:
    """Derived *relative* error bound of the float32 tier's window sums.

    Every term of a window sum is ``exp(a)`` with
    ``a = logC(n,k) + k*logit(p) + n*log1p(-p)`` assembled from float32
    operands.  ``|logC(n,k)| <= n*ln 2``, ``|k| <= |first_k| + width``
    within the window, and each of the four float32 operations loses at
    most one ulp of the running magnitude, so the argument error is below
    ``c * eps32 * A`` with ``A`` the bound on the intermediate
    magnitudes.  Through ``exp`` that is a per-term *relative* error of
    ``expm1(c * eps32 * A)`` (padding cells are exactly zero in both
    tiers and contribute none), and the fixed-order pairwise reduction
    over ``width`` non-negative terms adds at most
    ``log2(width) + 2`` ulps of relative error.  The constants below are
    deliberately generous (c = 8); the caller converts this relative
    bound to the absolute per-row bound that the seeded property suite
    asserts (relative alone cannot cover float32 ``exp`` underflow, which
    flushes tail terms below ~1e-45 to exact zero).
    """
    magnitude = (
        math.log(2.0) * nf
        + np.abs(logit) * (np.abs(first_k).astype(np.float64) + width)
        + np.abs(const)
    )
    return np.expm1(
        8.0 * _F32_EPS * magnitude + _F32_EPS * (math.log2(width) + 2.0)
    )


def _float32_abs_bounds(rel: np.ndarray, row_sums: np.ndarray, width: int):
    """Absolute per-row bound ``|sum32 - sum64| <= bound`` from ``rel``.

    ``|sum32 - sum64| <= rel * sum64`` rearranges to
    ``rel / (1 - rel) * sum32`` when ``rel < 1/2``; on top of that, every
    window cell whose true term lies below the smallest float32 subnormal
    flushes to exact zero, losing at most ``2**-149`` per cell — covered
    (with orders-of-magnitude slack for subnormal rounding) by the
    additive ``width * 2**-140`` term.  Rows whose relative bound is too
    large to invert fall back to the vacuous-but-sound bound 1.0: both
    tiers produce tail sums whose element values are clamped into
    ``[0, 1]``, so 1.0 always dominates the true deviation.
    """
    safe = rel < 0.5
    inv = rel / (1.0 - np.minimum(rel, 0.5))
    return np.where(safe, inv * row_sums + width * 2.0**-140, 1.0)


def exact_coverage_failure_probability_pairs(
    ns,
    p_values,
    epsilons,
    *,
    window_sigmas: float | None = None,
    window_slack: int | None = None,
    precision: str = "float64",
    impl: str | None = None,
    return_error_bound: bool = False,
):
    """Element-wise exact ``Pr[|Binomial(n_i, p_i)/n_i - p_i| > eps_i]``.

    The heterogeneous counterpart of
    :func:`exact_coverage_failure_probability_vec`: every element carries
    its own ``(n, p, epsilon)`` triple, so a whole vector of planning
    probes — e.g. one bisection midpoint per testset size — costs one
    kernel dispatch regardless of how many distinct ``n`` appear.

    The padded ``log C(n, .)`` rows of every distinct ``n`` are laid out
    in one concatenated array; each element's two tail windows gather from
    its segment at a width quantized onto an absolute power-of-two ladder
    (extra positions beyond the natural depth either fall on padding
    cells whose ``exp`` is exactly zero or pick up real-but-negligible
    terms deeper in the tail, which only *improves* accuracy).  Because
    the ladder is absolute — anchored at ``2 * slack``, never at the
    batch maximum — an element's value is a pure function of its own
    ``(n, p, epsilon, sigmas, slack)``: **bit-identical however the
    surrounding batch is composed**, which is what lets the parallel
    planning executor shard sweeps across processes without perturbing a
    single probe.  Default precision matches the vec kernel: windows
    reach at least ``_WINDOW_SIGMAS`` standard deviations past the mean,
    bounding the omitted mass below ~1.5e-14.

    ``window_sigmas`` / ``window_slack`` trade accuracy for speed: the
    omitted tail mass is below ``~exp(-window_sigmas**2 / 2)``, and the
    truncation only ever *under*-estimates the failure probability — a
    one-sided error the epsilon-side probe machinery relies on (a
    truncated-window exceedance certificate is sound for the full-window
    value).

    ``precision`` selects the accumulation tier: ``"float64"`` (default,
    bit-identical to every release so far) or ``"float32"`` — the window
    gathers, affine updates, ``exp`` and row reductions run at half the
    bytes, and a derived per-element *absolute* error bound
    ``|value32 - value64| <= bound`` is computed alongside (returned when
    ``return_error_bound`` is true as ``(values, bounds)``).  Consumers of the float32 tier certify adopted
    results against the float64 reference; the bound is what the seeded
    property suite asserts.  ``impl`` selects the inner loop: ``"fused"``
    (default — cache-blocked, fused gather/exp/reduce), ``"reference"``
    (the pre-fusion float64 baseline, kept as the benchmark yardstick and
    oracle) or ``"jit"`` (the optional Numba kernel; requires numba and
    ``precision="float64"``).  Every tier and impl preserves
    batch-composition invariance — an element's value is a pure function
    of its own ``(n, p, epsilon, sigmas, slack, precision, impl)``.
    """
    if precision not in _PRECISIONS:
        raise InvalidParameterError(
            f"precision must be one of {_PRECISIONS}, got {precision!r}"
        )
    impl = "fused" if impl is None else impl
    if impl not in _PAIRS_IMPLS:
        raise InvalidParameterError(
            f"impl must be one of {_PAIRS_IMPLS}, got {impl!r}"
        )
    if impl != "fused" and precision != "float64":
        raise InvalidParameterError(
            f"impl={impl!r} supports only precision='float64'"
        )
    float32 = precision == "float32"
    ns = np.atleast_1d(np.asarray(ns))
    p = np.atleast_1d(np.asarray(p_values, dtype=np.float64))
    eps = np.atleast_1d(np.asarray(epsilons, dtype=np.float64))
    sigmas = _WINDOW_SIGMAS if window_sigmas is None else float(window_sigmas)
    slack = _WINDOW_SLACK if window_slack is None else int(window_slack)
    if sigmas <= 0 or slack < 1:
        raise InvalidParameterError("window_sigmas and window_slack must be positive")
    ns, p, eps = np.broadcast_arrays(ns, p, eps)
    ns = ns.astype(np.int64)
    if ns.size == 0:
        empty = np.zeros(0, dtype=np.float64)
        return (empty, empty.copy()) if return_error_bound else empty
    if np.any(ns < 1):
        raise InvalidParameterError("n must contain positive integers")
    if np.any(eps <= 0.0) or not np.all(np.isfinite(eps)):
        raise InvalidParameterError("epsilon must contain positive finite values")
    if np.any((p < 0.0) | (p > 1.0)) or not np.all(np.isfinite(p)):
        raise InvalidParameterError("p must lie in [0, 1]")
    out = np.zeros(p.shape, dtype=np.float64)
    bounds = np.zeros(p.shape, dtype=np.float64)
    interior = (p > 0.0) & (p < 1.0)
    if not np.any(interior):
        return (out, bounds) if return_error_bound else out
    ni, pi, ei = ns[interior], p[interior], eps[interior]

    # Identical cutoff arithmetic to the scalar implementation.
    nf = ni.astype(np.float64)
    lo_cut = (np.ceil(nf * (pi - ei) - 1e-12) - 1).astype(np.int64)
    hi_cut = (np.floor(nf * (pi + ei) + 1e-12) + 1).astype(np.int64)
    logp = np.log(pi)
    log1mp = np.log1p(-pi)
    logit = logp - log1mp

    # Per-element natural window depth, then quantized onto an *absolute*
    # power-of-two ladder anchored at 2*slack: a row's summation width
    # depends only on its own (n, p, eps, sigmas, slack) — never on what
    # else happens to share the dispatch — so every probe value is
    # bit-identical however a planning sweep is batched, chunked, or
    # sharded across worker processes.  Widening a window past its
    # natural depth only adds padding cells (whose ``exp`` is exactly
    # zero) or real-but-negligible deeper-tail terms, so quantization
    # never weakens a row's accuracy guarantee.
    sigma = np.sqrt(nf * pi * (1.0 - pi))
    depth = np.ceil(sigmas * sigma).astype(np.int64) + slack
    natural = np.minimum(
        ni + 1,
        np.maximum(slack, depth - np.floor(ei * nf).astype(np.int64) + 2),
    )
    ladder = [2 * slack]
    while ladder[-1] < int(natural.max()):
        ladder.append(2 * ladder[-1])
    ladder_arr = np.asarray(ladder, dtype=np.int64)
    max_width = int(ladder_arr[-1])

    # One concatenated array of padded log-comb segments, one per unique n.
    # The pad covers the deepest window any element can ask for; it is
    # quantized upward to a power of two so that the many dispatches of a
    # planning sweep (same ns, slightly different windows) share one
    # cached layout instead of rebuilding the concatenation every call.
    unique_ns, inv = np.unique(ni, return_inverse=True)
    eps_max = np.zeros(len(unique_ns))
    np.maximum.at(eps_max, inv, ei)
    pad_needed = int(max_width + np.ceil(eps_max * unique_ns).max() + 4)
    pad = 1 << (pad_needed - 1).bit_length()
    concat, seg_bases, concat32 = _pairs_layout(tuple(unique_ns.tolist()), pad)
    base_index = seg_bases[inv]

    # Row layout mirrors the vec kernel: lower tails, then upper tails.
    # A lower-tail window *ends* at lo_cut, an upper-tail window *starts*
    # at hi_cut, so both anchor at their cutoff and extend away from the
    # distribution's bulk only as far as their width.
    m = len(pi)
    logit2 = np.concatenate([logit, logit])
    n2 = np.concatenate([nf, nf])
    log1mp2 = np.concatenate([log1mp, log1mp])
    base2 = np.concatenate([base_index, base_index])
    lo_end = lo_cut  # k of the last cell of each lower window
    hi_start = hi_cut  # k of the first cell of each upper window

    # Bucket rows by their quantized window width: rows far from p = 1/2
    # need far smaller windows than the global maximum, and the work
    # matrix cost is rows x width.  The ladder lookup assigns each row
    # the smallest rung that covers its natural depth.
    natural2 = np.concatenate([natural, natural])
    widths2 = ladder_arr[np.searchsorted(ladder_arr, natural2)]
    sums = np.empty(2 * m, dtype=np.float64)
    row_bounds = np.zeros(2 * m, dtype=np.float64) if float32 else None
    for width in np.unique(widths2).tolist():
        in_bucket = np.flatnonzero(widths2 == width)
        lower_rows = in_bucket < m
        # k-space position of each window's first cell.
        first_k = np.where(
            lower_rows, lo_end[in_bucket % m] - (width - 1), hi_start[in_bucket % m]
        )
        bucket_starts = base2[in_bucket] + first_k
        bucket_logit = logit2[in_bucket]
        bucket_const = bucket_logit * first_k + n2[in_bucket] * log1mp2[in_bucket]
        if impl == "reference":
            windows = np.lib.stride_tricks.sliding_window_view(concat, width)
            offsets_in_window = np.arange(width, dtype=np.float64)
            chunk = max(1, _MAX_MATRIX_CELLS // width)
            for begin in range(0, len(in_bucket), chunk):
                sl = slice(begin, begin + chunk)
                work = windows[bucket_starts[sl]]  # fresh copy — safe to mutate
                work += bucket_logit[sl, None] * offsets_in_window[None, :]
                work += bucket_const[sl, None]
                np.exp(work, out=work)
                # Per-row pairwise reduction (not a BLAS matvec): the
                # summation order then depends only on the row width,
                # keeping each element's value batch-composition invariant.
                sums[in_bucket[sl]] = np.add.reduce(work, axis=1)
        elif impl == "jit":
            from repro.stats.jit import jit_window_sums

            sums[in_bucket] = jit_window_sums(
                concat, bucket_starts, bucket_logit, bucket_const, width
            )
        else:
            _fused_window_sums(
                concat32 if float32 else concat,
                bucket_starts,
                bucket_logit,
                bucket_const,
                width,
                sums,
                in_bucket,
            )
            if float32:
                rel = _float32_row_bounds(
                    n2[in_bucket], bucket_logit, bucket_const, first_k, width
                )
                row_bounds[in_bucket] = _float32_abs_bounds(
                    rel, sums[in_bucket], width
                )
    out[interior] = np.minimum(1.0, sums[:m] + sums[m:])
    if float32:
        # min(1, lo + hi) is 1-Lipschitz, so an element's absolute error
        # is at most the sum of its two rows' absolute bounds; both tier
        # outputs live in [0, 1], so 1.0 caps the bound soundly.
        element_bounds = np.minimum(1.0, row_bounds[:m] + row_bounds[m:])
        if not np.all(np.isfinite(element_bounds)):  # pragma: no cover
            raise InvalidParameterError(
                "float32 tier error bound overflowed; use precision='float64'"
            )
        bounds[interior] = element_bounds
    return (out, bounds) if return_error_bound else out


# ---------------------------------------------------------------------------
# Vectorized exact confidence machinery
# ---------------------------------------------------------------------------

def _bisect_vec(k, n, delta, predicate_hi, lo, hi, tol):
    """Lockstep bisection: keep ``lo`` where the predicate holds at mid."""
    # Brackets have width <= 1, so ceil(log2(1/tol)) iterations suffice.
    iterations = max(1, int(math.ceil(math.log2(max(2.0, 1.0 / tol)))))
    for _ in range(iterations):
        if not np.any(hi - lo > tol):
            break
        mid = (lo + hi) / 2.0
        keep = predicate_hi(k, n, mid, delta)
        lo = np.where(keep, mid, lo)
        hi = np.where(keep, hi, mid)
    return lo, hi


def binomial_tail_inversion_upper_vec(k, n, delta, *, tol: float = 1e-12):
    """Vectorized Langford upper bound ``max {p : Pr[Bin(n,p) <= k] >= delta}``.

    Broadcasts ``(k, n, delta)``; agrees with the scalar
    :func:`repro.stats.binomial.binomial_tail_inversion_upper` to the
    bisection tolerance.
    """
    delta_arr = np.asarray(delta, dtype=np.float64)
    if np.any((delta_arr <= 0.0) | (delta_arr >= 1.0)):
        raise InvalidParameterError("delta must lie in (0, 1)")
    k, n, delta_b, shape = _broadcast_knp(k, n, delta_arr)
    lo = k / n
    hi = np.ones_like(lo)
    at_mle = np.asarray(binom_cdf_vec(k, n, lo))
    lo = np.where(np.atleast_1d(at_mle).ravel() < delta_b, 0.0, lo)

    def keep(kk, nn, mid, dd):
        return np.atleast_1d(np.asarray(binom_cdf_vec(kk, nn, mid))).ravel() >= dd

    lo, hi = _bisect_vec(k, n, delta_b, keep, lo, hi, tol)
    out = np.where(k == n, 1.0, lo)
    return _restore(out, shape)


def binomial_tail_inversion_lower_vec(k, n, delta, *, tol: float = 1e-12):
    """Vectorized lower bound ``min {p : Pr[Bin(n,p) >= k] >= delta}``."""
    delta_arr = np.asarray(delta, dtype=np.float64)
    if np.any((delta_arr <= 0.0) | (delta_arr >= 1.0)):
        raise InvalidParameterError("delta must lie in (0, 1)")
    k, n, delta_b, shape = _broadcast_knp(k, n, delta_arr)
    zero = k == 0
    ks = np.maximum(k, 1)  # bisection operand for the non-degenerate rows
    lo = np.zeros(k.shape, dtype=np.float64)
    hi = k / n
    at_mle = np.atleast_1d(np.asarray(binom_sf_vec(ks - 1, n, np.where(zero, 0.5, hi)))).ravel()
    hi = np.where((~zero) & (at_mle < delta_b), 1.0, hi)

    def keep_lo(kk, nn, mid, dd):
        # Mirrored roles: lo advances exactly when the SF predicate fails
        # at mid (hi shrinks onto the smallest p where it still holds).
        return np.atleast_1d(np.asarray(binom_sf_vec(kk - 1, nn, mid))).ravel() < dd

    lo, hi = _bisect_vec(ks, n, delta_b, keep_lo, lo, hi, tol)
    out = np.where(zero, 0.0, hi)
    return _restore(out, shape)


def clopper_pearson_interval_vec(k, n, delta, *, tol: float = 1e-12):
    """Vectorized exact two-sided Clopper–Pearson interval.

    Returns ``(lower, upper)`` arrays; each side inverts its binomial tail
    at level ``delta / 2`` exactly like the scalar
    :func:`repro.stats.binomial.clopper_pearson_interval`.
    """
    delta_arr = np.asarray(delta, dtype=np.float64)
    lower = binomial_tail_inversion_lower_vec(k, n, delta_arr / 2.0, tol=tol)
    upper = binomial_tail_inversion_upper_vec(k, n, delta_arr / 2.0, tol=tol)
    return lower, upper
