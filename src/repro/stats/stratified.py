"""Stratified accuracy estimation for skewed testsets.

§2.2 remarks that for skewed cases (e.g. F1 on imbalanced classes) "more
optimizations, such as using stratified samples, are possible".  This
module provides the estimator: partition the population into strata with
known weights (class shares, user segments), sample each stratum
separately, and combine

.. math:: \\hat a = \\sum_k w_k \\, \\hat p_k ,

with a per-stratum Hoeffding budget.  Two allocation rules are offered:

* **proportional** — ``n_k = w_k n`` (what plain i.i.d. sampling gives in
  expectation);
* **optimized** — the min-max allocation minimizing the combined
  tolerance at a fixed label total: with per-stratum tolerance
  ``eps_k = sqrt(L / 2 n_k)`` and combined tolerance
  ``sum_k w_k eps_k``, Lagrange gives ``n_k ∝ w_k^{2/3}``, which beats
  proportional sampling whenever weights are skewed (rare strata get
  relatively *more* samples).

The combined guarantee is a union bound over the ``K`` strata.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.intervals import Interval
from repro.exceptions import InvalidParameterError
from repro.utils.validation import check_positive, check_positive_int, check_probability

__all__ = ["StratumSpec", "StratifiedPlan", "plan_stratified", "stratified_estimate"]


@dataclass(frozen=True)
class StratumSpec:
    """One stratum: a name and its known population weight."""

    name: str
    weight: float

    def __post_init__(self) -> None:
        check_positive(self.weight, "weight")


@dataclass(frozen=True)
class StratifiedPlan:
    """A per-stratum sampling plan.

    Attributes
    ----------
    strata:
        The stratum specs, in order.
    samples:
        Labels to draw per stratum.
    tolerances:
        Per-stratum tolerance ``eps_k`` at the plan's delta split.
    combined_tolerance:
        The guaranteed tolerance on the weighted accuracy.
    delta:
        Total failure budget (split ``delta / K`` per stratum).
    """

    strata: tuple[StratumSpec, ...]
    samples: tuple[int, ...]
    tolerances: tuple[float, ...]
    combined_tolerance: float
    delta: float
    target_weights: tuple[float, ...] = ()

    @property
    def total_samples(self) -> int:
        """Total labels across strata."""
        return int(sum(self.samples))


def _validate_strata(strata: Sequence[StratumSpec]) -> None:
    if not strata:
        raise InvalidParameterError("need at least one stratum")
    total = sum(s.weight for s in strata)
    if abs(total - 1.0) > 1e-9:
        raise InvalidParameterError(
            f"stratum weights must sum to 1, got {total:g}"
        )


def plan_stratified(
    strata: Sequence[StratumSpec],
    total_samples: int,
    delta: float,
    *,
    allocation: str = "optimized",
    target_weights: Sequence[float] | None = None,
) -> StratifiedPlan:
    """Allocate a label budget over strata.

    Parameters
    ----------
    strata:
        Stratum specs (population weights, sum to 1).
    total_samples:
        The label budget to distribute.
    delta:
        Total failure budget (``delta / K`` per stratum, union bound).
    allocation:
        ``"optimized"`` (``n_k ∝ t_k^{2/3}`` for target weights ``t_k``)
        or ``"proportional"`` (``n_k ∝ w_k``, what plain i.i.d. sampling
        delivers in expectation — the baseline stratification beats).
    target_weights:
        The weights of the statistic actually being estimated.  Defaults
        to the population weights (plain accuracy).  For macro-averaged
        statistics over skewed populations (the paper's "skewed cases":
        macro-F1, per-class recall) pass equal weights — that is where
        stratified sampling wins big, because proportional sampling
        starves exactly the strata the target weights heavily.
    """
    _validate_strata(strata)
    total_samples = check_positive_int(total_samples, "total_samples")
    delta = check_probability(delta, "delta")
    if allocation not in ("optimized", "proportional"):
        raise InvalidParameterError(
            f"allocation must be 'optimized' or 'proportional', got {allocation!r}"
        )
    weights = np.array([s.weight for s in strata])
    if target_weights is None:
        targets = weights
    else:
        targets = np.asarray(target_weights, dtype=float)
        if len(targets) != len(strata):
            raise InvalidParameterError(
                f"target_weights has {len(targets)} entries for "
                f"{len(strata)} strata"
            )
        if abs(targets.sum() - 1.0) > 1e-9 or (targets <= 0).any():
            raise InvalidParameterError(
                "target_weights must be positive and sum to 1"
            )
    raw = targets ** (2.0 / 3.0) if allocation == "optimized" else weights
    shares = raw / raw.sum()
    samples = np.maximum(1, np.floor(shares * total_samples).astype(int))
    # Distribute any remainder to the largest shares.
    shortfall = total_samples - samples.sum()
    if shortfall > 0:
        order = np.argsort(-(shares * total_samples - samples))
        samples[order[:shortfall]] += 1
    per_stratum_delta = delta / len(strata)
    L = math.log(2.0 / per_stratum_delta)  # two-sided per stratum
    tolerances = np.sqrt(L / (2.0 * samples))
    combined = float(np.sum(targets * tolerances))
    return StratifiedPlan(
        strata=tuple(strata),
        samples=tuple(int(v) for v in samples),
        tolerances=tuple(float(t) for t in tolerances),
        combined_tolerance=combined,
        delta=delta,
        target_weights=tuple(float(t) for t in targets),
    )


def stratified_estimate(
    plan: StratifiedPlan,
    stratum_correct: Sequence[np.ndarray],
) -> tuple[float, Interval]:
    """Combine per-stratum correctness samples into the weighted estimate.

    Parameters
    ----------
    plan:
        The sampling plan the data was collected under.
    stratum_correct:
        One boolean/0-1 array per stratum (in plan order) with at least
        the planned number of samples each.

    Returns
    -------
    (estimate, interval):
        The weighted accuracy estimate and its guaranteed interval.
    """
    if len(stratum_correct) != len(plan.strata):
        raise InvalidParameterError(
            f"expected {len(plan.strata)} stratum samples, got "
            f"{len(stratum_correct)}"
        )
    targets = plan.target_weights or tuple(s.weight for s in plan.strata)
    estimate = 0.0
    half_width = 0.0
    for spec, target, needed, tolerance, sample in zip(
        plan.strata, targets, plan.samples, plan.tolerances, stratum_correct
    ):
        sample = np.asarray(sample)
        if len(sample) < needed:
            raise InvalidParameterError(
                f"stratum {spec.name!r} needs {needed} samples, got {len(sample)}"
            )
        estimate += target * float(np.mean(sample))
        half_width += target * tolerance
    return estimate, Interval.from_estimate(estimate, half_width)
