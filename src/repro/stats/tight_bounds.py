"""Tight numerical sample-size bounds via exact binomial computation.

Section 4.3 of the paper sketches the final optimization: for conditions
over ``n`` i.i.d. Bernoulli draws, compute the *exact* minimal testset size
by working with the Binomial probability mass function directly instead of
a concentration bound, minimizing over the worst-case unknown true mean
``p``.  The paper leaves efficient approximations as future work; here we
implement the exact computation (it is perfectly tractable at the testset
sizes in play) so it can serve both as an optional estimator backend and as
the ground truth the analytic bounds are compared against in the ablation
benchmarks.

Definitions
-----------
For sample size ``n`` and tolerance ``epsilon``, the *coverage failure
probability* at true mean ``p`` is

.. math:: f(n, p) = \\Pr\\big[\\, |\\hat p - p| > \\epsilon \\,\\big],
          \\qquad \\hat p = \\text{Binomial}(n, p)/n .

The tight sample size is the minimal ``n`` with
``max_p f(n, p) <= delta``.  ``f(n, ·)`` is piecewise smooth with local
maxima near the boundaries of the rounding grid, so the inner maximization
scans a grid of candidate ``p`` refined around the argmax; the outer search
is a doubling-then-bisection search, valid because ``max_p f(n, p)`` is
(weakly) decreasing in ``n`` along the search trajectory.

Backends and caching
--------------------
Every entry point accepts ``backend="batch"`` (default) or
``backend="scalar"``:

* ``"batch"`` runs the grid scans through the NumPy kernels in
  :mod:`repro.stats.batch` — the whole worst-case-``p`` grid is evaluated
  as one windowed pmf matrix, and bisection probes short-circuit as soon
  as any grid point already exceeds ``delta`` (sound: the scan only ever
  *adds* candidate maxima, so crossing the threshold early settles the
  comparison the probe asked for).  The grid trajectory (grid points,
  refinement windows, argmax tie-breaks) is identical to the scalar path,
  so both backends return the same sample sizes; the benchmark suite
  enforces a >= 20x speedup at paper-scale parameters.
* ``"scalar"`` is the original pure-Python loop over
  :func:`repro.stats.binomial.binom_cdf`, kept verbatim as the reference
  implementation the batch kernels are cross-checked (and benchmarked)
  against.

Results of :func:`tight_sample_size`, :func:`tight_epsilon` and the batch
worst-case scans are memoized process-wide through
:mod:`repro.stats.cache` — a CI service re-planning the same condition on
every commit hits the cache instead of re-running the search.  Use
:func:`repro.stats.cache.clear_all_caches` for cold-start benchmarks.

A correctness caveat for the epsilon side: the worst-case grid scan is
*not perfectly monotone in epsilon* (the refinement windows travel with
the coarse argmax), so the epsilon-side bisections have a narrow band of
fixed points rather than a single float.  Contracts are therefore stated
as *probe certificates* — the returned epsilon is certified not-exceeding
``delta`` under the worst-case probe while ``tol`` below it is certified
exceeding — never as float equality between code paths; see
:func:`tight_epsilon` (where the caveat bites the warm-start path) and
:func:`tight_epsilon_many`.
"""

from __future__ import annotations

import math
from statistics import NormalDist

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.stats.batch import (
    exact_coverage_failure_probability_pairs,
    exact_coverage_failure_probability_vec,
)
from repro.stats.binomial import binom_cdf, binom_sf
from repro.stats.cache import (
    LRUCache,
    memoize,
    register_cache,
    register_manifest_codec,
)
from repro.utils.validation import check_positive, check_positive_int, check_probability

__all__ = [
    "exact_coverage_failure_probability",
    "worst_case_failure_probability",
    "tight_sample_size",
    "tight_epsilon",
    "exceeds_delta_many",
    "tight_epsilon_many",
    "estimate_probe_cost",
    "epsilon_sweep_shards",
    "cached_epsilon_sweep",
    "adopt_epsilon_sweep",
]

_BACKENDS = ("batch", "scalar")
_PRECISIONS = ("float64", "float32")
_KERNELS = ("numpy", "jit")


def _check_backend(backend: str) -> str:
    if backend not in _BACKENDS:
        raise InvalidParameterError(
            f"backend must be one of {_BACKENDS}, got {backend!r}"
        )
    return backend


def _check_precision(precision: str) -> str:
    if precision not in _PRECISIONS:
        raise InvalidParameterError(
            f"precision must be one of {_PRECISIONS}, got {precision!r}"
        )
    return precision


def _check_kernel(kernel: str) -> str:
    if kernel not in _KERNELS:
        raise InvalidParameterError(
            f"kernel must be one of {_KERNELS}, got {kernel!r}"
        )
    return kernel


def exact_coverage_failure_probability(n: int, p: float, epsilon: float) -> float:
    """Exact ``Pr[|Binomial(n,p)/n - p| > epsilon]``.

    The event is ``k < n(p - epsilon)`` or ``k > n(p + epsilon)``; both
    tails are computed with the exact binomial CDF/SF.  (This is the
    scalar reference; the planning loops use
    :func:`repro.stats.batch.exact_coverage_failure_probability_vec`.)
    """
    n = check_positive_int(n, "n")
    check_positive(epsilon, "epsilon")
    if not 0.0 <= p <= 1.0:
        raise InvalidParameterError(f"p must be in [0, 1], got {p}")
    lo_cut = math.ceil(n * (p - epsilon) - 1e-12) - 1  # largest k with k/n < p - eps
    hi_cut = math.floor(n * (p + epsilon) + 1e-12) + 1  # smallest k with k/n > p + eps
    prob = 0.0
    if lo_cut >= 0:
        prob += binom_cdf(min(lo_cut, n), n, p)
    if hi_cut <= n:
        prob += binom_sf(hi_cut - 1, n, p)
    return min(1.0, prob)


# ---------------------------------------------------------------------------
# Worst-case scans
# ---------------------------------------------------------------------------

def _scan_scalar(n: int, epsilon: float, grid: int, refine: int) -> tuple[float, float]:
    """The original pure-Python grid scan (reference implementation)."""
    lo, hi = 0.0, 1.0
    best_p, best_f = 0.5, 0.0
    for _ in range(refine + 1):
        step = (hi - lo) / grid
        for i in range(grid + 1):
            p = lo + i * step
            f = exact_coverage_failure_probability(n, p, epsilon)
            if f > best_f:
                best_f, best_p = f, p
        lo = max(0.0, best_p - 2 * step)
        hi = min(1.0, best_p + 2 * step)
    return best_f, best_p


def _scan_batch(
    n: int,
    epsilon: float,
    grid: int,
    refine: int,
    stop_above: float | None = None,
) -> tuple[float, float]:
    """Vectorized grid scan walking the *same* trajectory as the scalar one.

    Grid points are generated with the identical floating-point arithmetic
    (``lo + i * step``) and the running argmax uses the same
    first-strict-improvement tie-break, so refinement windows — and hence
    results — track the scalar scan.  When ``stop_above`` is given the
    scan returns as soon as the running maximum exceeds it (refinement
    only ever raises the maximum, so the caller's threshold comparison is
    already decided).
    """
    lo, hi = 0.0, 1.0
    best_p, best_f = 0.5, 0.0
    for _ in range(refine + 1):
        step = (hi - lo) / grid
        p = lo + np.arange(grid + 1) * step
        f = exact_coverage_failure_probability_vec(n, p, epsilon)
        i = int(np.argmax(f))
        if f[i] > best_f:
            best_f, best_p = float(f[i]), float(p[i])
        if stop_above is not None and best_f > stop_above:
            return best_f, best_p
        lo = max(0.0, best_p - 2 * step)
        hi = min(1.0, best_p + 2 * step)
    return best_f, best_p


@memoize("stats.tight_bounds.worst_case", maxsize=8192)
def _worst_case_cached(
    n: int, epsilon: float, grid: int, refine: int
) -> tuple[float, float]:
    return _scan_batch(n, epsilon, grid, refine)


def worst_case_failure_probability(
    n: int, epsilon: float, *, grid: int = 512, refine: int = 3, backend: str = "batch"
) -> float:
    """``max_p Pr[|hat p - p| > epsilon]`` over the unknown true mean.

    Scans an initial uniform grid over ``[0, 1]`` and then refines around
    the best cell ``refine`` times.  With ``grid=512`` the result is exact
    to well below the tolerance at which it is consumed (the outer search
    only needs to compare against ``delta``).  The batch backend is
    memoized per ``(n, epsilon, grid, refine)``.
    """
    n = check_positive_int(n, "n")
    check_positive(epsilon, "epsilon")
    if _check_backend(backend) == "scalar":
        return _scan_scalar(n, epsilon, grid, refine)[0]
    return _worst_case_cached(n, epsilon, grid, refine)[0]


@memoize("stats.tight_bounds.exceeds_delta", maxsize=16384)
def _exceeds_delta_batch(
    n: int, epsilon: float, delta: float, grid: int, refine: int
) -> bool:
    """Does ``max_p f(n, p)`` exceed ``delta``?  (Early-exit batch scan.)"""
    best_f, _ = _scan_batch(n, epsilon, grid, refine, stop_above=delta)
    return best_f > delta


# ---------------------------------------------------------------------------
# Outer searches
# ---------------------------------------------------------------------------

@memoize("stats.tight_bounds.tight_sample_size", maxsize=4096)
def _tight_sample_size_cached(
    epsilon: float,
    delta: float,
    grid: int,
    refine: int,
    backend: str,
    hint: int,
    precision: str,
    kernel: str,
) -> int:
    if backend == "scalar":
        def exceeds(n: int) -> bool:
            return _scan_scalar(n, epsilon, grid, refine)[0] > delta
    elif kernel == "numpy":
        # Both precision tiers run float64 probes.  The discrete
        # distribution ripples near the boundary, so the "certified local
        # boundary" is not unique — two sizes a couple apart can both
        # satisfy ``not exceeds(n), exceeds(n-1)`` — and equality with the
        # default tier needs every probe to answer exactly the float64
        # question.  A certified float32 screen cannot help here: at
        # planning-grade deltas the exceedance only surfaces in the scan's
        # refinement levels (measured 2/8 of the boundary probes certify
        # even from a dense level-0 screen), so the float32 tier keeps its
        # speed wins in the vectorized sweeps and delegates this scalar
        # bisection to the reference probes wholesale.
        def exceeds(n: int) -> bool:
            return _exceeds_delta_batch(n, epsilon, delta, grid, refine)
    else:
        # jit kernel: route probes through the pairs kernel so the
        # requested impl actually drives the scans.
        impl = "jit" if kernel == "jit" else None

        def exceeds(n: int) -> bool:
            return bool(
                exceeds_delta_many(
                    [n],
                    [epsilon],
                    delta,
                    grid=grid,
                    refine=refine,
                    precision=precision,
                    impl=impl,
                )[0]
            )

    hi = hint
    # Ensure hi is feasible (it should be, Hoeffding dominates); expand if not.
    while exceeds(hi):
        hi *= 2
        if hi > 1 << 34:  # pragma: no cover - defensive
            raise InvalidParameterError("tight_sample_size search diverged")
    lo = 1
    # Bisection: worst-case failure is monotone (weakly) decreasing in n on
    # the scales of interest; the final verification step guards against the
    # small non-monotonic ripples of the discrete distribution.
    while lo < hi:
        mid = (lo + hi) // 2
        if not exceeds(mid):
            hi = mid
        else:
            lo = mid + 1
    # Walk forward over possible ripples.
    n = hi
    while exceeds(n):
        n += 1  # pragma: no cover - rarely triggered
    return n


def tight_sample_size(
    epsilon: float,
    delta: float,
    *,
    grid: int = 256,
    refine: int = 2,
    n_hint: int | None = None,
    backend: str = "batch",
    precision: str = "float64",
    kernel: str = "numpy",
) -> int:
    """Minimal ``n`` with worst-case coverage failure at most ``delta``.

    This is the Section 4.3 "tight numerical bound" for a single Bernoulli
    mean.  It is never larger than the two-sided Hoeffding sample size (the
    test suite asserts this), and is typically 10–40% smaller.

    Parameters
    ----------
    epsilon, delta:
        Tolerance and failure probability of the guarantee.
    grid, refine:
        Resolution of the inner worst-case-``p`` search.
    n_hint:
        Optional starting point for the search (e.g. the Hoeffding size);
        when omitted, the two-sided Hoeffding size is used as the upper
        anchor.  The hint only seeds the search — the returned minimum is
        independent of it, so cached results ignore it.
    backend:
        ``"batch"`` (vectorized, memoized; the default) or ``"scalar"``
        (the pure-Python reference).  Both return the same ``n``.
    precision:
        ``"float64"`` (default) or ``"float32"``.  The minimal-``n``
        search adopts float64 probe answers in *every* tier — the
        discrete distribution ripples near the boundary, so only probes
        that answer exactly the float64 question make the returned ``n``
        equal to the default tier's.  The float32 tier's speed wins live
        in the vectorized scans (:func:`tight_epsilon_many`,
        :func:`exceeds_delta_many`); here the parameter is accepted for
        API uniformity and never changes the plan.
    kernel:
        ``"numpy"`` (default) or ``"jit"`` (the optional Numba windowed
        scan, certified by the conformance suite; requires numba).
    """
    check_positive(epsilon, "epsilon")
    check_probability(delta, "delta")
    _check_backend(backend)
    _check_precision(precision)
    _check_kernel(kernel)
    if backend == "scalar" and (precision != "float64" or kernel != "numpy"):
        raise InvalidParameterError(
            "backend='scalar' supports only precision='float64', kernel='numpy'"
        )
    if epsilon >= 1.0:
        return 1
    hoeffding_n = int(math.ceil(math.log(2.0 / delta) / (2.0 * epsilon * epsilon)))
    hint = max(1, n_hint or hoeffding_n)
    if n_hint is None or n_hint == hoeffding_n:
        # The common, hint-free call: one shared cache entry.
        return _tight_sample_size_cached(
            epsilon, delta, grid, refine, backend, max(1, hoeffding_n),
            precision, kernel,
        )
    # A custom hint changes the probe trajectory but not the answer; bypass
    # the memo (still benefiting from the per-probe caches) so the cache
    # never depends on hints.
    return _tight_sample_size_cached.__wrapped__(
        epsilon, delta, grid, refine, backend, hint, precision, kernel
    )


# Per-(delta, tol, grid, refine) anchors: the most recent tight-epsilon
# results by n, reused to warm-start the bisection bracket of *nearby*
# testset sizes.  Entries never warm-start their own n (the memo above
# already covers exact repeats, and backend cross-checks must stay
# independent computations).
_EPSILON_ANCHORS = register_cache(
    "stats.tight_bounds.epsilon_anchors", LRUCache(maxsize=256)
)
_ANCHORS_PER_KEY = 64


def _nearest_anchor(n: int, key: tuple) -> float | None:
    entries = _EPSILON_ANCHORS.get(key)
    if not entries:
        return None
    best_eps, best_dist = None, None
    log_n = math.log(n)
    for anchor_n, anchor_eps in entries:
        if anchor_n == n:
            continue
        dist = abs(math.log(anchor_n) - log_n)
        if best_dist is None or dist < best_dist:
            best_dist, best_eps = dist, anchor_eps
    return best_eps


def _record_anchor(n: int, eps: float, key: tuple) -> None:
    entries = _EPSILON_ANCHORS.get(key) or ()
    entries = tuple(e for e in entries if e[0] != n) + ((n, eps),)
    _EPSILON_ANCHORS.put(key, entries[-_ANCHORS_PER_KEY:])


def _export_epsilon_anchors():
    """Manifest codec export: anchor entries per reliability-spec key."""
    return _EPSILON_ANCHORS.items()


def _merge_epsilon_anchors(entries) -> None:
    """Manifest codec merge: union anchors per key (min epsilon on ties).

    Anchors are advisory warm-start hints, so union semantics beat the
    default pick-one rule: two workers sweeping disjoint size ranges both
    contribute.  The union keeps, per ``n``, the smallest epsilon seen
    (a commutative, idempotent join) and caps at the ``_ANCHORS_PER_KEY``
    largest sizes; a merge that changes nothing leaves the cache
    untouched.
    """
    for key, incoming in entries:
        existing = _EPSILON_ANCHORS.peek(key) or ()
        merged = {int(n): float(eps) for n, eps in existing}
        for n, eps in incoming:
            n, eps = int(n), float(eps)
            merged[n] = min(eps, merged.get(n, eps))
        combined = tuple(sorted(merged.items()))[-_ANCHORS_PER_KEY:]
        if set(combined) != set(existing):
            _EPSILON_ANCHORS.put(key, combined)


register_manifest_codec(
    "stats.tight_bounds.epsilon_anchors",
    _export_epsilon_anchors,
    _merge_epsilon_anchors,
)


@memoize("stats.tight_bounds.tight_epsilon", maxsize=4096)
def _tight_epsilon_cached(
    n: int, delta: float, tol: float, grid: int, refine: int, backend: str
) -> float:
    if backend == "scalar":
        def exceeds(eps: float) -> bool:
            return _scan_scalar(n, eps, grid, refine)[0] > delta
    else:
        def exceeds(eps: float) -> bool:
            return _exceeds_delta_batch(n, eps, delta, grid, refine)

    lo, hi = 0.0, 1.0
    anchor = _nearest_anchor(n, (delta, tol, grid, refine))
    if anchor is not None:
        # Warm-start the bracket around the neighbor's epsilon, expanding
        # until both ends are certified by real probes; the bisection
        # invariants (lo exceeds, hi does not) are identical to the cold
        # path, so the warm result agrees with the cold one within tol.
        warm_hi = min(1.0, 1.25 * anchor)
        while warm_hi < 1.0 and exceeds(warm_hi):
            warm_hi = min(1.0, 2.0 * warm_hi)
        warm_lo = 0.8 * anchor
        while warm_lo > tol and not exceeds(warm_lo):
            warm_lo /= 2.0
        if warm_lo <= tol:
            warm_lo = 0.0
        lo, hi = warm_lo, warm_hi
    while hi - lo > tol:
        mid = (lo + hi) / 2.0
        if not exceeds(mid):
            hi = mid
        else:
            lo = mid
    return hi


def tight_epsilon(
    n: int,
    delta: float,
    *,
    tol: float = 1e-6,
    grid: int = 256,
    refine: int = 2,
    backend: str = "batch",
) -> float:
    """Smallest tolerance guaranteed by ``n`` samples at failure prob ``delta``.

    Bisection on ``epsilon``; the failure probability is decreasing in
    ``epsilon``.  Memoized per ``(n, delta, tol, grid, refine, backend)``.

    The bisection bracket is warm-started from the nearest previously
    computed ``(n', delta)`` anchor (shared across backends and with
    :func:`tight_epsilon_many`): the neighbor's epsilon seeds a narrow
    bracket whose ends are certified by real probes before bisecting, so
    a planning service sweeping related testset sizes pays roughly a
    third fewer worst-case scans per size.  Warm-started results satisfy
    the same bracket certificate as cold ones — the returned epsilon does
    not exceed ``delta`` under the worst-case probe while ``tol`` below
    it does — but because the probe is not perfectly monotone in epsilon
    (refinement windows move with the coarse argmax), bisections from
    different brackets can land on different points of the narrow
    crossing band; the first result computed in a process is memoized and
    returned for every subsequent identical call.  Exact repeats never
    re-enter the warm-start path, and a same-``n`` anchor never seeds its
    own bracket, so scalar/batch backend cross-checks remain independent
    computations.
    """
    n = check_positive_int(n, "n")
    check_probability(delta, "delta")
    _check_backend(backend)
    eps = _tight_epsilon_cached(n, delta, tol, grid, refine, backend)
    _record_anchor(n, eps, (delta, tol, grid, refine))
    return eps


# ---------------------------------------------------------------------------
# Multi-n probe API and the batched epsilon planner
# ---------------------------------------------------------------------------

# Probe-grade windows for the epsilon-side machinery: the omitted tail
# mass is ~exp(-sigmas^2/2) (1.5e-8 at 6 sigma, 4e-11 at 7), always an
# *under*-estimate — so exceedance certificates stay sound — and far below
# the delta-scale slack every threshold comparison here enjoys.  Advisory
# probes (bracket positioning) use the cheap grade; the certification
# probes that pin the returned epsilon use the near-reference grade.
_ADVISORY_SIGMAS, _ADVISORY_SLACK = 6.0, 24
_VERIFY_SIGMAS, _VERIFY_SLACK = 6.5, 28


def _pairs_f(
    ns,
    ps,
    epsilons,
    sigmas=None,
    slack=None,
    precision="float64",
    impl=None,
    return_error_bound=False,
):
    return exact_coverage_failure_probability_pairs(
        ns,
        ps,
        epsilons,
        window_sigmas=sigmas,
        window_slack=slack,
        precision=precision,
        impl=impl,
        return_error_bound=return_error_bound,
    )


def _level0_values(
    ns, epsilons, offsets, grid, sigmas, slack, precision="float64", impl=None
) -> np.ndarray:
    """Level-0 grid values over ``[0, 1]`` for each probe, one dispatch.

    Exploits the exact binomial symmetry ``f(n, p, eps) = f(n, 1-p, eps)``:
    only the left half of the (symmetric) level-0 lattice is evaluated and
    the right half is mirrored, halving the widest dispatch of every scan.
    """
    count = len(ns)
    step = 1.0 / grid
    if grid % 2:
        points = np.broadcast_to(offsets * step, (count, grid + 1))
        return _pairs_f(
            np.repeat(ns, grid + 1),
            points.ravel(),
            np.repeat(epsilons, grid + 1),
            sigmas,
            slack,
            precision,
            impl,
        ).reshape(count, grid + 1)
    half = grid // 2
    points = np.broadcast_to(offsets[: half + 1] * step, (count, half + 1))
    left = _pairs_f(
        np.repeat(ns, half + 1),
        points.ravel(),
        np.repeat(epsilons, half + 1),
        sigmas,
        slack,
        precision,
        impl,
    ).reshape(count, half + 1)
    return np.concatenate([left, left[:, :half][:, ::-1]], axis=1)


def exceeds_delta_many(
    ns,
    epsilons,
    delta: float,
    *,
    grid: int = 256,
    refine: int = 2,
    window_sigmas: float | None = None,
    window_slack: int | None = None,
    precision: str = "float64",
    impl: str | None = None,
) -> np.ndarray:
    """Vectorized ``max_p f(n_i, p, eps_i) > delta`` for a vector of probes.

    The multi-``n`` counterpart of the per-call worst-case probe: every
    ``(n_i, eps_i)`` pair runs the *same* grid-scan trajectory as the
    scalar/batch backends (identical grids, refinement windows and
    first-strict-improvement tie-breaks), but all probes advance in
    lockstep and each refinement level is one
    :func:`~repro.stats.batch.exact_coverage_failure_probability_pairs`
    dispatch across every still-undecided probe.  Probes whose running
    maximum already exceeds ``delta`` drop out early (refinement only
    raises the maximum).

    This is the kernel behind :func:`tight_epsilon_many` and the building
    block for sharded planning services that probe many testset sizes per
    request.

    ``precision`` / ``impl`` select the pairs-kernel tier for the scans
    (see :func:`~repro.stats.batch.exact_coverage_failure_probability_pairs`).
    Non-default tiers are **advisory**: a float32 scan may flip a
    razor-thin threshold comparison, so certificate-grade callers (the
    VERIFY passes of :func:`tight_epsilon_many`, the minimal-``n``
    probes of :func:`tight_sample_size`) always adopt float64 answers.
    """
    _check_precision(precision)
    ns = np.atleast_1d(np.asarray(ns)).astype(np.int64)
    eps = np.atleast_1d(np.asarray(epsilons, dtype=np.float64))
    ns, eps = np.broadcast_arrays(ns, eps)
    ns = ns.copy()
    eps = eps.copy()
    if ns.size == 0:
        return np.zeros(0, dtype=bool)
    if np.any(ns < 1):
        raise InvalidParameterError("ns must contain positive integers")
    if np.any(eps <= 0.0):
        raise InvalidParameterError("epsilons must be positive")
    check_probability(delta, "delta")
    grid = check_positive_int(grid, "grid")
    offsets = np.arange(grid + 1, dtype=np.float64)

    count = len(ns)
    lo = np.zeros(count)
    hi = np.ones(count)
    best_p = np.full(count, 0.5)
    best_f = np.zeros(count)
    undecided = np.ones(count, dtype=bool)
    for level in range(refine + 1):
        active = np.flatnonzero(undecided)
        if not len(active):
            break
        step = (hi[active] - lo[active]) / grid
        points = lo[active][:, None] + offsets[None, :] * step[:, None]
        if level == 0:
            values = _level0_values(
                ns[active],
                eps[active],
                offsets,
                grid,
                window_sigmas,
                window_slack,
                precision,
                impl,
            )
        else:
            values = _pairs_f(
                np.repeat(ns[active], grid + 1),
                points.ravel(),
                np.repeat(eps[active], grid + 1),
                window_sigmas,
                window_slack,
                precision,
                impl,
            ).reshape(len(active), grid + 1)
        arg = np.argmax(values, axis=1)
        rows = np.arange(len(active))
        peak = values[rows, arg]
        improve = peak > best_f[active]
        improved = active[improve]
        best_f[improved] = peak[improve]
        best_p[improved] = points[rows[improve], arg[improve]]
        exceeded = best_f[active] > delta
        undecided[active[exceeded]] = False
        rest = active[~exceeded]
        rest_step = step[~exceeded]
        lo[rest] = np.maximum(0.0, best_p[rest] - 2.0 * rest_step)
        hi[rest] = np.minimum(1.0, best_p[rest] + 2.0 * rest_step)
    return best_f > delta


def _record_scan_anchors(
    ns: np.ndarray,
    epsilons: np.ndarray,
    delta: float,
    grid: int,
    refine: int,
    top_k: int,
    precision: str = "float64",
) -> np.ndarray:
    """Full trajectory scans (lockstep) returning each probe's top-k ``p``.

    The anchors are the highest-failure-probability points across every
    refinement level — the raw material for the cutoff-tracking witnesses
    of :func:`tight_epsilon_many`.  Shape ``(len(ns), top_k)``.  The
    recording is purely advisory (anchors only position later probes), so
    it honours the requested precision tier wholesale.
    """
    count = len(ns)
    offsets = np.arange(grid + 1, dtype=np.float64)
    lo = np.zeros(count)
    hi = np.ones(count)
    best_p = np.full(count, 0.5)
    best_f = np.zeros(count)
    all_points: list[np.ndarray] = []
    all_values: list[np.ndarray] = []
    for level in range(refine + 1):
        # The recording is advisory, so refinement levels run at half the
        # grid: anchor resolution stays far below the 1/n cutoff-line
        # spacing the tracked witnesses need.
        level_grid = grid if level == 0 else max(64, grid // 2)
        level_offsets = offsets[: level_grid + 1]
        step = (hi - lo) / level_grid
        points = lo[:, None] + level_offsets[None, :] * step[:, None]
        if level == 0:
            values = _level0_values(
                ns,
                epsilons,
                offsets,
                grid,
                _ADVISORY_SIGMAS,
                _ADVISORY_SLACK,
                precision,
            )
        else:
            values = _pairs_f(
                np.repeat(ns, level_grid + 1),
                points.ravel(),
                np.repeat(epsilons, level_grid + 1),
                _ADVISORY_SIGMAS,
                _ADVISORY_SLACK,
                precision,
            ).reshape(count, level_grid + 1)
        all_points.append(points)
        all_values.append(values)
        arg = np.argmax(values, axis=1)
        rows = np.arange(count)
        peak = values[rows, arg]
        improve = peak > best_f
        best_f[improve] = peak[improve]
        best_p[improve] = points[rows, arg][improve]
        lo = np.maximum(0.0, best_p - 2.0 * step)
        hi = np.minimum(1.0, best_p + 2.0 * step)
    points = np.hstack(all_points)
    values = np.hstack(all_values)
    order = np.argsort(-values, axis=1)[:, :top_k]
    return np.take_along_axis(points, order, axis=1)


def _tracked_witness_crossing(
    ns: np.ndarray,
    anchors: np.ndarray,
    anchor_eps: np.ndarray,
    center_points: np.ndarray,
    delta: float,
    lo: np.ndarray,
    hi: np.ndarray,
    tol: float,
    precision: str = "float64",
) -> np.ndarray:
    """Lockstep bisection on the cutoff-tracking witness maximum.

    The worst-case ``p`` rides the cutoff-boundary lines ``p = k/n ± eps``
    (slope ``±1`` in epsilon), so each anchor point contributes three
    moving witnesses: itself and its two translates along those lines.
    The crossing of the witness maximum tracks the true worst-case
    crossing to within a few ``tol`` — good enough to position the
    certification probes.  Translate and anchor witnesses are advisory
    only, but the ``center_points`` are level-0 *lattice* points — an
    exceedance there is a sound certificate for the full trajectory probe
    (the level-0 scan always evaluates them, and the advisory window only
    under-estimates).  Returns ``(crossing, sound_lo)`` where ``sound_lo``
    is the largest epsilon at which a lattice witness certified an
    exceedance (``-inf`` when none did).

    In the float32 tier the bisection steering stays advisory as-is, but
    a lattice certificate additionally demands the exceedance to clear
    the tier's derived error bound — ``value - bound > delta`` implies
    the float64 value exceeds too, so ``sound_lo`` remains sound in every
    tier ("certified, not trusted").
    """
    lo = lo.copy()
    hi = hi.copy()
    count, top_k = anchors.shape
    n_center = len(center_points)
    width = n_center + 3 * top_k
    base = np.empty((count, width), dtype=np.float64)
    base[:, :n_center] = center_points[None, :]
    base[:, n_center : n_center + top_k] = anchors
    flat_ns = np.repeat(ns, width)
    sound_lo = np.full(count, -np.inf)
    while True:
        open_idx = np.flatnonzero((hi - lo) > tol)
        if not len(open_idx):
            break
        mids = (lo + hi) / 2.0
        shift = (mids - anchor_eps)[:, None]
        base[:, n_center + top_k : n_center + 2 * top_k] = anchors + shift
        base[:, n_center + 2 * top_k :] = anchors - shift
        points = base[open_idx]
        # Out-of-range translates are parked at the boundary, where the
        # failure probability is exactly zero — never a certificate.
        np.clip(points, 0.0, 1.0, out=points)
        float32 = precision == "float32"
        values = _pairs_f(
            flat_ns.reshape(count, width)[open_idx].ravel(),
            points.ravel(),
            np.repeat(mids[open_idx], width),
            _ADVISORY_SIGMAS,
            _ADVISORY_SLACK,
            precision,
            None,
            float32,
        )
        if float32:
            values, tier_bound = values
            tier_bound = tier_bound.reshape(len(open_idx), width)
        values = values.reshape(len(open_idx), width)
        witnessed = np.any(values > delta, axis=1)
        # Tiny guard above delta: the advisory window under-estimates by
        # up to ~1e-14, so a razor-thin exceedance is not certified.  The
        # float32 tier must additionally clear its derived error bound
        # before its exceedance counts as a certificate.
        certifiable = values[:, :n_center]
        if float32:
            certifiable = certifiable - tier_bound[:, :n_center]
        lattice_certified = np.any(certifiable > delta + 1e-12, axis=1)
        certified_idx = open_idx[lattice_certified]
        sound_lo[certified_idx] = np.maximum(
            sound_lo[certified_idx], mids[certified_idx]
        )
        lo[open_idx[witnessed]] = mids[open_idx[witnessed]]
        hi[open_idx[~witnessed]] = mids[open_idx[~witnessed]]
    return hi, sound_lo


_TIGHT_EPSILON_MANY_CACHE = register_cache(
    "stats.tight_bounds.tight_epsilon_many", LRUCache(maxsize=256)
)


def tight_epsilon_many(
    ns,
    delta: float,
    *,
    tol: float = 1e-6,
    grid: int = 256,
    refine: int = 2,
    precision: str = "float64",
) -> np.ndarray:
    """:func:`tight_epsilon` for a whole vector of testset sizes at once.

    Built for sharded planning services that size many testsets per
    request: instead of ``len(ns)`` independent epsilon bisections (each
    ~20 full worst-case scans), the batched planner runs three lockstep
    phases over all sizes simultaneously —

    1. a normal-approximation seed plus one *recording* trajectory scan
       per size, collecting the top worst-case ``p`` anchors;
    2. a cheap bisection on the cutoff-tracking witness maximum (the
       anchors translated along the ``p = k/n ± eps`` cutoff lines),
       which positions the crossing to within a few ``tol`` using probes
       that cost a few dozen points instead of full scans;
    3. a certification pass with genuine trajectory probes
       (:func:`exceeds_delta_many`): the returned epsilon is certified
       not-exceeding, and a point at most ``tol`` below it is certified
       exceeding — the same bracket contract the scalar bisection
       provides, so every element agrees with scalar/batch
       :func:`tight_epsilon` within ``tol``.

    Results are memoized per ``(ns, delta, tol, grid, refine, precision)``
    and each element feeds the warm-start anchor registry used by
    :func:`tight_epsilon`.

    ``precision="float32"`` runs the *advisory* phases (recording scans,
    witness bisection) in the half-width tier; the certification pass is
    always float64, so the returned epsilons carry exactly the same
    probe-certificate contract as the default tier (certified
    not-exceeding, with a point at most ``tol`` below certified
    exceeding) — they may differ from the float64 sweep only within
    ``tol``, never in what they guarantee.
    """
    _check_precision(precision)
    ns_arr = _validate_sweep_sizes(ns, delta, tol)
    if ns_arr.size == 0:
        return np.zeros(0, dtype=np.float64)
    cached = _TIGHT_EPSILON_MANY_CACHE.get(
        (tuple(ns_arr.tolist()), delta, tol, grid, refine, precision)
    )
    if cached is not None:
        return cached.copy()
    return _compute_epsilon_sweep(ns_arr, delta, tol, grid, refine, precision)


def _compute_epsilon_sweep(
    ns_arr: np.ndarray,
    delta: float,
    tol: float,
    grid: int,
    refine: int,
    precision: str = "float64",
) -> np.ndarray:
    """Run and memoize a sweep, *without* probing the cache first.

    Callers (the public function above, the parallel executor's serial
    fallback) own the single recorded cache lookup per logical call, so
    the operator-visible hit/miss counters stay one-to-one with calls.
    ``ns_arr`` must already be validated.
    """
    unique, inverse = np.unique(ns_arr, return_inverse=True)
    eps_unique = _tight_epsilon_many_impl(unique, delta, tol, grid, refine, precision)
    key = (tuple(ns_arr.tolist()), delta, tol, grid, refine, precision)
    return _adopt_sweep(key, unique, inverse, eps_unique)


def _validate_sweep_sizes(ns, delta: float, tol: float) -> np.ndarray:
    ns_arr = np.atleast_1d(np.asarray(ns)).astype(np.int64)
    if ns_arr.ndim != 1:
        raise InvalidParameterError("ns must be one-dimensional")
    if ns_arr.size and np.any(ns_arr < 1):
        raise InvalidParameterError("ns must contain positive integers")
    check_probability(delta, "delta")
    check_positive(tol, "tol")
    return ns_arr


def _adopt_sweep(
    key: tuple, unique: np.ndarray, inverse: np.ndarray, eps_unique: np.ndarray
) -> np.ndarray:
    """Memoize a finished sweep and plant its anchors (the serial tail).

    Anchors are warm-start advice shared across precision tiers (any
    certified epsilon positions a nearby bracket equally well), so the
    anchor key deliberately omits the tier.
    """
    result = eps_unique[inverse]
    _, delta, tol, grid, refine, _precision = key
    anchor_key = (delta, tol, grid, refine)
    for n, eps in zip(unique.tolist(), eps_unique.tolist()):
        _record_anchor(int(n), float(eps), anchor_key)
    stored = result.copy()
    stored.flags.writeable = False
    _TIGHT_EPSILON_MANY_CACHE.put(key, stored)
    return result


def cached_epsilon_sweep(
    ns,
    delta: float,
    *,
    tol: float = 1e-6,
    grid: int = 256,
    refine: int = 2,
    precision: str = "float64",
) -> np.ndarray | None:
    """The memoized :func:`tight_epsilon_many` result, or ``None``.

    A pure lookup — never computes — but a *counted* one: it records the
    hit or miss a logical sweep request implies.  The parallel executor
    consults this before paying shard dispatch for a sweep the process
    already owns (and then computes probe-free, so each executor call
    still records exactly one lookup).
    """
    _check_precision(precision)
    ns_arr = _validate_sweep_sizes(ns, delta, tol)
    if ns_arr.size == 0:
        return np.zeros(0, dtype=np.float64)
    cached = _TIGHT_EPSILON_MANY_CACHE.get(
        (tuple(ns_arr.tolist()), delta, tol, grid, refine, precision)
    )
    return cached.copy() if cached is not None else None


def adopt_epsilon_sweep(
    ns,
    delta: float,
    unique,
    eps_unique,
    *,
    tol: float = 1e-6,
    grid: int = 256,
    refine: int = 2,
    precision: str = "float64",
) -> np.ndarray:
    """Adopt a sweep computed elsewhere (worker shards) as if run serially.

    ``unique`` must be exactly ``np.unique(ns)`` and ``eps_unique`` its
    per-size epsilons (the concatenation of shard results).  Plants the
    same anchors, memoizes under the same key, and returns the same
    per-request vector the serial :func:`tight_epsilon_many` would —
    element-wise identical because the underlying kernels are
    batch-composition invariant.
    """
    _check_precision(precision)
    ns_arr = _validate_sweep_sizes(ns, delta, tol)
    unique_arr = np.asarray(unique, dtype=np.int64)
    eps_arr = np.asarray(eps_unique, dtype=np.float64)
    expected, inverse = np.unique(ns_arr, return_inverse=True)
    if not np.array_equal(expected, unique_arr):
        raise InvalidParameterError(
            "adopt_epsilon_sweep: unique does not match np.unique(ns)"
        )
    if eps_arr.shape != unique_arr.shape:
        raise InvalidParameterError(
            "adopt_epsilon_sweep: eps_unique must align with unique"
        )
    key = (tuple(ns_arr.tolist()), delta, tol, grid, refine, precision)
    return _adopt_sweep(key, unique_arr, inverse, eps_arr)


# ---------------------------------------------------------------------------
# Shard planning (the parallel executor's work splitter)
# ---------------------------------------------------------------------------

def estimate_probe_cost(ns, *, grid: int = 256, refine: int = 2) -> np.ndarray:
    """Relative cost estimate of one testset size's share of a sweep.

    The work per probe is dominated by the tail-window pmf matrix —
    ``grid + 1`` candidate means times an ``O(sqrt(n))`` window per
    refinement level — so cost scales as
    ``(refine + 1) * (grid + 1) * sqrt(n)``.  Only the ratios matter:
    the shard planner balances cost *sums* across chunks.
    """
    ns_arr = np.atleast_1d(np.asarray(ns, dtype=np.float64))
    return (refine + 1.0) * (grid + 1.0) * np.sqrt(ns_arr)


def epsilon_sweep_shards(
    ns, shards: int, *, grid: int = 256, refine: int = 2
) -> list[np.ndarray]:
    """Contiguous, cost-balanced partition of the unique testset sizes.

    Returns at most ``shards`` non-empty int64 arrays whose concatenation
    is exactly ``np.unique(ns)``; chunk boundaries are placed so each
    chunk carries a near-equal share of :func:`estimate_probe_cost`.
    Because the planning kernels are batch-composition invariant, each
    shard's lockstep scan is bit-identical to its rows of the full serial
    scan — stitching shard results back together reproduces the serial
    sweep element-wise, whatever the partition.
    """
    if shards < 1:
        raise InvalidParameterError(f"shards must be >= 1, got {shards}")
    unique = np.unique(np.atleast_1d(np.asarray(ns)).astype(np.int64))
    if unique.size == 0:
        return []
    shards = min(int(shards), len(unique))
    cost = estimate_probe_cost(unique, grid=grid, refine=refine)
    cum = np.cumsum(cost)
    targets = cum[-1] * np.arange(1, shards) / shards
    # A size stays in the left chunk while its cumulative cost fits the
    # chunk's target; duplicate or degenerate boundaries collapse to
    # fewer (never empty) shards.
    bounds = np.searchsorted(cum, targets, side="right")
    return [piece for piece in np.split(unique, bounds) if len(piece)]


def _tight_epsilon_many_impl(
    unique: np.ndarray,
    delta: float,
    tol: float,
    grid: int,
    refine: int,
    precision: str = "float64",
) -> np.ndarray:
    count = len(unique)
    nf = unique.astype(np.float64)
    hoeffding = np.sqrt(math.log(2.0 / delta) / (2.0 * nf))
    upper = np.minimum(1.0, hoeffding)  # certified not-exceeding (Hoeffding)
    # Normal-approximation seed for the recording scans: worst case near
    # p = 1/2, eps ~ z_{1-delta/2} / (2 sqrt(n)).
    z = NormalDist().inv_cdf(1.0 - delta / 2.0)
    seeds = np.minimum(upper * (1.0 - 1e-9), z / (2.0 * np.sqrt(nf)))
    seeds = np.maximum(seeds, np.minimum(0.5, 1.0 / nf))

    anchors = _record_scan_anchors(
        unique, seeds, delta, grid, refine, top_k=8, precision=precision
    )
    step0 = (1.0 - 0.0) / grid
    center = grid // 2
    center_points = np.array(
        [(center + o) * step0 for o in (-2, -1, 0, 1, 2)], dtype=np.float64
    )
    bracket_lo = np.maximum(0.0, seeds - 4096.0 * tol)
    bracket_hi = np.minimum(upper, seeds + 4096.0 * tol)
    bracket_hi = np.maximum(bracket_hi, np.minimum(upper, 2.0 * seeds))
    estimate, sound_lo = _tracked_witness_crossing(
        unique,
        anchors,
        seeds,
        center_points,
        delta,
        bracket_lo,
        bracket_hi,
        tol / 4.0,
        precision,
    )

    # Certification: find, per n, an epsilon whose trajectory probe is
    # False while tol below it is True.  These probes (and the certified
    # bisection below) always run at the default float64 tier — whatever
    # precision steered the advisory phases above, adopted results are
    # certified, not trusted.  Sizes whose tracked phase
    # produced a *lattice* exceedance already own a sound lower
    # certificate (however far below the estimate it sits — the certified
    # bisection below closes the bracket in lockstep); the rest probe the
    # expected bracket directly, galloping on the rare misses.
    lo_cert = np.full(count, -1.0)  # certified exceeding (or 0 = by convention)
    hi_cert = np.full(count, -1.0)  # certified not exceeding
    lo_try = np.maximum(estimate - 0.75 * tol, 0.0)
    hi_try = estimate.copy()
    prefilled = np.isfinite(sound_lo) & (sound_lo >= 0.0)
    lo_cert[prefilled] = sound_lo[prefilled]
    gallop = np.full(count, 16.0 * tol)
    for _ in range(64):  # far above any realistic repair depth
        need_lo = lo_cert < 0.0
        need_hi = hi_cert < 0.0
        # By convention epsilon 0 is "exceeding" (the scalar bisection
        # never probes its lower bracket end either).
        trivial = need_lo & (lo_try <= 0.0)
        lo_cert[trivial] = 0.0
        need_lo = lo_cert < 0.0
        if not (np.any(need_lo) or np.any(need_hi)):
            break
        probe_ns = np.concatenate([unique[need_lo], unique[need_hi]])
        probe_eps = np.concatenate([lo_try[need_lo], hi_try[need_hi]])
        exceeded = exceeds_delta_many(
            probe_ns,
            probe_eps,
            delta,
            grid=grid,
            refine=refine,
            window_sigmas=_VERIFY_SIGMAS,
            window_slack=_VERIFY_SLACK,
        )
        lo_half = exceeded[: int(np.sum(need_lo))]
        hi_half = exceeded[int(np.sum(need_lo)):]
        lo_idx = np.flatnonzero(need_lo)
        hi_idx = np.flatnonzero(need_hi)
        # Lower certificates: exceeding probes certify; non-exceeding ones
        # tighten the upper certificate and gallop further down.
        for j, i in enumerate(lo_idx.tolist()):
            if lo_half[j]:
                lo_cert[i] = lo_try[i]
            else:
                hi_cert[i] = min(hi_cert[i], lo_try[i]) if hi_cert[i] >= 0 else lo_try[i]
                lo_try[i] = max(0.0, lo_try[i] - gallop[i])
                gallop[i] *= 4.0
        for j, i in enumerate(hi_idx.tolist()):
            if not hi_half[j]:
                hi_cert[i] = hi_try[i]
            else:
                lo_cert[i] = max(lo_cert[i], hi_try[i])
                hi_try[i] = min(1.0, hi_try[i] + gallop[i])
                gallop[i] *= 4.0
    else:  # pragma: no cover - defensive
        raise InvalidParameterError("tight_epsilon_many certification diverged")

    # Narrow any bracket still wider than tol with certified bisection.
    while True:
        wide = (hi_cert - lo_cert) > tol
        if not np.any(wide):
            break
        mids = (lo_cert + hi_cert) / 2.0
        exceeded = exceeds_delta_many(
            unique[wide],
            mids[wide],
            delta,
            grid=grid,
            refine=refine,
            window_sigmas=_VERIFY_SIGMAS,
            window_slack=_VERIFY_SLACK,
        )
        idx = np.flatnonzero(wide)
        for j, i in enumerate(idx.tolist()):
            if exceeded[j]:
                lo_cert[i] = mids[i]
            else:
                hi_cert[i] = mids[i]
    return hi_cert
