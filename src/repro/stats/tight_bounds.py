"""Tight numerical sample-size bounds via exact binomial computation.

Section 4.3 of the paper sketches the final optimization: for conditions
over ``n`` i.i.d. Bernoulli draws, compute the *exact* minimal testset size
by working with the Binomial probability mass function directly instead of
a concentration bound, minimizing over the worst-case unknown true mean
``p``.  The paper leaves efficient approximations as future work; here we
implement the exact computation (it is perfectly tractable at the testset
sizes in play) so it can serve both as an optional estimator backend and as
the ground truth the analytic bounds are compared against in the ablation
benchmarks.

Definitions
-----------
For sample size ``n`` and tolerance ``epsilon``, the *coverage failure
probability* at true mean ``p`` is

.. math:: f(n, p) = \\Pr\\big[\\, |\\hat p - p| > \\epsilon \\,\\big],
          \\qquad \\hat p = \\text{Binomial}(n, p)/n .

The tight sample size is the minimal ``n`` with
``max_p f(n, p) <= delta``.  ``f(n, ·)`` is piecewise smooth with local
maxima near the boundaries of the rounding grid, so the inner maximization
scans a grid of candidate ``p`` refined around the argmax; the outer search
is a doubling-then-bisection search, valid because ``max_p f(n, p)`` is
(weakly) decreasing in ``n`` along the search trajectory.
"""

from __future__ import annotations

import math

from repro.exceptions import InvalidParameterError
from repro.stats.binomial import binom_cdf, binom_sf
from repro.utils.validation import check_positive, check_positive_int, check_probability

__all__ = [
    "exact_coverage_failure_probability",
    "worst_case_failure_probability",
    "tight_sample_size",
    "tight_epsilon",
]


def exact_coverage_failure_probability(n: int, p: float, epsilon: float) -> float:
    """Exact ``Pr[|Binomial(n,p)/n - p| > epsilon]``.

    The event is ``k < n(p - epsilon)`` or ``k > n(p + epsilon)``; both
    tails are computed with the exact binomial CDF/SF.
    """
    n = check_positive_int(n, "n")
    check_positive(epsilon, "epsilon")
    if not 0.0 <= p <= 1.0:
        raise InvalidParameterError(f"p must be in [0, 1], got {p}")
    lo_cut = math.ceil(n * (p - epsilon) - 1e-12) - 1  # largest k with k/n < p - eps
    hi_cut = math.floor(n * (p + epsilon) + 1e-12) + 1  # smallest k with k/n > p + eps
    prob = 0.0
    if lo_cut >= 0:
        prob += binom_cdf(min(lo_cut, n), n, p)
    if hi_cut <= n:
        prob += binom_sf(hi_cut - 1, n, p)
    return min(1.0, prob)


def worst_case_failure_probability(
    n: int, epsilon: float, *, grid: int = 512, refine: int = 3
) -> float:
    """``max_p Pr[|hat p - p| > epsilon]`` over the unknown true mean.

    Scans an initial uniform grid over ``[0, 1]`` and then refines around
    the best cell ``refine`` times.  With ``grid=512`` the result is exact
    to well below the tolerance at which it is consumed (the outer search
    only needs to compare against ``delta``).
    """
    n = check_positive_int(n, "n")
    check_positive(epsilon, "epsilon")
    lo, hi = 0.0, 1.0
    best_p, best_f = 0.5, 0.0
    for _ in range(refine + 1):
        step = (hi - lo) / grid
        for i in range(grid + 1):
            p = lo + i * step
            f = exact_coverage_failure_probability(n, p, epsilon)
            if f > best_f:
                best_f, best_p = f, p
        lo = max(0.0, best_p - 2 * step)
        hi = min(1.0, best_p + 2 * step)
    return best_f


def tight_sample_size(
    epsilon: float,
    delta: float,
    *,
    grid: int = 256,
    refine: int = 2,
    n_hint: int | None = None,
) -> int:
    """Minimal ``n`` with worst-case coverage failure at most ``delta``.

    This is the Section 4.3 "tight numerical bound" for a single Bernoulli
    mean.  It is never larger than the two-sided Hoeffding sample size (the
    test suite asserts this), and is typically 10–40% smaller.

    Parameters
    ----------
    epsilon, delta:
        Tolerance and failure probability of the guarantee.
    grid, refine:
        Resolution of the inner worst-case-``p`` search.
    n_hint:
        Optional starting point for the search (e.g. the Hoeffding size);
        when omitted, the two-sided Hoeffding size is used as the upper
        anchor.
    """
    check_positive(epsilon, "epsilon")
    check_probability(delta, "delta")
    if epsilon >= 1.0:
        return 1
    hoeffding_n = int(math.ceil(math.log(2.0 / delta) / (2.0 * epsilon * epsilon)))
    hi = max(1, n_hint or hoeffding_n)
    # Ensure hi is feasible (it should be, Hoeffding dominates); expand if not.
    while worst_case_failure_probability(hi, epsilon, grid=grid, refine=refine) > delta:
        hi *= 2
        if hi > 1 << 34:  # pragma: no cover - defensive
            raise InvalidParameterError("tight_sample_size search diverged")
    lo = 1
    # Bisection: worst-case failure is monotone (weakly) decreasing in n on
    # the scales of interest; the final verification step guards against the
    # small non-monotonic ripples of the discrete distribution.
    while lo < hi:
        mid = (lo + hi) // 2
        if worst_case_failure_probability(mid, epsilon, grid=grid, refine=refine) <= delta:
            hi = mid
        else:
            lo = mid + 1
    # Walk forward over possible ripples.
    n = hi
    while worst_case_failure_probability(n, epsilon, grid=grid, refine=refine) > delta:
        n += 1  # pragma: no cover - rarely triggered
    return n


def tight_epsilon(
    n: int, delta: float, *, tol: float = 1e-6, grid: int = 256, refine: int = 2
) -> float:
    """Smallest tolerance guaranteed by ``n`` samples at failure prob ``delta``.

    Bisection on ``epsilon``; the failure probability is decreasing in
    ``epsilon``.
    """
    n = check_positive_int(n, "n")
    check_probability(delta, "delta")
    lo, hi = 0.0, 1.0
    while hi - lo > tol:
        mid = (lo + hi) / 2.0
        if worst_case_failure_probability(n, mid, grid=grid, refine=refine) <= delta:
            hi = mid
        else:
            lo = mid
    return hi
