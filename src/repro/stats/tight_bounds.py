"""Tight numerical sample-size bounds via exact binomial computation.

Section 4.3 of the paper sketches the final optimization: for conditions
over ``n`` i.i.d. Bernoulli draws, compute the *exact* minimal testset size
by working with the Binomial probability mass function directly instead of
a concentration bound, minimizing over the worst-case unknown true mean
``p``.  The paper leaves efficient approximations as future work; here we
implement the exact computation (it is perfectly tractable at the testset
sizes in play) so it can serve both as an optional estimator backend and as
the ground truth the analytic bounds are compared against in the ablation
benchmarks.

Definitions
-----------
For sample size ``n`` and tolerance ``epsilon``, the *coverage failure
probability* at true mean ``p`` is

.. math:: f(n, p) = \\Pr\\big[\\, |\\hat p - p| > \\epsilon \\,\\big],
          \\qquad \\hat p = \\text{Binomial}(n, p)/n .

The tight sample size is the minimal ``n`` with
``max_p f(n, p) <= delta``.  ``f(n, ·)`` is piecewise smooth with local
maxima near the boundaries of the rounding grid, so the inner maximization
scans a grid of candidate ``p`` refined around the argmax; the outer search
is a doubling-then-bisection search, valid because ``max_p f(n, p)`` is
(weakly) decreasing in ``n`` along the search trajectory.

Backends and caching
--------------------
Every entry point accepts ``backend="batch"`` (default) or
``backend="scalar"``:

* ``"batch"`` runs the grid scans through the NumPy kernels in
  :mod:`repro.stats.batch` — the whole worst-case-``p`` grid is evaluated
  as one windowed pmf matrix, and bisection probes short-circuit as soon
  as any grid point already exceeds ``delta`` (sound: the scan only ever
  *adds* candidate maxima, so crossing the threshold early settles the
  comparison the probe asked for).  The grid trajectory (grid points,
  refinement windows, argmax tie-breaks) is identical to the scalar path,
  so both backends return the same sample sizes; the benchmark suite
  enforces a >= 20x speedup at paper-scale parameters.
* ``"scalar"`` is the original pure-Python loop over
  :func:`repro.stats.binomial.binom_cdf`, kept verbatim as the reference
  implementation the batch kernels are cross-checked (and benchmarked)
  against.

Results of :func:`tight_sample_size`, :func:`tight_epsilon` and the batch
worst-case scans are memoized process-wide through
:mod:`repro.stats.cache` — a CI service re-planning the same condition on
every commit hits the cache instead of re-running the search.  Use
:func:`repro.stats.cache.clear_all_caches` for cold-start benchmarks.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.stats.batch import exact_coverage_failure_probability_vec
from repro.stats.binomial import binom_cdf, binom_sf
from repro.stats.cache import memoize
from repro.utils.validation import check_positive, check_positive_int, check_probability

__all__ = [
    "exact_coverage_failure_probability",
    "worst_case_failure_probability",
    "tight_sample_size",
    "tight_epsilon",
]

_BACKENDS = ("batch", "scalar")


def _check_backend(backend: str) -> str:
    if backend not in _BACKENDS:
        raise InvalidParameterError(
            f"backend must be one of {_BACKENDS}, got {backend!r}"
        )
    return backend


def exact_coverage_failure_probability(n: int, p: float, epsilon: float) -> float:
    """Exact ``Pr[|Binomial(n,p)/n - p| > epsilon]``.

    The event is ``k < n(p - epsilon)`` or ``k > n(p + epsilon)``; both
    tails are computed with the exact binomial CDF/SF.  (This is the
    scalar reference; the planning loops use
    :func:`repro.stats.batch.exact_coverage_failure_probability_vec`.)
    """
    n = check_positive_int(n, "n")
    check_positive(epsilon, "epsilon")
    if not 0.0 <= p <= 1.0:
        raise InvalidParameterError(f"p must be in [0, 1], got {p}")
    lo_cut = math.ceil(n * (p - epsilon) - 1e-12) - 1  # largest k with k/n < p - eps
    hi_cut = math.floor(n * (p + epsilon) + 1e-12) + 1  # smallest k with k/n > p + eps
    prob = 0.0
    if lo_cut >= 0:
        prob += binom_cdf(min(lo_cut, n), n, p)
    if hi_cut <= n:
        prob += binom_sf(hi_cut - 1, n, p)
    return min(1.0, prob)


# ---------------------------------------------------------------------------
# Worst-case scans
# ---------------------------------------------------------------------------

def _scan_scalar(n: int, epsilon: float, grid: int, refine: int) -> tuple[float, float]:
    """The original pure-Python grid scan (reference implementation)."""
    lo, hi = 0.0, 1.0
    best_p, best_f = 0.5, 0.0
    for _ in range(refine + 1):
        step = (hi - lo) / grid
        for i in range(grid + 1):
            p = lo + i * step
            f = exact_coverage_failure_probability(n, p, epsilon)
            if f > best_f:
                best_f, best_p = f, p
        lo = max(0.0, best_p - 2 * step)
        hi = min(1.0, best_p + 2 * step)
    return best_f, best_p


def _scan_batch(
    n: int,
    epsilon: float,
    grid: int,
    refine: int,
    stop_above: float | None = None,
) -> tuple[float, float]:
    """Vectorized grid scan walking the *same* trajectory as the scalar one.

    Grid points are generated with the identical floating-point arithmetic
    (``lo + i * step``) and the running argmax uses the same
    first-strict-improvement tie-break, so refinement windows — and hence
    results — track the scalar scan.  When ``stop_above`` is given the
    scan returns as soon as the running maximum exceeds it (refinement
    only ever raises the maximum, so the caller's threshold comparison is
    already decided).
    """
    lo, hi = 0.0, 1.0
    best_p, best_f = 0.5, 0.0
    for _ in range(refine + 1):
        step = (hi - lo) / grid
        p = lo + np.arange(grid + 1) * step
        f = exact_coverage_failure_probability_vec(n, p, epsilon)
        i = int(np.argmax(f))
        if f[i] > best_f:
            best_f, best_p = float(f[i]), float(p[i])
        if stop_above is not None and best_f > stop_above:
            return best_f, best_p
        lo = max(0.0, best_p - 2 * step)
        hi = min(1.0, best_p + 2 * step)
    return best_f, best_p


@memoize("stats.tight_bounds.worst_case", maxsize=8192)
def _worst_case_cached(
    n: int, epsilon: float, grid: int, refine: int
) -> tuple[float, float]:
    return _scan_batch(n, epsilon, grid, refine)


def worst_case_failure_probability(
    n: int, epsilon: float, *, grid: int = 512, refine: int = 3, backend: str = "batch"
) -> float:
    """``max_p Pr[|hat p - p| > epsilon]`` over the unknown true mean.

    Scans an initial uniform grid over ``[0, 1]`` and then refines around
    the best cell ``refine`` times.  With ``grid=512`` the result is exact
    to well below the tolerance at which it is consumed (the outer search
    only needs to compare against ``delta``).  The batch backend is
    memoized per ``(n, epsilon, grid, refine)``.
    """
    n = check_positive_int(n, "n")
    check_positive(epsilon, "epsilon")
    if _check_backend(backend) == "scalar":
        return _scan_scalar(n, epsilon, grid, refine)[0]
    return _worst_case_cached(n, epsilon, grid, refine)[0]


@memoize("stats.tight_bounds.exceeds_delta", maxsize=16384)
def _exceeds_delta_batch(
    n: int, epsilon: float, delta: float, grid: int, refine: int
) -> bool:
    """Does ``max_p f(n, p)`` exceed ``delta``?  (Early-exit batch scan.)"""
    best_f, _ = _scan_batch(n, epsilon, grid, refine, stop_above=delta)
    return best_f > delta


# ---------------------------------------------------------------------------
# Outer searches
# ---------------------------------------------------------------------------

@memoize("stats.tight_bounds.tight_sample_size", maxsize=4096)
def _tight_sample_size_cached(
    epsilon: float, delta: float, grid: int, refine: int, backend: str, hint: int
) -> int:
    if backend == "scalar":
        def exceeds(n: int) -> bool:
            return _scan_scalar(n, epsilon, grid, refine)[0] > delta
    else:
        def exceeds(n: int) -> bool:
            return _exceeds_delta_batch(n, epsilon, delta, grid, refine)

    hi = hint
    # Ensure hi is feasible (it should be, Hoeffding dominates); expand if not.
    while exceeds(hi):
        hi *= 2
        if hi > 1 << 34:  # pragma: no cover - defensive
            raise InvalidParameterError("tight_sample_size search diverged")
    lo = 1
    # Bisection: worst-case failure is monotone (weakly) decreasing in n on
    # the scales of interest; the final verification step guards against the
    # small non-monotonic ripples of the discrete distribution.
    while lo < hi:
        mid = (lo + hi) // 2
        if not exceeds(mid):
            hi = mid
        else:
            lo = mid + 1
    # Walk forward over possible ripples.
    n = hi
    while exceeds(n):
        n += 1  # pragma: no cover - rarely triggered
    return n


def tight_sample_size(
    epsilon: float,
    delta: float,
    *,
    grid: int = 256,
    refine: int = 2,
    n_hint: int | None = None,
    backend: str = "batch",
) -> int:
    """Minimal ``n`` with worst-case coverage failure at most ``delta``.

    This is the Section 4.3 "tight numerical bound" for a single Bernoulli
    mean.  It is never larger than the two-sided Hoeffding sample size (the
    test suite asserts this), and is typically 10–40% smaller.

    Parameters
    ----------
    epsilon, delta:
        Tolerance and failure probability of the guarantee.
    grid, refine:
        Resolution of the inner worst-case-``p`` search.
    n_hint:
        Optional starting point for the search (e.g. the Hoeffding size);
        when omitted, the two-sided Hoeffding size is used as the upper
        anchor.  The hint only seeds the search — the returned minimum is
        independent of it, so cached results ignore it.
    backend:
        ``"batch"`` (vectorized, memoized; the default) or ``"scalar"``
        (the pure-Python reference).  Both return the same ``n``.
    """
    check_positive(epsilon, "epsilon")
    check_probability(delta, "delta")
    _check_backend(backend)
    if epsilon >= 1.0:
        return 1
    hoeffding_n = int(math.ceil(math.log(2.0 / delta) / (2.0 * epsilon * epsilon)))
    hint = max(1, n_hint or hoeffding_n)
    if n_hint is None or n_hint == hoeffding_n:
        # The common, hint-free call: one shared cache entry.
        return _tight_sample_size_cached(
            epsilon, delta, grid, refine, backend, max(1, hoeffding_n)
        )
    # A custom hint changes the probe trajectory but not the answer; bypass
    # the memo (still benefiting from the per-probe caches) so the cache
    # never depends on hints.
    return _tight_sample_size_cached.__wrapped__(
        epsilon, delta, grid, refine, backend, hint
    )


@memoize("stats.tight_bounds.tight_epsilon", maxsize=4096)
def _tight_epsilon_cached(
    n: int, delta: float, tol: float, grid: int, refine: int, backend: str
) -> float:
    lo, hi = 0.0, 1.0
    while hi - lo > tol:
        mid = (lo + hi) / 2.0
        if backend == "scalar":
            exceeds = _scan_scalar(n, mid, grid, refine)[0] > delta
        else:
            exceeds = _exceeds_delta_batch(n, mid, delta, grid, refine)
        if not exceeds:
            hi = mid
        else:
            lo = mid
    return hi


def tight_epsilon(
    n: int,
    delta: float,
    *,
    tol: float = 1e-6,
    grid: int = 256,
    refine: int = 2,
    backend: str = "batch",
) -> float:
    """Smallest tolerance guaranteed by ``n`` samples at failure prob ``delta``.

    Bisection on ``epsilon``; the failure probability is decreasing in
    ``epsilon``.  Memoized per ``(n, delta, tol, grid, refine, backend)``.
    """
    n = check_positive_int(n, "n")
    check_probability(delta, "delta")
    _check_backend(backend)
    return _tight_epsilon_cached(n, delta, tol, grid, refine, backend)
