"""Exact binomial machinery, built from scratch on log-gamma.

Section 4.3 of the paper observes that for test conditions over i.i.d.
Bernoulli draws, the Hoeffding/Bennett bounds can be replaced by *tight
numerical bounds* computed directly from the Binomial distribution.  This
module provides the required machinery:

* numerically stable ``log pmf`` / ``pmf`` / ``cdf`` / ``sf`` implemented
  from first principles (log-gamma), cross-checked against
  :mod:`scipy.stats` in the test suite;
* **Clopper–Pearson** exact confidence intervals for a Bernoulli mean;
* **binomial tail inversion** in the style of Langford's "practical
  prediction theory" tutorial (the paper's reference [10]): the largest /
  smallest true mean consistent with an observation at confidence
  ``1 - delta``.

This module is deliberately scalar: one ``(n, k, p)`` triple at a time,
full float64 precision via ``math.lgamma``, no array dependencies — it is
the *reference implementation* the batched machinery is checked against.
The planning hot path (the §4.3 worst-case-``p`` grid scans in
:mod:`repro.stats.tight_bounds`) runs on the NumPy kernels in
:mod:`repro.stats.batch` instead, which share one process-wide
log-factorial table (built with the same ``math.lgamma``), evaluate whole
grids per call, and agree with these functions to ``<= 1e-10`` (enforced
by ``tests/stats/test_batch.py``).  Results of the expensive searches are
memoized through :mod:`repro.stats.cache`; see
:func:`repro.stats.cache.clear_all_caches` for invalidation.
"""

from __future__ import annotations

import math

from repro.exceptions import InvalidParameterError
from repro.utils.validation import check_fraction, check_positive_int, check_probability

__all__ = [
    "binom_logpmf",
    "binom_pmf",
    "binom_cdf",
    "binom_sf",
    "clopper_pearson_interval",
    "binomial_tail_inversion_upper",
    "binomial_tail_inversion_lower",
]


def _check_nk(n: int, k: int) -> tuple[int, int]:
    n = check_positive_int(n, "n")
    if not isinstance(k, int):
        raise InvalidParameterError(f"k must be an integer, got {k!r}")
    if not 0 <= k <= n:
        raise InvalidParameterError(f"k must be in [0, {n}], got {k}")
    return n, k


def binom_logpmf(k: int, n: int, p: float) -> float:
    """Natural log of ``Pr[Binomial(n, p) = k]``.

    Handles the boundary cases ``p in {0, 1}`` exactly (returning ``-inf``
    for impossible outcomes) and stays finite for all interior ``p``.
    """
    n, k = _check_nk(n, k)
    p = check_fraction(p, "p")
    if p == 0.0:
        return 0.0 if k == 0 else -math.inf
    if p == 1.0:
        return 0.0 if k == n else -math.inf
    log_comb = (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )
    return log_comb + k * math.log(p) + (n - k) * math.log1p(-p)


def binom_pmf(k: int, n: int, p: float) -> float:
    """``Pr[Binomial(n, p) = k]``."""
    lp = binom_logpmf(k, n, p)
    return 0.0 if lp == -math.inf else math.exp(lp)


def binom_cdf(k: int, n: int, p: float) -> float:
    """``Pr[Binomial(n, p) <= k]``.

    Computed by summing the pmf from the nearer tail for stability; the sum
    runs over at most ``n + 1`` terms, which is fine for the testset sizes
    this library manipulates (up to a few hundred thousand) since the pmf
    support effectively spans ``O(sqrt(n))`` terms — we exploit that by
    accumulating in the direction of increasing pmf and stopping once terms
    underflow.
    """
    n, k = _check_nk(n, k)
    p = check_fraction(p, "p")
    if k == n:
        return 1.0
    if p == 0.0:
        return 1.0
    if p == 1.0:
        return 0.0
    mean = n * p
    if k >= mean:
        # Sum the complementary (upper) tail, which is the smaller one.
        return max(0.0, 1.0 - _sum_pmf(k + 1, n, n, p))
    return min(1.0, _sum_pmf(0, k, n, p))


def binom_sf(k: int, n: int, p: float) -> float:
    """Survival function ``Pr[Binomial(n, p) > k]`` (strictly greater)."""
    n, k = _check_nk(n, k)
    p = check_fraction(p, "p")
    if k == n:
        return 0.0
    if p == 0.0:
        return 0.0
    if p == 1.0:
        return 1.0
    mean = n * p
    if k + 1 <= mean:
        return max(0.0, 1.0 - _sum_pmf(0, k, n, p))
    return min(1.0, _sum_pmf(k + 1, n, n, p))


def _sum_pmf(lo: int, hi: int, n: int, p: float) -> float:
    """Sum ``pmf(j)`` for ``j in [lo, hi]`` using a stable recurrence.

    Starts from the largest term in the window (closest to the mode) and
    expands outwards with the multiplicative pmf recurrence
    ``pmf(k+1)/pmf(k) = (n-k)/(k+1) * p/(1-p)``, accumulating until terms
    fall below float64 resolution of the partial sum.  This is O(window)
    but in practice touches only the numerically relevant core.
    """
    if lo > hi:
        return 0.0
    mode = min(max(int((n + 1) * p), lo), hi)
    anchor = binom_logpmf(mode, n, p)
    if anchor == -math.inf:
        return 0.0
    total = math.exp(anchor)
    ratio_up = p / (1.0 - p)
    # Expand upwards from the mode.
    term = math.exp(anchor)
    for j in range(mode, hi):
        term *= (n - j) / (j + 1.0) * ratio_up
        total += term
        if term < total * 1e-18:
            break
    # Expand downwards from the mode.
    term = math.exp(anchor)
    for j in range(mode, lo, -1):
        term *= j / (n - j + 1.0) / ratio_up
        total += term
        if term < total * 1e-18:
            break
    return total


# ---------------------------------------------------------------------------
# Exact confidence machinery
# ---------------------------------------------------------------------------

def binomial_tail_inversion_upper(k: int, n: int, delta: float, *, tol: float = 1e-12) -> float:
    """Largest mean ``p`` such that observing ``<= k`` successes is plausible.

    Returns ``max { p : Pr[Binomial(n, p) <= k] >= delta }`` — the exact
    one-sided upper confidence bound of Langford [10].  With probability at
    least ``1 - delta`` over the draw of the testset, the true mean is below
    the returned value.

    Solved by bisection on ``p``; ``binom_cdf(k, n, ·)`` is strictly
    decreasing in ``p`` so the root is unique.
    """
    n, k = _check_nk(n, k)
    delta = check_probability(delta, "delta")
    if k == n:
        return 1.0
    lo, hi = k / n, 1.0
    # cdf(k; n, lo) >= 1/2 >= delta (for delta < 1/2) at the MLE; guard anyway.
    if binom_cdf(k, n, lo) < delta:
        lo = 0.0
    while hi - lo > tol:
        mid = (lo + hi) / 2.0
        if binom_cdf(k, n, mid) >= delta:
            lo = mid
        else:
            hi = mid
    return lo


def binomial_tail_inversion_lower(k: int, n: int, delta: float, *, tol: float = 1e-12) -> float:
    """Smallest mean ``p`` such that observing ``>= k`` successes is plausible.

    Returns ``min { p : Pr[Binomial(n, p) >= k] >= delta }``; the symmetric
    one-sided lower confidence bound.
    """
    n, k = _check_nk(n, k)
    delta = check_probability(delta, "delta")
    if k == 0:
        return 0.0
    lo, hi = 0.0, k / n
    if binom_sf(k - 1, n, hi) < delta:
        hi = 1.0
    while hi - lo > tol:
        mid = (lo + hi) / 2.0
        if binom_sf(k - 1, n, mid) >= delta:
            hi = mid
        else:
            lo = mid
    return hi


def clopper_pearson_interval(k: int, n: int, delta: float) -> tuple[float, float]:
    """Exact two-sided ``1 - delta`` confidence interval for a Bernoulli mean.

    The classical Clopper–Pearson construction: each side inverts the
    corresponding binomial tail at level ``delta / 2``.  Guaranteed (if
    conservative) coverage for every true mean — the gold standard the
    Monte-Carlo validation harness checks the concentration bounds against.
    """
    n, k = _check_nk(n, k)
    delta = check_probability(delta, "delta")
    lower = binomial_tail_inversion_lower(k, n, delta / 2.0)
    upper = binomial_tail_inversion_upper(k, n, delta / 2.0)
    return lower, upper
