"""Adaptive-analysis substrate: the Ladder mechanism and testset attackers.

The fully-adaptive sample-size rule of Section 3.3 rests on a union bound
over the ``2^H`` possible feedback histories a deterministic developer can
observe.  This module provides the pieces needed to *validate that argument
empirically* (ablation E8-iv in DESIGN.md):

* :class:`Ladder` — the Blum–Hardt "Ladder" leaderboard mechanism the paper
  cites as inspiration: it releases the best-so-far score only when a
  submission improves by more than a step size, limiting information leak.
* :class:`ThresholdAttacker` — a deterministic adaptive developer that uses
  pass/fail feedback to overfit a *reused* testset: it submits random
  perturbations and keeps coordinates that flip the signal favourably.  A
  classic aggregation attack: on a testset sized for the non-adaptive
  guarantee it manufactures a model whose measured gain wildly exceeds its
  true gain; on a testset sized with the ``2^H`` budget it cannot.
* :class:`AdaptiveAttacker` — the generic driving loop, recording the gap
  between the attacker's *empirical* statistic and its *true* statistic.

These are simulation tools, not part of the user-facing CI API, but they
live in the library because the benchmarks and tests exercise them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import SimulationError
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_positive, check_positive_int

__all__ = ["Ladder", "ThresholdAttacker", "AdaptiveAttacker", "AttackTrace"]


class Ladder:
    """The Ladder mechanism of Blum & Hardt (2015).

    Maintains a best-so-far score ``R``; a new submission's score is
    released (rounded to the step size) only if it exceeds ``R`` by at
    least ``step_size``, otherwise the previous best is repeated.  This
    caps the information each submission can extract from the holdout and
    yields ``O(log^{1/3}(H)/n^{1/3})`` leaderboard error, uniformly over
    adaptively chosen submissions.

    Parameters
    ----------
    step_size:
        The improvement threshold ``eta``; the Blum–Hardt analysis suggests
        ``eta ~ (log(H)/n)^{1/3}``.
    """

    def __init__(self, step_size: float):
        self.step_size = check_positive(step_size, "step_size")
        self._best = -np.inf
        self._history: list[float] = []

    @property
    def best(self) -> float:
        """Best released score so far (``-inf`` before any submission)."""
        return self._best

    @property
    def history(self) -> list[float]:
        """Released score after each submission, in order."""
        return list(self._history)

    def submit(self, empirical_score: float) -> float:
        """Score a submission and return the released leaderboard value."""
        if empirical_score >= self._best + self.step_size:
            # Round to the step grid so the release leaks at most
            # log2(1/step) bits, as in the original mechanism.
            released = round(empirical_score / self.step_size) * self.step_size
            self._best = released
        self._history.append(self._best)
        return self._best


@dataclass
class AttackTrace:
    """Outcome of an adaptive attack against a reused testset.

    Attributes
    ----------
    empirical_scores:
        The attacker's measured statistic after each accepted step.
    true_scores:
        The corresponding population statistic (known to the simulation).
    queries:
        Total number of pass/fail queries issued.
    """

    empirical_scores: list[float] = field(default_factory=list)
    true_scores: list[float] = field(default_factory=list)
    queries: int = 0

    @property
    def final_overfit_gap(self) -> float:
        """Final ``empirical - true`` gap — the quantity the (eps, delta)
        guarantee is supposed to keep below eps."""
        if not self.empirical_scores:
            return 0.0
        return self.empirical_scores[-1] - self.true_scores[-1]

    @property
    def max_overfit_gap(self) -> float:
        """Largest gap observed anywhere along the attack."""
        if not self.empirical_scores:
            return 0.0
        gaps = np.asarray(self.empirical_scores) - np.asarray(self.true_scores)
        return float(np.max(gaps))


class ThresholdAttacker:
    """An adaptive developer that overfits a reused testset via pass/fail bits.

    World model: the attacker commits classifiers whose *true* accuracy is
    always ``base_accuracy`` (its proposals are random guesses off the
    testset).  The testset is a fixed realized sample of ``n`` examples;
    the attacker never observes per-example correctness — only the 1-bit
    "did the candidate beat the incumbent" signal.  Each round it proposes
    re-randomizing its predictions on a random block of examples; the
    *oracle* (which owns the hidden correctness) resolves what that does
    to empirical accuracy, and the attacker keeps the candidate exactly
    when the signal says "pass".

    This is the classic 1-bit-per-query overfitting construction: accepted
    proposals ratchet the empirical accuracy upward while the true
    accuracy never moves, and after ``H`` queries the expected gap scales
    like ``sqrt(H / n)`` — which is precisely what the ``delta / 2^H``
    sizing of §3.3 is built to absorb and the naive per-model sizing is
    not.  The attacker is deterministic given its seed and the feedback
    history — the adversary class of the §3.3 union bound.
    """

    def __init__(
        self,
        n_testset: int,
        base_accuracy: float = 0.5,
        block_fraction: float = 0.05,
        seed=None,
    ):
        self.n_testset = check_positive_int(n_testset, "n_testset")
        if not 0.0 < base_accuracy < 1.0:
            raise SimulationError(f"base_accuracy must be in (0,1), got {base_accuracy}")
        self.base_accuracy = base_accuracy
        self.block_fraction = check_positive(block_fraction, "block_fraction")
        self._rng = ensure_rng(seed)
        # Hidden (oracle-side) correctness of the incumbent model's
        # predictions on the realized testset.
        self.correct = self._rng.random(self.n_testset) < base_accuracy
        self.true_accuracy = base_accuracy

    @property
    def empirical_accuracy(self) -> float:
        """Incumbent measured accuracy on the (reused) testset."""
        return float(np.mean(self.correct))

    def propose(self) -> tuple[np.ndarray, np.ndarray]:
        """One proposal: ``(block indices, candidate correctness draw)``.

        The candidate re-randomizes predictions on the block, so its
        hidden correctness there is a fresh Bernoulli(``base_accuracy``)
        draw — resolved here (oracle side) but *never shown* to the
        decision rule, which only sees the accept bit.
        """
        k = max(1, int(self.block_fraction * self.n_testset))
        indices = self._rng.choice(self.n_testset, size=k, replace=False)
        candidate_correct = self._rng.random(k) < self.base_accuracy
        return indices, candidate_correct

    def apply(self, indices: np.ndarray, candidate_correct: np.ndarray, accept: bool) -> None:
        """Install the candidate when the signal said pass."""
        if accept:
            self.correct[indices] = candidate_correct


class AdaptiveAttacker:
    """Drives a :class:`ThresholdAttacker` against a pass/fail oracle.

    Parameters
    ----------
    attacker:
        The proposal mechanism.
    improvement_threshold:
        The oracle answers "pass" when the candidate's empirical accuracy
        exceeds the incumbent's by more than this threshold — a stand-in
        for the CI condition ``n - o > c``.
    """

    def __init__(self, attacker: ThresholdAttacker, improvement_threshold: float = 0.0):
        self.attacker = attacker
        self.improvement_threshold = improvement_threshold

    def run(self, n_rounds: int) -> AttackTrace:
        """Run ``n_rounds`` adaptive queries and return the trace."""
        n_rounds = check_positive_int(n_rounds, "n_rounds")
        trace = AttackTrace()
        for _ in range(n_rounds):
            incumbent = self.attacker.empirical_accuracy
            indices, candidate_correct = self.attacker.propose()
            candidate = self.attacker.correct.copy()
            candidate[indices] = candidate_correct
            candidate_acc = float(np.mean(candidate))
            accept = candidate_acc > incumbent + self.improvement_threshold
            self.attacker.apply(indices, candidate_correct, accept)
            trace.queries += 1
            trace.empirical_scores.append(self.attacker.empirical_accuracy)
            trace.true_scores.append(self.attacker.true_accuracy)
        return trace
